"""Experiment T-speedup — the Section 5 speedup-factor statements.

The paper's text quantifies its figures: on uniform data "EGO
outperforms … the MuX-Join by factors between 6 and 9, and the
Z-Order-RSJ by factors between 13 and 14" (left diagram) and "speedup
factors … between 3.2 and 8.6 over MuX and between 4.7 and 19 over
Z-Order-RSJ" (right); on CAD data factors of 4.0–10 over MuX and
4.5–17 over Z-Order-RSJ.

This bench recomputes the factor table on both workloads at the largest
size the full line-up runs at, checking the *direction* (EGO fastest,
factor > 1 everywhere, Z-RSJ factor above the MuX factor on uniform
data) rather than the absolute values of the authors' testbed.
"""

import pytest

from repro.data.synthetic import (cad_like, epsilon_for_average_neighbors,
                                  uniform)

from _harness import emit, run_all_algorithms, run_ego

ALL = ["ego", "mux", "zorder-rsj", "rsj", "nested-loop"]


def build_series():
    rows = []
    uni = uniform(6000, 8, seed=600)
    t = run_all_algorithms(uni, 0.25, ALL)
    rows.append({"workload": "uniform 8-d (n=6000)",
                 "mux/ego": t["mux"] / t["ego"],
                 "zorder-rsj/ego": t["zorder-rsj"] / t["ego"],
                 "rsj/ego": t["rsj"] / t["ego"],
                 "nested-loop/ego": t["nested-loop"] / t["ego"]})
    cad = cad_like(6000, seed=601)
    eps = epsilon_for_average_neighbors(cad, 4)
    t = run_all_algorithms(cad, eps, ALL)
    rows.append({"workload": "CAD-like 16-d (n=6000)",
                 "mux/ego": t["mux"] / t["ego"],
                 "zorder-rsj/ego": t["zorder-rsj"] / t["ego"],
                 "rsj/ego": t["rsj"] / t["ego"],
                 "nested-loop/ego": t["nested-loop"] / t["ego"]})
    return rows


def test_speedup_table(benchmark):
    rows = build_series()
    emit("speedup_table",
         "Section 5 speedup factors (competitor time / EGO time)", rows)
    for row in rows:
        assert row["mux/ego"] > 1.0
        assert row["zorder-rsj/ego"] > 1.0
        assert row["rsj/ego"] > 1.0
        assert row["nested-loop/ego"] > 1.0
        # Z-Order-RSJ trails MuX, as in every paper figure.
        assert row["zorder-rsj/ego"] > row["mux/ego"]

    pts = uniform(3000, 8, seed=600)
    benchmark(lambda: run_ego(pts, 0.25))


if __name__ == "__main__":
    emit("speedup_table", "Speedup factors", build_series())
