"""Experiment A-optimizer — validating the query-optimizer cost model.

The paper's future work: "the extension of our cost model for the use
by the query optimizer".  `repro.analysis.optimizer` implements that
model; this bench validates it the way an optimizer would be judged —
predicted vs measured unit loads and I/O seconds across a configuration
sweep, plus a check that `choose_unit_size` picks a configuration whose
*measured* cost is within a small factor of the measured optimum.
"""

import pytest

from repro.analysis.optimizer import choose_unit_size, estimate_ego_join
from repro.core.ego_join import ego_self_join_file
from repro.data.loader import make_point_file
from repro.data.synthetic import uniform

from _harness import emit

N = 12000
DIMENSIONS = 8
RECORD_BYTES = 72


def measured(points, epsilon, unit_bytes, buffer_units):
    disk, pf = make_point_file(points)
    try:
        return ego_self_join_file(pf, epsilon, unit_bytes=unit_bytes,
                                  buffer_units=buffer_units,
                                  materialize=False)
    finally:
        disk.close()


def build_series():
    pts = uniform(N, DIMENSIONS, seed=1000)
    budget = int(N * RECORD_BYTES * 0.10)
    rows = []
    for eps in (0.15, 0.25, 0.35):
        for unit_bytes in (budget // 16, budget // 8, budget // 3):
            buffer_units = max(2, budget // unit_bytes)
            est = estimate_ego_join(N, DIMENSIONS, eps, unit_bytes,
                                    buffer_units)
            run = measured(pts, eps, unit_bytes, buffer_units)
            meas_loads = run.schedule_stats.total_unit_loads
            rows.append({
                "eps": eps,
                "unit_bytes": unit_bytes,
                "pred_loads": round(est.predicted_unit_loads),
                "meas_loads": meas_loads,
                "pred_io_s": est.predicted_io_time_s,
                "meas_io_s": run.simulated_io_time_s,
                "load_error": abs(est.predicted_unit_loads
                                  - meas_loads) / meas_loads,
            })
    return rows, pts, budget


def test_optimizer_validation(benchmark):
    rows, pts, budget = build_series()
    emit("optimizer_validation",
         f"Cost-model validation: predicted vs measured "
         f"(8-d uniform, n={N}, budget=10%)", rows)
    # Within 30 % on unit loads in every configuration.
    for row in rows:
        assert row["load_error"] < 0.30
        assert row["pred_io_s"] == pytest.approx(row["meas_io_s"],
                                                 rel=0.5)

    # choose_unit_size picks a configuration whose measured I/O is
    # within 1.5x of the best measured configuration in its sweep.
    eps = 0.25
    best = choose_unit_size(N, DIMENSIONS, eps, budget)
    chosen = measured(pts, eps, best.unit_bytes, best.buffer_units)
    sweep = []
    for unit_bytes in (budget // 16, budget // 8, budget // 3):
        run = measured(pts, eps, unit_bytes,
                       max(2, budget // unit_bytes))
        sweep.append(run.simulated_io_time_s)
    assert chosen.simulated_io_time_s <= 1.5 * min(sweep)

    benchmark(lambda: estimate_ego_join(N, DIMENSIONS, 0.25,
                                        budget // 8, 8))


if __name__ == "__main__":
    rows, *_ = build_series()
    emit("optimizer_validation", "Cost model validation", rows)
