"""Experiment A-cache — buffer-size behaviour: EGO vs ε-kdB-tree.

Section 2.2 of the paper: the ε-kdB-tree join needs two adjacent
ε-stripes resident — measured at ~60 % of an 8-dimensional artificial
database ([BK 01]) — and "failed in the required configuration" when a
stripe outgrew the cache.  EGO, in contrast, degrades gracefully: a
smaller buffer only increases crabstep re-reads.

Two tables:

* the ε-kdB stripe-pair cache requirement on 8-d uniform and on skewed
  (clustered) data, vs the 10 % budget every algorithm gets in the
  evaluation — the join must *refuse* to run;
* EGO's re-read factor (unit loads / units) as the buffer fraction
  shrinks from 25 % to 2 %.
"""

import numpy as np
import pytest

from repro.core.ego_join import ego_self_join_file
from repro.data.loader import make_point_file
from repro.data.synthetic import gaussian_clusters, uniform
from repro.index.epskdb import EpsKdbCacheError, StripedDataset
from repro.index.msj import LevelFiles, level_zero_probability
from repro.joins.epskdb_join import epskdb_self_join

from _harness import emit

N = 5000
EPSILON = 0.25


def epskdb_rows():
    rows = []
    for name, pts in [
            ("uniform 8-d", uniform(N, 8, seed=900)),
            ("clustered 8-d", gaussian_clusters(N, 8, clusters=6,
                                                std=0.05, seed=901))]:
        striped = StripedDataset(np.arange(N), pts, EPSILON)
        fraction = striped.max_pair_fraction()
        refused = False
        try:
            epskdb_self_join(np.arange(N), pts, EPSILON,
                             cache_records=N // 10, materialize=False)
        except EpsKdbCacheError:
            refused = True
        rows.append({"workload": name,
                     "stripes": striped.num_stripes,
                     "required_cache_fraction": fraction,
                     "multiscan_fraction": striped.max_quad_fraction(),
                     "runs_at_10%_budget": not refused})
    return rows


def msj_rows():
    """The MSJ/S³J side of the §2.2 criticism.

    [BK 01] measured "an average of 46 % of the DB size (e.g. for
    8-dimensional artificial data)" resident during the MSJ scan; the
    level-file model reproduces the statistic and its growth with d.
    """
    rows = []
    for d in (2, 4, 8, 16):
        pts = uniform(N, d, seed=910 + d)
        structure = LevelFiles(pts, EPSILON)
        rows.append({
            "dimensions": d,
            "level0_fraction": float(
                (structure.levels_of == 0).mean()),
            "analytic_level0": level_zero_probability(EPSILON, d),
            "avg_resident_fraction":
                structure.average_resident_fraction(),
        })
    return rows


def ego_rows():
    pts = uniform(N, 8, seed=902)
    rows = []
    for fraction in (0.25, 0.10, 0.05, 0.02):
        budget_bytes = max(4 * 72, int(N * 72 * fraction))
        unit_bytes = max(16 * 72, budget_bytes // 8)
        buffer_units = max(2, budget_bytes // unit_bytes)
        disk, pf = make_point_file(pts)
        try:
            report = ego_self_join_file(pf, EPSILON,
                                        unit_bytes=unit_bytes,
                                        buffer_units=buffer_units,
                                        materialize=False)
        finally:
            disk.close()
        stats = report.schedule_stats
        units = stats.gallop_loads + stats.crabstep_pins
        rows.append({"buffer_fraction": fraction,
                     "unit_loads": stats.total_unit_loads,
                     "reread_factor": stats.total_unit_loads / units,
                     "pairs": report.result.count})
    return rows


def test_ablation_buffer(benchmark):
    erows = epskdb_rows()
    emit("ablation_epskdb_cache",
         f"§2.2: eps-kdB-tree stripe-pair cache requirement "
         f"(n={N}, eps={EPSILON})", erows)
    # The paper's criticism reproduced: far more than 10 % of the DB is
    # required, so the join refuses under the evaluation's budget.  The
    # multi-scan extension lowers the requirement (the paper's 60 % →
    # 36 % observation) but stays far above 10 %.
    for row in erows:
        assert row["required_cache_fraction"] > 0.25
        assert not row["runs_at_10%_budget"]
        assert (row["multiscan_fraction"]
                < row["required_cache_fraction"])
        assert row["multiscan_fraction"] > 0.10

    mrows = msj_rows()
    emit("ablation_msj_resident",
         f"§2.2: MSJ/S3J average resident fraction vs dimension "
         f"(n={N}, eps={EPSILON})", mrows)
    # The [BK 01] report: large resident fractions in high dimensions,
    # driven by the level-0 (plane-crossing) probability 1-(1-eps)^d.
    assert mrows[-1]["avg_resident_fraction"] > 0.4
    fractions = [row["avg_resident_fraction"] for row in mrows]
    assert fractions == sorted(fractions)
    for row in mrows:
        assert row["level0_fraction"] == pytest.approx(
            row["analytic_level0"], abs=0.05)

    grows = ego_rows()
    emit("ablation_ego_buffer",
         "EGO re-read factor vs buffer fraction (graceful degradation)",
         grows)
    # Identical results at every buffer size...
    assert len({row["pairs"] for row in grows}) == 1
    # ...with monotonically growing re-reads as the buffer shrinks.
    factors = [row["reread_factor"] for row in grows]
    assert factors == sorted(factors)
    # Even at 2 % the factor stays moderate (no blow-up).
    assert factors[-1] < 30

    benchmark(lambda: epskdb_rows())


if __name__ == "__main__":
    emit("ablation_epskdb_cache", "eps-kdB cache", epskdb_rows())
    emit("ablation_ego_buffer", "EGO buffer sweep", ego_rows())
