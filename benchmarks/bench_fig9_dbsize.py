"""Experiment F9-left — Figure 9 (left): 16-d CAD data, time vs DB size.

Paper setup: "16-dimensional feature vectors extracted from geometrical
parts and variants thereof", varying database size.  "EGO was 9 times
faster than the MuX-Join for the largest database size and 16 times
faster than the Z-Order-RSJ."

The proprietary CAD data is substituted by the correlated, clustered
``cad_like`` generator (DESIGN.md substitution table); ε is selected per
the paper with the [SEKX 98] clustering criterion on the data itself.
"""

import pytest

from repro.data.synthetic import cad_like, epsilon_for_average_neighbors

from _harness import emit, run_all_algorithms, run_ego

FULL_SIZES = [1500, 3000, 6000]
EGO_ONLY_SIZES = [12000, 24000]
DIMENSIONS = 16

ALL = ["ego", "mux", "zorder-rsj", "rsj", "nested-loop"]


def choose_epsilon():
    sample = cad_like(4000, seed=300)
    return epsilon_for_average_neighbors(sample, target_neighbors=4)


def build_series():
    eps = choose_epsilon()
    rows = []
    for n in FULL_SIZES:
        pts = cad_like(n, seed=300 + n)
        times = run_all_algorithms(pts, eps, ALL)
        rows.append({"n": n, "ego": times["ego"], "mux": times["mux"],
                     "zorder-rsj": times["zorder-rsj"],
                     "rsj": times["rsj"],
                     "nested-loop": times["nested-loop"],
                     "pairs": times["ego_pairs"]})
    for n in EGO_ONLY_SIZES:
        pts = cad_like(n, seed=300 + n)
        times = run_all_algorithms(pts, eps, ["ego"])
        rows.append({"n": n, "ego": times["ego"], "mux": None,
                     "zorder-rsj": None, "rsj": None,
                     "nested-loop": None, "pairs": times["ego_pairs"]})
    return rows, eps


def test_fig9_dbsize(benchmark):
    rows, eps = build_series()
    emit("fig9_dbsize",
         f"Figure 9 (left): model seconds vs DB size "
         f"(16-d CAD-like, eps={eps:.4f})",
         rows, time_columns=["ego", "mux", "zorder-rsj", "rsj",
                             "nested-loop"])
    biggest = rows[len(FULL_SIZES) - 1]
    assert biggest["ego"] < biggest["mux"]
    assert biggest["ego"] < biggest["zorder-rsj"]
    assert biggest["ego"] < biggest["rsj"]
    egos = [r["ego"] for r in rows]
    assert egos == sorted(egos)

    pts = cad_like(FULL_SIZES[1], seed=300 + FULL_SIZES[1])
    benchmark(lambda: run_ego(pts, eps))


if __name__ == "__main__":
    rows, _ = build_series()
    emit("fig9_dbsize", "Figure 9 (left)", rows, time_columns=ALL)
