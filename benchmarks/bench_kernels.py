"""Micro-benchmark of the leaf distance kernels (engine sweep).

Sweeps engine × leaf size × dimensionality over EGO-sorted leaf blocks
and reports wall-clock seconds per call:

* ``scalar``  — the Figure-7 reference loop (small leaves only; it is
  three orders of magnitude off the pace at 256+ points),
* ``vector``  — the ``na × nb × d`` difference-cube engine,
* ``matmul``  — the tiled GEMM kernel of :mod:`repro.core.kernels`,
* ``matmul+w`` — the GEMM kernel behind the EGO-sorted candidate-window
  prefilter.

Also measures the external self-join wall clock at ``workers`` 1 vs 4
on a Figure-9-style workload, so the parallel unit-pair join's benefit
(or, on a single-core machine, its overhead) is recorded honestly.

Run as a script for the committed tables, ``--tiny`` for the CI smoke
configuration; results land in ``results/bench_kernels.txt`` and are
appended to ``results/BENCH_kernels.json`` by :mod:`record_kernels`.
"""

import argparse
import os
import time

import numpy as np

from repro.core.distance import (natural_ordering, pairs_within_scalar,
                                 pairs_within_vector)
from repro.core.ego_join import ego_self_join_file
from repro.core.ego_order import ego_sorted
from repro.core.kernels import (ScratchBuffers, candidate_windows,
                                pairs_within_matmul)
from repro.data.loader import make_point_file
from repro.data.synthetic import cad_like, uniform

from _harness import BudgetedSetup, emit

TINY = bool(int(os.environ.get("REPRO_BENCH_TINY", "0")))

#: Leaf sizes × dimensionalities of the full sweep.
LEAF_SIZES = [64, 128, 256, 512, 1024]
DIMENSIONS = [4, 8, 16, 32]
SCALAR_MAX_LEAF = 128  # the scalar loop is too slow beyond this

TINY_LEAF_SIZES = [32, 64]
TINY_DIMENSIONS = [4, 8]

EPSILON = 0.25

#: Figure-9-style end-to-end points for the batched-vs-matmul
#: comparison: ``(n, d, eps, minlen)``.  Small ``minlen`` is the regime
#: the batched engine targets — many small leaves whose per-leaf GEMM
#: dispatch it amortises into one fused call per batch.
BATCHED_POINTS = [(3000, 8, 0.3, 16), (3000, 8, 0.3, 32),
                  (2000, 16, 0.5, 16)]
TINY_BATCHED_POINTS = [(800, 8, 0.3, 16)]


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def sweep(leaf_sizes, dimensions, repeats=5, seed=1234):
    """One row per (leaf, d): seconds per engine + result cardinality."""
    rows = []
    for d in dimensions:
        for leaf in leaf_sizes:
            pts = uniform(leaf, d, seed=seed + leaf * 37 + d)
            _ids, pts = ego_sorted(pts, EPSILON)
            order = natural_ordering(d)
            eps_sq = EPSILON * EPSILON
            scratch = ScratchBuffers()
            windows = candidate_windows(pts, pts, 0, EPSILON)

            ref = pairs_within_vector(pts, pts, eps_sq, order,
                                      upper_triangle=True)
            pairs = len(ref[0])
            row = {"d": d, "leaf": leaf, "pairs": pairs,
                   "scalar": None}
            if leaf <= SCALAR_MAX_LEAF:
                row["scalar"] = _best_of(
                    lambda: pairs_within_scalar(pts, pts, eps_sq, order,
                                                upper_triangle=True),
                    repeats)
            row["vector"] = _best_of(
                lambda: pairs_within_vector(pts, pts, eps_sq, order,
                                            upper_triangle=True),
                repeats)
            row["matmul"] = _best_of(
                lambda: pairs_within_matmul(pts, pts, eps_sq, order,
                                            upper_triangle=True,
                                            scratch=scratch),
                repeats)
            row["matmul+w"] = _best_of(
                lambda: pairs_within_matmul(pts, pts, eps_sq, order,
                                            upper_triangle=True,
                                            scratch=scratch,
                                            windows=windows),
                repeats)
            got = pairs_within_matmul(pts, pts, eps_sq, order,
                                      upper_triangle=True,
                                      windows=windows)
            assert len(got[0]) == pairs, "engines disagree on pair count"
            rows.append(row)
    return rows


def measure_workers(n=6000, worker_counts=(1, 4), repeats=1, seed=777):
    """External self-join wall clock per worker count (honest numbers:
    on a single-core host the parallel path can only add overhead)."""
    pts = cad_like(n, seed=seed)
    setup = BudgetedSetup.for_dataset(n, pts.shape[1])
    eps = 0.12
    rows = []
    for workers in worker_counts:
        def run():
            disk, pf = make_point_file(pts)
            try:
                return ego_self_join_file(
                    pf, eps, unit_bytes=setup.unit_bytes,
                    buffer_units=setup.buffer_units,
                    engine="auto", workers=workers, materialize=False)
            finally:
                disk.close()
        secs = _best_of(lambda: run(), repeats)
        rows.append({"workers": workers, "wall_s": secs,
                     "pairs": run().result.count,
                     "cores": os.cpu_count()})
    return rows


def measure_batched_e2e(points_list, repeats=2, seed=99):
    """End-to-end in-memory self-join: per-leaf engines vs the fused
    cross-leaf ``batched`` engine, one row per Figure-9-style point."""
    from repro.core.ego_join import ego_self_join
    rows = []
    for n, d, eps, minlen in points_list:
        pts = uniform(n, d, seed=seed + n + d)
        counts = {}

        def run(engine):
            res = ego_self_join(pts, eps, engine=engine, minlen=minlen)
            counts[engine] = res.count

        row = {"n": n, "d": d, "eps": eps, "minlen": minlen}
        for engine in ("vector", "matmul", "batched"):
            row[engine] = _best_of(lambda: run(engine), repeats)
        assert len(set(counts.values())) == 1, "engines disagree on pairs"
        row["pairs"] = counts["batched"]
        rows.append(row)
    return rows


def run_suite(tiny=False):
    if tiny:
        kernel_rows = sweep(TINY_LEAF_SIZES, TINY_DIMENSIONS, repeats=2)
        worker_rows = measure_workers(n=800, worker_counts=(1, 2))
        batched_rows = measure_batched_e2e(TINY_BATCHED_POINTS)
    else:
        kernel_rows = sweep(LEAF_SIZES, DIMENSIONS)
        worker_rows = measure_workers()
        batched_rows = measure_batched_e2e(BATCHED_POINTS)
    emit("bench_kernels",
         "Leaf kernel sweep: seconds per self-join leaf "
         f"(eps={EPSILON}, upper triangle)",
         kernel_rows,
         time_columns=["scalar", "vector", "matmul", "matmul+w"],
         reference="matmul")
    emit("bench_kernels_workers",
         "External self-join wall clock vs worker count "
         f"(cad_like, engine=auto, {os.cpu_count()} core(s))",
         worker_rows)
    emit("bench_kernels_batched",
         "End-to-end self-join wall clock: per-leaf engines vs the "
         "fused cross-leaf batched engine",
         batched_rows,
         time_columns=["vector", "matmul", "batched"],
         reference="batched")
    return kernel_rows, worker_rows, batched_rows


def test_kernel_sweep(benchmark):
    tiny = TINY
    kernel_rows, _, batched_rows = run_suite(tiny=tiny)
    # Acceptance bar for the batched engine: faster than per-leaf GEMM
    # end-to-end on at least one Figure-9-style point.
    assert any(r["batched"] < r["matmul"] for r in batched_rows), \
        batched_rows
    for row in kernel_rows:
        if row["scalar"] is not None:
            assert row["vector"] < row["scalar"]
    if not tiny:
        # Acceptance bar: GEMM ≥ 3× over the difference cube on big
        # high-dimensional leaves.
        big = [r for r in kernel_rows
               if r["leaf"] >= 256 and r["d"] >= 16]
        assert big
        for row in big:
            assert row["matmul"] * 3.0 <= row["vector"], row

    pts = uniform(512, 16, seed=5)
    _ids, spts = ego_sorted(pts, EPSILON)
    order = natural_ordering(16)
    scratch = ScratchBuffers()
    benchmark(lambda: pairs_within_matmul(spts, spts, EPSILON ** 2,
                                          order, upper_triangle=True,
                                          scratch=scratch))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke configuration (small sweep)")
    args = parser.parse_args()
    run_suite(tiny=args.tiny or TINY)
