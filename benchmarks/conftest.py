"""Benchmark configuration: make the harness importable and keep output."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
