"""Experiment F10-right — Figure 10 (right): total time vs ε.

Paper setup: 8-dimensional uniform data, fixed database size, varying
distance parameter ε.  "Again, we observe that our novel approach
clearly outperforms all other techniques for all values of ε.  The
speedup factors were between 3.2 and 8.6 over MuX and between 4.7 and
19 over Z-Order-RSJ."

Expected shape: every algorithm's cost grows with ε (more candidates,
more result pairs); EGO stays lowest across the sweep.
"""

import pytest

from repro.data.synthetic import uniform

from _harness import emit, run_all_algorithms, run_ego

N = 6000
DIMENSIONS = 8
EPSILONS = [0.15, 0.20, 0.25, 0.30]

ALL = ["ego", "mux", "zorder-rsj", "rsj", "nested-loop"]


def build_series():
    pts = uniform(N, DIMENSIONS, seed=210)
    rows = []
    for eps in EPSILONS:
        times = run_all_algorithms(pts, eps, ALL)
        rows.append({"epsilon": eps, "ego": times["ego"],
                     "mux": times["mux"],
                     "zorder-rsj": times["zorder-rsj"],
                     "rsj": times["rsj"],
                     "nested-loop": times["nested-loop"],
                     "pairs": times["ego_pairs"]})
    return rows


def test_fig10_epsilon(benchmark):
    rows = build_series()
    emit("fig10_epsilon",
         "Figure 10 (right): model seconds vs epsilon "
         f"(8-d uniform, n={N})",
         rows, time_columns=["ego", "mux", "zorder-rsj", "rsj",
                             "nested-loop"])
    # EGO wins for every eps value.
    for row in rows:
        assert row["ego"] < row["mux"]
        assert row["ego"] < row["zorder-rsj"]
        assert row["ego"] < row["rsj"]
    # Cost grows with eps for EGO (more result pairs, wider interval).
    egos = [r["ego"] for r in rows]
    assert egos[-1] > egos[0]
    pairs = [r["pairs"] for r in rows]
    assert pairs == sorted(pairs)

    pts = uniform(N, DIMENSIONS, seed=210)
    benchmark(lambda: run_ego(pts, EPSILONS[1]))


if __name__ == "__main__":
    emit("fig10_epsilon", "Figure 10 (right)", build_series(),
         time_columns=ALL)
