"""Experiment F3-sched — Figure 3: gallop vs thrashing vs crabstep.

The paper's running example: with buffer space for 4 I/O units,

* (a) gallop mode with a narrow ε-interval loads each unit once;
* (b) gallop mode under LRU with a wide interval thrashes — one load
  per unit pair;
* (c) crabstep mode covers the same pair matrix with far fewer loads
  (16 accesses for 36 page pairs in the paper's example).

This bench reconstructs all three regimes on real data and reports the
disk-access counts; the crabstep-vs-thrash ratio must approach the
outer-loop-buffering bound.
"""

import numpy as np
import pytest

from repro.core.ego_join import ego_self_join_file
from repro.data.loader import make_point_file
from repro.data.synthetic import uniform

from _harness import emit

BUFFER_UNITS = 4


def run_mode(points, epsilon, unit_bytes, allow_crabstep):
    disk, pf = make_point_file(points)
    try:
        report = ego_self_join_file(pf, epsilon, unit_bytes=unit_bytes,
                                    buffer_units=BUFFER_UNITS,
                                    allow_crabstep=allow_crabstep,
                                    materialize=False)
        return report.schedule_stats, report.result.count
    finally:
        disk.close()


def build_series():
    rows = []
    # (a) narrow interval: eps small, interval fits the 4-unit buffer.
    narrow = uniform(2000, 2, seed=500)
    stats_a, _ = run_mode(narrow, 0.02, unit_bytes=4096,
                          allow_crabstep=True)
    rows.append({"regime": "(a) gallop, narrow interval",
                 "unit_loads": stats_a.total_unit_loads,
                 "unit_pairs": stats_a.unit_pairs_joined,
                 "crabsteps": stats_a.crabstep_phases})
    # (b)/(c) wide interval: every unit pair joins (the Figure 3 matrix).
    wide = uniform(1200, 2, seed=501)
    stats_b, pairs_b = run_mode(wide, 0.95, unit_bytes=2048,
                                allow_crabstep=False)
    rows.append({"regime": "(b) gallop under LRU (thrashing)",
                 "unit_loads": stats_b.total_unit_loads,
                 "unit_pairs": stats_b.unit_pairs_joined,
                 "crabsteps": 0})
    stats_c, pairs_c = run_mode(wide, 0.95, unit_bytes=2048,
                                allow_crabstep=True)
    rows.append({"regime": "(c) crabstep",
                 "unit_loads": stats_c.total_unit_loads,
                 "unit_pairs": stats_c.unit_pairs_joined,
                 "crabsteps": stats_c.crabstep_phases})
    assert pairs_b == pairs_c
    return rows, stats_a, stats_b, stats_c


def test_fig3_scheduling(benchmark):
    rows, a, b, c = build_series()
    emit("fig3_scheduling",
         f"Figure 3: disk accesses under the three scheduling regimes "
         f"(buffer = {BUFFER_UNITS} units)", rows)
    # (a) single scan: each unit loaded exactly once, no crabstep.
    assert a.crabstep_phases == 0
    assert a.crabstep_reloads == 0
    # (b) thrashing: loads approach one per unit pair.
    assert b.total_unit_loads > b.unit_pairs_joined / 2
    # (c) crabstep: massively fewer loads than thrashing for the same
    # pair matrix (paper: 16 vs 36 at 8 units; ratio grows with units).
    assert c.total_unit_loads < b.total_unit_loads / 2
    assert c.unit_pairs_joined == b.unit_pairs_joined

    wide = uniform(1200, 2, seed=501)
    benchmark(lambda: run_mode(wide, 0.95, 2048, True))


if __name__ == "__main__":
    rows, *_ = build_series()
    emit("fig3_scheduling", "Figure 3", rows)
