"""Experiment F9-right — Figure 9 (right): 16-d CAD data, time vs ε.

Paper observation: "the performance of the MuX-Join and the Z-Order-RSJ
converge for larger ε values while EGO still shows substantially better
performance for all values of ε.  The improvement factors … varied
between 4.0 and 10 over the Multipage Index and between 4.5 and 17 over
Z-Order-RSJ."
"""

import pytest

from repro.data.synthetic import cad_like, epsilon_for_average_neighbors

from _harness import emit, run_all_algorithms, run_ego

N = 4000
DIMENSIONS = 16

ALL = ["ego", "mux", "zorder-rsj", "rsj", "nested-loop"]


def build_series():
    pts = cad_like(N, seed=400)
    base = epsilon_for_average_neighbors(pts, target_neighbors=4)
    epsilons = [base * f for f in (0.5, 0.75, 1.0, 1.5)]
    rows = []
    for eps in epsilons:
        times = run_all_algorithms(pts, eps, ALL)
        rows.append({"epsilon": round(eps, 4), "ego": times["ego"],
                     "mux": times["mux"],
                     "zorder-rsj": times["zorder-rsj"],
                     "rsj": times["rsj"],
                     "nested-loop": times["nested-loop"],
                     "pairs": times["ego_pairs"]})
    return rows


def test_fig9_epsilon(benchmark):
    rows = build_series()
    emit("fig9_epsilon",
         f"Figure 9 (right): model seconds vs epsilon "
         f"(16-d CAD-like, n={N})",
         rows, time_columns=["ego", "mux", "zorder-rsj", "rsj",
                             "nested-loop"])
    for row in rows:
        assert row["ego"] < row["mux"]
        assert row["ego"] < row["zorder-rsj"]
    # Result size grows with eps.
    pairs = [r["pairs"] for r in rows]
    assert pairs == sorted(pairs)

    pts = cad_like(N, seed=400)
    benchmark(lambda: run_ego(pts, rows[1]["epsilon"]))


if __name__ == "__main__":
    emit("fig9_epsilon", "Figure 9 (right)", build_series(),
         time_columns=ALL)
