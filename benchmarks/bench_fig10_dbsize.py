"""Experiment F10-left — Figure 10 (left): total time vs database size.

Paper setup: 8-dimensional uniformly distributed points, database sizes
0.5M–40M; for the two largest sizes "only the results for EGO could be
obtained in reasonable time".  Scaled-down reproduction (DESIGN.md):
full algorithm line-up to 8k points, EGO-only beyond, same 10 % buffer
rule, model seconds from exact operation counts.

Expected shape: nested loop worst and growing quadratically; RSJ <
Z-Order-RSJ < MuX < EGO at the larger sizes (smallest sizes sit below
the scale where index joins saturate, mirroring how the paper's factors
are reported for its large databases).
"""

import pytest

from repro.data.synthetic import uniform

from _harness import emit, run_all_algorithms, run_ego

FULL_SIZES = [2000, 4000, 8000]
EGO_ONLY_SIZES = [16000, 32000]
EPSILON = 0.25
DIMENSIONS = 8

ALL = ["ego", "mux", "zorder-rsj", "rsj", "nested-loop"]


def build_series():
    rows = []
    for n in FULL_SIZES:
        pts = uniform(n, DIMENSIONS, seed=100 + n)
        times = run_all_algorithms(pts, EPSILON, ALL)
        rows.append({"n": n, "ego": times["ego"], "mux": times["mux"],
                     "zorder-rsj": times["zorder-rsj"],
                     "rsj": times["rsj"],
                     "nested-loop": times["nested-loop"],
                     "pairs": times["ego_pairs"]})
    for n in EGO_ONLY_SIZES:
        pts = uniform(n, DIMENSIONS, seed=100 + n)
        times = run_all_algorithms(pts, EPSILON, ["ego"])
        rows.append({"n": n, "ego": times["ego"], "mux": None,
                     "zorder-rsj": None, "rsj": None,
                     "nested-loop": None, "pairs": times["ego_pairs"]})
    return rows


def test_fig10_dbsize(benchmark):
    rows = build_series()
    emit("fig10_dbsize",
         "Figure 10 (left): model seconds vs DB size "
         "(8-d uniform, eps=%.2f)" % EPSILON,
         rows, time_columns=["ego", "mux", "zorder-rsj", "rsj",
                             "nested-loop"])
    # Shape assertions (who wins at scale, quadratic NLJ growth).
    biggest = rows[len(FULL_SIZES) - 1]
    assert biggest["ego"] < biggest["mux"]
    assert biggest["ego"] < biggest["zorder-rsj"] < biggest["rsj"]
    assert rows[-1]["ego"] > rows[0]["ego"]
    nlj = [r["nested-loop"] for r in rows[:len(FULL_SIZES)]]
    assert nlj[-1] > 2 * nlj[0]
    # At the largest (EGO-only) size, the calculated nested loop is
    # already an order of magnitude behind EGO — the paper's headline gap.
    from repro.analysis.costmodel import nested_loop_estimate
    big_n = EGO_ONLY_SIZES[-1]
    nlj_big = nested_loop_estimate(
        big_n, DIMENSIONS, buffer_records=big_n // 10).total_time_s
    assert nlj_big > 5 * rows[-1]["ego"]

    pts = uniform(4000, DIMENSIONS, seed=104000)
    benchmark(lambda: run_ego(pts, EPSILON))


if __name__ == "__main__":
    rows = build_series()
    emit("fig10_dbsize", "Figure 10 (left)", rows,
         time_columns=["ego", "mux", "zorder-rsj", "rsj", "nested-loop"])
