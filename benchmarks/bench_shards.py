"""Experiment SHARD-1 — sharded external join vs the single-disk runs.

Figure 9/10 regime on clustered data: the sorted file is partitioned
into shards joined in separate processes (``repro.core.shard``), and the
adaptive planner is compared against the uniform one and the PR 2
single-disk baselines (serial, and ``workers=k`` supervised pool).

Two kinds of numbers per workload:

* **deterministic** — the planner's predicted per-shard candidate
  volume.  ``max_cost`` of the adaptive plan must not exceed the
  uniform plan's on skewed/clustered data (that imbalance is exactly
  what a straggler shard costs); equality is expected on uniform data.
  These are pure functions of the data and assert cleanly on any host.
* **measured** — wall-clock seconds per mode, recorded for charting
  but not asserted (single-core CI hosts make shard processes pure
  overhead, exactly like ``workers=k`` in ``bench_kernels``).

Every sharded run is digest-checked against the serial pair stream —
the byte-identity contract is re-verified on benchmark data sizes, not
just unit-test sizes.

Usage: ``python benchmarks/bench_shards.py [--tiny]`` appends one
record to ``results/BENCH_shards.json`` (record_kernels.py style).
"""

import argparse
import json
import os
import time
import zlib

import numpy as np

from repro.core.ego_join import ego_self_join_file
from repro.data.loader import make_point_file
from repro.data.synthetic import cad_like
from repro.verify.workloads import generate_workload

from _harness import RESULTS_DIR, BudgetedSetup, emit

JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_shards.json")

EPSILON = 0.15
SHARDS = 4


def pair_digest(result) -> int:
    a, b = result.pairs()
    h = zlib.crc32(np.ascontiguousarray(a).tobytes())
    return zlib.crc32(np.ascontiguousarray(b).tobytes(), h)


def datasets(tiny: bool):
    n = 1200 if tiny else 6000
    clustered = cad_like(n, seed=300 + n)[:, :8]
    skewed = generate_workload("skewed", n, 8, EPSILON, seed=41).points
    rng = np.random.default_rng(17)
    uniform = rng.random((n, 8))
    return [("clustered", clustered), ("skewed", skewed),
            ("uniform", uniform)]


def run_modes(points: np.ndarray, epsilon: float) -> dict:
    """One workload through every mode; returns the comparison row."""
    setup = BudgetedSetup.for_dataset(len(points), points.shape[1])

    def run(**kw):
        disk, pf = make_point_file(points)
        try:
            t0 = time.perf_counter()
            report = ego_self_join_file(pf, epsilon,
                                        unit_bytes=setup.unit_bytes,
                                        buffer_units=setup.buffer_units,
                                        **kw)
            return report, time.perf_counter() - t0
        finally:
            disk.close()

    serial, t_serial = run()
    workers, t_workers = run(workers=SHARDS)
    uniform, t_uniform = run(shards=SHARDS, shard_policy="uniform")
    adaptive, t_adaptive = run(shards=SHARDS, shard_policy="adaptive")

    ref = pair_digest(serial.result)
    for name, rep in (("workers", workers), ("shards-uniform", uniform),
                      ("shards-adaptive", adaptive)):
        if pair_digest(rep.result) != ref:
            raise AssertionError(f"{name} diverged from the serial join")

    def imbalance(rep):
        costs = [s.cost for s in rep.shards]
        total = sum(costs)
        return (max(costs) * len(costs) / total) if total else 1.0

    return {
        "n": len(points),
        "pairs": serial.result.count,
        "serial_s": round(t_serial, 3),
        "workers_s": round(t_workers, 3),
        "uniform_s": round(t_uniform, 3),
        "adaptive_s": round(t_adaptive, 3),
        "uniform_max_cost": max(s.cost for s in uniform.shards),
        "adaptive_max_cost": max(s.cost for s in adaptive.shards),
        "uniform_imbalance": round(imbalance(uniform), 3),
        "adaptive_imbalance": round(imbalance(adaptive), 3),
        "adaptive_shards": len(adaptive.shards),
    }


def run_suite(tiny: bool = False):
    rows = []
    for kind, points in datasets(tiny):
        row = {"workload": kind}
        row.update(run_modes(points, EPSILON))
        rows.append(row)
    return rows


def append_record(rows, mode, path=JSON_PATH):
    history = []
    if os.path.exists(path):
        with open(path) as fh:
            history = json.load(fh)
    history.append({
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "mode": mode,
        "cores": os.cpu_count(),
        "shards": SHARDS,
        "epsilon": EPSILON,
        "rows": rows,
    })
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(history, fh, indent=2)
        fh.write("\n")
    return path


def check_rows(rows):
    """The deterministic planner claims this benchmark exists to test."""
    by_kind = {r["workload"]: r for r in rows}
    for kind in ("clustered", "skewed"):
        r = by_kind[kind]
        assert r["adaptive_max_cost"] <= r["uniform_max_cost"], (
            f"adaptive plan lost to uniform on {kind}: "
            f"{r['adaptive_max_cost']} > {r['uniform_max_cost']}")
    # On skewed data the rebalance must be material, not a tie.
    skew = by_kind["skewed"]
    assert skew["adaptive_max_cost"] < skew["uniform_max_cost"], (
        "adaptive plan did not improve the skewed workload")


def test_shards(benchmark):
    rows = run_suite(tiny=True)
    emit("bench_shards",
         "Sharded join: predicted shard cost and wall time by policy "
         f"(shards={SHARDS}, eps={EPSILON})",
         rows)
    check_rows(rows)
    pts = datasets(tiny=True)[1][1]
    benchmark(lambda: run_modes(pts, EPSILON))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke configuration (small datasets)")
    args = parser.parse_args()
    rows = run_suite(tiny=args.tiny)
    emit("bench_shards",
         "Sharded join: predicted shard cost and wall time by policy "
         f"(shards={SHARDS}, eps={EPSILON})",
         rows)
    check_rows(rows)
    path = append_record(rows, "tiny" if args.tiny else "full")
    for row in rows:
        verdict = ("rebalanced" if row["adaptive_max_cost"]
                   < row["uniform_max_cost"] else "tied with")
        print(f"adaptive {verdict} uniform on {row['workload']}: "
              f"max cost {row['adaptive_max_cost']} vs "
              f"{row['uniform_max_cost']} "
              f"(imbalance {row['adaptive_imbalance']} vs "
              f"{row['uniform_imbalance']})")
    print(f"appended to {path}")


if __name__ == "__main__":
    main()
