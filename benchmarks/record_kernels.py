"""Append a kernel benchmark run to ``results/BENCH_kernels.json``.

The text tables under ``results/`` are for humans; this keeps a
machine-readable history of the same numbers so speedup regressions can
be charted across commits.  Each run appends one record::

    {"timestamp": ..., "mode": "full"|"tiny", "cores": ...,
     "kernels": [<sweep rows>], "workers": [<worker rows>],
     "batched_e2e": [<batched-vs-matmul end-to-end rows>]}

Usage: ``python benchmarks/record_kernels.py [--tiny]``.
"""

import argparse
import json
import os
import time

from _harness import RESULTS_DIR

JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_kernels.json")


def append_record(kernel_rows, worker_rows, mode, path=JSON_PATH,
                  batched_rows=None):
    history = []
    if os.path.exists(path):
        with open(path) as fh:
            history = json.load(fh)
    history.append({
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "mode": mode,
        "cores": os.cpu_count(),
        "kernels": kernel_rows,
        "workers": worker_rows,
        "batched_e2e": batched_rows or [],
    })
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(history, fh, indent=2)
        fh.write("\n")
    return path


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke configuration (small sweep)")
    args = parser.parse_args()
    from bench_kernels import run_suite
    kernel_rows, worker_rows, batched_rows = run_suite(tiny=args.tiny)
    path = append_record(kernel_rows, worker_rows,
                         "tiny" if args.tiny else "full",
                         batched_rows=batched_rows)
    for row in batched_rows:
        verdict = "beats" if row["batched"] < row["matmul"] else "trails"
        print(f"batched {verdict} matmul at n={row['n']} d={row['d']} "
              f"minlen={row['minlen']}: {row['batched']:.3f}s vs "
              f"{row['matmul']:.3f}s")
    print(f"appended to {path}")


if __name__ == "__main__":
    main()
