"""Experiment STORE-1 — amortized incremental updates vs re-sort-per-update.

The :class:`repro.service.EGOStore` exists so that a long-lived join
service does not pay a full EGO re-sort for every update.  This
benchmark quantifies that claim on the acceptance workload: a resident
base of points absorbing a seeded stream of insert/delete batches.

Two update strategies over the *same* op stream:

* **store** — one ``EGOStore``; each batch is an ``insert``/``delete``
  call (delta buffer + threshold compaction, journaling off).
* **resort** — the naive service: after every batch the full live set
  is re-sorted from scratch (``ego_sort_order``), which is exactly the
  work a stateless wrapper around the batch pipeline would repeat.

The claim asserted (not merely charted): amortized per-batch update
cost of the store is **≥ 10×** cheaper than re-sort-per-update at the
full size (5 000 base points; a smaller floor guards the ``--tiny`` CI
smoke, where constant overheads dominate).  Correctness is not taken on
faith either — after the stream the store join is digest-checked
against ``ego_self_join`` on the surviving points.

Also recorded: cold vs cached join latency, and compaction counts, so
regressions in the LRU or the merge path show up in the history file.

Usage: ``python benchmarks/bench_store.py [--tiny]`` appends one record
to ``results/BENCH_store.json`` (record_kernels.py style).
"""

import argparse
import json
import os
import time

import numpy as np

from repro.core.ego_join import ego_self_join
from repro.core.ego_order import ego_sort_order
from repro.service import EGOStore
from repro.verify.canonical import canonical_pairs, pair_digest

from _harness import RESULTS_DIR, format_table

JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_store.json")

EPSILON = 0.15
DIMS = 4


def op_stream(n_base: int, batches: int, seed: int):
    """Seeded update stream: (kind, ids, points) tuples."""
    rng = np.random.default_rng(seed)
    base = rng.random((n_base, DIMS))
    ops = []
    next_id = n_base
    live = list(range(n_base))
    for i in range(batches):
        if i % 4 == 3 and len(live) > 32:
            k = int(rng.integers(2, 6))
            victims = rng.choice(len(live), size=k, replace=False)
            ids = [live[v] for v in victims]
            for v in sorted(victims, reverse=True):
                live.pop(v)
            ops.append(("delete", np.asarray(ids, dtype=np.int64), None))
        else:
            k = int(rng.integers(4, 12))
            ids = np.arange(next_id, next_id + k, dtype=np.int64)
            next_id += k
            live.extend(ids.tolist())
            ops.append(("insert", ids, rng.random((k, DIMS))))
    return base, ops


def apply_to_store(store: EGOStore, op) -> None:
    kind, ids, pts = op
    if kind == "insert":
        store.insert(pts, ids=ids)
    else:
        store.delete(ids)


def run_stream(n_base: int, batches: int, seed: int = 7) -> dict:
    base, ops = op_stream(n_base, batches, seed)

    # -- incremental store ------------------------------------------------
    store = EGOStore.from_points(base, EPSILON, compact_threshold=256)
    t0 = time.perf_counter()
    for op in ops:
        apply_to_store(store, op)
    t_store = time.perf_counter() - t0

    # -- naive re-sort-per-update -----------------------------------------
    # The baseline maintains the same live set but re-sorts the whole
    # file after every batch — the stateless-service cost model.
    table = {int(i): base[i] for i in range(n_base)}
    t0 = time.perf_counter()
    for kind, ids, pts in ops:
        if kind == "insert":
            for i, uid in enumerate(ids.tolist()):
                table[uid] = pts[i]
        else:
            for uid in ids.tolist():
                del table[uid]
        live = np.array([table[u] for u in sorted(table)])
        ego_sort_order(live, EPSILON)
    t_resort = time.perf_counter() - t0

    # -- correctness: store join ≡ batch pipeline on the survivors --------
    ids, live = store.live_points()
    batch = canonical_pairs(ego_self_join(live, EPSILON, ids=ids))
    if pair_digest(store.join()) != pair_digest(batch):
        raise AssertionError("store join diverged from the batch join")

    # -- query latency: cold vs LRU-cached --------------------------------
    probe = EGOStore.from_points(live, EPSILON)
    t0 = time.perf_counter()
    probe.join()
    t_cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    probe.join()
    t_cached = time.perf_counter() - t0

    stats = store.stats()
    return {
        "n_base": n_base,
        "batches": batches,
        "live": len(ids),
        "pairs": len(batch),
        "store_update_ms": round(1e3 * t_store / batches, 4),
        "resort_update_ms": round(1e3 * t_resort / batches, 4),
        "update_speedup": round(t_resort / t_store, 1),
        "compactions": stats.compactions,
        "join_cold_ms": round(1e3 * t_cold, 3),
        "join_cached_ms": round(1e3 * t_cached, 4),
    }


def run_suite(tiny: bool = False):
    run_stream(200, 8)  # warm-up: numpy lazy imports, allocator
    configs = ([(2000, 40)] if tiny
               else [(2000, 60), (5000, 100)])
    return [run_stream(n, batches) for n, batches in configs]


def check_rows(rows, tiny: bool):
    """The amortized-update claim this benchmark exists to test."""
    # Constant overheads dominate at smoke sizes; the acceptance bar
    # (10×) applies to the full 5k-point run.
    floor = 3.0 if tiny else 10.0
    worst = max(rows, key=lambda r: r["n_base"])
    assert worst["update_speedup"] >= floor, (
        f"amortized update speedup {worst['update_speedup']}× is below "
        f"the {floor}× floor at n={worst['n_base']}")
    for r in rows:
        assert r["join_cached_ms"] <= r["join_cold_ms"], (
            "cached join slower than cold join — LRU regression")


def append_record(rows, mode, path=JSON_PATH):
    history = []
    if os.path.exists(path):
        with open(path) as fh:
            history = json.load(fh)
    history.append({
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "mode": mode,
        "epsilon": EPSILON,
        "dims": DIMS,
        "rows": rows,
    })
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(history, fh, indent=2)
        fh.write("\n")
    return path


def emit_table(rows):
    title = ("EGOStore amortized updates vs re-sort-per-update "
             f"(eps={EPSILON}, dims={DIMS})")
    text = format_table(rows, title=title)
    print()
    print("=== bench_store ===")
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "bench_store.txt"), "w") as fh:
        fh.write(f"=== bench_store ===\n{text}\n")


def test_store_bench():
    rows = run_suite(tiny=True)
    emit_table(rows)
    check_rows(rows, tiny=True)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke configuration (small datasets)")
    args = parser.parse_args()
    rows = run_suite(tiny=args.tiny)
    emit_table(rows)
    check_rows(rows, tiny=args.tiny)
    path = append_record(rows, "tiny" if args.tiny else "full")
    for row in rows:
        print(f"n={row['n_base']}: store {row['store_update_ms']} ms/op "
              f"vs resort {row['resort_update_ms']} ms/op "
              f"({row['update_speedup']}x), "
              f"{row['compactions']} compactions")
    print(f"appended to {path}")


if __name__ == "__main__":
    main()
