"""Micro-benchmarks of the core operations (regression guard).

Not a paper experiment — wall-clock micro-benchmarks of the hot paths
so performance regressions in the core operations are visible:

* EGO sort permutation of a batch,
* the vectorised leaf distance engine,
* the recursive sequence self-join,
* Morton/Hilbert key computation,
* external-sort run generation.
"""

import numpy as np
import pytest

from repro.core.distance import natural_ordering, pairs_within_vector
from repro.core.ego_order import ego_sort_order, ego_sorted
from repro.core.result import JoinResult
from repro.core.sequence import Sequence
from repro.core.sequence_join import JoinContext, join_sequences
from repro.curves.hilbert import hilbert_key_columns
from repro.curves.zorder import morton_key_columns
from repro.data.synthetic import uniform


@pytest.fixture(scope="module")
def points_8d():
    return uniform(20_000, 8, seed=42)


def test_micro_ego_sort(benchmark, points_8d):
    benchmark(lambda: ego_sort_order(points_8d, 0.25))


def test_micro_leaf_distance_engine(benchmark, points_8d):
    a = points_8d[:256]
    b = points_8d[256:512]
    order = natural_ordering(8)
    benchmark(lambda: pairs_within_vector(a, b, 0.25 * 0.25, order))


def test_micro_sequence_self_join(benchmark):
    pts = uniform(4_000, 8, seed=43)
    eps = 0.2
    ids, spts = ego_sorted(pts, eps)

    def run():
        ctx = JoinContext(epsilon=eps,
                          result=JoinResult(materialize=False))
        seq = Sequence(ids, spts, eps)
        join_sequences(seq, seq, ctx)
        return ctx.result.count

    benchmark(run)


def test_micro_morton_keys(benchmark, points_8d):
    cells = (points_8d * 1024).astype(np.int64)
    benchmark(lambda: morton_key_columns(cells, 10))


def test_micro_hilbert_keys(benchmark, points_8d):
    cells = (points_8d[:4096] * 1024).astype(np.int64)
    benchmark(lambda: hilbert_key_columns(cells, 10))
