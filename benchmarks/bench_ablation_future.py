"""Experiment A-future — the §4 "future research" optimizations.

Section 4 of the paper: "Further optimization techniques which are
subject to future research are modifications of the sort order of the
relation ≤ego and optimization strategies in the recursion scheme of
the algorithm join_sequences()."  Both are implemented here and this
bench quantifies them:

* **sort-order modification** — permuting the dimensions by decreasing
  spread before sorting (``sort_dims="spread"``), so dimension 0 is
  the one that actually partitions the data;
* **recursion-scheme optimization** — splitting sequences at the
  active-dimension cell boundary nearest the middle instead of the
  exact middle (``split_strategy="boundary"``), which confines the
  halves into cells one dimension sooner.

Metric: exact distance-calculation counts; the result sets are
identical by construction (and asserted).
"""

import numpy as np
import pytest

from repro.core.ego_join import ego_self_join
from repro.data.synthetic import uniform
from repro.storage.stats import CPUCounters

from _harness import emit

N = 4000
EPSILON_ISO = 0.1


def run(points, epsilon, **kwargs):
    cpu = CPUCounters()
    result = ego_self_join(points, epsilon, cpu=cpu, minlen=16, **kwargs)
    return result.canonical_pair_set(), cpu.distance_calculations


def build_series():
    rng = np.random.default_rng(1300)
    iso = rng.random((N, 4))
    aniso = rng.random((N, 4)) * np.array([0.01, 0.01, 1.0, 1.0])

    rows = []
    for name, pts, eps in (("isotropic 4-d", iso, EPSILON_ISO),
                           ("anisotropic 4-d", aniso, 0.05)):
        base_pairs, base = run(pts, eps)
        _p1, boundary = run(pts, eps, split_strategy="boundary")
        _p2, spread = run(pts, eps, sort_dims="spread")
        _p3, both = run(pts, eps, split_strategy="boundary",
                        sort_dims="spread")
        assert _p1 == base_pairs and _p2 == base_pairs \
            and _p3 == base_pairs
        rows.append({
            "workload": name,
            "calcs (baseline)": base,
            "calcs (boundary split)": boundary,
            "calcs (spread dims)": spread,
            "calcs (both)": both,
            "saving (both)": 1.0 - both / base,
        })
    return rows


def test_ablation_future_optimizations(benchmark):
    rows = build_series()
    emit("ablation_future",
         "§4 future-research optimizations: distance calculations",
         rows)
    iso, aniso = rows
    # Boundary splitting always helps (it only strengthens pruning).
    assert iso["calcs (boundary split)"] < iso["calcs (baseline)"]
    # Spread ordering is where the data is anisotropic.
    assert (aniso["calcs (spread dims)"]
            < aniso["calcs (baseline)"] * 0.6)
    # The combination is the best configuration on anisotropic data.
    assert aniso["calcs (both)"] <= aniso["calcs (spread dims)"]
    assert aniso["saving (both)"] > 0.4

    rng = np.random.default_rng(1301)
    pts = rng.random((1500, 4))
    benchmark(lambda: run(pts, EPSILON_ISO,
                          split_strategy="boundary")[1])


if __name__ == "__main__":
    emit("ablation_future", "§4 optimizations", build_series())
