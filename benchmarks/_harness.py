"""Shared benchmark harness.

Runs every join algorithm of the paper's evaluation on one dataset under
the Section 5 rules — all algorithms get the same buffer budget (10 % of
the database size by default), index-based competitors get their indexes
preconstructed for free — and reports *model seconds* (simulated I/O
plus calibrated CPU, see ``repro.analysis.costmodel``).

Each ``bench_*`` module sweeps one experiment of DESIGN.md's index,
prints the series the corresponding paper figure plots and saves it
under ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.costmodel import (ego_total_time, join_total_time,
                                      nested_loop_estimate)
from repro.analysis.reporting import format_table, speedup_summary
from repro.core.ego_join import ExternalJoinReport, ego_self_join_file
from repro.data.loader import make_point_file
from repro.index.mux import MultipageIndex
from repro.index.rtree import RTree
from repro.joins.mux_join import mux_self_join
from repro.joins.rsj import rsj_self_join
from repro.joins.zorder_rsj import zorder_rsj_self_join
from repro.storage.disk import SimulatedDisk
from repro.storage.records import record_size

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Fraction of the database size every algorithm may buffer (Section 5).
BUFFER_FRACTION = 0.10

#: Leaf page capacity of the R-tree competitors (records).
RTREE_PAGE_RECORDS = 64

#: CPU-optimised bucket capacity of the Multipage Index (records).
MUX_BUCKET_RECORDS = 16


@dataclass
class BudgetedSetup:
    """Derived memory/unit geometry for one dataset size."""

    n: int
    dimensions: int
    budget_bytes: int
    unit_bytes: int
    buffer_units: int
    pool_pages: int

    @classmethod
    def for_dataset(cls, n: int, dimensions: int,
                    fraction: float = BUFFER_FRACTION) -> "BudgetedSetup":
        rec = record_size(dimensions)
        budget_bytes = max(4 * rec, int(n * rec * fraction))
        # The I/O unit size is chosen so roughly eight units fit in the
        # buffer — the separate-I/O-optimisation knob of Section 4.1.
        unit_bytes = max(16 * rec, budget_bytes // 8)
        buffer_units = max(2, budget_bytes // unit_bytes)
        pool_pages = max(2, budget_bytes // (RTREE_PAGE_RECORDS * rec))
        return cls(n=n, dimensions=dimensions, budget_bytes=budget_bytes,
                   unit_bytes=unit_bytes, buffer_units=buffer_units,
                   pool_pages=pool_pages)


def run_ego(points: np.ndarray, epsilon: float,
            setup: Optional[BudgetedSetup] = None) -> ExternalJoinReport:
    """External EGO self-join under the budget; returns its report."""
    pts = np.asarray(points, dtype=np.float64)
    if setup is None:
        setup = BudgetedSetup.for_dataset(len(pts), pts.shape[1])
    disk, pf = make_point_file(pts)
    try:
        return ego_self_join_file(pf, epsilon,
                                  unit_bytes=setup.unit_bytes,
                                  buffer_units=setup.buffer_units,
                                  materialize=False)
    finally:
        disk.close()


def run_all_algorithms(points: np.ndarray, epsilon: float,
                       algorithms: Optional[List[str]] = None
                       ) -> Dict[str, float]:
    """Model seconds of every requested algorithm on one dataset.

    ``algorithms`` defaults to the paper's line-up: ``ego``, ``mux``,
    ``zorder-rsj``, ``rsj`` and the calculated ``nested-loop``.
    Returns a dict of model seconds plus an ``ego_pairs`` entry with the
    result cardinality (identical across algorithms; asserted in tests,
    not here).
    """
    pts = np.asarray(points, dtype=np.float64)
    n, d = pts.shape
    setup = BudgetedSetup.for_dataset(n, d)
    if algorithms is None:
        algorithms = ["ego", "mux", "zorder-rsj", "rsj", "nested-loop"]
    ids = np.arange(n, dtype=np.int64)
    times: Dict[str, float] = {}

    if "ego" in algorithms:
        report = run_ego(pts, epsilon, setup)
        times["ego"] = ego_total_time(report, d)
        times["ego_pairs"] = report.result.count

    needs_rtree = {"rsj", "zorder-rsj"} & set(algorithms)
    if needs_rtree:
        with SimulatedDisk() as disk:
            tree = RTree.bulk_load(ids, pts, disk, RTREE_PAGE_RECORDS)
            if "rsj" in algorithms:
                report = rsj_self_join(tree, epsilon, setup.pool_pages,
                                       materialize=False)
                times["rsj"] = join_total_time(report, d)
            if "zorder-rsj" in algorithms:
                report = zorder_rsj_self_join(tree, epsilon,
                                              setup.pool_pages,
                                              materialize=False)
                times["zorder-rsj"] = join_total_time(report, d)

    if "mux" in algorithms:
        with SimulatedDisk() as disk:
            mux = MultipageIndex.bulk_load(
                ids, pts, disk, page_bytes=setup.unit_bytes,
                bucket_records=MUX_BUCKET_RECORDS)
            report = mux_self_join(
                mux, epsilon,
                max(2, setup.budget_bytes // setup.unit_bytes),
                materialize=False)
            times["mux"] = join_total_time(report, d)

    if "nested-loop" in algorithms:
        est = nested_loop_estimate(
            n, d, buffer_records=max(2, int(n * BUFFER_FRACTION)))
        times["nested-loop"] = est.total_time_s
    return times


def emit(experiment_id: str, title: str, rows: List[dict],
         time_columns: Optional[List[str]] = None,
         reference: str = "ego") -> str:
    """Print an experiment table (+ speedups) and save it to results/."""
    text = format_table(rows, title=title)
    if time_columns:
        series = {}
        for col in time_columns:
            values = [row[col] for row in rows if row.get(col) is not None]
            if values and len(values) == sum(
                    1 for row in rows if row.get(reference) is not None):
                series[col] = values
        if reference in series and len(series) > 1:
            ref_rows = [row for row in rows
                        if row.get(reference) is not None]
            aligned = {
                col: [row[col] for row in ref_rows
                      if row.get(col) is not None]
                for col in time_columns
                if all(row.get(col) is not None for row in ref_rows)}
            if reference in aligned and len(aligned) > 1:
                factors = speedup_summary(aligned, reference)
                text += "\n\nspeedup of {} over:".format(reference)
                for name, fac in factors.items():
                    text += f"\n  {name:12s} {fac}"
    print()
    print(f"=== {experiment_id} ===")
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{experiment_id}.txt")
    with open(path, "w") as fh:
        fh.write(f"=== {experiment_id} ===\n{text}\n")
    return text
