"""Experiment LSH-1 — approximate LSH join vs the exact external EGO join.

The regime where the exact pipeline degrades is high dimensionality
with ε a sizable fraction of the data extent: the ε-grid stops pruning
(an ε-interval covers most of the first sort dimension) and the
external join slides toward verifying every pair.  The LSH join
(`docs/LSH.md`) filters with k-projection p-stable hash tables instead,
whose candidate volume tracks the near-pair density rather than the
grid geometry — at the price of a modelled recall loss.

Both sides run over the *same* `PointFile` on a `SimulatedDisk`, so the
comparison includes each algorithm's real I/O path (EGO's sort and unit
loads, LSH's bucket-file writes and scans).  The claim asserted, not
merely charted: on the high-d/large-ε uniform workload the LSH join is
**faster wall-clock** than the exact external join while holding

* measured recall ≥ 0.9 against the EGO run's own exact result, and
* precision exactly 1.0 (zero pairs outside the exact result).

Usage: ``python benchmarks/bench_lsh.py [--tiny]`` appends one record
to ``results/BENCH_lsh.json`` (record_kernels.py style).
"""

import argparse
import json
import os
import time

import numpy as np

from repro.core.ego_join import ego_self_join_file
from repro.joins.lsh_join import lsh_self_join_file
from repro.storage.disk import SimulatedDisk
from repro.storage.pagefile import PointFile

from _harness import RESULTS_DIR, format_table

JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_lsh.json")

EPSILON = 0.7
DIMS = 16
K = 6
RECALL_TARGET = 0.95
SEED = 7


def canonical_set(report) -> set:
    a, b = report.result.pairs()
    lo, hi = np.minimum(a, b), np.maximum(a, b)
    return set(zip(lo.tolist(), hi.tolist()))


def run_point(n: int) -> dict:
    pts = np.random.default_rng(SEED).random((n, DIMS))
    with SimulatedDisk() as disk:
        pf = PointFile.create(disk, DIMS)
        pf.append(np.arange(n, dtype=np.int64), pts)
        pf.close()
        disk.reset_accounting()
        unit_bytes = 512 * pf.record_bytes

        t0 = time.perf_counter()
        ego = ego_self_join_file(pf, EPSILON, unit_bytes=unit_bytes,
                                 buffer_units=8, engine="matmul")
        t_ego = time.perf_counter() - t0
        exact = canonical_set(ego)

        t0 = time.perf_counter()
        lsh = lsh_self_join_file(pf, EPSILON, k=K,
                                 recall_target=RECALL_TARGET,
                                 engine="matmul", backend="memory",
                                 seed=SEED)
        t_lsh = time.perf_counter() - t0
        approx = canonical_set(lsh)

    recall = 1.0 if not exact else len(approx & exact) / len(exact)
    return {
        "n": n,
        "pairs_exact": len(exact),
        "pairs_lsh": len(approx),
        "extra_pairs": len(approx - exact),
        "recall": round(recall, 4),
        "model_recall": round(lsh.lsh.model_recall, 4),
        "tables": lsh.lsh.tables,
        "candidates": lsh.lsh.candidates,
        "ego_s": round(t_ego, 3),
        "lsh_s": round(t_lsh, 3),
        "speedup": round(t_ego / t_lsh, 2),
    }


def run_suite(tiny: bool = False):
    sizes = [1500] if tiny else [3000, 6000]
    return [run_point(n) for n in sizes]


def check_rows(rows, tiny: bool):
    # Constant overheads dominate the tiny CI smoke, hence the lower bar;
    # the full run must show a clear win.
    floor = 1.2 if tiny else 2.0
    for r in rows:
        assert r["extra_pairs"] == 0, (
            f"precision broke at n={r['n']}: {r['extra_pairs']} pairs "
            f"outside the exact result")
        assert r["recall"] >= 0.9, (
            f"recall {r['recall']} below the 0.9 floor at n={r['n']}")
    best = max(rows, key=lambda r: r["speedup"])
    assert best["speedup"] >= floor, (
        f"LSH speedup {best['speedup']}x is below the {floor}x floor "
        f"(n={best['n']})")


def append_record(rows, mode, path=JSON_PATH):
    history = []
    if os.path.exists(path):
        with open(path) as fh:
            history = json.load(fh)
    history.append({
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "mode": mode,
        "epsilon": EPSILON,
        "dims": DIMS,
        "k": K,
        "recall_target": RECALL_TARGET,
        "rows": rows,
    })
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(history, fh, indent=2)
        fh.write("\n")
    return path


def emit_table(rows):
    title = (f"LSH approximate join vs exact external EGO "
             f"(eps={EPSILON}, dims={DIMS}, k={K}, "
             f"recall_target={RECALL_TARGET})")
    text = format_table(rows, title=title)
    print()
    print("=== bench_lsh ===")
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "bench_lsh.txt"), "w") as fh:
        fh.write(f"=== bench_lsh ===\n{text}\n")


def test_lsh_bench():
    rows = run_suite(tiny=True)
    emit_table(rows)
    check_rows(rows, tiny=True)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke configuration (small dataset)")
    args = parser.parse_args()
    rows = run_suite(tiny=args.tiny)
    emit_table(rows)
    check_rows(rows, tiny=args.tiny)
    path = append_record(rows, "tiny" if args.tiny else "full")
    for row in rows:
        print(f"n={row['n']}: lsh {row['lsh_s']} s vs ego {row['ego_s']} s "
              f"({row['speedup']}x) at recall {row['recall']} "
              f"(model {row['model_recall']}, L={row['tables']})")
    print(f"appended to {path}")


if __name__ == "__main__":
    main()
