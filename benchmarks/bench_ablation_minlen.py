"""Experiment A-minlen — ablation of the §4.1 CPU/I-O decoupling knobs.

Section 4.1: EGO can optimise the I/O unit size and the CPU sequence
size (``minlen``) independently, with no directory overhead.  Two
sweeps:

* ``minlen`` — smaller leaves prune harder (fewer distance
  calculations) at the cost of more recursion (sequence pairs); the
  product shapes CPU time.  The paper reports CPU-optimal sizes below
  10 points for its C implementation.
* I/O unit size under a fixed buffer budget — fewer, larger units cost
  less positioning per byte but blunt the schedule; many small units
  schedule precisely but pay per-access positioning.
"""

import numpy as np
import pytest

from repro.analysis.costmodel import DEFAULT_CPU_MODEL
from repro.core.ego_join import ego_self_join, ego_self_join_file
from repro.data.loader import make_point_file
from repro.data.synthetic import uniform
from repro.storage.stats import CPUCounters

from _harness import emit

N = 6000
DIMENSIONS = 8
EPSILON = 0.25
MINLENS = [2, 8, 32, 128, 512]
UNIT_SIZES = [2048, 8192, 32768]


def minlen_rows(points):
    rows = []
    for minlen in MINLENS:
        cpu = CPUCounters()
        ego_self_join(points, EPSILON, minlen=minlen, cpu=cpu)
        rows.append({
            "minlen": minlen,
            "distance_calcs": cpu.distance_calculations,
            "sequence_pairs": cpu.sequence_pairs,
            "model_cpu_s": DEFAULT_CPU_MODEL.cpu_time(cpu, DIMENSIONS),
        })
    return rows


def unit_rows(points):
    budget_bytes = int(len(points) * 72 * 0.10)
    rows = []
    for unit_bytes in UNIT_SIZES:
        buffer_units = max(2, budget_bytes // unit_bytes)
        disk, pf = make_point_file(points)
        try:
            report = ego_self_join_file(pf, EPSILON,
                                        unit_bytes=unit_bytes,
                                        buffer_units=buffer_units,
                                        materialize=False)
        finally:
            disk.close()
        rows.append({
            "unit_bytes": unit_bytes,
            "buffer_units": buffer_units,
            "unit_loads": report.schedule_stats.total_unit_loads,
            "join_io_s": report.join_io_time_s,
        })
    return rows


def test_ablation_minlen(benchmark):
    pts = uniform(N, DIMENSIONS, seed=800)
    rows = minlen_rows(pts)
    emit("ablation_minlen",
         f"§4.1 ablation: CPU sequence size sweep "
         f"(8-d uniform, n={N}, eps={EPSILON})", rows)
    # Smaller leaves prune more distance calculations...
    calcs = [r["distance_calcs"] for r in rows]
    assert calcs == sorted(calcs)
    # ...but cost more recursion.
    pairs = [r["sequence_pairs"] for r in rows]
    assert pairs == sorted(pairs, reverse=True)
    # All minlen values produce identical results (correctness is
    # covered by the test suite; here we sanity-check the counter sums).
    assert all(r["model_cpu_s"] > 0 for r in rows)

    urows = unit_rows(pts)
    emit("ablation_unitsize",
         f"§4.1 ablation: I/O unit size sweep under one 10% budget",
         urows)
    # The sweep spans a real trade-off: load counts drop as units grow.
    loads = [r["unit_loads"] for r in urows]
    assert loads == sorted(loads, reverse=True)

    benchmark(lambda: minlen_rows(uniform(1500, DIMENSIONS, seed=801)))


if __name__ == "__main__":
    pts = uniform(N, DIMENSIONS, seed=800)
    emit("ablation_minlen", "minlen sweep", minlen_rows(pts))
    emit("ablation_unitsize", "unit size sweep", unit_rows(pts))
