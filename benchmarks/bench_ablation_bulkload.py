"""Extension bench — R-tree construction methods and their join cost.

Section 2.2 background: competitor joins run on preconstructed indexes,
and index quality shapes their cost.  This ablation compares the
bulk-loading orders of the substrate (STR tiling, Z-order packing,
Hilbert packing) and Guttman dynamic insertion on

* construction effort (node accesses for the dynamic build; sorting
  only for the bulk loaders),
* packing quality (total leaf MBR volume), and
* the Z-Order-RSJ join cost on the resulting tree.
"""

import numpy as np
import pytest

from repro.analysis.costmodel import join_total_time
from repro.data.synthetic import uniform
from repro.index.dynamic_rtree import DynamicRTree
from repro.index.rtree import RTree
from repro.joins.zorder_rsj import zorder_rsj_self_join
from repro.storage.disk import SimulatedDisk

from _harness import emit

N = 4000
DIMENSIONS = 4
EPSILON = 0.1
PAGE_RECORDS = 32


def bulk_rows():
    pts = uniform(N, DIMENSIONS, seed=1200)
    ids = np.arange(N)
    rows = []
    for method in ("str", "zorder", "hilbert"):
        with SimulatedDisk() as disk:
            tree = RTree.bulk_load(ids, pts, disk, PAGE_RECORDS,
                                   method=method)
            volume = sum(node.mbr.volume() for node in tree.leaf_nodes)
            report = zorder_rsj_self_join(tree, EPSILON, pool_pages=8,
                                          materialize=False)
            rows.append({
                "method": method,
                "leaf_volume": volume,
                "leaf_pairs": report.extra["leaf_pairs"],
                "join_model_s": join_total_time(report, DIMENSIONS),
                "pairs": report.result.count,
                "build_node_accesses": 0,
            })
    dyn = DynamicRTree(DIMENSIONS, capacity=PAGE_RECORDS)
    for i, p in enumerate(pts):
        dyn.insert(i, p)
    rows.append({
        "method": "dynamic-insert",
        "leaf_volume": dyn.total_leaf_volume(),
        "leaf_pairs": None,
        "join_model_s": None,
        "pairs": None,
        "build_node_accesses": dyn.stats.node_accesses,
    })
    return rows


def test_ablation_bulkload(benchmark):
    rows = bulk_rows()
    emit("ablation_bulkload",
         f"R-tree construction ablation (n={N}, {DIMENSIONS}-d, "
         f"page={PAGE_RECORDS} records)", rows)
    by_method = {row["method"]: row for row in rows}
    # All bulk loaders produce the same join result.
    bulk = [row for row in rows if row["pairs"] is not None]
    assert len({row["pairs"] for row in bulk}) == 1
    # §2.2's point: the dynamic build walks the tree per insert —
    # node accesses far beyond one per point — while bulk loading is
    # sort-and-pack.
    assert by_method["dynamic-insert"]["build_node_accesses"] > 2 * N
    # Space-filling-curve packing is competitive with STR in volume
    # (within a small factor) — all are usable substrates.
    volumes = [row["leaf_volume"] for row in bulk]
    assert max(volumes) < 10 * min(volumes)

    pts = uniform(1000, DIMENSIONS, seed=1201)
    with SimulatedDisk() as disk:
        benchmark(lambda: RTree.bulk_load(np.arange(1000), pts, disk,
                                          PAGE_RECORDS))


if __name__ == "__main__":
    emit("ablation_bulkload", "Bulk loading ablation", bulk_rows())
