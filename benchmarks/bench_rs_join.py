"""Extension bench — external R ⋈ S join scheduling modes.

The paper presents its I/O scheduling for the self-join; this
repository generalises it to two files (``repro.core.rs_scheduler``).
The bench verifies the two-file analogue of the Figure 3 behaviour:

* with a narrow ε-interval (or a generous buffer) the **sliding mode**
  loads each unit of both files exactly once;
* with a wide interval and a tight buffer the **block mode** bounds the
  re-reading of S to once per pinned R group — far below the naive one
  S-window sweep per R unit.
"""

import pytest

from repro.core.ego_join import ego_join_files
from repro.data.loader import make_point_file
from repro.data.synthetic import uniform

from _harness import emit

N_R, N_S = 3000, 3000
DIMENSIONS = 4


def run(eps, unit_bytes, buffer_units):
    r = uniform(N_R, DIMENSIONS, seed=1100)
    s = uniform(N_S, DIMENSIONS, seed=1101)
    disk_r, fr = make_point_file(r)
    disk_s, fs = make_point_file(s)
    try:
        report = ego_join_files(fr, fs, eps, unit_bytes=unit_bytes,
                                buffer_units=buffer_units,
                                materialize=False)
    finally:
        disk_r.close()
        disk_s.close()
    return report


def build_series():
    rows = []
    for label, eps, buffer_units in (
            ("narrow interval, 8 frames", 0.02, 8),
            ("wide interval, 8 frames", 0.60, 8),
            ("wide interval, 2 frames", 0.60, 2)):
        report = run(eps, unit_bytes=2048, buffer_units=buffer_units)
        st = report.schedule_stats
        rows.append({
            "configuration": label,
            "pairs": report.result.count,
            "r_loads": st.r_loads,
            "s_loads": st.s_loads,
            "block_phases": st.block_phases,
            "join_io_s": report.join_io_time_s,
        })
    return rows


def test_rs_join_modes(benchmark):
    rows = build_series()
    emit("rs_join_modes",
         f"Two-file scheduling modes (R={N_R}, S={N_S}, "
         f"{DIMENSIONS}-d uniform)", rows)
    narrow, wide_big, wide_small = rows
    # Narrow interval: sliding mode, each unit read about once.
    assert narrow["block_phases"] == 0
    # Wide interval with a tiny buffer degenerates to one S sweep per R
    # unit; pinning an R group (block mode with more frames) divides
    # the S re-reads by roughly the group size (7 here).
    assert wide_small["block_phases"] > 0
    assert wide_big["s_loads"] * 3 < wide_small["s_loads"]
    assert wide_big["pairs"] == wide_small["pairs"]

    benchmark(lambda: run(0.3, 2048, 4))


if __name__ == "__main__":
    emit("rs_join_modes", "Two-file modes", build_series())
