"""Experiment A-dimorder — ablation of the §4.2 dimension ordering.

Section 4.2: processing the dimensions of the early-abort distance test
in decreasing distinguishing potential (neighboring inactive →
unspecified → active → aligned inactive) aborts earlier than a fixed
order.  On correlated data (the CAD-like workload) the effect is
largest, because the natural dimension order concentrates variance in
the leading dimensions only by accident of the generator.

Metric: counted dimension evaluations per distance calculation, with
the ordering on vs off, on both workloads.  To expose the ordering
adversarially, the CAD-like data is also evaluated with its dimensions
*reversed* (variance in the trailing dimensions), where a fixed natural
order is maximally wrong.
"""

import numpy as np
import pytest

from repro.core.ego_join import ego_self_join
from repro.data.synthetic import (cad_like, epsilon_for_average_neighbors,
                                  uniform)
from repro.storage.stats import CPUCounters

from _harness import emit


def evals_per_call(points, epsilon, order_dimensions):
    cpu = CPUCounters()
    ego_self_join(points, epsilon, order_dimensions=order_dimensions,
                  cpu=cpu, minlen=16)
    if cpu.distance_calculations == 0:
        return float("nan")
    return cpu.dimension_evaluations / cpu.distance_calculations


def build_series():
    rows = []
    uni = uniform(4000, 8, seed=700)
    cad = cad_like(4000, seed=701)
    cad_rev = cad[:, ::-1].copy()
    eps_cad = epsilon_for_average_neighbors(cad, 4)
    for name, pts, eps in [
            ("uniform 8-d", uni, 0.25),
            ("CAD-like 16-d", cad, eps_cad),
            ("CAD-like 16-d reversed", cad_rev, eps_cad)]:
        with_order = evals_per_call(pts, eps, True)
        without = evals_per_call(pts, eps, False)
        rows.append({"workload": name,
                     "evals/call (ordered)": with_order,
                     "evals/call (natural)": without,
                     "saving": 1.0 - with_order / without})
    return rows


def test_ablation_dimension_ordering(benchmark):
    rows = build_series()
    emit("ablation_dimorder",
         "§4.2 ablation: distance-test dimension evaluations per call",
         rows)
    reversed_row = rows[2]
    # Where the natural order is adversarially bad, the §4.2 ordering
    # must evaluate clearly fewer dimensions per call.
    assert (reversed_row["evals/call (ordered)"]
            < reversed_row["evals/call (natural)"])
    assert reversed_row["saving"] > 0.15
    # It must never be drastically worse than natural on any workload.
    for row in rows:
        assert row["evals/call (ordered)"] \
            < row["evals/call (natural)"] * 1.5

    cad = cad_like(2000, seed=701)
    eps = epsilon_for_average_neighbors(cad, 4)
    benchmark(lambda: evals_per_call(cad, eps, True))


if __name__ == "__main__":
    emit("ablation_dimorder", "Dimension ordering ablation",
         build_series())
