"""Experiment A-robust — fault-tolerance overhead of the external join.

Three tables quantify what the robustness layers cost and what they
recover from, on one mid-size workload:

* **overhead** — simulated I/O time of the plain pipeline vs the same
  pipeline with checksums, with a checkpoint journal, and with both:
  the price of detection and durability on a fault-free run;
* **recovery** — the pipeline under growing transient-read-error rates
  with a bounded retry policy: injected faults, retries spent, simulated
  backoff charged, and the (identical) result cardinality;
* **resume** — a run crashed at progressively later operation indices
  and resumed from its journal: how much I/O the resumed run still has
  to spend vs the uninterrupted baseline (the work saved by
  checkpointing), with byte-identical durable results throughout.
"""

import os
import shutil
import tempfile

import pytest

from repro.core.ego_join import ego_self_join_file
from repro.data.loader import make_point_file
from repro.data.synthetic import uniform
from repro.storage.faults import FaultPlan, SimulatedCrash
from repro.storage.integrity import RetryPolicy

from _harness import BudgetedSetup, emit

N = 4000
DIMS = 8
EPSILON = 0.20


def run(pts, setup, **kwargs):
    disk, pf = make_point_file(pts)
    try:
        return ego_self_join_file(pf, EPSILON,
                                  unit_bytes=setup.unit_bytes,
                                  buffer_units=setup.buffer_units,
                                  materialize=False, **kwargs)
    finally:
        disk.close()


def overhead_rows(pts, setup):
    rows = []
    ck = tempfile.mkdtemp(prefix="repro-bench-ck-")
    try:
        variants = [
            ("plain", {}),
            ("checksums", {"checksums": True}),
            ("checkpoint", {"checkpoint_dir": ck}),
            ("checksums+checkpoint", {"checksums": True,
                                      "checkpoint_dir": os.path.join(
                                          ck, "both")}),
        ]
        base_time = None
        for name, kwargs in variants:
            report = run(pts, setup, **kwargs)
            t = report.simulated_io_time_s
            if base_time is None:
                base_time = t
            pairs = report.total_pairs
            if pairs is None:
                pairs = report.result.count
            rows.append({"variant": name, "io_time_s": t,
                         "overhead": t / base_time,
                         "accesses": report.io.total_accesses,
                         "pairs": pairs})
    finally:
        shutil.rmtree(ck, ignore_errors=True)
    return rows


def recovery_rows(pts, setup):
    rows = []
    for rate in (0.0, 0.001, 0.01, 0.05):
        plan = FaultPlan(seed=17, read_error_rate=rate)
        report = run(pts, setup, fault_plan=plan,
                     retry=RetryPolicy(max_attempts=8))
        rows.append({"error_rate": rate,
                     "injected": report.faults.transient_read_errors,
                     "retries": report.io.read_retries,
                     "backoff_s": report.io.retry_backoff_s,
                     "io_time_s": report.simulated_io_time_s,
                     "pairs": report.result.count})
    return rows


def resume_rows(pts, setup):
    rows = []
    for crash_op in (50, 200, 800, 2000):
        ck = tempfile.mkdtemp(prefix="repro-bench-resume-")
        try:
            plan = FaultPlan(seed=1, crash_ops=[crash_op])
            crashed = False
            try:
                run(pts, setup, checkpoint_dir=ck, fault_plan=plan)
            except SimulatedCrash:
                crashed = True
            report = run(pts, setup, checkpoint_dir=ck, resume=crashed)
            rows.append({"crash_op": crash_op if crashed else None,
                         "resume_io_time_s": report.simulated_io_time_s,
                         "resume_accesses": report.io.total_accesses,
                         "pairs_resumed":
                             report.schedule_stats.pairs_resumed,
                         "pairs": report.total_pairs})
        finally:
            shutil.rmtree(ck, ignore_errors=True)
    return rows


def test_robustness(benchmark):
    pts = uniform(N, DIMS, seed=950)
    setup = BudgetedSetup.for_dataset(N, DIMS)

    orows = overhead_rows(pts, setup)
    emit("robustness_overhead",
         f"fault-tolerance overhead on a fault-free run "
         f"(n={N}, d={DIMS}, eps={EPSILON})", orows)
    # Every variant computes the same join.
    assert len({row["pairs"] for row in orows}) == 1
    # The journal is out-of-band: checkpointing costs no simulated I/O
    # time (only a handful of extra result-file accesses).
    by_name = {row["variant"]: row for row in orows}
    assert by_name["checkpoint"]["io_time_s"] == pytest.approx(
        by_name["plain"]["io_time_s"], rel=0.05)
    # Checksummed reads are widened to page boundaries, so detection
    # has a real (bounded) price in transferred bytes.
    assert 1.0 <= by_name["checksums"]["overhead"] < 5.0

    rrows = recovery_rows(pts, setup)
    emit("robustness_recovery",
         "bounded-retry recovery under transient read errors", rrows)
    assert len({row["pairs"] for row in rrows}) == 1
    assert rrows[0]["injected"] == 0
    assert rrows[-1]["injected"] > 0
    # Backoff grows with the error rate.
    backoffs = [row["backoff_s"] for row in rrows]
    assert backoffs == sorted(backoffs)

    srows = resume_rows(pts, setup)
    emit("robustness_resume",
         "I/O a resumed run still spends after a crash at operation k",
         srows)
    assert len({row["pairs"] for row in srows}) == 1
    # The later the crash, the less work the resumed run redoes.
    crashed = [row for row in srows if row["crash_op"] is not None]
    times = [row["resume_io_time_s"] for row in crashed]
    assert times == sorted(times, reverse=True)
