#!/usr/bin/env python3
"""Time-series motif discovery via the similarity join ([AFS 93] pipeline).

The paper's introduction motivates the similarity join with feature
transformations; the original instance is Agrawal, Faloutsos & Swami's
sequence matching: map every series to its leading DFT coefficients
(which *lower-bound* the true Euclidean distance, by Parseval), join in
feature space, refine the few candidates exactly.

This example plants seasonal motifs in noisy series, runs the pipeline,
and verifies that (a) the filter is lossless — no truly-similar pair is
missed — and (b) the join groups series by their hidden motif.

Run:  python examples/timeseries_motifs.py
"""

import numpy as np

from repro import ego_self_join
from repro.apps.neighborhood import NeighborhoodGraph
from repro.data.timeseries import (dft_features, normalize_series,
                                   seasonal_series)


def main() -> None:
    n, length, motifs = 4_000, 128, 12
    series, assignment = seasonal_series(n, length, motifs=motifs,
                                         noise_std=0.25, seed=11)
    epsilon = 6.0   # similarity threshold on normalised series

    features = dft_features(series, coefficients=6)
    print(f"{n:,} series of length {length}, {motifs} hidden motifs")
    print(f"feature space: {features.shape[1]}-d "
          f"(6 complex DFT coefficients)")

    # Filter step: join in feature space.  Feature distance
    # lower-bounds series distance, so every true pair is kept.
    candidates = ego_self_join(features, epsilon)
    a, b = candidates.pairs()
    print(f"candidate pairs from the feature join : {candidates.count:,} "
          f"({candidates.count / (n * (n - 1) / 2):.2%} of all pairs)")

    # Refinement: exact distance on the normalised series.
    norm = normalize_series(series)
    exact = np.linalg.norm(norm[a] - norm[b], axis=1)
    keep = exact <= epsilon
    a, b = a[keep], b[keep]
    print(f"true pairs after refinement           : {len(a):,} "
          f"(filter precision {keep.mean():.1%})")

    # Lossless check on a sample: no true pair outside the candidates.
    rng = np.random.default_rng(0)
    sample = rng.choice(n, size=300, replace=False)
    cand_set = set(zip(np.minimum(a, b).tolist(),
                       np.maximum(a, b).tolist()))
    missed = 0
    for i in sample:
        d = np.linalg.norm(norm[sample] - norm[i], axis=1)
        for j_idx in np.nonzero(d <= epsilon)[0]:
            j = sample[j_idx]
            if i < j and (int(i), int(j)) not in cand_set:
                missed += 1
    print(f"missed true pairs in a 300-series sample: {missed} "
          f"(the DFT filter is lossless)")

    # Do the joined groups recover the planted motifs?
    graph = NeighborhoodGraph.from_pairs(n, epsilon, a, b)
    labels = graph.connected_components()
    agree = 0
    for comp in np.unique(labels):
        members = np.nonzero(labels == comp)[0]
        if len(members) < 2:
            continue
        motif_ids, counts = np.unique(assignment[members],
                                      return_counts=True)
        agree += counts.max()
    clustered = int((np.bincount(labels) > 1).sum())
    print(f"\nmotif recovery: {clustered} similarity groups; "
          f"{agree / n:.1%} of series sit in a group dominated by "
          f"their own motif")


if __name__ == "__main__":
    main()
