#!/usr/bin/env python3
"""Similar-part retrieval on CAD-like feature vectors.

The paper's real-world workload is "a CAD database with 16-dimensional
feature vectors extracted from geometrical parts and variants thereof".
This example builds the synthetic stand-in for that data (correlated
dimensions, decaying feature spectrum, parts-and-variants cluster
structure — see DESIGN.md), then uses the similarity join to find all
near-duplicate part pairs, the classic variant-detection task.

It also demonstrates the §4.2 optimisation on this data: because the
dimensions are correlated, ordering the distance test by distinguishing
potential aborts earlier than the natural order.

Run:  python examples/cad_retrieval.py
"""

import numpy as np

from repro import (cad_like, ego_self_join,
                   epsilon_for_average_neighbors)
from repro.apps.neighborhood import NeighborhoodGraph
from repro.storage.stats import CPUCounters


def main() -> None:
    n = 10_000
    features = cad_like(n, dimensions=16, parts=120, seed=2026)
    epsilon = epsilon_for_average_neighbors(features, target_neighbors=5)
    print(f"CAD-like workload: {n:,} parts, 16-d features, "
          f"eps={epsilon:.4f}")

    # Find every pair of similar parts, counting the CPU work with the
    # §4.2 dimension ordering enabled and disabled.
    ordered = CPUCounters()
    join = ego_self_join(features, epsilon, cpu=ordered)
    natural = CPUCounters()
    ego_self_join(features, epsilon, order_dimensions=False, cpu=natural)

    print(f"similar part pairs: {join.count:,}")
    o = ordered.dimension_evaluations / max(1, ordered.distance_calculations)
    v = natural.dimension_evaluations / max(1, natural.distance_calculations)
    print(f"distance-test dimensions evaluated per call: "
          f"{o:.2f} ordered vs {v:.2f} natural "
          f"({1 - o / v:.1%} fewer evaluations)")

    # Variant groups: connected components of the similarity graph.
    graph = NeighborhoodGraph.from_pairs(n, epsilon, *join.pairs())
    labels = graph.connected_components()
    group_sizes = np.bincount(labels)
    groups = group_sizes[group_sizes > 1]
    print(f"\nvariant analysis:")
    print(f"  parts with at least one variant: "
          f"{int((graph.degree() > 0).sum()):,}")
    print(f"  variant groups (≥2 parts)      : {len(groups):,}")
    if len(groups):
        print(f"  largest variant family         : {int(groups.max()):,} "
              f"parts")

    # Retrieval for one query part: its direct variants, ranked.
    query = int(np.argmax(graph.degree()))
    neighbors = graph.neighbors(query)
    dists = np.linalg.norm(features[neighbors] - features[query], axis=1)
    order = np.argsort(dists)
    print(f"\nmost-connected part #{query} has {len(neighbors)} variants;"
          f" closest three:")
    for rank in order[:3]:
        print(f"  part #{int(neighbors[rank]):>6d}  "
              f"distance {dists[rank]:.4f}")


if __name__ == "__main__":
    main()
