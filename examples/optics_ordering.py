#!/usr/bin/env python3
"""OPTICS cluster ordering from one similarity join.

OPTICS [ABKS 99] is on the paper's list of algorithms that run on top
of the similarity join: within the generating distance ε it only needs
every point's ε-neighbours *with distances* — exactly what a
distance-collecting EGO self-join returns in one pass.

The example builds nested density structure (a dense core inside a
loose cluster, plus a second cluster and noise), computes the OPTICS
ordering, renders the reachability plot as ASCII art, and extracts flat
DBSCAN-equivalent clusterings at two thresholds from the *same*
ordering — the whole point of OPTICS.

Run:  python examples/optics_ordering.py
"""

import numpy as np

from repro import ego_self_join
from repro.apps.optics import optics
from repro.core.result import JoinResult


def ascii_plot(values, height=12, width=100):
    """Render a reachability plot with unicode block characters."""
    finite = values[np.isfinite(values)]
    top = float(finite.max()) if len(finite) else 1.0
    step = max(1, len(values) // width)
    columns = [values[i:i + step] for i in range(0, len(values), step)]
    heights = []
    for col in columns:
        fin = col[np.isfinite(col)]
        v = float(fin.max()) if len(fin) else top
        heights.append(min(height, max(1, round(v / top * height))))
    lines = []
    for row in range(height, 0, -1):
        lines.append("".join("█" if h >= row else " " for h in heights))
    return "\n".join(lines)


def main() -> None:
    rng = np.random.default_rng(17)
    loose = rng.normal([0.3, 0.3], 0.05, (500, 2))
    dense_core = rng.normal([0.3, 0.3], 0.008, (300, 2))
    other = rng.normal([0.75, 0.7], 0.02, (400, 2))
    noise = rng.random((80, 2))
    pts = np.vstack([loose, dense_core, other, noise])

    eps, min_pts = 0.15, 10
    join = JoinResult(collect_distances=True)
    ego_self_join(pts, eps, result=join)
    print(f"{len(pts):,} points, eps={eps}, min_pts={min_pts}; "
          f"join pairs: {join.count:,}")

    result = optics(pts, eps, min_pts, join_result=join)
    plot = result.reachability_plot()
    print("\nreachability plot (valleys = clusters):\n")
    print(ascii_plot(np.where(np.isfinite(plot), plot, np.nan)))

    for eps_prime in (0.05, 0.015):
        labels = result.extract_dbscan(eps_prime)
        k = len(set(labels[labels >= 0].tolist()))
        noise_n = int((labels == -1).sum())
        print(f"\nextract_dbscan(eps'={eps_prime}): {k} clusters, "
              f"{noise_n} noise points")
        sizes = sorted(np.bincount(labels[labels >= 0]).tolist(),
                       reverse=True)
        print(f"  sizes: {sizes[:6]}")

    print("\nAt eps'=0.05 both blobs appear; at eps'=0.015 only the "
          "dense core and the tight second cluster survive — one "
          "ordering, every density level.")


if __name__ == "__main__":
    main()
