#!/usr/bin/env python3
"""Distance-based outlier detection via the similarity join.

Implements the DB(p, D) outlier mining of Knorr & Ng [KN 98], which the
paper lists among the algorithms that "can be performed on top of the
similarity join": a point is an outlier if at most a (1 − p) fraction
of the data lies within distance D of it — and those neighbour counts
are exactly the degrees of a similarity self-join with ε = D.

Run:  python examples/outlier_detection.py
"""

import numpy as np

from repro import (distance_based_outliers, ego_self_join,
                   gaussian_clusters)


def main() -> None:
    rng = np.random.default_rng(99)
    n_inliers, n_planted = 12_000, 25
    dims = 8

    # Dense cluster structure plus a handful of planted anomalies far
    # from every cluster.
    inliers = gaussian_clusters(n_inliers, dims, clusters=10, std=0.02,
                                noise_fraction=0.0, seed=99)
    anomalies = rng.random((n_planted, dims))
    data = np.vstack([inliers, anomalies])
    planted_ids = set(range(n_inliers, n_inliers + n_planted))

    distance = 0.15
    fraction = 0.999
    join = ego_self_join(data, distance)
    result = distance_based_outliers(data, distance, fraction=fraction,
                                     join_result=join)

    detected = set(result.outlier_ids.tolist())
    found = detected & planted_ids
    false_alarms = detected - planted_ids
    print(f"{len(data):,} points ({n_planted} planted anomalies), "
          f"DB(p={fraction}, D={distance})")
    print(f"similarity join pairs : {join.count:,}")
    print(f"neighbour threshold   : ≤ {result.threshold} points within D")
    print(f"outliers detected     : {result.num_outliers}")
    print(f"planted found         : {len(found)}/{n_planted} "
          f"(anomalies are sampled uniformly, so some land inside a "
          f"cluster and are genuinely unexceptional)")
    print(f"false alarms          : {len(false_alarms)} "
          f"({len(false_alarms) / len(data):.2%} of the data)")

    counts = result.neighbor_counts
    print(f"\nneighbour-count stats: inliers median "
          f"{int(np.median(counts[:n_inliers]))}, planted median "
          f"{int(np.median(counts[n_inliers:]))}")


if __name__ == "__main__":
    main()
