#!/usr/bin/env python3
"""Scaling study: how the external EGO join behaves as the data grows.

A compact version of the paper's Figure 10 experiment you can run and
modify: sweeps the database size with a fixed 10 % buffer budget and
prints, per size, the scheduling behaviour (gallop vs crabstep), the
exact I/O accounting on the paper's disk model, and the model time.

Also demonstrates graceful degradation: the same join at 10 %, 5 % and
2 % buffer gives identical results at a smoothly increasing re-read
factor — the property that lets EGO scale where the grid competitors
of Section 2.2 simply stop fitting in memory.

Run:  python examples/scaling_study.py
"""

from repro import uniform
from repro.analysis.costmodel import ego_total_time
from repro.analysis.reporting import format_table
from repro.core.ego_join import ego_self_join_file
from repro.data.loader import make_point_file

DIMENSIONS = 8
EPSILON = 0.25
RECORD_BYTES = 8 * (DIMENSIONS + 1)


def run(points, buffer_fraction):
    budget = max(4 * RECORD_BYTES,
                 int(len(points) * RECORD_BYTES * buffer_fraction))
    unit_bytes = max(16 * RECORD_BYTES, budget // 8)
    buffer_units = max(2, budget // unit_bytes)
    disk, pf = make_point_file(points)
    try:
        return ego_self_join_file(pf, EPSILON, unit_bytes=unit_bytes,
                                  buffer_units=buffer_units,
                                  materialize=False)
    finally:
        disk.close()


def main() -> None:
    rows = []
    for n in (4_000, 8_000, 16_000, 32_000, 64_000):
        report = run(uniform(n, DIMENSIONS, seed=n), 0.10)
        s = report.schedule_stats
        rows.append({
            "n": n,
            "pairs": report.result.count,
            "sort_runs": report.sort_stats.runs_generated,
            "unit_loads": s.total_unit_loads,
            "crabsteps": s.crabstep_phases,
            "io_s": round(report.simulated_io_time_s, 3),
            "model_s": round(ego_total_time(report, DIMENSIONS), 3),
        })
    print(format_table(
        rows, title=f"external EGO self-join, 8-d uniform, "
                    f"eps={EPSILON}, buffer=10%"))

    print()
    pts = uniform(16_000, DIMENSIONS, seed=16_000)
    rows = []
    for fraction in (0.10, 0.05, 0.02):
        report = run(pts, fraction)
        s = report.schedule_stats
        units = s.gallop_loads + s.crabstep_pins
        rows.append({
            "buffer": f"{fraction:.0%}",
            "pairs": report.result.count,
            "unit_loads": s.total_unit_loads,
            "reread_factor": round(s.total_unit_loads / units, 2),
            "io_s": round(report.simulated_io_time_s, 3),
        })
    print(format_table(
        rows, title="same join, shrinking buffer "
                    "(identical results, graceful I/O growth)"))


if __name__ == "__main__":
    main()
