#!/usr/bin/env python3
"""Visualising the I/O schedule: the paper's Figure 2, from a real run.

Figure 2 of the paper shows the matrix of I/O-unit pairs: the lower
triangle cancelled by symmetry, a large upper-right region cancelled by
the ε-interval (Lemma 2/3), and the band near the diagonal that the
gallop/crabstep schedule must cover.

This example runs the external EGO join with schedule tracing enabled
and renders the actual unit-pair matrix, plus the per-unit load counts
under three buffer sizes — making the paper's Figures 2 and 3 visible
on live data.

Run:  python examples/schedule_visualization.py
"""

from collections import Counter

import numpy as np

from repro import uniform
from repro.core.result import JoinResult
from repro.core.scheduler import EGOScheduler
from repro.core.sequence_join import JoinContext
from repro.core.ego_order import ego_sorted
from repro.data.loader import make_point_file

EPSILON = 0.22
UNIT_BYTES = 1400


def traced_run(points, buffer_units):
    ids, spts = ego_sorted(points, EPSILON)
    disk, pf = make_point_file(spts, ids=ids)
    try:
        trace = []
        ctx = JoinContext(epsilon=EPSILON, result=JoinResult(
            materialize=False), minlen=16)
        sched = EGOScheduler(pf, ctx, UNIT_BYTES, buffer_units,
                             trace=trace)
        stats = sched.run()
        return trace, stats, sched.num_units
    finally:
        disk.close()


def render_matrix(trace, n_units):
    """The Figure-2 matrix: '#' joined, '.' interval-skipped, ' ' never formed."""
    grid = [[" "] * n_units for _ in range(n_units)]
    for kind, a, b in trace:
        if kind == "join":
            grid[a][b] = "#"
        elif kind == "skip" and grid[a][b] == " ":
            grid[a][b] = "."
    lines = ["    " + "".join(f"{j % 10}" for j in range(n_units))]
    for i in range(n_units):
        lines.append(f"{i:>3} " + "".join(grid[i]))
    return "\n".join(lines)


def main() -> None:
    points = uniform(1200, 2, seed=33)

    trace, stats, n_units = traced_run(points, buffer_units=6)
    print(f"unit-pair matrix ({n_units} units, eps={EPSILON}, "
          f"buffer=6):  '#' joined, '.' skipped by the eps-interval\n")
    print(render_matrix(trace, n_units))
    print(f"\npairs joined: {stats.unit_pairs_joined}, "
          f"skipped: {stats.unit_pairs_skipped} "
          f"(the cancelled region of Figure 2)")

    print("\nloads per unit as the buffer shrinks (Figure 3):")
    header = "unit:      " + "".join(f"{u % 10}" for u in range(n_units))
    print(header)
    for buffer_units in (32, 6, 2):
        trace, stats, _ = traced_run(points, buffer_units)
        loads = Counter(a for kind, a, _b in trace if kind == "load")
        row = "".join(str(min(9, loads.get(u, 0)))
                      for u in range(n_units))
        print(f"buffer={buffer_units:>3}: {row}   "
              f"total={stats.total_unit_loads} "
              f"crabsteps={stats.crabstep_phases}")


if __name__ == "__main__":
    main()
