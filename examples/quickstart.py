#!/usr/bin/env python3
"""Quickstart: the Epsilon Grid Order similarity join in five minutes.

Covers the three public entry points:

1. the in-memory self-join (``ego_self_join``),
2. the in-memory R ⋈ S join of two point sets (``ego_join``),
3. the external pipeline of the paper (``ego_self_join_file``):
   external merge sort by epsilon grid order, then the gallop/crabstep
   I/O schedule over a bounded buffer, with full I/O accounting.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (SimulatedDisk, PointFile, ego_join, ego_self_join,
                   ego_self_join_file, uniform)


def main() -> None:
    rng = np.random.default_rng(42)

    # ------------------------------------------------------------------
    # 1. In-memory self-join: all pairs of points within epsilon.
    # ------------------------------------------------------------------
    points = uniform(20_000, 8, seed=42)
    epsilon = 0.20
    result = ego_self_join(points, epsilon)
    ids_a, ids_b = result.pairs()
    print(f"self-join: {len(points):,} points (8-d), eps={epsilon}")
    print(f"  result pairs : {result.count:,}")
    if result.count:
        i, j = int(ids_a[0]), int(ids_b[0])
        dist = np.linalg.norm(points[i] - points[j])
        print(f"  example pair : ({i}, {j}), distance {dist:.4f}")

    # ------------------------------------------------------------------
    # 2. Two-set join: which query points have neighbours in the data?
    # ------------------------------------------------------------------
    queries = rng.random((500, 8))
    matches = ego_join(queries, points, epsilon)
    q_ids, _p_ids = matches.pairs()
    print(f"\ntwo-set join: 500 queries against the same data")
    print(f"  matching pairs        : {matches.count:,}")
    print(f"  queries with a match  : {len(set(q_ids.tolist())):,}")

    # ------------------------------------------------------------------
    # 3. The external pipeline: disk-resident data, bounded buffer.
    # ------------------------------------------------------------------
    with SimulatedDisk() as disk:
        pf = PointFile.create(disk, dimensions=8)
        pf.append(np.arange(len(points), dtype=np.int64), points)
        pf.close()
        disk.reset_accounting()

        # 10 % of the database as buffer, like the paper's evaluation.
        db_bytes = pf.data_bytes
        unit_bytes = max(4096, db_bytes // 80)
        buffer_units = max(2, db_bytes // 10 // unit_bytes)
        report = ego_self_join_file(pf, epsilon, unit_bytes=unit_bytes,
                                    buffer_units=buffer_units)

    print(f"\nexternal pipeline ({db_bytes / 1e6:.1f} MB database, "
          f"{buffer_units} units of {unit_bytes // 1024} KiB buffered):")
    print(f"  result pairs     : {report.result.count:,} "
          f"(identical to in-memory: "
          f"{report.result.count == result.count})")
    print(f"  sort runs        : {report.sort_stats.runs_generated}, "
          f"merge passes: {report.sort_stats.merge_passes}")
    s = report.schedule_stats
    print(f"  unit loads       : {s.total_unit_loads} "
          f"(gallop {s.gallop_loads}, crabstep pins {s.crabstep_pins}, "
          f"reloads {s.crabstep_reloads})")
    print(f"  simulated I/O    : {report.simulated_io_time_s:.2f} s "
          f"on the paper's disk model "
          f"(sort {report.sort_io_time_s:.2f} s + "
          f"join {report.join_io_time_s:.2f} s)")
    print(f"  distance calcs   : {report.cpu.distance_calculations:,}")


if __name__ == "__main__":
    main()
