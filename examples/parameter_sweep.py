#!/usr/bin/env python3
"""DBSCAN parameter sweeps on one sort: sorted-file reuse.

A practical property of the epsilon grid order this library exploits:
a file sorted at ε is usable for *any* join distance ε′ ≤ ε (the ε-grid
pruning stays sound on the coarser grid) and for integer multiples k·ε
(the coarser grid is a function of the finer one).  Parameter tuning —
the k-distance plot, a DBSCAN ε sweep — therefore pays for one external
sort, not one per candidate value.

This example sweeps DBSCAN's ε over a clustered data set twice:
re-sorting every time vs one sorted file, comparing the simulated I/O,
and shows the same sweep in memory via ``EGOIndex``.

Run:  python examples/parameter_sweep.py
"""

import numpy as np

from repro import EGOIndex, gaussian_clusters
from repro.analysis.reporting import format_table
from repro.apps.dbscan import dbscan_from_graph
from repro.apps.neighborhood import NeighborhoodGraph
from repro.core.ego_join import ego_key_function, ego_self_join_file
from repro.data.loader import make_point_file
from repro.sorting.external_sort import external_sort
from repro.storage.disk import SimulatedDisk

N, DIMS, MIN_PTS = 12_000, 6, 8
EPS_MAX = 0.08
SWEEP = [0.01, 0.02, 0.04, 0.08]
UNIT_BYTES, BUFFER_UNITS = 8192, 6


def main() -> None:
    points = gaussian_clusters(N, DIMS, clusters=9, std=0.015,
                               noise_fraction=0.05, seed=5)

    # --- external: re-sort per epsilon --------------------------------
    naive_io = 0.0
    disk, pf = make_point_file(points)
    for eps in SWEEP:
        report = ego_self_join_file(pf, eps, unit_bytes=UNIT_BYTES,
                                    buffer_units=BUFFER_UNITS,
                                    materialize=False)
        naive_io += report.simulated_io_time_s
    disk.close()

    # --- external: sort once at EPS_MAX, sweep on the sorted file -----
    disk, pf = make_point_file(points)
    with SimulatedDisk() as sorted_disk, SimulatedDisk() as scratch:
        sorted_file, _ = external_sort(pf, sorted_disk, scratch,
                                       ego_key_function(EPS_MAX),
                                       BUFFER_UNITS * 100)
        sort_once_io = (pf.disk.simulated_time_s
                        + sorted_disk.simulated_time_s
                        + scratch.simulated_time_s)
        rows = []
        for eps in SWEEP:
            report = ego_self_join_file(
                sorted_file, eps, unit_bytes=UNIT_BYTES,
                buffer_units=BUFFER_UNITS, assume_sorted=True,
                sorted_epsilon=EPS_MAX, materialize=False)
            sort_once_io += report.join_io_time_s
            rows.append({"epsilon": eps, "pairs": report.result.count,
                         "join_io_s": round(report.join_io_time_s, 3)})
    disk.close()

    print(format_table(rows, title=f"sweep on one sorted file "
                                   f"(n={N:,}, sorted at {EPS_MAX})"))
    print(f"\nsimulated I/O, re-sorting per epsilon : {naive_io:.2f} s")
    print(f"simulated I/O, one sort + sweep       : {sort_once_io:.2f} s "
          f"({naive_io / sort_once_io:.1f}x less)")

    # --- in memory: the same sweep through EGOIndex --------------------
    idx = EGOIndex(points, EPS_MAX)
    print("\nDBSCAN over the sweep (one in-memory index):")
    for eps in SWEEP:
        join = idx.self_join(epsilon=eps)
        graph = NeighborhoodGraph.from_pairs(N, eps, *join.pairs())
        clustering = dbscan_from_graph(graph, MIN_PTS)
        print(f"  eps={eps:<5}: {clustering.num_clusters:>3} clusters, "
              f"{int(clustering.noise_mask.sum()):>6,} noise points")


if __name__ == "__main__":
    main()
