#!/usr/bin/env python3
"""DBSCAN density clustering on top of one similarity join.

The paper's motivating application (Section 1): DBSCAN's two subtasks —
core-point determination and cluster collection — can both be computed
from a *single* similarity self-join instead of one range query per
point [BBBK 00], with identical results.

This example plants Gaussian clusters plus background noise, selects ε
with the k-distance heuristic of [SEKX 98] (as the paper does for its
experiments), runs DBSCAN via the EGO join, and validates the recovered
structure.

Run:  python examples/dbscan_clustering.py
"""

import numpy as np

from repro import (dbscan, ego_self_join, epsilon_for_average_neighbors,
                   gaussian_clusters)


def main() -> None:
    n, dims, planted = 15_000, 6, 8
    min_pts = 8
    points = gaussian_clusters(n, dims, clusters=planted, std=0.015,
                               noise_fraction=0.08, seed=7)

    # Parameter selection exactly like the paper's evaluation: epsilon
    # "suitable for clustering following the selection criteria proposed
    # in [SEKX 98]" — the k-distance heuristic.
    epsilon = epsilon_for_average_neighbors(points,
                                            target_neighbors=min_pts)
    print(f"{n:,} points in {dims}-d, {planted} planted clusters "
          f"+ 8% noise")
    print(f"selected eps = {epsilon:.4f} (k-distance, k={min_pts})")

    # One similarity join drives the whole clustering.
    join = ego_self_join(points, epsilon)
    print(f"similarity join: {join.count:,} pairs")

    result = dbscan(points, epsilon, min_pts, join_result=join)
    sizes = np.bincount(result.labels[result.labels >= 0]) \
        if result.num_clusters else np.array([], dtype=int)

    print(f"\nDBSCAN(eps={epsilon:.4f}, min_pts={min_pts}):")
    print(f"  clusters found : {result.num_clusters}")
    print(f"  core points    : {int(result.core_mask.sum()):,}")
    print(f"  border points  : {int(result.border_mask.sum()):,}")
    print(f"  noise points   : {int(result.noise_mask.sum()):,} "
          f"({result.noise_mask.mean():.1%})")
    if len(sizes):
        print(f"  cluster sizes  : {sorted(sizes.tolist(), reverse=True)}")

    # Sanity: the number of substantial clusters matches the plant.
    substantial = int((sizes > n // planted // 4).sum())
    print(f"\nsubstantial clusters (>{n // planted // 4} points): "
          f"{substantial} — planted: {planted}")


if __name__ == "__main__":
    main()
