"""Tests for the buffer pool (LRU + pinning)."""

import pytest

from repro.storage.buffer import BufferFullError, BufferPool


class CountingLoader:
    """Loader that records which keys were fetched."""

    def __init__(self):
        self.loads = []

    def __call__(self, key):
        self.loads.append(key)
        return f"page-{key}"


@pytest.fixture
def loader():
    return CountingLoader()


class TestBasics:
    def test_miss_then_hit(self, loader):
        pool = BufferPool(2, loader)
        assert pool.get(1) == "page-1"
        assert pool.get(1) == "page-1"
        assert loader.loads == [1]
        assert pool.stats.hits == 1
        assert pool.stats.misses == 1

    def test_capacity_must_be_positive(self, loader):
        with pytest.raises(ValueError):
            BufferPool(0, loader)

    def test_contains_and_len(self, loader):
        pool = BufferPool(3, loader)
        pool.get("a")
        assert "a" in pool
        assert "b" not in pool
        assert len(pool) == 1


class TestLRUReplacement:
    def test_evicts_least_recently_used(self, loader):
        pool = BufferPool(2, loader)
        pool.get(1)
        pool.get(2)
        pool.get(1)       # 2 is now LRU
        pool.get(3)       # evicts 2
        assert 2 not in pool
        assert 1 in pool and 3 in pool
        assert pool.stats.evictions == 1

    def test_resident_keys_in_lru_order(self, loader):
        pool = BufferPool(3, loader)
        pool.get("a")
        pool.get("b")
        pool.get("c")
        pool.get("a")
        assert pool.resident_keys == ["b", "c", "a"]

    def test_reload_counts_as_miss(self, loader):
        pool = BufferPool(1, loader)
        pool.get(1)
        pool.get(2)
        pool.get(1)
        assert pool.stats.misses == 3
        assert loader.loads == [1, 2, 1]


class TestPinning:
    def test_pinned_page_survives_pressure(self, loader):
        pool = BufferPool(2, loader)
        pool.get(1, pin=True)
        pool.get(2)
        pool.get(3)   # must evict 2, not the pinned 1
        assert 1 in pool
        assert 2 not in pool

    def test_all_pinned_raises(self, loader):
        pool = BufferPool(2, loader)
        pool.get(1, pin=True)
        pool.get(2, pin=True)
        with pytest.raises(BufferFullError):
            pool.get(3)

    def test_unpin_allows_eviction(self, loader):
        pool = BufferPool(1, loader)
        pool.get(1, pin=True)
        pool.unpin(1)
        pool.get(2)
        assert 1 not in pool

    def test_unpin_all(self, loader):
        pool = BufferPool(3, loader)
        pool.get(1, pin=True)
        pool.get(2, pin=True)
        pool.unpin_all()
        assert pool.pinned_frames() == []

    def test_pin_on_hit(self, loader):
        pool = BufferPool(2, loader)
        pool.get(1)
        pool.get(1, pin=True)
        assert pool.peek(1).pinned

    def test_free_frames_accounting(self, loader):
        pool = BufferPool(3, loader)
        assert pool.free_frames() == 3
        pool.get(1, pin=True)
        assert pool.free_frames() == 2
        pool.get(2)
        assert pool.free_frames() == 2  # 1 empty + 1 unpinned


class TestExplicitManagement:
    def test_discard(self, loader):
        pool = BufferPool(2, loader)
        pool.get(1)
        pool.discard(1)
        assert 1 not in pool

    def test_discard_absent_is_noop(self, loader):
        pool = BufferPool(2, loader)
        pool.discard(99)

    def test_discard_ignores_pin(self, loader):
        pool = BufferPool(2, loader)
        pool.get(1, pin=True)
        pool.discard(1)
        assert 1 not in pool

    def test_clear(self, loader):
        pool = BufferPool(3, loader)
        pool.get(1)
        pool.get(2)
        pool.clear()
        assert len(pool) == 0

    def test_has_empty_frame(self, loader):
        pool = BufferPool(1, loader)
        assert pool.has_empty_frame()
        pool.get(1)
        assert not pool.has_empty_frame()

    def test_stats_reset(self, loader):
        pool = BufferPool(1, loader)
        pool.get(1)
        pool.get(1)
        pool.stats.reset()
        assert pool.stats.hits == 0
        assert pool.stats.misses == 0
