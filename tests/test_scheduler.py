"""Tests for the gallop/crabstep I/O scheduler (Figure 4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ego_join import ego_key_function
from repro.core.result import JoinResult
from repro.core.scheduler import EGOScheduler, lex_less, schedule_self_join
from repro.core.sequence_join import JoinContext
from repro.sorting.external_sort import external_sort
from repro.storage.disk import SimulatedDisk
from repro.storage.pagefile import PointFile

from conftest import brute_truth, make_file


def sorted_file(disk, points, epsilon):
    """EGO-sorted point file built in memory, written once to ``disk``."""
    pts = np.asarray(points, dtype=float)
    from repro.core.ego_order import ego_sorted
    ids, spts = ego_sorted(pts, epsilon)
    return make_file(disk, spts, ids=ids)


def run_schedule(points, epsilon, unit_bytes, buffer_units,
                 allow_crabstep=True):
    with SimulatedDisk() as disk:
        pf = sorted_file(disk, points, epsilon)
        result = JoinResult()
        ctx = JoinContext(epsilon=epsilon, result=result, minlen=8)
        stats = schedule_self_join(pf, ctx, unit_bytes, buffer_units,
                                   allow_crabstep=allow_crabstep)
        pairs = result.canonical_pair_set()
        io = disk.counters.snapshot()
    return pairs, stats, io


class TestLexLess:
    def test_orders_lexicographically(self):
        assert lex_less(np.array([0, 5]), np.array([1, 0]))
        assert lex_less(np.array([1, 0]), np.array([1, 1]))
        assert not lex_less(np.array([1, 1]), np.array([1, 1]))
        assert not lex_less(np.array([2, 0]), np.array([1, 9]))


class TestCorrectness:
    def test_gallop_only_sufficient_buffer(self, rng):
        pts = rng.random((200, 3))
        eps = 0.2
        pairs, stats, _ = run_schedule(pts, eps, unit_bytes=512,
                                       buffer_units=64)
        assert pairs == brute_truth(pts, eps)
        assert stats.crabstep_phases == 0

    def test_crabstep_small_buffer(self, rng):
        pts = rng.random((200, 2))
        eps = 0.5  # wide interval forces crabstep
        pairs, stats, _ = run_schedule(pts, eps, unit_bytes=300,
                                       buffer_units=2)
        assert stats.crabstep_phases > 0
        assert pairs == brute_truth(pts, eps)

    def test_thrash_mode_also_correct(self, rng):
        pts = rng.random((150, 2))
        eps = 0.5
        pairs, stats, _ = run_schedule(pts, eps, unit_bytes=300,
                                       buffer_units=2,
                                       allow_crabstep=False)
        assert stats.crabstep_phases == 0
        assert pairs == brute_truth(pts, eps)

    @given(st.integers(min_value=2, max_value=80),
           st.integers(min_value=2, max_value=6),
           st.integers(min_value=100, max_value=800),
           st.floats(min_value=0.05, max_value=0.9),
           st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_any_configuration_matches_brute(self, n, buffers, unit_bytes,
                                             eps, seed):
        rng = np.random.default_rng(seed)
        pts = rng.random((n, 2))
        pairs, _stats, _ = run_schedule(pts, eps, unit_bytes, buffers)
        assert pairs == brute_truth(pts, eps)

    def test_empty_file(self):
        with SimulatedDisk() as disk:
            pf = PointFile.create(disk, 2)
            pf.close()
            ctx = JoinContext(epsilon=0.5, result=JoinResult())
            stats = schedule_self_join(pf, ctx, 256, 4)
            assert stats.total_unit_loads == 0

    def test_single_unit_file(self, rng):
        pts = rng.random((5, 2))
        pairs, stats, _ = run_schedule(pts, 0.5, unit_bytes=4096,
                                       buffer_units=2)
        assert pairs == brute_truth(pts, 0.5)
        assert stats.gallop_loads == 1


class TestSchedulingBehaviour:
    def test_gallop_loads_each_unit_once(self, rng):
        """Figure 3a: with enough buffer, each unit is read exactly once."""
        pts = rng.random((300, 2))
        eps = 0.1
        with SimulatedDisk() as disk:
            pf = sorted_file(disk, pts, eps)
            ctx = JoinContext(epsilon=eps, result=JoinResult(), minlen=8)
            sched = EGOScheduler(pf, ctx, unit_bytes=400, buffer_units=32)
            stats = sched.run()
            assert stats.gallop_loads == sched.num_units
            assert stats.crabstep_phases == 0
            assert stats.crabstep_reloads == 0

    def test_crabstep_beats_thrashing(self, rng):
        """Figure 3b vs 3c: crabstep needs far fewer loads than LRU gallop."""
        pts = rng.random((400, 2))
        eps = 0.9  # everything joins everything: worst case
        _p1, crab, _ = run_schedule(pts, eps, unit_bytes=300,
                                    buffer_units=4)
        _p2, thrash, _ = run_schedule(pts, eps, unit_bytes=300,
                                      buffer_units=4,
                                      allow_crabstep=False)
        assert crab.total_unit_loads < thrash.total_unit_loads

    def test_unit_pair_skip_counts(self, rng):
        """Units far apart in the order are skipped (Figure 2's region)."""
        pts = rng.random((400, 1))
        eps = 0.01
        _pairs, stats, _ = run_schedule(pts, eps, unit_bytes=200,
                                        buffer_units=6)
        assert stats.unit_pairs_skipped >= 0
        # With tiny eps, most far pairs should never even be formed:
        # joined pairs stay near the diagonal.
        n_units = stats.gallop_loads + stats.crabstep_pins
        assert stats.unit_pairs_joined < n_units * 6

    def test_eviction_happens_in_gallop(self, rng):
        pts = rng.random((500, 2))
        eps = 0.05
        _pairs, stats, _ = run_schedule(pts, eps, unit_bytes=256,
                                        buffer_units=4)
        assert stats.evictions > 0

    def test_requires_two_buffers(self, rng):
        with SimulatedDisk() as disk:
            pf = sorted_file(disk, rng.random((10, 2)), 0.5)
            ctx = JoinContext(epsilon=0.5, result=JoinResult())
            with pytest.raises(ValueError):
                EGOScheduler(pf, ctx, 256, 1)


class TestWithExternalSort:
    def test_full_pipeline_on_presorted_runs(self, rng):
        """External sort output feeds the scheduler directly."""
        eps = 0.3
        pts = rng.random((150, 3))
        with SimulatedDisk() as src, SimulatedDisk() as dst, \
                SimulatedDisk() as scratch:
            pf = make_file(src, pts)
            out, _ = external_sort(pf, dst, scratch,
                                   ego_key_function(eps),
                                   memory_records=40)
            ctx = JoinContext(epsilon=eps, result=JoinResult(), minlen=8)
            schedule_self_join(out, ctx, unit_bytes=512, buffer_units=4)
            assert ctx.result.canonical_pair_set() == brute_truth(pts, eps)


class TestTracing:
    def test_trace_records_loads_and_pairs(self, rng):
        pts = rng.random((100, 2))
        eps = 0.3
        with SimulatedDisk() as disk:
            pf = sorted_file(disk, pts, eps)
            trace = []
            ctx = JoinContext(epsilon=eps, result=JoinResult(), minlen=8)
            sched = EGOScheduler(pf, ctx, unit_bytes=300, buffer_units=4,
                                 trace=trace)
            stats = sched.run()
        kinds = {kind for kind, _a, _b in trace}
        assert "load" in kinds and "join" in kinds
        loads = sum(1 for k, _a, _b in trace if k == "load")
        joins = sum(1 for k, _a, _b in trace if k == "join")
        assert loads == stats.total_unit_loads
        assert joins == stats.unit_pairs_joined

    def test_trace_pairs_canonicalized(self, rng):
        pts = rng.random((80, 2))
        with SimulatedDisk() as disk:
            pf = sorted_file(disk, pts, 0.4)
            trace = []
            ctx = JoinContext(epsilon=0.4, result=JoinResult(), minlen=8)
            EGOScheduler(pf, ctx, 300, 3, trace=trace).run()
        for kind, a, b in trace:
            if kind in ("join", "skip"):
                assert a <= b
