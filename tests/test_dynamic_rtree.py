"""Tests for the dynamically built (Guttman) R-tree."""

import numpy as np
import pytest

from repro.index.dynamic_rtree import DynamicRTree
from repro.index.rtree import RTree
from repro.storage.disk import SimulatedDisk


def build(points, capacity=8):
    tree = DynamicRTree(points.shape[1], capacity=capacity)
    for i, p in enumerate(points):
        tree.insert(i, p)
    return tree


class TestInsertion:
    def test_size_tracks_inserts(self, rng):
        tree = build(rng.random((37, 2)))
        assert tree.size == 37
        assert tree.stats.inserts == 37

    def test_invariants_after_many_inserts(self, rng):
        tree = build(rng.random((300, 3)), capacity=6)
        tree.validate()
        assert tree.height() >= 3

    def test_splits_occur(self, rng):
        tree = build(rng.random((100, 2)), capacity=4)
        assert tree.stats.splits > 10

    def test_duplicate_points_accepted(self):
        pts = np.tile([[0.5, 0.5]], (20, 1))
        tree = build(pts, capacity=4)
        tree.validate()
        assert len(tree.range_query(np.array([0.5, 0.5]), 0.0)) == 20

    def test_rejects_wrong_dimension(self):
        tree = DynamicRTree(3)
        with pytest.raises(ValueError):
            tree.insert(0, np.zeros(2))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DynamicRTree(0)
        with pytest.raises(ValueError):
            DynamicRTree(2, capacity=1)


class TestQueries:
    def test_range_query_matches_scan(self, rng):
        pts = rng.random((200, 3))
        tree = build(pts)
        for _ in range(5):
            c, r = rng.random(3), 0.3
            want = sorted(i for i in range(200)
                          if np.linalg.norm(pts[i] - c) <= r)
            assert tree.range_query(c, r).tolist() == want

    def test_empty_tree_query(self):
        tree = DynamicRTree(2)
        assert len(tree.range_query(np.zeros(2), 1.0)) == 0

    def test_negative_radius_rejected(self, rng):
        tree = build(rng.random((5, 2)))
        with pytest.raises(ValueError):
            tree.range_query(np.zeros(2), -1.0)


class TestSection22Claim:
    def test_dynamic_construction_cost_superlinear_per_node(self, rng):
        """§2.2: repeated inserts are expensive — node accesses grow
        clearly faster than one access per point (ChooseLeaf descends
        the full height each time)."""
        pts = rng.random((400, 2))
        tree = build(pts, capacity=8)
        assert tree.stats.node_accesses > 2.5 * len(pts)

    def test_bulk_load_needs_no_tree_traversals(self, rng):
        """The bulk-loaded tree is built by sorting alone; comparable
        quality without per-insert traversal cost."""
        pts = rng.random((256, 2))
        dynamic = build(pts, capacity=8)
        with SimulatedDisk() as disk:
            bulk = RTree.bulk_load(np.arange(256), pts, disk, 8)
            bulk_vol = sum(n.mbr.volume() for n in bulk.leaf_nodes)
        # Both produce usable trees; the *construction* accounting is
        # what differs (InsertStats exists only for the dynamic tree).
        assert dynamic.total_leaf_volume() > 0
        assert bulk_vol > 0
        assert dynamic.stats.node_accesses > 0
