"""Tests for the workload generators and dataset persistence."""

import numpy as np
import pytest

from repro.data.loader import load_points, make_point_file, save_points
from repro.data.synthetic import (cad_like, epsilon_for_average_neighbors,
                                  gaussian_clusters, uniform)


class TestUniform:
    def test_shape_and_range(self):
        pts = uniform(100, 8, seed=1)
        assert pts.shape == (100, 8)
        assert (pts >= 0).all() and (pts < 1).all()

    def test_deterministic_by_seed(self):
        np.testing.assert_array_equal(uniform(10, 3, seed=7),
                                      uniform(10, 3, seed=7))

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            uniform(-1, 3)
        with pytest.raises(ValueError):
            uniform(5, 0)

    def test_accepts_generator(self):
        gen = np.random.default_rng(0)
        pts = uniform(5, 2, seed=gen)
        assert pts.shape == (5, 2)


class TestGaussianClusters:
    def test_shape_and_clipping(self):
        pts = gaussian_clusters(500, 4, clusters=5, seed=2)
        assert pts.shape == (500, 4)
        assert (pts >= 0).all() and (pts <= 1).all()

    def test_clustering_tightens_distances(self):
        clustered = gaussian_clusters(400, 4, clusters=4, std=0.01,
                                      noise_fraction=0.0, seed=3)
        flat = uniform(400, 4, seed=3)

        def mean_nn(pts):
            diff = pts[:, None, :] - pts[None, :, :]
            d2 = np.einsum("ijk,ijk->ij", diff, diff)
            np.fill_diagonal(d2, np.inf)
            return np.sqrt(d2.min(axis=1)).mean()

        assert mean_nn(clustered) < mean_nn(flat) / 2

    def test_rejects_bad_noise_fraction(self):
        with pytest.raises(ValueError):
            gaussian_clusters(10, 2, noise_fraction=1.5)


class TestCadLike:
    def test_shape(self):
        pts = cad_like(300, seed=4)
        assert pts.shape == (300, 16)

    def test_spectrum_decays(self):
        """Later dimensions carry less variance (feature-spectrum shape)."""
        pts = cad_like(3000, seed=5)
        var = pts.var(axis=0)
        assert var[0] > var[8] > var[15]

    def test_dimensions_correlated(self):
        """The low-rank mixing couples dimensions (unlike uniform data)."""
        pts = cad_like(3000, seed=6)
        corr = np.corrcoef(pts.T)
        off_diag = np.abs(corr[np.triu_indices(16, k=1)])
        flat = uniform(3000, 16, seed=6)
        corr_flat = np.corrcoef(flat.T)
        off_flat = np.abs(corr_flat[np.triu_indices(16, k=1)])
        assert off_diag.mean() > 3 * off_flat.mean()

    def test_clustered_by_parts(self):
        pts = cad_like(500, parts=5, seed=7)
        # With 5 parts, nearest neighbours are far closer than random.
        diff = pts[:, None, :] - pts[None, :, :]
        d2 = np.einsum("ijk,ijk->ij", diff, diff)
        np.fill_diagonal(d2, np.inf)
        nn = np.sqrt(d2.min(axis=1))
        assert np.median(nn) < 0.2

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            cad_like(10, parts=0)


class TestEpsilonSelection:
    def test_reasonable_for_uniform(self):
        pts = uniform(2000, 4, seed=8)
        eps = epsilon_for_average_neighbors(pts, target_neighbors=3)
        # Check the selected eps really gives a few neighbours on average.
        diff = pts[:200, None, :] - pts[None, :, :]
        d2 = np.einsum("ijk,ijk->ij", diff, diff)
        counts = (d2 <= eps * eps).sum(axis=1) - 1
        assert 0.5 <= counts.mean() <= 20

    def test_monotone_in_target(self):
        pts = uniform(1000, 3, seed=9)
        e1 = epsilon_for_average_neighbors(pts, 2)
        e2 = epsilon_for_average_neighbors(pts, 10)
        assert e1 < e2

    def test_rejects_tiny_input(self):
        with pytest.raises(ValueError):
            epsilon_for_average_neighbors(np.zeros((1, 2)), 3)
        with pytest.raises(ValueError):
            epsilon_for_average_neighbors(np.zeros((5, 2)), 10)


class TestLoader:
    def test_make_point_file_round_trip(self, rng):
        pts = rng.random((40, 3))
        disk, pf = make_point_file(pts)
        try:
            ids, out = pf.read_all()
            np.testing.assert_allclose(out, pts)
            assert ids.tolist() == list(range(40))
        finally:
            disk.close()

    def test_accounting_reset_after_write(self, rng):
        disk, pf = make_point_file(rng.random((10, 2)))
        try:
            assert disk.counters.total_accesses == 0
        finally:
            disk.close()

    def test_save_and_load_path(self, tmp_path, rng):
        path = str(tmp_path / "pts.bin")
        pts = rng.random((25, 4))
        save_points(path, pts, ids=np.arange(100, 125))
        ids, out = load_points(path)
        np.testing.assert_allclose(out, pts)
        assert ids.tolist() == list(range(100, 125))

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_points(str(tmp_path / "nope.bin"))

    def test_rejects_1d_points(self):
        with pytest.raises(ValueError):
            make_point_file(np.zeros(5))
