"""Integration tests: full pipelines and the paper's qualitative claims."""

import numpy as np
import pytest

from repro.analysis.costmodel import (ego_total_time, join_total_time,
                                      nested_loop_estimate)
from repro.apps.dbscan import dbscan
from repro.core.ego_join import ego_self_join, ego_self_join_file
from repro.data.loader import make_point_file
from repro.data.synthetic import (cad_like, epsilon_for_average_neighbors,
                                  uniform)
from repro.index.mux import MultipageIndex
from repro.index.rtree import RTree
from repro.joins.mux_join import mux_self_join
from repro.joins.rsj import rsj_self_join
from repro.joins.zorder_rsj import zorder_rsj_self_join
from repro.storage.disk import SimulatedDisk

from conftest import brute_truth


def _external_join(pts, eps, unit_bytes=2048, buffer_units=4, **kw):
    disk, pf = make_point_file(pts)
    try:
        return ego_self_join_file(pf, eps, unit_bytes=unit_bytes,
                                  buffer_units=buffer_units, **kw)
    finally:
        disk.close()


class TestFullPipeline:
    def test_external_equals_in_memory_uniform(self):
        pts = uniform(800, 8, seed=21)
        eps = 0.35
        external = _external_join(pts, eps)
        in_memory = ego_self_join(pts, eps)
        assert (external.result.canonical_pair_set()
                == in_memory.canonical_pair_set())

    def test_external_equals_in_memory_cad(self):
        pts = cad_like(500, seed=22)
        eps = epsilon_for_average_neighbors(pts, 4)
        external = _external_join(pts, eps)
        assert (external.result.canonical_pair_set()
                == ego_self_join(pts, eps).canonical_pair_set())

    def test_dbscan_on_external_join_pairs(self):
        pts = uniform(400, 4, seed=23)
        eps = epsilon_for_average_neighbors(pts, 5)
        report = _external_join(pts, eps)
        via_external = dbscan(pts, eps, 5, join_result=report.result)
        direct = dbscan(pts, eps, 5)
        np.testing.assert_array_equal(via_external.core_mask,
                                      direct.core_mask)
        assert via_external.num_clusters == direct.num_clusters


class TestPaperClaims:
    """Qualitative behaviours the paper asserts, verified end to end."""

    def test_buffer_limit_respected(self):
        """EGO never holds more than buffer_units units (§3.2)."""
        pts = uniform(1000, 4, seed=24)
        report = _external_join(pts, 0.4, unit_bytes=1024, buffer_units=3)
        # With 3 frames and a wide interval, crabstep must engage rather
        # than the buffer growing.
        assert report.schedule_stats.crabstep_phases > 0

    def test_crabstep_io_beats_thrashing(self):
        """Figure 3: crabstep ≪ LRU-gallop disk accesses at small buffers."""
        pts = uniform(1500, 2, seed=25)
        eps = 0.6
        crab = _external_join(pts, eps, unit_bytes=1024, buffer_units=4)
        thrash = _external_join(pts, eps, unit_bytes=1024, buffer_units=4,
                                allow_crabstep=False)
        assert (crab.schedule_stats.total_unit_loads
                < thrash.schedule_stats.total_unit_loads)
        assert (crab.result.canonical_pair_set()
                == thrash.result.canonical_pair_set())

    def test_gallop_is_single_scan_with_large_buffer(self):
        """With the interval in buffer, each unit is loaded exactly once."""
        pts = uniform(1000, 4, seed=26)
        report = _external_join(pts, 0.1, unit_bytes=1024,
                                buffer_units=128)
        s = report.schedule_stats
        assert s.crabstep_phases == 0
        assert s.crabstep_reloads == 0

    def test_mux_cpu_below_rsj(self):
        """MuX's bucket filtering spares CPU relative to plain RSJ
        at comparable I/O granularity ([BK 01], §2.1)."""
        pts = uniform(2000, 8, seed=27)
        eps = 0.3
        ids = np.arange(2000)
        with SimulatedDisk() as d1, SimulatedDisk() as d2:
            # Same large page size for both; RSJ compares whole pages,
            # MuX filters by bucket first.
            page_records = 256
            tree = RTree.bulk_load(ids, pts, d1, page_records)
            rsj = rsj_self_join(tree, eps, pool_pages=4)
            mux = MultipageIndex.bulk_load(
                ids, pts, d2, page_bytes=page_records * 72,
                bucket_records=16)
            muxr = mux_self_join(mux, eps, pool_pages=4)
            assert (muxr.cpu.distance_calculations
                    < rsj.cpu.distance_calculations)

    def test_ego_model_time_beats_competitors(self):
        """The headline: EGO total (sort + join) below RSJ variants,
        MuX and the calculated nested loop under the same 10 % memory
        budget.  (The ordering needs genuine scale — below a few
        thousand points the competitor page-pair graphs are trivially
        small and index joins can win, which is consistent with the
        paper evaluating at gigabyte scale.)"""
        n, d = 6000, 8
        pts = uniform(n, d, seed=28)
        eps = 0.25
        ids = np.arange(n)
        record_bytes = 8 * (d + 1)
        budget_records = n // 10
        budget_bytes = budget_records * record_bytes

        unit_bytes = max(2048, budget_bytes // 8)
        buffer_units = max(2, budget_bytes // unit_bytes)
        ego = _external_join(pts, eps, unit_bytes=unit_bytes,
                             buffer_units=buffer_units,
                             materialize=False)
        ego_time = ego_total_time(ego, d)

        page_records = 64
        pool_pages = max(2, budget_records // page_records)
        with SimulatedDisk() as disk:
            tree = RTree.bulk_load(ids, pts, disk, page_records)
            rsj_time = join_total_time(
                rsj_self_join(tree, eps, pool_pages,
                              materialize=False), d)
            zrsj_time = join_total_time(
                zorder_rsj_self_join(tree, eps, pool_pages,
                                     materialize=False), d)
        with SimulatedDisk() as disk:
            mux = MultipageIndex.bulk_load(ids, pts, disk,
                                           page_bytes=unit_bytes,
                                           bucket_records=16)
            mux_time = join_total_time(
                mux_self_join(mux, eps,
                              max(2, budget_bytes // unit_bytes),
                              materialize=False), d)

        nlj_time = nested_loop_estimate(
            n, d, buffer_records=budget_records).total_time_s

        # EGO wins against every competitor (Figures 9/10).
        assert ego_time < mux_time
        assert ego_time < zrsj_time
        assert ego_time < rsj_time
        assert ego_time < nlj_time
        # MuX beats the R-tree joins; Z-ordering beats depth-first RSJ.
        assert mux_time < zrsj_time < rsj_time

    def test_epsilon_growth_increases_cost(self):
        """All join costs grow with eps (Figures 9/10, right diagrams)."""
        pts = uniform(1200, 8, seed=29)
        times = []
        for eps in (0.2, 0.3, 0.4):
            report = _external_join(pts, eps)
            times.append(ego_total_time(report, 8))
        assert times[0] < times[1] < times[2]

    def test_scaling_in_database_size(self):
        """EGO cost grows with n, slightly superlinearly at most
        (Figures 9/10, left diagrams)."""
        times = []
        for n in (500, 1000, 2000):
            pts = uniform(n, 8, seed=30)
            report = _external_join(pts, 0.3)
            times.append(ego_total_time(report, 8))
        assert times[0] < times[1] < times[2]
        # Far below quadratic growth:
        assert times[2] < times[0] * 16


class TestResultConsistencyAcrossEngines:
    @pytest.mark.parametrize("engine", ["vector", "scalar"])
    @pytest.mark.parametrize("order_dimensions", [True, False])
    def test_all_modes_identical(self, engine, order_dimensions):
        pts = uniform(150, 6, seed=31)
        eps = 0.4
        result = ego_self_join(pts, eps, engine=engine,
                               order_dimensions=order_dimensions,
                               minlen=8)
        assert result.canonical_pair_set() == brute_truth(pts, eps)
