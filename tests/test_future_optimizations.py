"""Tests for the §4 future-research optimizations (sort order, splits)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ego_join import ego_self_join
from repro.core.ego_order import ego_sorted
from repro.core.preprocess import (resolve_dimension_order,
                                   spread_dimension_order,
                                   variance_dimension_order)
from repro.core.result import JoinResult
from repro.core.sequence import Sequence
from repro.core.sequence_join import JoinContext
from repro.storage.stats import CPUCounters

from conftest import brute_truth


class TestDimensionOrders:
    def test_spread_order_puts_widest_first(self):
        pts = np.array([[0.0, 0.0, 0.0], [0.1, 5.0, 1.0]])
        order = spread_dimension_order(pts, 0.5)
        assert order.tolist() == [1, 2, 0]

    def test_variance_order(self, rng):
        pts = rng.random((200, 3)) * np.array([0.01, 1.0, 0.1])
        order = variance_dimension_order(pts)
        assert order.tolist() == [1, 2, 0]

    def test_tie_keeps_natural_order(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert spread_dimension_order(pts, 0.5).tolist() == [0, 1]

    def test_resolve_accepts_explicit_permutation(self, rng):
        pts = rng.random((5, 3))
        out = resolve_dimension_order(pts, 0.1, [2, 0, 1])
        assert out.tolist() == [2, 0, 1]

    def test_resolve_rejects_non_permutation(self, rng):
        pts = rng.random((5, 3))
        with pytest.raises(ValueError):
            resolve_dimension_order(pts, 0.1, [0, 0, 1])

    def test_resolve_rejects_unknown_name(self, rng):
        with pytest.raises(ValueError):
            resolve_dimension_order(rng.random((5, 2)), 0.1, "magic")

    def test_natural_and_none_identity(self, rng):
        pts = rng.random((5, 4))
        assert resolve_dimension_order(pts, 0.1, None).tolist() \
            == [0, 1, 2, 3]
        assert resolve_dimension_order(pts, 0.1, "natural").tolist() \
            == [0, 1, 2, 3]

    def test_empty_points(self):
        assert spread_dimension_order(np.empty((0, 3)), 0.1).tolist() \
            == [0, 1, 2]


class TestSortDimsJoin:
    @pytest.mark.parametrize("sort_dims", ["spread", "variance",
                                           [1, 0, 2]])
    def test_result_invariant_under_permutation(self, rng, sort_dims):
        pts = rng.random((150, 3))
        eps = 0.3
        result = ego_self_join(pts, eps, sort_dims=sort_dims)
        assert result.canonical_pair_set() == brute_truth(pts, eps)

    def test_spread_reduces_work_on_anisotropic_data(self, rng):
        pts = rng.random((1500, 4)) * np.array([0.01, 0.01, 1.0, 1.0])
        eps = 0.05
        base, opt = CPUCounters(), CPUCounters()
        a = ego_self_join(pts, eps, cpu=base, minlen=16)
        b = ego_self_join(pts, eps, cpu=opt, minlen=16,
                          sort_dims="spread")
        assert a.canonical_pair_set() == b.canonical_pair_set()
        assert opt.distance_calculations < base.distance_calculations

    @given(st.integers(min_value=2, max_value=60),
           st.floats(min_value=0.05, max_value=0.8),
           st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_property_spread_invariance(self, n, eps, seed):
        rng = np.random.default_rng(seed)
        pts = rng.random((n, 3)) * np.array([10.0, 1.0, 0.1])
        a = ego_self_join(pts, eps).canonical_pair_set()
        b = ego_self_join(pts, eps,
                          sort_dims="spread").canonical_pair_set()
        assert a == b


class TestBoundarySplit:
    def test_split_point_is_cell_boundary(self, rng):
        eps = 0.1
        ids, pts = ego_sorted(rng.random((200, 1)), eps)
        seq = Sequence(ids, pts, eps)
        point = seq.boundary_split_point()
        if 0 < point < len(seq):
            left_cell = int(np.floor(pts[point - 1, 0] / eps))
            right_cell = int(np.floor(pts[point, 0] / eps))
            assert left_cell != right_cell

    def test_no_active_dimension_falls_back_to_middle(self):
        pts = np.full((10, 2), 0.5)
        seq = Sequence(np.arange(10), pts, 1.0)
        assert seq.boundary_split_point() == 5

    def test_split_at_validates(self, rng):
        ids, pts = ego_sorted(rng.random((10, 2)), 0.5)
        seq = Sequence(ids, pts, 0.5)
        with pytest.raises(ValueError):
            seq.split_at(0)
        with pytest.raises(ValueError):
            seq.split_at(10)
        a, b = seq.split_at(4)
        assert len(a) == 4 and len(b) == 6

    @pytest.mark.parametrize("minlen", [2, 16, 64])
    def test_boundary_join_matches_brute(self, rng, minlen):
        pts = rng.random((200, 3))
        eps = 0.25
        result = ego_self_join(pts, eps, split_strategy="boundary",
                               minlen=minlen)
        assert result.canonical_pair_set() == brute_truth(pts, eps)

    def test_boundary_reduces_distance_calcs(self, rng):
        pts = rng.random((1500, 4))
        eps = 0.1
        base, opt = CPUCounters(), CPUCounters()
        ego_self_join(pts, eps, cpu=base, minlen=16)
        ego_self_join(pts, eps, cpu=opt, minlen=16,
                      split_strategy="boundary")
        assert opt.distance_calculations < base.distance_calculations

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            JoinContext(epsilon=0.5, result=JoinResult(),
                        split_strategy="golden-ratio")

    def test_degenerate_single_giant_cell(self, rng):
        """A dominant cell must not blow the recursion depth."""
        dense = np.full((500, 2), 0.55) + rng.normal(0, 1e-4, (500, 2))
        sparse = rng.random((20, 2))
        pts = np.vstack([dense, sparse])
        eps = 0.5
        result = ego_self_join(pts, eps, split_strategy="boundary",
                               minlen=8)
        assert result.canonical_pair_set() == brute_truth(pts, eps)

    @given(st.integers(min_value=2, max_value=80),
           st.floats(min_value=0.05, max_value=0.9),
           st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_property_boundary_matches_brute(self, n, eps, seed):
        rng = np.random.default_rng(seed)
        pts = rng.random((n, 2))
        result = ego_self_join(pts, eps, split_strategy="boundary",
                               minlen=4)
        assert result.canonical_pair_set() == brute_truth(pts, eps)


class TestTwoSetSortDims:
    def test_two_set_join_invariant(self, rng):
        from repro.core.ego_join import ego_join
        r = rng.random((60, 3)) * np.array([0.01, 1.0, 0.1])
        s = rng.random((50, 3)) * np.array([0.01, 1.0, 0.1])
        eps = 0.15
        base = ego_join(r, s, eps).pair_set()
        opt = ego_join(r, s, eps, sort_dims="spread",
                       split_strategy="boundary").pair_set()
        assert base == opt
