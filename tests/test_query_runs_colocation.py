"""Tests for EGOIndex, replacement-selection runs, and co-location mining."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.colocation import colocation_patterns
from repro.core.ego_join import ego_key_function, ego_self_join
from repro.core.ego_order import is_ego_sorted
from repro.core.query import EGOIndex
from repro.sorting.external_sort import external_sort
from repro.storage.disk import SimulatedDisk
from repro.storage.pagefile import PointFile

from conftest import brute_truth, make_file


class TestEGOIndex:
    def test_range_query_matches_scan(self, rng):
        pts = rng.random((300, 3))
        idx = EGOIndex(pts, 0.25)
        for _ in range(8):
            q = rng.random(3)
            r = rng.uniform(0.02, 0.25)
            ids, dists = idx.range_query(q, r)
            truth = {i for i in range(300)
                     if np.linalg.norm(pts[i] - q) <= r}
            assert set(ids.tolist()) == truth
            assert (dists <= r + 1e-12).all()

    def test_default_radius_is_epsilon(self, rng):
        pts = rng.random((100, 2))
        idx = EGOIndex(pts, 0.2)
        ids, _ = idx.range_query(pts[0])
        truth = {i for i in range(100)
                 if np.linalg.norm(pts[i] - pts[0]) <= 0.2}
        assert set(ids.tolist()) == truth

    def test_radius_above_epsilon_rejected(self, rng):
        idx = EGOIndex(rng.random((10, 2)), 0.1)
        with pytest.raises(ValueError):
            idx.range_query(np.zeros(2), 0.2)

    def test_negative_radius_rejected(self, rng):
        idx = EGOIndex(rng.random((10, 2)), 0.1)
        with pytest.raises(ValueError):
            idx.range_query(np.zeros(2), -0.1)

    def test_count_neighbors(self, rng):
        pts = rng.random((150, 2))
        idx = EGOIndex(pts, 0.3)
        q = pts[3]
        assert idx.count_neighbors(q, 0.1) == sum(
            1 for i in range(150)
            if np.linalg.norm(pts[i] - q) <= 0.1)

    def test_self_join_matches_function(self, rng):
        pts = rng.random((200, 3))
        idx = EGOIndex(pts, 0.3)
        assert (idx.self_join().canonical_pair_set()
                == ego_self_join(pts, 0.3).canonical_pair_set())

    def test_cross_join(self, rng):
        r, s = rng.random((60, 2)), rng.random((50, 2))
        eps = 0.25
        a = EGOIndex(r, eps)
        b = EGOIndex(s, eps)
        result = a.join(b)
        expected = {(i, j) for i in range(60) for j in range(50)
                    if np.linalg.norm(r[i] - s[j]) <= eps}
        assert result.pair_set() == expected

    def test_join_epsilon_mismatch_rejected(self, rng):
        a = EGOIndex(rng.random((5, 2)), 0.1)
        b = EGOIndex(rng.random((5, 2)), 0.2)
        with pytest.raises(ValueError):
            a.join(b)

    def test_empty_index(self):
        idx = EGOIndex(np.empty((0, 2)), 0.2)
        ids, dists = idx.range_query(np.zeros(2), 0.1)
        assert len(ids) == 0
        assert idx.self_join().count == 0

    def test_chebyshev_metric_queries(self, rng):
        pts = rng.random((120, 2))
        idx = EGOIndex(pts, 0.2, metric="chebyshev")
        q = rng.random(2)
        ids, _ = idx.range_query(q, 0.15)
        truth = {i for i in range(120)
                 if np.abs(pts[i] - q).max() <= 0.15}
        assert set(ids.tolist()) == truth

    def test_custom_ids(self, rng):
        pts = rng.random((30, 2))
        idx = EGOIndex(pts, 0.5, ids=np.arange(100, 130))
        ids, _ = idx.range_query(pts[0], 0.5)
        assert (ids >= 100).all()

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            EGOIndex(np.array([[np.nan, 1.0]]), 0.5)

    @given(st.integers(min_value=1, max_value=60),
           st.floats(min_value=0.05, max_value=0.5),
           st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_query_property(self, n, radius, seed):
        rng = np.random.default_rng(seed)
        pts = rng.random((n, 2))
        idx = EGOIndex(pts, 0.5)
        q = rng.random(2)
        ids, _ = idx.range_query(q, radius)
        truth = {i for i in range(n)
                 if np.linalg.norm(pts[i] - q) <= radius}
        assert set(ids.tolist()) == truth


class TestReplacementSelection:
    def run_sort(self, points, memory, strategy):
        eps = 0.2
        with SimulatedDisk() as src, SimulatedDisk() as dst, \
                SimulatedDisk() as scratch:
            pf = make_file(src, points)
            out, stats = external_sort(pf, dst, scratch,
                                       ego_key_function(eps), memory,
                                       run_strategy=strategy)
            ids, pts = out.read_all()
            return ids.copy(), pts.copy(), stats

    def test_produces_sorted_output(self, rng):
        pts = rng.random((400, 3))
        ids, out, _ = self.run_sort(pts, 40, "replacement")
        assert is_ego_sorted(out, 0.2)
        assert sorted(ids.tolist()) == list(range(400))

    def test_fewer_runs_than_load_strategy(self, rng):
        """Replacement selection gives ~2x longer runs on random input."""
        pts = rng.random((600, 2))
        _, _, load = self.run_sort(pts, 50, "load")
        _, _, repl = self.run_sort(pts, 50, "replacement")
        assert repl.runs_generated < load.runs_generated
        assert repl.runs_generated <= load.runs_generated * 0.75

    def test_presorted_input_single_run(self, rng):
        """Already-sorted input collapses to one run (the classic win)."""
        from repro.core.ego_order import ego_sorted
        _ids, pts = ego_sorted(rng.random((300, 2)), 0.2)
        _, _, stats = self.run_sort(pts, 20, "replacement")
        assert stats.runs_generated == 1

    def test_unknown_strategy_rejected(self, rng):
        with pytest.raises(ValueError):
            self.run_sort(rng.random((10, 2)), 8, "quantum")

    def test_same_result_as_load(self, rng):
        pts = rng.random((200, 2))
        ids_a, out_a, _ = self.run_sort(pts, 30, "load")
        ids_b, out_b, _ = self.run_sort(pts, 30, "replacement")
        np.testing.assert_array_equal(ids_a, ids_b)
        np.testing.assert_allclose(out_a, out_b)


class TestColocation:
    def _planted(self, rng, n_sites=40, noise=0.003):
        sites = rng.random((n_sites, 2))
        a = sites + rng.normal(0, noise, sites.shape)
        b = sites + rng.normal(0, noise, sites.shape)
        c = rng.random((n_sites, 2))
        pts = np.vstack([a, b, c])
        labels = np.array([0] * n_sites + [1] * n_sites + [2] * n_sites)
        return pts, labels

    def test_finds_planted_pattern(self, rng):
        pts, labels = self._planted(rng)
        patterns = colocation_patterns(pts, labels, epsilon=0.02,
                                       min_participation=0.5)
        tops = {(p.label_a, p.label_b) for p in patterns}
        assert (0, 1) in tops

    def test_independent_labels_not_reported(self, rng):
        pts, labels = self._planted(rng)
        patterns = colocation_patterns(pts, labels, epsilon=0.02,
                                       min_participation=0.5)
        pairs = {(p.label_a, p.label_b) for p in patterns}
        assert (0, 2) not in pairs
        assert (1, 2) not in pairs

    def test_participation_index_is_min(self, rng):
        pts, labels = self._planted(rng)
        patterns = colocation_patterns(pts, labels, epsilon=0.02,
                                       min_participation=0.1)
        for p in patterns:
            assert p.participation_index == pytest.approx(
                min(p.participation_a, p.participation_b))

    def test_sorted_by_strength(self, rng):
        pts, labels = self._planted(rng)
        patterns = colocation_patterns(pts, labels, epsilon=0.05,
                                       min_participation=0.05)
        strengths = [p.participation_index for p in patterns]
        assert strengths == sorted(strengths, reverse=True)

    def test_rejects_bad_inputs(self, rng):
        pts = rng.random((10, 2))
        with pytest.raises(ValueError):
            colocation_patterns(pts, [0] * 9, 0.1)
        with pytest.raises(ValueError):
            colocation_patterns(pts, [0] * 10, 0.1,
                                min_participation=0.0)

    def test_within_label_pattern(self, rng):
        cluster = rng.normal(0.5, 0.002, (40, 2))
        spread = rng.random((40, 2))
        pts = np.vstack([cluster, spread])
        labels = np.array([7] * 40 + [9] * 40)
        patterns = colocation_patterns(pts, labels, epsilon=0.02,
                                       min_participation=0.8)
        assert any(p.label_a == 7 and p.label_b == 7 for p in patterns)
