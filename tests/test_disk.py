"""Tests for the simulated disk device and its accounting."""

import os

import numpy as np
import pytest

from repro.storage.disk import DiskModel, SimulatedDisk


class TestDiskModel:
    def test_sequential_charges_transfer_only(self):
        model = DiskModel(transfer_rate_bytes=1000, avg_access_time_s=0.01)
        assert model.access_time(500, sequential=True) == pytest.approx(0.5)

    def test_random_adds_positioning(self):
        model = DiskModel(transfer_rate_bytes=1000, avg_access_time_s=0.01)
        assert model.access_time(500, sequential=False) == pytest.approx(0.51)

    def test_paper_defaults(self):
        model = DiskModel()
        assert model.transfer_rate_bytes == pytest.approx(9.0 * 1024 * 1024)
        assert model.avg_access_time_s == pytest.approx(8.9e-3)


class TestReadWrite:
    def test_round_trip(self, temp_disk):
        temp_disk.write(0, b"hello world")
        assert temp_disk.read(0, 11) == b"hello world"

    def test_read_past_end_is_short(self, temp_disk):
        temp_disk.write(0, b"abc")
        assert temp_disk.read(0, 100) == b"abc"

    def test_read_negative_size_rejected(self, temp_disk):
        with pytest.raises(ValueError):
            temp_disk.read(0, -1)

    def test_read_negative_offset_rejected(self, temp_disk):
        with pytest.raises(ValueError):
            temp_disk.read(-1, 10)

    def test_write_negative_offset_rejected(self, temp_disk):
        with pytest.raises(ValueError):
            temp_disk.write(-5, b"x")

    def test_append_returns_offset(self, temp_disk):
        assert temp_disk.append(b"12345") == 0
        assert temp_disk.append(b"678") == 5
        assert temp_disk.size() == 8

    def test_truncate(self, temp_disk):
        temp_disk.write(0, b"0123456789")
        temp_disk.truncate(4)
        assert temp_disk.size() == 4
        assert temp_disk.read(0, 10) == b"0123"

    def test_overwrite_region(self, temp_disk):
        temp_disk.write(0, b"aaaaaaaa")
        temp_disk.write(2, b"bb")
        assert temp_disk.read(0, 8) == b"aabbaaaa"


class TestAccounting:
    def test_first_access_is_random(self, temp_disk):
        temp_disk.write(0, b"x" * 100)
        assert temp_disk.counters.random_writes == 1
        assert temp_disk.counters.sequential_writes == 0

    def test_contiguous_accesses_are_sequential(self, temp_disk):
        temp_disk.write(0, b"x" * 100)
        temp_disk.write(100, b"y" * 100)
        temp_disk.write(200, b"z" * 100)
        assert temp_disk.counters.sequential_writes == 2

    def test_backwards_seek_is_random(self, temp_disk):
        temp_disk.write(0, b"x" * 100)
        temp_disk.read(0, 50)
        assert temp_disk.counters.random_reads == 1

    def test_read_after_write_same_position_is_sequential(self, temp_disk):
        temp_disk.write(0, b"x" * 100)
        temp_disk.read(100, 0)  # zero-length read at the head position
        assert temp_disk.counters.sequential_reads == 1

    def test_read_past_eof_does_not_fake_sequential(self, temp_disk):
        # A zero-byte read at EOF transfers nothing; the next access at
        # that offset must not be misclassified as sequential.
        temp_disk.write(0, b"x" * 100)
        temp_disk.read(200, 50)  # entirely past EOF: empty
        temp_disk.read(200, 10)
        assert temp_disk.counters.random_reads == 2

    def test_short_read_at_eof_stays_sequential(self, temp_disk):
        # A *partial* read transferred real bytes; sequentiality is
        # judged from where the transfer actually ended.
        temp_disk.write(0, b"x" * 100)
        assert len(temp_disk.read(0, 150)) == 100
        temp_disk.read(100, 10)  # empty, from the true head position
        assert temp_disk.counters.sequential_reads == 1

    def test_bytes_counted(self, temp_disk):
        temp_disk.write(0, b"x" * 64)
        temp_disk.read(0, 64)
        assert temp_disk.counters.bytes_written == 64
        assert temp_disk.counters.bytes_read == 64

    def test_simulated_time_accumulates(self, temp_disk):
        before = temp_disk.simulated_time_s
        temp_disk.write(0, b"x" * 1024)
        assert temp_disk.simulated_time_s > before

    def test_sequential_cheaper_than_random(self):
        d1, d2 = SimulatedDisk(), SimulatedDisk()
        try:
            d1.write(0, b"a" * 1000)
            d1.write(1000, b"a" * 1000)
            d2.write(0, b"a" * 1000)
            d2.write(5000, b"a" * 1000)
            assert d1.simulated_time_s < d2.simulated_time_s
        finally:
            d1.close()
            d2.close()

    def test_reset_accounting(self, temp_disk):
        temp_disk.write(0, b"data")
        temp_disk.reset_accounting()
        assert temp_disk.counters.total_accesses == 0
        assert temp_disk.simulated_time_s == 0.0
        # After a reset the next access is random again.
        temp_disk.write(4, b"more")
        assert temp_disk.counters.random_writes == 1

    def test_total_access_properties(self, temp_disk):
        temp_disk.write(0, b"ab")
        temp_disk.read(0, 2)
        c = temp_disk.counters
        assert c.total_accesses == 2
        assert c.total_reads == 1
        assert c.total_writes == 1


class TestLifecycle:
    def test_anonymous_file_removed_on_close(self):
        disk = SimulatedDisk()
        path = disk.path
        assert os.path.exists(path)
        disk.close()
        assert not os.path.exists(path)

    def test_named_file_survives_close(self, tmp_path):
        path = str(tmp_path / "data.bin")
        disk = SimulatedDisk(path=path)
        disk.write(0, b"persist")
        disk.close()
        assert os.path.exists(path)
        reopened = SimulatedDisk(path=path)
        try:
            assert reopened.read(0, 7) == b"persist"
        finally:
            reopened.close()

    def test_context_manager(self):
        with SimulatedDisk() as disk:
            disk.write(0, b"ctx")
            assert disk.read(0, 3) == b"ctx"

    def test_double_close_is_safe(self):
        disk = SimulatedDisk()
        disk.close()
        disk.close()

    def test_del_removes_anonymous_file(self):
        # A pipeline that loses its last reference (e.g. an exception
        # escaping mid-join) must not leak the temp file.
        disk = SimulatedDisk()
        path = disk.path
        del disk
        import gc
        gc.collect()
        assert not os.path.exists(path)

    def test_del_safe_on_half_constructed_instance(self):
        disk = SimulatedDisk.__new__(SimulatedDisk)
        disk.__del__()  # no attributes set at all; must not raise

    def test_close_after_del_of_backing_file_attr(self):
        disk = SimulatedDisk()
        path = disk.path
        del disk._file  # simulate a partially torn-down instance
        disk.close()    # must not raise; still unlinks the temp file
        assert not os.path.exists(path)
