"""Tests for the join-based applications (DBSCAN, outliers, graphs)."""

import numpy as np
import pytest

from repro.apps.dbscan import NOISE, dbscan, dbscan_from_graph
from repro.apps.neighborhood import (NeighborhoodGraph, UnionFind,
                                     epsilon_graph)
from repro.apps.outliers import distance_based_outliers
from repro.core.ego_join import ego_self_join
from repro.data.synthetic import gaussian_clusters


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(4)
        assert len({uf.find(i) for i in range(4)}) == 4

    def test_union_and_find(self):
        uf = UnionFind(5)
        assert uf.union(0, 1)
        assert uf.union(1, 2)
        assert not uf.union(0, 2)  # already merged
        assert uf.find(0) == uf.find(2)
        assert uf.find(3) != uf.find(0)

    def test_labels_compact(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(2, 3)
        labels = uf.labels()
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert len(set(labels.tolist())) == 4

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            UnionFind(-1)


class TestNeighborhoodGraph:
    def test_degrees_match_direct_count(self, rng):
        pts = rng.random((80, 3))
        eps = 0.3
        graph = epsilon_graph(pts, eps)
        diff = pts[:, None, :] - pts[None, :, :]
        d2 = np.einsum("ijk,ijk->ij", diff, diff)
        expected = (d2 <= eps * eps).sum(axis=1) - 1
        np.testing.assert_array_equal(graph.degree(), expected)

    def test_neighbors_symmetric(self, rng):
        pts = rng.random((50, 2))
        graph = epsilon_graph(pts, 0.3)
        for i in range(50):
            for j in graph.neighbors(i):
                assert i in graph.neighbors(int(j)).tolist()

    def test_num_edges_matches_join(self, rng):
        pts = rng.random((60, 2))
        result = ego_self_join(pts, 0.25)
        graph = NeighborhoodGraph.build(pts, 0.25, result=result)
        assert graph.num_edges() == result.count

    def test_components_of_two_blobs(self):
        a = np.random.default_rng(0).normal(0.2, 0.01, (30, 2))
        b = np.random.default_rng(1).normal(0.8, 0.01, (30, 2))
        pts = np.vstack([a, b])
        graph = epsilon_graph(pts, 0.1)
        labels = graph.connected_components()
        assert len(set(labels[:30].tolist())) == 1
        assert len(set(labels[30:].tolist())) == 1
        assert labels[0] != labels[30]

    def test_isolated_points_are_singletons(self):
        pts = np.array([[0.0, 0.0], [10.0, 10.0]])
        graph = epsilon_graph(pts, 0.5)
        labels = graph.connected_components()
        assert labels[0] != labels[1]

    def test_from_pairs_rejects_mismatch(self):
        with pytest.raises(ValueError):
            NeighborhoodGraph.from_pairs(3, 0.5, np.array([0]),
                                         np.array([1, 2]))


class TestDBSCAN:
    def test_finds_planted_clusters(self):
        rng = np.random.default_rng(11)
        centers = np.array([[0.2, 0.2, 0.2], [0.8, 0.2, 0.5],
                            [0.2, 0.8, 0.8], [0.8, 0.8, 0.2]])
        pts = np.vstack([c + rng.normal(0, 0.01, (150, 3))
                         for c in centers])
        result = dbscan(pts, epsilon=0.05, min_pts=5)
        assert result.num_clusters == 4
        assert result.noise_mask.mean() < 0.05
        # Each planted blob maps to exactly one found cluster.
        for k in range(4):
            blob = result.labels[k * 150:(k + 1) * 150]
            clustered = blob[blob != NOISE]
            assert len(set(clustered.tolist())) == 1

    def test_noise_detected(self):
        rng = np.random.default_rng(3)
        cluster = rng.normal(0.5, 0.005, (50, 2))
        lone = np.array([[0.05, 0.05], [0.95, 0.95]])
        pts = np.vstack([cluster, lone])
        result = dbscan(pts, epsilon=0.05, min_pts=4)
        assert result.labels[50] == NOISE
        assert result.labels[51] == NOISE
        assert result.num_clusters == 1

    def test_core_points_meet_min_pts(self, rng):
        pts = rng.random((100, 2))
        eps, min_pts = 0.15, 4
        result = dbscan(pts, eps, min_pts)
        diff = pts[:, None, :] - pts[None, :, :]
        d2 = np.einsum("ijk,ijk->ij", diff, diff)
        neighborhood = (d2 <= eps * eps).sum(axis=1)  # includes self
        np.testing.assert_array_equal(result.core_mask,
                                      neighborhood >= min_pts)

    def test_border_points_adjacent_to_core(self, rng):
        pts = gaussian_clusters(300, 2, clusters=3, std=0.02, seed=13)
        result = dbscan(pts, 0.05, 6)
        eps_sq = 0.05 * 0.05
        for i in np.nonzero(result.border_mask)[0]:
            diff = pts[result.core_mask] - pts[i]
            d2 = np.einsum("ij,ij->i", diff, diff)
            assert (d2 <= eps_sq).any()

    def test_all_noise_when_min_pts_huge(self, rng):
        pts = rng.random((30, 2))
        result = dbscan(pts, 0.05, min_pts=25)
        assert result.num_clusters == 0
        assert result.noise_mask.all()

    def test_accepts_precomputed_join(self, rng):
        pts = rng.random((60, 2))
        join = ego_self_join(pts, 0.2)
        a = dbscan(pts, 0.2, 4, join_result=join)
        b = dbscan(pts, 0.2, 4)
        np.testing.assert_array_equal(a.core_mask, b.core_mask)
        assert a.num_clusters == b.num_clusters

    def test_rejects_bad_min_pts(self, rng):
        graph = epsilon_graph(rng.random((10, 2)), 0.3)
        with pytest.raises(ValueError):
            dbscan_from_graph(graph, 0)

    def test_core_labels_transitively_consistent(self, rng):
        """Core points within eps of each other share a cluster."""
        pts = gaussian_clusters(300, 2, clusters=2, std=0.02, seed=17)
        result = dbscan(pts, 0.06, 5)
        eps_sq = 0.06 * 0.06
        core_idx = np.nonzero(result.core_mask)[0]
        for i in core_idx:
            diff = pts[core_idx] - pts[i]
            d2 = np.einsum("ij,ij->i", diff, diff)
            for j in core_idx[d2 <= eps_sq]:
                assert result.labels[i] == result.labels[j]


class TestOutliers:
    def test_plants_obvious_outlier(self):
        rng = np.random.default_rng(5)
        dense = rng.normal(0.5, 0.02, (100, 3))
        pts = np.vstack([dense, [[0.0, 0.0, 0.0]]])
        result = distance_based_outliers(pts, distance=0.2, fraction=0.95)
        assert result.outlier_mask[100]
        assert result.outlier_mask[:100].mean() < 0.1

    def test_neighbor_counts_match_direct(self, rng):
        pts = rng.random((70, 2))
        result = distance_based_outliers(pts, 0.3, fraction=0.9)
        diff = pts[:, None, :] - pts[None, :, :]
        d2 = np.einsum("ijk,ijk->ij", diff, diff)
        expected = (d2 <= 0.09).sum(axis=1) - 1
        np.testing.assert_array_equal(result.neighbor_counts, expected)

    def test_fraction_one_marks_no_neighbour_points(self, rng):
        pts = rng.random((40, 2))
        result = distance_based_outliers(pts, 0.05, fraction=1.0)
        assert (result.neighbor_counts[result.outlier_mask] == 0).all()

    def test_rejects_bad_fraction(self, rng):
        with pytest.raises(ValueError):
            distance_based_outliers(rng.random((5, 2)), 0.1, fraction=0.0)

    def test_outlier_ids_match_mask(self, rng):
        pts = rng.random((30, 2))
        result = distance_based_outliers(pts, 0.1, fraction=0.9)
        np.testing.assert_array_equal(
            result.outlier_ids, np.nonzero(result.outlier_mask)[0])
        assert result.num_outliers == result.outlier_mask.sum()
