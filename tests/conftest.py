"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.core.result import JoinResult
from repro.storage.disk import SimulatedDisk
from repro.storage.pagefile import PointFile

# Hypothesis profiles: "ci" is fully deterministic (derandomised, no
# wall-clock deadline — shared runners are slow and flaky-deadline
# failures are pure noise); "dev" keeps the example budget small so the
# property tests stay fast locally.  CI selects its profile via
# HYPOTHESIS_PROFILE=ci; any CI environment falls back to it too.
settings.register_profile(
    "ci", deadline=None, derandomize=True, max_examples=40,
    suppress_health_check=[HealthCheck.too_slow])
settings.register_profile(
    "dev", deadline=None, max_examples=20,
    suppress_health_check=[HealthCheck.too_slow])
settings.load_profile(os.environ.get(
    "HYPOTHESIS_PROFILE", "ci" if os.environ.get("CI") else "dev"))


@pytest.fixture
def rng():
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def temp_disk():
    """An anonymous simulated disk, closed after the test."""
    disk = SimulatedDisk()
    yield disk
    disk.close()


def make_file(disk: SimulatedDisk, points: np.ndarray,
              ids: np.ndarray = None) -> PointFile:
    """Write a point array to a fresh point file on ``disk``."""
    pts = np.asarray(points, dtype=np.float64)
    if ids is None:
        ids = np.arange(len(pts), dtype=np.int64)
    pf = PointFile.create(disk, pts.shape[1])
    pf.append(ids, pts)
    pf.close()
    return pf


def canonical(result: JoinResult) -> set:
    """Result pairs as canonical unordered tuples."""
    return result.canonical_pair_set()


def brute_truth(points: np.ndarray, epsilon: float) -> set:
    """Ground-truth unordered pair set by direct computation."""
    pts = np.asarray(points, dtype=np.float64)
    n = len(pts)
    if n < 2:
        return set()
    diff = pts[:, None, :] - pts[None, :, :]
    d2 = np.einsum("ijk,ijk->ij", diff, diff)
    ia, ib = np.nonzero(np.triu(d2 <= epsilon * epsilon, k=1))
    return {(int(a), int(b)) for a, b in zip(ia, ib)}
