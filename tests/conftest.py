"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.result import JoinResult
from repro.storage.disk import SimulatedDisk
from repro.storage.pagefile import PointFile


@pytest.fixture
def rng():
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def temp_disk():
    """An anonymous simulated disk, closed after the test."""
    disk = SimulatedDisk()
    yield disk
    disk.close()


def make_file(disk: SimulatedDisk, points: np.ndarray,
              ids: np.ndarray = None) -> PointFile:
    """Write a point array to a fresh point file on ``disk``."""
    pts = np.asarray(points, dtype=np.float64)
    if ids is None:
        ids = np.arange(len(pts), dtype=np.int64)
    pf = PointFile.create(disk, pts.shape[1])
    pf.append(ids, pts)
    pf.close()
    return pf


def canonical(result: JoinResult) -> set:
    """Result pairs as canonical unordered tuples."""
    return result.canonical_pair_set()


def brute_truth(points: np.ndarray, epsilon: float) -> set:
    """Ground-truth unordered pair set by direct computation."""
    pts = np.asarray(points, dtype=np.float64)
    n = len(pts)
    if n < 2:
        return set()
    diff = pts[:, None, :] - pts[None, :, :]
    d2 = np.einsum("ijk,ijk->ij", diff, diff)
    ia, ib = np.nonzero(np.triu(d2 <= epsilon * epsilon, k=1))
    return {(int(a), int(b)) for a, b in zip(ia, ib)}
