"""Tests for the epsilon grid order (Definition 1, Lemmata 1-3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ego_order import (ego_compare, ego_key, ego_less,
                                  ego_sort_order, ego_sorted,
                                  epsilon_interval, grid_cells,
                                  is_ego_sorted, outside_interval_high,
                                  outside_interval_low, validate_epsilon)

# -- strategies ------------------------------------------------------------

coords = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False,
                   allow_infinity=False, width=64)
epsilons = st.floats(min_value=0.01, max_value=10.0, allow_nan=False)


def point_strategy(dims: int):
    return st.lists(coords, min_size=dims, max_size=dims).map(np.array)


# -- validate_epsilon ------------------------------------------------------

class TestValidateEpsilon:
    def test_accepts_positive(self):
        assert validate_epsilon(0.5) == 0.5

    def test_accepts_integer(self):
        assert validate_epsilon(2) == 2.0

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"),
                                     float("inf"), -0.0])
    def test_rejects_non_positive_or_non_finite(self, bad):
        with pytest.raises(ValueError):
            validate_epsilon(bad)


# -- grid cells ---------------------------------------------------------------

class TestGridCells:
    def test_floor_semantics(self):
        cells = grid_cells(np.array([[0.0, 0.49, 0.51, 0.99, 1.0]]).T, 0.5)
        assert cells[:, 0].tolist() == [0, 0, 1, 1, 2]

    def test_negative_coordinates_floor(self):
        cells = grid_cells(np.array([[-0.1, -0.5, -0.51]]).T, 0.5)
        assert cells[:, 0].tolist() == [-1, -1, -2]

    def test_single_point_shape(self):
        cells = grid_cells(np.array([1.2, 3.4]), 1.0)
        assert cells.tolist() == [1, 3]

    def test_dtype_is_integer(self):
        assert grid_cells(np.array([[1.5]]), 0.5).dtype == np.int64

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            grid_cells(np.array([[1.0]]), 0.0)


# -- the order relation ----------------------------------------------------------

class TestEgoComparator:
    def test_dimension_zero_has_highest_weight(self):
        p = np.array([0.1, 9.9])
        q = np.array([1.1, 0.0])
        assert ego_less(p, q, 1.0)
        assert not ego_less(q, p, 1.0)

    def test_tie_broken_by_later_dimension(self):
        p = np.array([0.5, 0.1])
        q = np.array([0.6, 1.5])
        assert ego_less(p, q, 1.0)

    def test_same_cell_is_unordered(self):
        p = np.array([0.1, 0.2])
        q = np.array([0.3, 0.4])
        assert ego_compare(p, q, 1.0) == 0
        assert not ego_less(p, q, 1.0)
        assert not ego_less(q, p, 1.0)

    @given(point_strategy(3), epsilons)
    def test_irreflexive(self, p, eps):
        assert not ego_less(p, p, eps)

    @given(point_strategy(3), point_strategy(3), epsilons)
    def test_asymmetric(self, p, q, eps):
        if ego_less(p, q, eps):
            assert not ego_less(q, p, eps)

    @given(point_strategy(2), point_strategy(2), point_strategy(2),
           epsilons)
    def test_transitive(self, p, q, r, eps):
        if ego_less(p, q, eps) and ego_less(q, r, eps):
            assert ego_less(p, r, eps)

    @given(point_strategy(3), point_strategy(3), epsilons)
    def test_compare_consistent_with_less(self, p, q, eps):
        c = ego_compare(p, q, eps)
        assert (c == -1) == ego_less(p, q, eps)
        assert (c == 1) == ego_less(q, p, eps)

    @given(point_strategy(4), point_strategy(4), epsilons)
    def test_key_order_equals_comparator(self, p, q, eps):
        """Sorting by ego_key realises exactly the comparator order."""
        kp, kq = ego_key(p, eps), ego_key(q, eps)
        assert (kp < kq) == ego_less(p, q, eps)
        assert (kp == kq) == (ego_compare(p, q, eps) == 0)


# -- sorting ----------------------------------------------------------------

class TestEgoSorting:
    def test_sort_order_is_permutation(self, rng):
        pts = rng.random((50, 3))
        order = ego_sort_order(pts, 0.2)
        assert sorted(order.tolist()) == list(range(50))

    def test_sorted_output_is_ego_sorted(self, rng):
        pts = rng.random((200, 4))
        _ids, spts = ego_sorted(pts, 0.1)
        assert is_ego_sorted(spts, 0.1)

    def test_sorted_keys_non_decreasing(self, rng):
        pts = rng.random((100, 2))
        _ids, spts = ego_sorted(pts, 0.3)
        keys = [ego_key(p, 0.3) for p in spts]
        assert keys == sorted(keys)

    def test_ids_track_points(self, rng):
        pts = rng.random((60, 3))
        ids, spts = ego_sorted(pts, 0.25)
        np.testing.assert_allclose(pts[ids], spts)

    def test_explicit_ids_preserved(self, rng):
        pts = rng.random((10, 2))
        my_ids = np.arange(10, 20, dtype=np.int64)
        ids, spts = ego_sorted(pts, 0.5, ids=my_ids)
        assert set(ids.tolist()) == set(range(10, 20))
        np.testing.assert_allclose(pts[ids - 10], spts)

    def test_deterministic_with_id_tiebreak(self, rng):
        pts = np.zeros((5, 2))  # all in one cell
        ids, _ = ego_sorted(pts, 1.0)
        assert ids.tolist() == [0, 1, 2, 3, 4]

    def test_is_ego_sorted_detects_violation(self):
        pts = np.array([[2.5, 0.0], [0.5, 0.0]])
        assert not is_ego_sorted(pts, 1.0)

    def test_empty_and_single(self):
        assert is_ego_sorted(np.empty((0, 3)), 1.0)
        assert is_ego_sorted(np.array([[1.0, 2.0]]), 1.0)

    def test_rejects_1d_points(self):
        with pytest.raises(ValueError):
            ego_sort_order(np.array([1.0, 2.0]), 1.0)


# -- the eps-interval (Lemmata 2 & 3) ----------------------------------------

class TestEpsilonInterval:
    def test_bounds_shift_by_epsilon(self):
        low, high = epsilon_interval(np.array([1.0, 2.0]), 0.5)
        np.testing.assert_allclose(low, [0.5, 1.5])
        np.testing.assert_allclose(high, [1.5, 2.5])

    @given(point_strategy(3), point_strategy(3), epsilons)
    @settings(max_examples=200)
    def test_lemma2_excluded_points_are_not_mates(self, p, q, eps):
        """q below the eps-interval of p implies distance > eps.

        Up to one float64 ulp: a real-arithmetic distance exceeding eps
        by less than an ulp can round onto the boundary.
        """
        if outside_interval_low(q, p, eps):
            assert np.linalg.norm(p - q) > eps * (1.0 - 1e-12)

    @given(point_strategy(3), point_strategy(3), epsilons)
    @settings(max_examples=200)
    def test_lemma3_excluded_points_are_not_mates(self, p, q, eps):
        """q above the eps-interval of p implies distance > eps (one
        ulp tolerance, as in the lemma-2 test)."""
        if outside_interval_high(q, p, eps):
            assert np.linalg.norm(p - q) > eps * (1.0 - 1e-12)

    @given(point_strategy(2), point_strategy(2), epsilons)
    @settings(max_examples=200)
    def test_join_mates_are_inside_interval(self, p, q, eps):
        """Contrapositive: mates are never outside the interval.

        Pairs whose distance is within one ulp of ε are skipped: the
        lemma holds in real arithmetic, but float64 can round a distance
        that exactly-arithmetically exceeds ε down onto the boundary
        (e.g. ‖[1,0] − [−1e−239,0]‖ rounds to exactly 1.0).
        """
        dist = np.linalg.norm(p - q)
        if dist <= eps * (1.0 - 1e-12):
            assert not outside_interval_low(q, p, eps)
            assert not outside_interval_high(q, p, eps)
