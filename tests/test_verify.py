"""Tests for the differential-verification tooling (``repro.verify``).

Covers the canonical pair-set layer, the oracle registry, the runtime
invariant monitor, the fuzz driver (shrinking, artifacts, replay), the
``repro verify`` CLI — and the mutation smoke tests of the acceptance
criteria: a deliberate off-by-one in the ε-interval bound must be
caught both by the differential oracle and by the invariant hooks.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core import sequence_join
from repro.core.ego_join import ego_self_join
from repro.core.ego_order import lex_less
from repro.core.result import JoinResult
from repro.core.scheduler import EGOScheduler, UnitMeta
from repro.core.sequence_join import JoinContext
from repro.verify import (
    DEFAULT_CONFIGS,
    REGISTRY,
    STORAGE_MODES,
    WORKLOAD_KINDS,
    InvariantMonitor,
    InvariantViolation,
    acceptance_matrix,
    canonical_pairs,
    diff_pairs,
    differential_check,
    dump_artifact,
    generate_workload,
    implementations,
    make_monitor,
    pair_digest,
    parse_budget,
    register,
    replay_artifact,
    run_fuzz,
    run_impl,
    shrink_workload,
)

EPS = 0.25

#: In-memory configurations only — fast enough for tight test loops.
FAST_CONFIGS = (
    ("ego", {"engine": "scalar"}),
    ("ego", {"engine": "vector"}),
    ("ego", {"engine": "matmul"}),
    ("grid_hash", {}),
    ("spatial_hash", {}),
)


@pytest.fixture
def temp_impl():
    """Register a throwaway oracle implementation, always cleaned up."""
    added = []

    def add(name, fn, **kwargs):
        register(name, **kwargs)(fn)
        added.append(name)
        return name

    yield add
    for name in added:
        REGISTRY.pop(name, None)


# -- canonical pair sets -----------------------------------------------------


class TestCanonical:
    def test_orientation_dedup_diagonal(self):
        canon = canonical_pairs([(2, 1), (1, 2), (3, 3), (1, 2), (0, 4)])
        assert canon.tolist() == [[0, 4], [1, 2]]

    def test_ordered_keeps_orientation(self):
        canon = canonical_pairs([(2, 1), (1, 2)], ordered=True)
        assert canon.tolist() == [[1, 2], [2, 1]]

    def test_keep_diagonal(self):
        canon = canonical_pairs([(3, 3), (1, 2)], keep_diagonal=True)
        assert canon.tolist() == [[1, 2], [3, 3]]

    def test_join_result_input(self):
        pts = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0]])
        res = ego_self_join(pts, EPS)
        assert isinstance(res, JoinResult)
        assert canonical_pairs(res).tolist() == [[0, 1]]

    def test_empty_inputs(self):
        assert canonical_pairs([]).shape == (0, 2)
        assert canonical_pairs(np.empty((0, 2))).shape == (0, 2)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match=r"\(n, 2\)"):
            canonical_pairs(np.zeros((3, 3)))

    def test_digest_stable_and_discriminating(self):
        a = canonical_pairs([(0, 1), (1, 2)])
        b = canonical_pairs([(1, 0), (2, 1)])
        c = canonical_pairs([(0, 1), (1, 3)])
        assert pair_digest(a) == pair_digest(b)
        assert pair_digest(a) != pair_digest(c)

    def test_diff_reports_missing_and_extra(self):
        diff = diff_pairs([(0, 1), (1, 2)], [(0, 1), (2, 3)])
        assert not diff.ok
        assert diff.missing.tolist() == [[1, 2]]
        assert diff.extra.tolist() == [[2, 3]]
        text = diff.summary()
        assert "(1, 2)" in text and "(2, 3)" in text
        assert "np.int64" not in text

    def test_diff_identical(self):
        diff = diff_pairs([(1, 0)], [(0, 1)])
        assert diff.ok
        assert "identical" in diff.summary()


# -- workloads ---------------------------------------------------------------


class TestWorkloads:
    @pytest.mark.parametrize("kind", WORKLOAD_KINDS)
    def test_deterministic_in_seed(self, kind):
        a = generate_workload(kind, 50, 4, EPS, seed=7)
        b = generate_workload(kind, 50, 4, EPS, seed=7)
        c = generate_workload(kind, 50, 4, EPS, seed=8)
        assert np.array_equal(a.points, b.points)
        assert not np.array_equal(a.points, c.points)
        assert a.n == 50 and a.dimensions == 4

    def test_boundary_straddles_predicate(self):
        wl = generate_workload("boundary", 60, 3, EPS, seed=1)
        diff = wl.points[:, None, :] - wl.points[None, :, :]
        dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        iu = np.triu_indices(len(wl.points), k=1)
        d = dist[iu]
        # Planted mates sit a few ulps on either side of ε.
        assert ((d <= EPS) & (d > EPS * (1 - 1e-9))).any()
        assert ((d > EPS) & (d < EPS * (1 + 1e-9))).any()

    def test_duplicates_contains_exact_copies(self):
        wl = generate_workload("duplicates", 60, 3, EPS, seed=2)
        uniq = np.unique(wl.points, axis=0)
        assert len(uniq) < len(wl.points)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown workload kind"):
            generate_workload("nope", 10, 2, EPS, seed=0)


# -- oracle registry ---------------------------------------------------------


class TestOracle:
    def test_expected_implementations_registered(self):
        expected = {"ego", "ego_parallel", "ego_external", "ego_rs_files",
                    "brute", "grid_hash", "spatial_hash", "msj", "epskdb",
                    "rsj", "mux", "zorder_rsj"}
        assert expected <= set(REGISTRY)
        assert "ego_external" not in implementations(include_external=False)
        assert "ego_external" in implementations()

    def test_unknown_impl_rejected(self):
        with pytest.raises(KeyError, match="unknown implementation"):
            run_impl("no_such_join", np.zeros((2, 2)), EPS)

    def test_unknown_storage_rejected(self):
        with pytest.raises(ValueError, match="unknown storage mode"):
            run_impl("ego_external", np.zeros((4, 2)), EPS, storage="tape")

    @pytest.mark.parametrize("seed,kind", [(0, "uniform"), (1, "boundary"),
                                           (2, "duplicates"),
                                           (3, "degenerate")])
    def test_differential_sweep_agrees(self, seed, kind):
        wl = generate_workload(kind, 70, 3, EPS, seed=seed)
        report = differential_check(wl.points, EPS, FAST_CONFIGS)
        assert report.ok, report.describe()
        assert report.pair_count == len(run_impl("brute", wl.points, EPS))

    def test_exception_captured_not_raised(self, temp_impl):
        def explode(points, epsilon, ids=None):
            raise RuntimeError("kaboom")

        temp_impl("_test_explode", explode)
        wl = generate_workload("uniform", 20, 2, EPS, seed=0)
        report = differential_check(wl.points, EPS, [("_test_explode", {})])
        assert not report.ok
        assert "RuntimeError: kaboom" in report.failures[0].describe()


# -- external pipeline matrix (satellite: files vs in-memory) ---------------


class TestExternalMatrix:
    @pytest.mark.parametrize("engine", ["scalar", "vector", "matmul"])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_self_join_file_matches_in_memory(self, engine, workers):
        wl = generate_workload("clusters", 90, 3, EPS, seed=11)
        expected = run_impl("ego", wl.points, EPS)
        observed = run_impl("ego_external", wl.points, EPS,
                            engine=engine, workers=workers)
        diff = diff_pairs(expected, observed)
        assert diff.ok, f"{engine}/w{workers}: {diff.summary()}"

    @pytest.mark.parametrize("engine", ["scalar", "vector", "matmul"])
    def test_rs_files_matches_self_join(self, engine):
        wl = generate_workload("boundary", 80, 3, EPS, seed=12)
        expected = run_impl("ego", wl.points, EPS)
        observed = run_impl("ego_rs_files", wl.points, EPS, engine=engine)
        diff = diff_pairs(expected, observed)
        assert diff.ok, f"{engine}: {diff.summary()}"

    @pytest.mark.parametrize("storage", STORAGE_MODES)
    def test_storage_wrappers_match(self, storage):
        wl = generate_workload("duplicates", 70, 3, EPS, seed=13)
        expected = run_impl("ego", wl.points, EPS)
        observed = run_impl("ego_external", wl.points, EPS, storage=storage)
        diff = diff_pairs(expected, observed)
        assert diff.ok, f"{storage}: {diff.summary()}"


# -- acceptance-criteria matrix ---------------------------------------------


class TestAcceptanceMatrix:
    @pytest.mark.parametrize("seed,kind", [(0, "uniform"), (1, "boundary"),
                                           (2, "duplicates")])
    def test_engine_workers_storage_identical(self, seed, kind):
        """Engine × workers {1,4} × storage: byte-identical pair sets."""
        wl = generate_workload(kind, 64, 3, 0.2, seed=seed)
        ok, digests = acceptance_matrix(wl.points, 0.2, workers=(1, 4))
        assert ok, "\n".join(f"{d[:16]}  {label}"
                             for label, d in sorted(digests.items()))
        # Reference + 4 engines × 2 worker counts × 3 storage modes.
        assert len(digests) == 1 + 4 * 2 * 3
        assert len(set(digests.values())) == 1


# -- mutation smoke tests ----------------------------------------------------


def _excluded_missing_widening(s, t, ctx):
    """The Lemma-2 bound with the ε widening (the +1) dropped."""
    if lex_less(s.last_cells, t.first_cells):
        return True
    if lex_less(t.last_cells, s.first_cells):
        return True
    return False


class TestMutationSmoke:
    """A planted off-by-one in the ε-interval bound must be caught."""

    def test_sequence_bound_caught_by_oracle(self, monkeypatch):
        monkeypatch.setattr(sequence_join, "_excluded",
                            _excluded_missing_widening)
        wl = generate_workload("boundary", 90, 3, 0.3, seed=5)
        report = differential_check(
            wl.points, 0.3, [("ego", {"engine": "vector"})])
        assert not report.ok, "mutation survived the differential oracle"
        assert "missing" in report.failures[0].describe()

    def test_sequence_bound_caught_by_invariants(self, monkeypatch):
        monkeypatch.setattr(sequence_join, "_excluded",
                            _excluded_missing_widening)
        wl = generate_workload("boundary", 90, 3, 0.3, seed=5)
        with pytest.raises(InvariantViolation, match="pruning dropped"):
            ego_self_join(wl.points, 0.3, invariants=True)

    def test_scheduler_bound_caught_by_coverage(self, monkeypatch):
        def broken_units_may_join(self, a, b):
            ma, mb = self.meta.get(a), self.meta.get(b)
            if ma is None or mb is None:
                return True
            # Mutation: compare raw last cells, without the ε widening.
            if lex_less(ma.last_cells, mb.first_cells):
                return False
            if lex_less(mb.last_cells, ma.first_cells):
                return False
            return True

        monkeypatch.setattr(EGOScheduler, "_units_may_join",
                            broken_units_may_join)
        wl = generate_workload("uniform", 120, 3, EPS, seed=3)
        with pytest.raises(InvariantViolation, match="never joined"):
            run_impl("ego_external", wl.points, EPS, storage="plain",
                     invariants=True)


# -- invariant monitor -------------------------------------------------------


class TestInvariantMonitor:
    def test_factory(self):
        assert make_monitor(False) is None
        assert isinstance(make_monitor(True), InvariantMonitor)

    def test_context_creates_monitor(self):
        ctx = JoinContext(epsilon=EPS, result=JoinResult(), invariants=True)
        assert isinstance(ctx.monitor, InvariantMonitor)
        assert JoinContext(epsilon=EPS, result=JoinResult()).monitor is None

    def test_pin_balance(self):
        monitor = InvariantMonitor()
        obs = monitor.buffer_observer()
        obs.on_pin("u0")
        with pytest.raises(InvariantViolation, match="unbalanced pins"):
            monitor.assert_pin_balance()
        obs.on_unpin("u0")
        monitor.assert_pin_balance()

    def test_pinned_frame_must_not_be_discarded_or_evicted(self):
        obs = InvariantMonitor().buffer_observer()
        with pytest.raises(InvariantViolation, match="discarded while"):
            obs.on_discard("u1", pinned=True)
        with pytest.raises(InvariantViolation, match="evicted while"):
            obs.on_evict("u1", pinned=True)
        obs.on_discard("u2", pinned=False)
        obs.on_evict("u2", pinned=False)

    def test_gallop_read_once(self):
        monitor = InvariantMonitor()
        monitor.note_gallop_load(3)
        monitor.note_gallop_load(4)
        with pytest.raises(InvariantViolation, match="loaded unit 3 twice"):
            monitor.note_gallop_load(3)

    def test_interval_coverage(self):
        # Two overlapping units: (0, 1) lies inside the ε-interval.
        meta = {
            0: UnitMeta(first_cells=np.array([0, 0]),
                        last_cells=np.array([1, 2])),
            1: UnitMeta(first_cells=np.array([1, 3]),
                        last_cells=np.array([2, 0])),
        }
        monitor = InvariantMonitor()
        monitor.note_unit_pair(0, 0)
        monitor.note_unit_pair(1, 1)
        with pytest.raises(InvariantViolation, match="never joined"):
            monitor.check_interval_coverage(meta, 2)
        monitor.note_unit_pair(0, 1)
        monitor.check_interval_coverage(meta, 2)

    def test_clean_run_matches_baseline(self):
        wl = generate_workload("clusters", 60, 3, EPS, seed=4)
        baseline = run_impl("ego", wl.points, EPS)
        observed = run_impl("ego", wl.points, EPS, invariants=True)
        assert diff_pairs(baseline, observed).ok

    def test_summary_formatting(self):
        monitor = InvariantMonitor()
        monitor.note_gallop_load(0)
        monitor.note_unit_pair(0, 0)
        text = monitor.summary()
        assert "1 gallop loads" in text
        assert "1 unit pairs" in text


# -- fuzz driver -------------------------------------------------------------


class TestFuzz:
    def test_parse_budget(self):
        assert parse_budget("500ms") == pytest.approx(0.5)
        assert parse_budget("45s") == pytest.approx(45.0)
        assert parse_budget("2m") == pytest.approx(120.0)
        assert parse_budget("10") == pytest.approx(10.0)
        with pytest.raises(ValueError, match="cannot parse"):
            parse_budget("soon")
        with pytest.raises(ValueError, match="positive"):
            parse_budget("0s")

    def test_default_configs_are_registered(self):
        for name, _options in DEFAULT_CONFIGS:
            assert name in REGISTRY

    def test_clean_fuzz_run(self):
        report = run_fuzz(seed=0, budget_s=30.0, dimensions=3,
                          max_points=40, configs=FAST_CONFIGS,
                          max_trials=4)
        assert report.ok, report.describe()
        assert report.trials == 4
        assert report.checks >= 4 * len(FAST_CONFIGS)
        assert "OK" in report.describe()

    def test_shrink_isolates_failing_pair(self):
        rng = np.random.default_rng(0)
        points = rng.random((40, 3))
        points[7] = 0.5
        points[23] = 0.5 + 1e-9

        def fails(pts):
            diff = pts[:, None, :] - pts[None, :, :]
            d2 = np.einsum("ijk,ijk->ij", diff, diff)
            np.fill_diagonal(d2, np.inf)
            return bool((d2 < 1e-12).any())

        assert fails(points)
        shrunk = shrink_workload(points, 1e-6, fails)
        assert len(shrunk) == 2
        assert fails(shrunk)

    def test_fuzz_catches_broken_impl_and_replays(self, temp_impl,
                                                  tmp_path):
        def drops_last_pair(points, epsilon, ids=None):
            canon = run_impl("brute", points, epsilon, ids=ids)
            return canon[:-1]

        temp_impl("_test_broken", drops_last_pair)
        report = run_fuzz(seed=0, budget_s=30.0, dimensions=3,
                          max_points=40, configs=[("_test_broken", {})],
                          artifact_dir=str(tmp_path), max_failures=1)
        assert not report.ok
        failure = report.failures[0]
        assert failure.n_shrunk <= failure.n_original
        assert failure.artifact is not None

        with open(failure.artifact) as fh:
            meta = json.load(fh)
        assert meta["format"] == 1
        assert meta["configs"] == [["_test_broken", {}]]
        assert (tmp_path / meta["points_file"]).exists()

        still_fails, detail = replay_artifact(failure.artifact)
        assert still_fails, detail
        assert "_test_broken" in detail

    def test_replay_passes_after_fix(self, temp_impl, tmp_path):
        wl = generate_workload("uniform", 20, 2, EPS, seed=0)
        path = dump_artifact(str(tmp_path), "fail-x", wl.points, EPS,
                             seed=0, kind="uniform",
                             configs=[("brute", {})], detail="planted")
        still_fails, detail = replay_artifact(path)
        assert not still_fails
        assert "passes now" in detail


# -- CLI ---------------------------------------------------------------------


class TestVerifyCLI:
    def test_smoke_run_exits_zero(self, capsys):
        rc = cli_main(["verify", "--seed", "0", "--budget", "1s",
                       "--dims", "3", "--max-points", "40",
                       "--impls", "ego,grid_hash,spatial_hash"])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_bad_budget_exits_two(self, capsys):
        assert cli_main(["verify", "--budget", "soon"]) == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_unknown_impls_exits_two(self, capsys):
        rc = cli_main(["verify", "--impls", "no_such_join"])
        assert rc == 2
        assert "no known implementation" in capsys.readouterr().err

    def test_replay_roundtrip(self, tmp_path, capsys):
        wl = generate_workload("uniform", 20, 2, EPS, seed=0)
        path = dump_artifact(str(tmp_path), "fail-y", wl.points, EPS,
                             seed=0, kind="uniform",
                             configs=[("brute", {})], detail="planted")
        assert cli_main(["verify", "--replay", path]) == 0
        assert "no longer fails" in capsys.readouterr().out
