"""Tests for the spatial hash join."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.joins.spatial_hash import spatial_hash_self_join

from conftest import brute_truth


class TestCorrectness:
    @pytest.mark.parametrize("capacity", [8, 64, 1000])
    def test_matches_brute(self, rng, capacity):
        pts = rng.random((250, 3))
        eps = 0.25
        rep = spatial_hash_self_join(pts, eps, bucket_capacity=capacity)
        assert rep.result.canonical_pair_set() == brute_truth(pts, eps)

    def test_no_duplicates_despite_replication(self, rng):
        pts = rng.random((300, 2))
        rep = spatial_hash_self_join(pts, 0.3, bucket_capacity=32)
        a, b = rep.result.pairs()
        canon = set(zip(np.minimum(a, b).tolist(),
                        np.maximum(a, b).tolist()))
        assert len(canon) == len(a)
        assert (a < b).all()

    def test_single_bucket_degenerates_to_nested_loop(self, rng):
        pts = rng.random((60, 2))
        rep = spatial_hash_self_join(pts, 0.3, bucket_capacity=1000)
        assert rep.extra["buckets"] == 1
        assert rep.result.canonical_pair_set() == brute_truth(pts, 0.3)

    def test_deterministic_by_seed(self, rng):
        pts = rng.random((100, 2))
        a = spatial_hash_self_join(pts, 0.2, seed=5)
        b = spatial_hash_self_join(pts, 0.2, seed=5)
        assert a.result.canonical_pair_set() \
            == b.result.canonical_pair_set()

    def test_empty_input(self):
        rep = spatial_hash_self_join(np.empty((0, 2)), 0.3)
        assert rep.result.count == 0

    def test_rejects_bad_capacity(self, rng):
        with pytest.raises(ValueError):
            spatial_hash_self_join(rng.random((5, 2)), 0.3,
                                   bucket_capacity=0)

    @given(st.integers(min_value=1, max_value=80),
           st.integers(min_value=1, max_value=4),
           st.floats(min_value=0.05, max_value=0.9),
           st.integers(min_value=4, max_value=64),
           st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_property_matches_brute(self, n, d, eps, capacity, seed):
        rng = np.random.default_rng(seed)
        pts = rng.random((n, d))
        rep = spatial_hash_self_join(pts, eps, bucket_capacity=capacity)
        assert rep.result.canonical_pair_set() == brute_truth(pts, eps)


class TestReplication:
    def test_replication_grows_with_epsilon(self, rng):
        """Object replication is the method's ε-dependent cost."""
        pts = rng.random((500, 4))
        small = spatial_hash_self_join(pts, 0.05, bucket_capacity=32)
        large = spatial_hash_self_join(pts, 0.4, bucket_capacity=32)
        assert (large.extra["replication_factor"]
                > small.extra["replication_factor"])

    def test_replication_factor_at_least_one(self, rng):
        """Every point is at least inside its own bucket's region."""
        pts = rng.random((200, 3))
        rep = spatial_hash_self_join(pts, 0.1, bucket_capacity=32)
        assert rep.extra["replication_factor"] >= 1.0
