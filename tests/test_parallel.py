"""Tests for the parallel EGO self-join (the paper's future work)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ego_join import ego_self_join
from repro.core.parallel import (build_tasks, chunk_boundaries,
                                 ego_self_join_parallel)
from repro.core.ego_order import ego_sorted

from conftest import brute_truth


class TestChunkBoundaries:
    def test_covers_everything(self):
        ranges = chunk_boundaries(100, 7)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 100
        for (a, b), (c, _d) in zip(ranges, ranges[1:]):
            assert b == c
            assert a < b

    def test_more_chunks_than_records(self):
        ranges = chunk_boundaries(3, 10)
        assert len(ranges) == 3
        assert all(hi - lo == 1 for lo, hi in ranges)

    def test_zero_records(self):
        assert chunk_boundaries(0, 4) == []

    def test_rejects_zero_chunks(self):
        with pytest.raises(ValueError):
            chunk_boundaries(10, 0)


class TestBuildTasks:
    def test_contains_all_self_tasks(self, rng):
        eps = 0.2
        _ids, pts = ego_sorted(rng.random((50, 2)), eps)
        ranges = chunk_boundaries(50, 5)
        tasks = build_tasks(pts, eps, ranges)
        self_tasks = [t for t in tasks if t[4]]
        assert len(self_tasks) == 5

    def test_distant_chunk_pairs_pruned(self, rng):
        """With a tiny eps, only adjacent chunks can pair up."""
        eps = 0.001
        _ids, pts = ego_sorted(rng.random((1000, 1)), eps)
        ranges = chunk_boundaries(1000, 10)
        tasks = build_tasks(pts, eps, ranges)
        cross = [t for t in tasks if not t[4]]
        # Far fewer than the full 45 cross pairs.
        assert len(cross) < 15

    def test_wide_eps_keeps_all_pairs(self, rng):
        eps = 5.0
        _ids, pts = ego_sorted(rng.random((40, 2)), eps)
        ranges = chunk_boundaries(40, 4)
        tasks = build_tasks(pts, eps, ranges)
        assert len(tasks) == 4 + 6  # all self + all cross pairs


class TestParallelJoin:
    def test_inline_matches_serial(self, rng):
        pts = rng.random((300, 4))
        eps = 0.3
        par = ego_self_join_parallel(pts, eps, workers=1)
        ser = ego_self_join(pts, eps)
        assert par.canonical_pair_set() == ser.canonical_pair_set()

    def test_pool_matches_serial(self, rng):
        pts = rng.random((400, 3))
        eps = 0.25
        par = ego_self_join_parallel(pts, eps, workers=2, chunks=6)
        assert par.canonical_pair_set() == brute_truth(pts, eps)

    def test_no_duplicates_across_tasks(self, rng):
        pts = rng.random((250, 2))
        par = ego_self_join_parallel(pts, 0.4, workers=1, chunks=9)
        a, b = par.pairs()
        canon = set(zip(np.minimum(a, b).tolist(),
                        np.maximum(a, b).tolist()))
        assert len(canon) == len(a)

    def test_single_chunk_degenerates_to_serial(self, rng):
        pts = rng.random((80, 3))
        par = ego_self_join_parallel(pts, 0.3, workers=1, chunks=1)
        assert par.canonical_pair_set() == brute_truth(pts, 0.3)

    def test_custom_ids(self, rng):
        pts = rng.random((60, 2))
        ids = np.arange(500, 560)
        par = ego_self_join_parallel(pts, 0.3, ids=ids, workers=1)
        a, b = par.pairs()
        if len(a):
            assert a.min() >= 500 and b.max() < 560

    def test_empty_input(self):
        par = ego_self_join_parallel(np.empty((0, 2)), 0.5, workers=1)
        assert par.count == 0

    def test_rejects_bad_workers(self, rng):
        with pytest.raises(ValueError):
            ego_self_join_parallel(rng.random((5, 2)), 0.3, workers=0)

    @given(st.integers(min_value=1, max_value=80),
           st.integers(min_value=1, max_value=12),
           st.floats(min_value=0.05, max_value=1.0),
           st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_chunking_invariance(self, n, chunks, eps, seed):
        """Any chunk count yields the same pair set (inline pool)."""
        rng = np.random.default_rng(seed)
        pts = rng.random((n, 3))
        par = ego_self_join_parallel(pts, eps, workers=1, chunks=chunks)
        assert par.canonical_pair_set() == brute_truth(pts, eps)
