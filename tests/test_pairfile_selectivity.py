"""Tests for disk-backed result spilling and selectivity estimation."""

import numpy as np
import pytest

from repro.analysis.selectivity import grid_selectivity, sample_selectivity
from repro.core.ego_join import ego_self_join
from repro.data.synthetic import gaussian_clusters, uniform
from repro.storage.disk import SimulatedDisk
from repro.storage.pairfile import PairFile, SpillingCollector


class TestPairFile:
    def test_round_trip_without_distances(self, temp_disk, rng):
        pf = PairFile.create(temp_disk)
        a = rng.integers(0, 1000, 50)
        b = rng.integers(0, 1000, 50)
        pf.append(a, b)
        pf.close()
        out_a, out_b, out_d = pf.read_all()
        np.testing.assert_array_equal(out_a, a)
        np.testing.assert_array_equal(out_b, b)
        assert out_d is None

    def test_round_trip_with_distances(self, temp_disk, rng):
        pf = PairFile.create(temp_disk, with_distances=True)
        a = rng.integers(0, 100, 30)
        b = rng.integers(0, 100, 30)
        d = rng.random(30)
        pf.append(a, b, distances=d)
        out_a, out_b, out_d = pf.read_all()
        np.testing.assert_array_equal(out_a, a)
        np.testing.assert_allclose(out_d, d)

    def test_reopen(self, temp_disk, rng):
        pf = PairFile.create(temp_disk)
        pf.append(np.array([1, 2]), np.array([3, 4]))
        pf.close()
        reopened = PairFile.open(temp_disk)
        assert reopened.count == 2
        assert not reopened.with_distances

    def test_open_rejects_garbage(self, temp_disk):
        temp_disk.write(0, b"definitely not a pair file at all....")
        with pytest.raises(ValueError):
            PairFile.open(temp_disk)

    def test_missing_distances_rejected(self, temp_disk):
        pf = PairFile.create(temp_disk, with_distances=True)
        with pytest.raises(ValueError):
            pf.append(np.array([1]), np.array([2]))

    def test_range_bounds_checked(self, temp_disk):
        pf = PairFile.create(temp_disk)
        pf.append(np.array([1]), np.array([2]))
        with pytest.raises(IndexError):
            pf.read_range(0, 5)

    def test_iter_batches(self, temp_disk, rng):
        pf = PairFile.create(temp_disk)
        pf.append(rng.integers(0, 9, 25), rng.integers(0, 9, 25))
        sizes = [len(a) for a, _b, _d in pf.iter_batches(batch=10)]
        assert sizes == [10, 10, 5]

    def test_appends_are_sequential_io(self, temp_disk, rng):
        pf = PairFile.create(temp_disk)
        temp_disk.reset_accounting()
        for _ in range(5):
            pf.append(rng.integers(0, 9, 100), rng.integers(0, 9, 100))
        assert temp_disk.counters.random_writes <= 1
        assert temp_disk.counters.sequential_writes >= 4


class TestSpillingCollector:
    def test_spilled_join_matches_live(self, rng):
        pts = rng.random((500, 3))
        eps = 0.15
        live = ego_self_join(pts, eps)
        with SimulatedDisk() as disk:
            pf = PairFile.create(disk)
            collector = SpillingCollector(pf, buffer_pairs=64)
            result = collector.make_result()
            ego_self_join(pts, eps, result=result)
            collector.close()
            a, b, _ = pf.read_all()
            spilled = set(zip(np.minimum(a, b).tolist(),
                              np.maximum(a, b).tolist()))
        assert spilled == live.canonical_pair_set()

    def test_spilling_result_does_not_materialize(self, rng):
        with SimulatedDisk() as disk:
            pf = PairFile.create(disk)
            collector = SpillingCollector(pf)
            result = collector.make_result()
            ego_self_join(rng.random((100, 2)), 0.2, result=result)
            with pytest.raises(RuntimeError):
                result.pairs()
            collector.close()
            assert pf.count == result.count

    def test_distance_pairfile_rejected_for_callbacks(self, temp_disk):
        pf = PairFile.create(temp_disk, with_distances=True)
        collector = SpillingCollector(pf)
        with pytest.raises(ValueError):
            collector.make_result()

    def test_rejects_bad_buffer(self, temp_disk):
        pf = PairFile.create(temp_disk)
        with pytest.raises(ValueError):
            SpillingCollector(pf, buffer_pairs=0)


class TestSelectivity:
    def test_sampling_estimator_accuracy(self):
        pts = uniform(6000, 4, seed=11)
        eps = 0.06
        true = ego_self_join(pts, eps).count
        est = sample_selectivity(pts, eps, len(pts), sample=1500)
        assert est == pytest.approx(true, rel=0.5)

    def test_sampling_estimator_on_clusters(self):
        pts = gaussian_clusters(5000, 4, seed=12)
        eps = 0.03
        true = ego_self_join(pts, eps).count
        est = sample_selectivity(pts, eps, len(pts), sample=1500)
        assert est == pytest.approx(true, rel=0.5)

    def test_grid_estimator_on_uniform(self):
        pts = uniform(6000, 4, seed=13)
        eps = 0.05
        true = ego_self_join(pts, eps).count
        est = grid_selectivity(pts, eps, len(pts))
        assert est == pytest.approx(true, rel=1.0)

    def test_scales_quadratically(self):
        pts = uniform(2000, 3, seed=14)
        small = sample_selectivity(pts, 0.05, 2000, sample=800)
        big = sample_selectivity(pts, 0.05, 4000, sample=800)
        assert big == pytest.approx(4 * small, rel=0.01)

    def test_degenerate_inputs(self):
        assert sample_selectivity(np.zeros((1, 2)), 0.1, 100) == 0.0
        assert grid_selectivity(np.zeros((1, 2)), 0.1, 100) == 0.0

    def test_monotone_in_epsilon(self):
        pts = uniform(3000, 3, seed=15)
        lo = grid_selectivity(pts, 0.02, 3000)
        hi = grid_selectivity(pts, 0.08, 3000)
        assert hi > lo
