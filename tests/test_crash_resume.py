"""Crash/resume tests: kill the external join at scheduled crash points
and assert the resumed run reproduces the uninterrupted result exactly.
"""

import os

import numpy as np
import pytest

from repro.core.ego_join import ego_self_join_file
from repro.storage.disk import SimulatedDisk
from repro.storage.faults import FaultPlan, SimulatedCrash
from repro.storage.integrity import RetryPolicy
from repro.storage.pairfile import PairFile

from conftest import make_file

pytestmark = pytest.mark.faults

EPSILON = 0.25
UNIT_BYTES = 512
BUFFER_UNITS = 4


@pytest.fixture(scope="module")
def dataset():
    return np.random.default_rng(42).random((400, 4))


def run_join(pts, **kwargs):
    with SimulatedDisk() as disk:
        pf = make_file(disk, pts)
        return ego_self_join_file(pf, EPSILON, unit_bytes=UNIT_BYTES,
                                  buffer_units=BUFFER_UNITS, **kwargs)


@pytest.fixture(scope="module")
def baseline(dataset, tmp_path_factory):
    """Uninterrupted checkpointed run: pair set + durable result bytes."""
    ck = tmp_path_factory.mktemp("baseline-ck")
    report = run_join(dataset, checkpoint_dir=str(ck))
    with open(os.path.join(str(ck), "result.prs"), "rb") as fh:
        result_bytes = fh.read()
    return {"pairs": report.result.canonical_pair_set(),
            "count": report.total_pairs,
            "bytes": result_bytes}


# Crash points spread over the pipeline phases: run generation, merge,
# early join, mid join, late join.  Points beyond the run's operation
# count are skipped (xfail-free) via the did-it-crash check below.
CRASH_OPS = [1, 5, 15, 40, 80, 150, 250, 400]


class TestCrashResume:
    @pytest.mark.parametrize("crash_op", CRASH_OPS)
    def test_resume_reproduces_baseline_exactly(self, dataset, baseline,
                                                tmp_path, crash_op):
        ck = str(tmp_path / "ck")
        plan = FaultPlan(seed=1, crash_ops=[crash_op])
        try:
            run_join(dataset, checkpoint_dir=ck, fault_plan=plan)
            pytest.skip(f"pipeline finished before operation {crash_op}")
        except SimulatedCrash:
            pass

        report = run_join(dataset, checkpoint_dir=ck, resume=True,
                          fault_plan=plan.without_crashes())
        assert report.resumed
        assert report.total_pairs == baseline["count"]
        with open(os.path.join(ck, "result.prs"), "rb") as fh:
            assert fh.read() == baseline["bytes"]

    def test_resumed_pair_set_matches_uninterrupted(self, dataset,
                                                    baseline, tmp_path):
        ck = str(tmp_path / "ck")
        plan = FaultPlan(seed=1, crash_ops=[150])
        with pytest.raises(SimulatedCrash):
            run_join(dataset, checkpoint_dir=ck, fault_plan=plan)
        run_join(dataset, checkpoint_dir=ck, resume=True)
        with SimulatedDisk(path=os.path.join(ck, "result.prs")) as disk:
            a, b, _ = PairFile.open(disk).read_all()
        got = {(min(x, y), max(x, y))
               for x, y in zip(a.tolist(), b.tolist())}
        assert got == baseline["pairs"]

    def test_double_crash_then_resume(self, dataset, baseline, tmp_path):
        # Crash the fresh run, crash the first resume, then finish.
        ck = str(tmp_path / "ck")
        with pytest.raises(SimulatedCrash):
            run_join(dataset, checkpoint_dir=ck,
                     fault_plan=FaultPlan(crash_ops=[30]))
        with pytest.raises(SimulatedCrash):
            run_join(dataset, checkpoint_dir=ck, resume=True,
                     fault_plan=FaultPlan(crash_ops=[40]))
        report = run_join(dataset, checkpoint_dir=ck, resume=True)
        assert report.total_pairs == baseline["count"]
        with open(os.path.join(ck, "result.prs"), "rb") as fh:
            assert fh.read() == baseline["bytes"]

    def test_crash_with_background_faults_and_retries(self, dataset,
                                                      baseline, tmp_path):
        # Crash amid transient errors; the resumed run keeps the same
        # error rates (minus the crash) and still reproduces the result.
        ck = str(tmp_path / "ck")
        plan = FaultPlan(seed=6, read_error_rate=0.02, crash_ops=[120])
        with pytest.raises(SimulatedCrash):
            run_join(dataset, checkpoint_dir=ck, fault_plan=plan,
                     retry=RetryPolicy())
        report = run_join(dataset, checkpoint_dir=ck, resume=True,
                          fault_plan=plan.without_crashes(),
                          retry=RetryPolicy())
        assert report.total_pairs == baseline["count"]
        with open(os.path.join(ck, "result.prs"), "rb") as fh:
            assert fh.read() == baseline["bytes"]

    def test_resume_of_completed_run_is_a_noop(self, dataset, baseline,
                                               tmp_path):
        ck = str(tmp_path / "ck")
        run_join(dataset, checkpoint_dir=ck)
        report = run_join(dataset, checkpoint_dir=ck, resume=True)
        assert report.resumed
        assert report.total_pairs == baseline["count"]
        assert report.io.total_accesses == 0  # nothing was re-done
        with open(os.path.join(ck, "result.prs"), "rb") as fh:
            assert fh.read() == baseline["bytes"]

    def test_resume_requires_checkpoint_dir(self, dataset):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            run_join(dataset, resume=True)

    def test_fresh_run_resets_stale_journal(self, dataset, baseline,
                                            tmp_path):
        ck = str(tmp_path / "ck")
        with pytest.raises(SimulatedCrash):
            run_join(dataset, checkpoint_dir=ck,
                     fault_plan=FaultPlan(crash_ops=[60]))
        # resume=False starts over, ignoring the journal.
        report = run_join(dataset, checkpoint_dir=ck)
        assert not report.resumed
        assert report.total_pairs == baseline["count"]
