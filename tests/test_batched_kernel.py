"""Tests for the batched cross-leaf GEMM engine and the precision
bugfixes that shipped with it.

Three areas:

* ``floor_cells`` — the rounding-safe grid cell mapping.  The hardcoded
  instances below were found by random search and verified with exact
  rational arithmetic; on each of them the pre-fix ``np.floor(x / w)``
  places the coordinate one cell too high, so these tests fail on the
  raw-floor code.
* the centered Gram expansion — on translated data the pre-fix slack
  (computed from raw norms) exceeds ε² and forces every windowed
  candidate through exact re-verification; the centered kernel keeps
  the re-verified count proportional to the accepts.
* the ``"batched"`` engine — :class:`LeafBatch` /
  :func:`pairs_within_batched` units, pair-stream identity with the
  per-leaf engines, knob plumbing, oracle/metamorphic sweeps and the
  batch metrics.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.distance import natural_ordering, pairs_within_scalar
from repro.core.ego_join import ego_join, ego_self_join
from repro.core.ego_order import floor_cells, grid_cells
from repro.core.kernels import (DEFAULT_BATCH_LEAVES, DEFAULT_BATCH_POINTS,
                                LeafBatch, ScratchBuffers, candidate_windows,
                                pairs_within_batched, pairs_within_matmul,
                                select_engine)
from repro.core.metrics import get_metric
from repro.core.result import JoinResult
from repro.core.sequence import Sequence
from repro.core.sequence_join import JoinContext, join_sequences
from repro.obs.metrics import MetricsRegistry
from repro.storage.stats import CPUCounters
from repro.verify import run_impl, run_relations

from conftest import brute_truth

#: ``(coordinate, cell width, real-arithmetic floor(coordinate / width))``
#: triples on which ``floor(fl(x / w))`` lands one cell high because the
#: correctly rounded quotient crosses the integer.  Verified with
#: ``Fraction`` arithmetic (re-checked in the test itself).
RAW_FLOOR_REGRESSIONS = [
    (36421541.01575448, 0.12019024292655811, 303032426),
    (1417445.7668127185, 0.001433268844161744, 988960146),
    (308232.84540794283, 0.0012453101530902563, 247514921),
    (-14787.982199769922, 9.8455451938731e-05, -150199730),
    (770162.9426907644, 0.001407584380744777, 547152236),
    (-116361.55700563421, 0.00019174222567174692, -606864538),
]

#: The extended-precision correction is exact only where ``longdouble``
#: is wider than ``float64`` (x86 Linux: 63-bit mantissa).
LONGDOUBLE_IS_WIDER = np.finfo(np.longdouble).nmant > 52


def exact_floor(x: float, w: float) -> int:
    """Real-arithmetic ``floor(x / w)`` via rational arithmetic."""
    return int((Fraction(x) / Fraction(w)).__floor__())


def stream_pairs(result: JoinResult):
    """The raw (uncanonicalised) pair stream as a list of tuples."""
    ia, ib = result.pairs()
    return list(zip(ia.tolist(), ib.tolist()))


class TestFloorCellsRegression:
    @pytest.mark.parametrize("x,w,truth", RAW_FLOOR_REGRESSIONS)
    def test_known_instances(self, x, w, truth):
        assert exact_floor(x, w) == truth  # the instance is as documented
        raw = int(np.floor(np.float64(x) / np.float64(w)))
        assert raw == truth + 1, "instance no longer exercises the bug"
        if LONGDOUBLE_IS_WIDER:
            assert int(floor_cells(np.array([x]), w)[0]) == truth

    @pytest.mark.skipif(not LONGDOUBLE_IS_WIDER,
                        reason="longdouble no wider than float64")
    def test_matches_rational_floor_near_boundaries(self):
        """On boundary-adjacent data the fixed mapping is the real floor."""
        rng = np.random.default_rng(7)
        for _ in range(40):
            w = float(rng.uniform(1e-4, 0.5))
            k = rng.integers(-10**6, 10**6, size=64)
            # Exact cell-boundary multiples, then the float64 neighbours
            # of each — the region where raw floor mis-rounds.
            bounds = np.array([float(Fraction(int(ki)) * Fraction(w))
                               for ki in k])
            xs = np.concatenate([bounds,
                                 np.nextafter(bounds, np.inf),
                                 np.nextafter(bounds, -np.inf)])
            got = floor_cells(xs, w)
            for x, c in zip(xs.tolist(), got.tolist()):
                assert c == exact_floor(x, w)

    def test_monotone_in_x(self):
        rng = np.random.default_rng(11)
        for _ in range(20):
            w = float(rng.uniform(1e-4, 1.0))
            xs = np.sort(rng.normal(scale=1e6, size=200))
            cells = floor_cells(xs, w)
            assert (np.diff(cells) >= 0).all()

    def test_cell_brackets_coordinate(self):
        """``c·w ≤ x < (c+1)·w`` in extended precision, any platform."""
        rng = np.random.default_rng(3)
        w = 0.001433268844161744
        xs = rng.uniform(-1e6, 1e6, size=500)
        c = floor_cells(xs, w).astype(np.longdouble)
        wide = np.longdouble(w)
        assert (c * wide <= xs.astype(np.longdouble)).all()
        assert ((c + 1.0) * wide > xs.astype(np.longdouble)).all()

    def test_shape_and_negative_handling(self):
        pts = np.array([[-0.3, 0.0], [0.3, 1.0]])
        cells = floor_cells(pts, 0.25)
        assert cells.shape == pts.shape
        assert cells.tolist() == [[-2, 0], [1, 4]]
        assert grid_cells(pts, 0.25).tolist() == cells.tolist()

    def test_windows_sound_on_translated_boundary_data(self):
        """Candidate windows drop no true mate on cell-boundary data far
        from the origin (the pre-fix failure mode)."""
        rng = np.random.default_rng(23)
        eps = 0.001433268844161744
        offsets = (-5e6, 0.0, 1e8)
        for off in offsets:
            # Coordinates hugging cell boundaries around the offset.
            k = np.rint(off / eps) + rng.integers(0, 40, size=120)
            base = k * eps
            jitter = rng.uniform(-0.6 * eps, 0.6 * eps, size=(120, 2))
            pts = np.stack([base, base], axis=1) + jitter
            ids = np.argsort(floor_cells(pts[:, 0], eps), kind="stable")
            pts = pts[ids]
            lo, hi = candidate_windows(pts, pts, 0, eps)
            truth = brute_truth(pts, eps)
            for i, j in truth:
                assert lo[i] <= j < hi[i], (off, i, j)
                assert lo[j] <= i < hi[j], (off, i, j)


class TestCenteredSlackRegression:
    def _cluster(self, offset, n=150, d=4, eps=0.05, seed=5):
        rng = np.random.default_rng(seed)
        return rng.uniform(0, 1, size=(n, d)) + offset, eps

    @pytest.mark.parametrize("offset", [0.0, 1e6, -5e6, 1e8])
    def test_matches_scalar_on_translated_clusters(self, offset):
        pts, eps = self._cluster(offset)
        order = natural_ordering(pts.shape[1])
        sa, sb = pairs_within_scalar(pts, pts, eps * eps, order,
                                     upper_triangle=True)
        ma, mb = pairs_within_matmul(pts, pts, eps * eps, order,
                                     upper_triangle=True)
        assert set(zip(sa.tolist(), sb.tolist())) \
            == set(zip(ma.tolist(), mb.tolist()))

    @pytest.mark.parametrize("offset", [1e6, 1e8])
    def test_reverification_stays_bounded_far_from_origin(self, offset):
        """Pre-fix, the raw-norm slack at these offsets exceeds ε², so
        *every* candidate is re-verified (n·(n−1)/2 here); centered, the
        re-verified count tracks the accepts."""
        pts, eps = self._cluster(offset)
        order = natural_ordering(pts.shape[1])
        reg = MetricsRegistry()
        ia, _ib = pairs_within_matmul(pts, pts, eps * eps, order,
                                      upper_triangle=True, metrics=reg)
        reverified = reg.get("ego_gemm_reverified_total").value
        n = len(pts)
        all_candidates = n * (n - 1) // 2
        assert reverified <= 4 * max(len(ia), 1) + 64
        assert reverified < all_candidates // 4

    def test_batched_reverification_stays_bounded(self, rng):
        pts = rng.uniform(0, 1, size=(200, 3)) + 1e8
        eps = 0.05
        batch = LeafBatch()
        for s in range(0, len(pts), 50):
            blk = pts[s:s + 50]
            batch.add(blk, blk, None, True)
        reg = MetricsRegistry()
        results = pairs_within_batched(batch, eps * eps, metrics=reg)
        accepts = sum(len(ia) for ia, _ in results)
        reverified = reg.get("ego_gemm_reverified_total").value
        assert reverified <= 4 * max(accepts, 1) + 64


class TestScratchBuffers:
    def test_invalid_slot_rejected(self):
        scratch = ScratchBuffers(8)
        with pytest.raises(ValueError):
            scratch.norms(np.ones((2, 2)), "c")

    def test_slots_never_alias_under_interleaved_growth(self, rng):
        scratch = ScratchBuffers(4)
        a_small = rng.random((4, 3))
        b_small = rng.random((4, 3))
        na = scratch.norms(a_small, "a")
        nb = scratch.norms(b_small, "b")
        assert na.base is not nb.base
        # Growing "a" must not move or clobber the live "b" view.
        b_expect = np.einsum("ij,ij->i", b_small, b_small)
        a_big = rng.random((64, 3))
        na2 = scratch.norms(a_big, "a")
        np.testing.assert_array_equal(nb, b_expect)
        assert na2.base is not nb.base
        # ...and vice versa, after "b" grows past "a".
        b_big = rng.random((128, 3))
        nb2 = scratch.norms(b_big, "b")
        np.testing.assert_allclose(
            na2, np.einsum("ij,ij->i", a_big, a_big))
        assert nb2.base is not na2.base

    def test_stale_view_keeps_old_values(self, rng):
        scratch = ScratchBuffers(4)
        first = rng.random((4, 2))
        view = scratch.norms(first, "a")
        kept = view.copy()
        scratch.norms(rng.random((64, 2)), "a")  # grows, reallocates
        np.testing.assert_array_equal(view, kept)


class TestLeafBatch:
    def test_validation(self):
        with pytest.raises(ValueError):
            LeafBatch(max_points=0)
        with pytest.raises(ValueError):
            LeafBatch(max_leaves=0)

    def test_fills_by_points_or_leaves(self):
        batch = LeafBatch(max_points=10, max_leaves=100)
        blk = np.zeros((3, 2))
        assert not batch.full
        batch.add(blk, blk, None, False)
        assert not batch.full and len(batch) == 1
        batch.add(blk, blk, None, True)
        assert batch.full  # 12 stacked rows >= 10
        by_leaves = LeafBatch(max_points=10**9, max_leaves=2)
        by_leaves.add(blk, blk, None, False)
        by_leaves.add(blk, blk, None, False)
        assert by_leaves.full

    def test_clear_resets(self):
        batch = LeafBatch()
        blk = np.zeros((2, 2))
        batch.add(blk, blk, None, False, payload="x")
        batch.clear()
        assert len(batch) == 0 and batch.points == 0 \
            and not batch.payloads

    def test_empty_batch_evaluates_to_nothing(self):
        assert pairs_within_batched(LeafBatch(), 0.1) == []


class TestBatchedKernel:
    def _random_batch(self, rng, entries, d, eps):
        """A batch of mixed self/cross leaf pairs plus matmul references."""
        batch = LeafBatch()
        refs = []
        for e in range(entries):
            na = int(rng.integers(0, 40))
            if e % 2 == 0:
                a = b = rng.random((na, d))
                upper = True
            else:
                a = rng.random((na, d))
                b = rng.random((int(rng.integers(0, 40)), d))
                upper = False
            windows = None
            if e % 3 == 0 and len(a) and len(b):
                order_b = np.argsort(floor_cells(b[:, 0], eps),
                                     kind="stable")
                b = b[order_b]
                if upper:
                    a = b
                windows = candidate_windows(a, b, 0, eps)
            batch.add(a, b, windows, upper)
            refs.append(pairs_within_matmul(
                a, b, eps * eps, natural_ordering(d),
                upper_triangle=upper, return_sq_distances=True,
                windows=windows))
        return batch, refs

    @given(st.integers(min_value=1, max_value=12),
           st.integers(min_value=1, max_value=6),
           st.floats(min_value=0.05, max_value=0.8),
           st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_matches_matmul_per_entry(self, entries, d, eps, seed):
        rng = np.random.default_rng(seed)
        batch, refs = self._random_batch(rng, entries, d, eps)
        results = pairs_within_batched(batch, eps * eps,
                                       return_sq_distances=True)
        assert len(results) == entries
        for (ia, ib, dist), (ra, rb, rd) in zip(results, refs):
            np.testing.assert_array_equal(ia, ra)
            np.testing.assert_array_equal(ib, rb)
            np.testing.assert_array_equal(dist, rd)

    def test_blocking_invariance(self, rng):
        batch, refs = self._random_batch(rng, 8, 4, 0.4)
        for block in (1, 7, 64, 2048):
            got = pairs_within_batched(batch, 0.16,
                                       scratch=ScratchBuffers(block))
            for (ia, ib), (ra, rb, _rd) in zip(got, refs):
                np.testing.assert_array_equal(ia, ra)
                np.testing.assert_array_equal(ib, rb)

    def test_counters_charge_windowed_candidates(self, rng):
        a = rng.random((10, 3))
        batch = LeafBatch()
        batch.add(a, a, None, True)
        b = rng.random((6, 3))
        batch.add(a, b, None, False)
        c = CPUCounters()
        pairs_within_batched(batch, 0.1, counters=c)
        expected = 10 * 9 // 2 + 10 * 6
        assert c.distance_calculations == expected
        assert c.dimension_evaluations == expected * 3

    def test_entries_with_empty_blocks(self):
        batch = LeafBatch()
        batch.add(np.empty((0, 2)), np.ones((3, 2)), None, False)
        batch.add(np.zeros((2, 2)), np.zeros((2, 2)) + 1e-9, None, False)
        results = pairs_within_batched(batch, 0.5)
        assert len(results[0][0]) == 0
        assert len(results[1][0]) == 4


class TestBatchedEngineSelection:
    def test_explicit_batched_passes_through(self):
        assert select_engine("batched", 8, 8, 2) == "batched"
        assert select_engine("batched", 512, 512, 32) == "batched"

    def test_batched_non_euclidean_falls_back(self):
        m = get_metric("manhattan")
        assert select_engine("batched", 8, 8, 2, m) == "vector"

    def test_auto_small_leaf_batches_when_batching(self):
        assert select_engine("auto", 8, 8, 4, batching=True) == "batched"
        assert select_engine("auto", 8, 8, 4, batching=False) == "vector"

    def test_auto_large_leaf_still_matmul(self):
        assert select_engine("auto", 256, 256, 16, batching=True) \
            == "matmul"

    def test_context_accepts_batched_and_knobs(self):
        ctx = JoinContext(epsilon=0.1, result=JoinResult(),
                          engine="batched")
        assert ctx.engine == "batched"
        assert ctx.batch_points == DEFAULT_BATCH_POINTS
        assert ctx.batch_leaves == DEFAULT_BATCH_LEAVES
        ctx = JoinContext(epsilon=0.1, result=JoinResult(),
                          batch_points=7, batch_leaves=2)
        assert ctx.batch.max_points == 7
        assert ctx.batch.max_leaves == 2

    @pytest.mark.parametrize("bad", [{"batch_points": 0},
                                     {"batch_leaves": -1}])
    def test_context_rejects_bad_knobs(self, bad):
        with pytest.raises(ValueError):
            JoinContext(epsilon=0.1, result=JoinResult(), **bad)


class TestBatchedEngineEndToEnd:
    @pytest.mark.parametrize("offset", [0.0, -5e6, 1e8])
    def test_stream_identical_to_vector(self, rng, offset):
        pts = rng.random((300, 4)) + offset
        eps = 0.15
        ref = ego_self_join(pts, eps, engine="vector")
        got = ego_self_join(pts, eps, engine="batched")
        assert stream_pairs(got) == stream_pairs(ref)

    def test_stream_identical_with_tiny_batches(self, rng):
        """Flush boundaries (points- and leaves-triggered) don't reorder
        or drop pairs."""
        pts = rng.random((250, 3))
        eps = 0.2
        ref = stream_pairs(ego_self_join(pts, eps, engine="vector"))
        for bp, bl in ((64, 3), (1, 1), (10**6, 10**6)):
            got = ego_self_join(pts, eps, engine="batched",
                                batch_points=bp, batch_leaves=bl)
            assert stream_pairs(got) == ref

    def test_auto_mixes_batched_and_matmul(self, rng):
        """auto drains the pending batch before a matmul leaf emits, so
        the mixed stream still equals the vector stream."""
        pts = rng.random((400, 6))
        eps = 0.2
        ref = ego_self_join(pts, eps, engine="vector", minlen=48)
        got = ego_self_join(pts, eps, engine="auto", minlen=48)
        assert stream_pairs(got) == stream_pairs(ref)

    def test_rs_join_matches_vector(self, rng):
        r = rng.random((180, 3))
        s = rng.random((150, 3))
        ref = ego_join(r, s, 0.2, engine="vector")
        got = ego_join(r, s, 0.2, engine="batched")
        assert stream_pairs(got) == stream_pairs(ref)

    def test_collect_distances_matches_matmul(self, rng):
        pts = rng.random((200, 4))
        res_b = JoinResult(collect_distances=True)
        res_m = JoinResult(collect_distances=True)
        ego_self_join(pts, 0.25, engine="batched", result=res_b)
        ego_self_join(pts, 0.25, engine="matmul", result=res_m)

        def dist_map(res):
            ia, ib = res.pairs()
            keys = [(min(i, j), max(i, j))
                    for i, j in zip(ia.tolist(), ib.tolist())]
            return dict(zip(keys, res.distances().tolist()))

        assert dist_map(res_b) == dist_map(res_m)

    def test_non_euclidean_falls_back(self, rng):
        pts = rng.random((120, 3))
        ref = ego_self_join(pts, 0.2, engine="vector",
                            metric="manhattan").canonical_pair_set()
        got = ego_self_join(pts, 0.2, engine="batched",
                            metric="manhattan").canonical_pair_set()
        assert got == ref

    def test_invariants_monitor_sees_batched_leaves(self, rng):
        pts = rng.random((150, 3))
        ref = ego_self_join(pts, 0.2, engine="vector").canonical_pair_set()
        got = ego_self_join(pts, 0.2, engine="batched",
                            invariants=True).canonical_pair_set()
        assert got == ref

    def test_flush_on_return_covers_partial_batches(self, rng):
        """A batch smaller than both knobs is still flushed by
        join_sequences before it returns."""
        pts = rng.random((40, 2))
        eps = 0.3
        ctx = JoinContext(epsilon=eps, result=JoinResult(),
                          engine="batched", batch_points=10**6,
                          batch_leaves=10**6)
        from repro.core.ego_order import ego_sorted
        ids, spts = ego_sorted(pts, eps)
        seq = Sequence(ids, spts, eps)
        join_sequences(seq, seq, ctx)
        assert len(ctx.batch) == 0
        got = {(min(i, j), max(i, j))
               for i, j in stream_pairs(ctx.result)}
        assert got == brute_truth(pts, eps)

    def test_batch_metrics_recorded(self, rng):
        pts = rng.random((300, 3))
        reg = MetricsRegistry()
        res = JoinResult()
        ctx = JoinContext(epsilon=0.15, result=res, engine="batched",
                          metrics=reg)
        from repro.core.ego_order import ego_sorted
        ids, spts = ego_sorted(pts, 0.15)
        seq = Sequence(ids, spts, 0.15)
        join_sequences(seq, seq, ctx)
        assert reg.get("ego_kernel_batches_total").value > 0
        assert reg.get("ego_kernel_batch_leaves").count > 0
        assert reg.get("ego_kernel_batch_points").count > 0
        assert reg.get("ego_gemm_tiles_total").value > 0
        assert reg.get("ego_leaf_joins_total").value_of("batched") > 0


class TestBatchedVerification:
    def test_oracle_row_matches_brute(self, rng):
        pts = rng.random((120, 3))
        ref = run_impl("brute", pts, 0.2)
        got = run_impl("ego", pts, 0.2, engine="batched")
        np.testing.assert_array_equal(got, ref)

    def test_metamorphic_relations_hold(self, rng):
        pts = rng.random((80, 3))
        for report in run_relations("ego", pts, 0.25, seed=4,
                                    engine="batched"):
            assert report.ok, report.describe()

    @pytest.mark.parametrize("storage", ["plain", "crash_resume",
                                         "worker_faults"])
    def test_external_pipeline_batched(self, rng, storage):
        pts = rng.random((90, 3))
        ref = run_impl("ego", pts, 0.2)
        workers = 2 if storage == "worker_faults" else 1
        got = run_impl("ego_external", pts, 0.2, engine="batched",
                       storage=storage, workers=workers)
        np.testing.assert_array_equal(got, ref)
