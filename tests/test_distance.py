"""Tests for the early-abort distance test and dimension ordering (§4.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.distance import (dimension_ordering, distance_below_eps,
                                 natural_ordering, pairs_within_scalar,
                                 pairs_within_vector, pairwise_sq_distances)
from repro.core.ego_order import ego_sorted
from repro.core.sequence import Sequence
from repro.storage.stats import CPUCounters


def seq_of(points, epsilon):
    ids, pts = ego_sorted(np.asarray(points, dtype=float), epsilon)
    return Sequence(ids, pts, epsilon)


class TestDistanceBelowEps:
    def test_within(self):
        order = natural_ordering(2)
        assert distance_below_eps(np.array([0.0, 0.0]),
                                  np.array([0.3, 0.4]), 0.25, order)

    def test_boundary_inclusive(self):
        order = natural_ordering(2)
        assert distance_below_eps(np.array([0.0, 0.0]),
                                  np.array([0.6, 0.8]), 1.0, order)

    def test_outside(self):
        order = natural_ordering(2)
        assert not distance_below_eps(np.array([0.0, 0.0]),
                                      np.array([1.0, 1.0]), 1.0, order)

    def test_early_abort_counts_fewer_dimensions(self):
        p = np.zeros(8)
        q = np.zeros(8)
        q[0] = 10.0  # first dimension already exceeds
        counters = CPUCounters()
        assert not distance_below_eps(p, q, 1.0, natural_ordering(8),
                                      counters)
        assert counters.dimension_evaluations == 1
        assert counters.distance_calculations == 1

    def test_full_evaluation_when_within(self):
        counters = CPUCounters()
        assert distance_below_eps(np.zeros(5), np.zeros(5), 1.0,
                                  natural_ordering(5), counters)
        assert counters.dimension_evaluations == 5

    def test_order_changes_abort_position(self):
        p = np.zeros(4)
        q = np.array([0.1, 0.1, 0.1, 9.0])
        eps_sq = 1.0
        natural = CPUCounters()
        distance_below_eps(p, q, eps_sq, natural_ordering(4), natural)
        best = CPUCounters()
        distance_below_eps(p, q, eps_sq,
                           np.array([3, 0, 1, 2], dtype=np.intp), best)
        assert natural.dimension_evaluations == 4
        assert best.dimension_evaluations == 1


class TestEnginesAgree:
    @given(st.integers(min_value=0, max_value=12),
           st.integers(min_value=0, max_value=12),
           st.integers(min_value=1, max_value=6),
           st.floats(min_value=0.05, max_value=2.0),
           st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_pairs_and_counters_identical(self, na, nb, d, eps, seed):
        rng = np.random.default_rng(seed)
        a = rng.random((na, d))
        b = rng.random((nb, d))
        order = np.asarray(rng.permutation(d), dtype=np.intp)
        cs, cv = CPUCounters(), CPUCounters()
        sa, sb = pairs_within_scalar(a, b, eps * eps, order, cs)
        va, vb = pairs_within_vector(a, b, eps * eps, order, cv)
        assert set(zip(sa.tolist(), sb.tolist())) \
            == set(zip(va.tolist(), vb.tolist()))
        assert cs.distance_calculations == cv.distance_calculations
        assert cs.dimension_evaluations == cv.dimension_evaluations

    @given(st.integers(min_value=2, max_value=10),
           st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_upper_triangle_mode_agrees(self, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.random((n, 3))
        order = natural_ordering(3)
        cs, cv = CPUCounters(), CPUCounters()
        sa, sb = pairs_within_scalar(a, a, 0.25, order, cs,
                                     upper_triangle=True)
        va, vb = pairs_within_vector(a, a, 0.25, order, cv,
                                     upper_triangle=True)
        assert set(zip(sa.tolist(), sb.tolist())) \
            == set(zip(va.tolist(), vb.tolist()))
        assert (sa < sb).all()
        assert cs.dimension_evaluations == cv.dimension_evaluations

    def test_vector_without_counters_same_pairs(self, rng):
        a = rng.random((20, 4))
        order = natural_ordering(4)
        va, vb = pairs_within_vector(a, a, 0.1, order, counters=None)
        ca, cb = pairs_within_vector(a, a, 0.1, order,
                                     counters=CPUCounters())
        assert set(zip(va.tolist(), vb.tolist())) \
            == set(zip(ca.tolist(), cb.tolist()))

    def test_empty_inputs(self):
        order = natural_ordering(2)
        ia, ib = pairs_within_vector(np.empty((0, 2)), np.empty((3, 2)),
                                     1.0, order)
        assert len(ia) == 0 == len(ib)


class TestDimensionOrdering:
    def test_neighboring_inactive_comes_first(self):
        """Sequences aligned in d0, neighboring in d1 → d1 leads."""
        eps = 1.0
        s = seq_of([[0.2, 0.2, 0.5], [0.8, 0.8, 0.6]], eps)
        t = seq_of([[0.3, 1.2, 0.5], [0.7, 1.8, 0.4]], eps)
        assert s.active_dimension() is None
        assert t.active_dimension() is None
        order = dimension_ordering(s, t)
        assert order[0] == 1                       # neighboring inactive
        assert set(order[1:].tolist()) == {0, 2}   # aligned inactive last

    def test_order_is_permutation(self, rng):
        eps = 0.25
        s = seq_of(rng.random((8, 6)), eps)
        t = seq_of(rng.random((8, 6)), eps)
        order = dimension_ordering(s, t)
        assert sorted(order.tolist()) == list(range(6))

    def test_active_before_aligned(self):
        eps = 1.0
        # d0 aligned-inactive for both; s has active d1.
        s = seq_of([[0.2, 0.2], [0.8, 1.8]], eps)
        t = seq_of([[0.3, 0.1], [0.7, 0.2]], eps)
        assert s.active_dimension() == 1
        order = dimension_ordering(s, t)
        assert order.tolist() == [1, 0]

    def test_unspecified_before_active(self):
        eps = 1.0
        # 3-d: d0 active for both; d1, d2 unspecified.
        s = seq_of([[0.5, 0.5, 0.5], [1.5, 0.6, 0.7]], eps)
        t = seq_of([[0.6, 0.1, 0.2], [1.6, 0.3, 0.2]], eps)
        assert s.active_dimension() == 0
        order = dimension_ordering(s, t)
        assert order.tolist() == [1, 2, 0]

    def test_natural_ordering(self):
        assert natural_ordering(4).tolist() == [0, 1, 2, 3]


class TestPairwiseSqDistances:
    def test_matches_norm(self, rng):
        a, b = rng.random((5, 3)), rng.random((7, 3))
        d2 = pairwise_sq_distances(a, b)
        for i in range(5):
            for j in range(7):
                assert d2[i, j] == pytest.approx(
                    np.linalg.norm(a[i] - b[j]) ** 2)
