"""Tests for the S³J/MSJ level-file structures and join."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.index.msj import (LevelFiles, cell_at_level,
                             level_zero_probability, point_levels)
from repro.joins.msj_join import msj_self_join

from conftest import brute_truth


class TestPointLevels:
    def test_cube_crossing_midplane_is_level_zero(self):
        pts = np.array([[0.5, 0.25]])  # cube straddles x=0.5
        levels = point_levels(pts, 0.1)
        assert levels[0] == 0

    def test_tiny_cube_deep_level(self):
        pts = np.array([[0.3, 0.3]])
        levels = point_levels(pts, 1e-6)
        assert levels[0] >= 10

    def test_level_meaning(self, rng):
        """Both cube corners share the level cell; they differ one level
        deeper (unless capped)."""
        eps = 0.07
        pts = rng.random((50, 2))
        levels = point_levels(pts, eps, max_level=12)
        lo = np.clip(pts - eps / 2, 0.0, 1.0 - 1e-12)
        hi = np.clip(pts + eps / 2, 0.0, 1.0 - 1e-12)
        for p in range(50):
            l = int(levels[p])
            assert (np.floor(lo[p] * (1 << l))
                    == np.floor(hi[p] * (1 << l))).all()
            if l < 12:
                deeper = 1 << (l + 1)
                assert (np.floor(lo[p] * deeper)
                        != np.floor(hi[p] * deeper)).any()

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            point_levels(np.array([0.5, 0.5]), 0.1)

    def test_level_zero_fraction_matches_analytic(self):
        """Monte-Carlo level-0 rate ≈ 1 − (1 − ε)^d (the §2.2 effect)."""
        rng = np.random.default_rng(0)
        eps, d = 0.1, 8
        pts = rng.random((20000, d))
        levels = point_levels(pts, eps)
        measured = (levels == 0).mean()
        assert measured == pytest.approx(
            level_zero_probability(eps, d), abs=0.02)

    def test_level_zero_probability_grows_with_dimension(self):
        assert (level_zero_probability(0.1, 16)
                > level_zero_probability(0.1, 8)
                > level_zero_probability(0.1, 2))


class TestLevelFiles:
    def test_levels_partition_points(self, rng):
        pts = rng.random((200, 3))
        lf = LevelFiles(pts, 0.1)
        assert sum(lf.level_sizes.values()) == 200

    def test_cells_group_points_correctly(self, rng):
        pts = rng.random((100, 2))
        structure = LevelFiles(pts, 0.15)
        for level, lf in structure.files.items():
            for cell, idx in lf.cells.items():
                cells = cell_at_level(pts[idx], level)
                assert (cells == np.array(cell)).all()

    def test_ancestor_cell(self, rng):
        lf = LevelFiles(rng.random((10, 2)), 0.1)
        assert lf.ancestor_cell((13, 7), 4, 2) == (3, 1)
        assert lf.ancestor_cell((13, 7), 4, 4) == (13, 7)
        with pytest.raises(ValueError):
            lf.ancestor_cell((1, 1), 2, 3)

    def test_resident_fraction_bounds(self, rng):
        pts = rng.random((500, 8))
        frac = LevelFiles(pts, 0.2).average_resident_fraction()
        assert 0.0 < frac <= 1.0

    def test_resident_fraction_grows_with_dimension(self, rng):
        """The paper's §2.2 criticism: high-d pushes points to coarse
        levels, inflating the resident set."""
        eps = 0.15
        low_d = LevelFiles(rng.random((2000, 2)), eps)
        high_d = LevelFiles(rng.random((2000, 8)), eps)
        assert (high_d.average_resident_fraction()
                > low_d.average_resident_fraction() + 0.2)

    def test_empty_input(self):
        lf = LevelFiles(np.empty((0, 3)), 0.1)
        assert lf.average_resident_fraction() == 0.0


class TestMSJJoin:
    @pytest.mark.parametrize("d,eps", [(2, 0.3), (4, 0.15), (8, 0.4)])
    def test_matches_brute(self, rng, d, eps):
        pts = rng.random((200, d))
        rep = msj_self_join(pts, eps)
        assert rep.result.canonical_pair_set() == brute_truth(pts, eps)

    def test_no_duplicates(self, rng):
        pts = rng.random((150, 2))
        rep = msj_self_join(pts, 0.4)
        a, b = rep.result.pairs()
        canon = set(zip(np.minimum(a, b).tolist(),
                        np.maximum(a, b).tolist()))
        assert len(canon) == len(a)

    def test_reports_resident_fraction(self, rng):
        rep = msj_self_join(rng.random((100, 8)), 0.25)
        assert 0 < rep.extra["resident_fraction"] <= 1.0
        assert rep.extra["levels"] >= 1

    def test_empty_input(self):
        rep = msj_self_join(np.empty((0, 2)), 0.3)
        assert rep.result.count == 0

    @given(st.integers(min_value=2, max_value=60),
           st.integers(min_value=1, max_value=5),
           st.floats(min_value=0.02, max_value=0.8),
           st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_property_matches_brute(self, n, d, eps, seed):
        rng = np.random.default_rng(seed)
        pts = rng.random((n, d))
        rep = msj_self_join(pts, eps)
        assert rep.result.canonical_pair_set() == brute_truth(pts, eps)
