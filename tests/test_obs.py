"""Tests for the observability layer: metrics semantics on real schedules.

These tests treat the metrics as *claims about the algorithm* and check
them against independent accounting:

* gallop mode reads every unit exactly once (the paper's read-once
  property), counted three ways — metrics, schedule stats, invariant
  monitor;
* crabstep re-read counts match an independent model of the Figure-4
  window schedule built from unit boundary metadata only;
* metric exports are byte-identical across repeated runs and across
  worker counts;
* the null recorders are shared no-op singletons.
"""

import numpy as np
import pytest

from conftest import brute_truth, make_file
from repro.core.ego_join import ego_self_join_file
from repro.core.ego_order import ego_sorted, lex_less
from repro.core.result import JoinResult
from repro.core.scheduler import EGOScheduler
from repro.core.sequence_join import JoinContext
from repro.obs import (NULL_INSTRUMENT, NULL_METRICS, NULL_PROFILER,
                       NULL_SPAN, NULL_TRACER, MetricsRegistry,
                       ensure_metrics, ensure_profiler, ensure_tracer)
from repro.storage.disk import SimulatedDisk
from repro.storage.pagefile import PointFile
from repro.verify.workloads import generate_workload


def run_schedule(points, epsilon, unit_bytes, buffer_units,
                 invariants=False):
    """EGO-sort ``points``, run the I/O schedule with metrics attached."""
    registry = MetricsRegistry()
    with SimulatedDisk() as disk:
        ids, spts = ego_sorted(np.asarray(points, dtype=np.float64),
                               epsilon)
        make_file(disk, spts, ids)
        pf = PointFile.open(disk)
        ctx = JoinContext(epsilon=epsilon, result=JoinResult(),
                          metrics=registry, invariants=invariants)
        scheduler = EGOScheduler(pf, ctx, unit_bytes, buffer_units)
        stats = scheduler.run()
    return registry, ctx, scheduler, stats


def reads(registry, mode):
    return registry.get("ego_unit_reads_total").value_of(mode)


# -- null recorders -----------------------------------------------------------


class TestNullRecorders:
    def test_ensure_defaults_to_shared_singletons(self):
        assert ensure_metrics(None) is NULL_METRICS
        assert ensure_tracer(None) is NULL_TRACER
        assert ensure_profiler(None) is NULL_PROFILER
        real = MetricsRegistry()
        assert ensure_metrics(real) is real

    def test_null_metrics_allocates_nothing(self):
        c = NULL_METRICS.counter("x", labelnames=("a",))
        assert c is NULL_INSTRUMENT
        assert c.labels("anything") is NULL_INSTRUMENT
        assert NULL_METRICS.gauge("y") is NULL_INSTRUMENT
        assert NULL_METRICS.histogram("z") is NULL_INSTRUMENT
        c.inc()
        c.set(5)
        c.observe(3)
        c.observe_many([1, 2])
        assert c.value == 0 and c.total() == 0 and c.value_of("a") == 0
        assert NULL_METRICS.to_prometheus_text() == ""
        assert NULL_METRICS.collect() == {}
        assert not NULL_METRICS.enabled

    def test_null_tracer_shares_one_span(self):
        s1 = NULL_TRACER.span("a", args={"big": list(range(10))})
        s2 = NULL_TRACER.span("b")
        assert s1 is s2 is NULL_SPAN
        with s1:
            pass
        NULL_TRACER.instant("marker")
        assert NULL_TRACER.spans() == []
        assert NULL_TRACER.to_chrome()["traceEvents"] == []
        assert not NULL_TRACER.enabled

    def test_null_profiler_shares_one_phase(self):
        p1 = NULL_PROFILER.phase("sort")
        p2 = NULL_PROFILER.phase("schedule")
        assert p1 is p2
        with p1:
            pass
        assert NULL_PROFILER.report() == []
        assert NULL_PROFILER.hottest_phase() is None
        assert NULL_PROFILER.format_table() == "no phases recorded"


# -- registry semantics -------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_labels_and_totals(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total", "ops", labelnames=("kind",))
        c.labels("read").inc()
        c.labels("read").inc(2)
        c.labels("write").inc(5)
        assert c.value_of("read") == 3
        assert c.value_of("write") == 5
        assert c.value_of("never") == 0
        assert c.total() == 8

    def test_idempotent_lookup_and_type_conflict(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        with pytest.raises(ValueError):
            reg.gauge("a")
        with pytest.raises(ValueError):
            reg.counter("a").labels("x")  # unlabelled family

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("sizes", buckets=(1, 10, 100))
        h.observe_many([0, 1, 5, 50, 500])
        assert h.count == 5
        assert h.sum == 556
        assert h.bucket_counts == [2, 1, 1, 1]
        assert h.quantile_bound(0.5) == 10

    def test_worker_merge_adds_counters_and_histograms(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter("n_total", labelnames=("k",)).labels("a").inc(2)
        worker.counter("n_total", labelnames=("k",)).labels("a").inc(3)
        worker.counter("n_total", labelnames=("k",)).labels("b").inc(1)
        worker.histogram("h", buckets=(1, 2)).observe(2)
        worker.gauge("g").set(7)
        parent.merge(worker.collect())
        assert parent.get("n_total").value_of("a") == 5
        assert parent.get("n_total").value_of("b") == 1
        assert parent.get("h").count == 1
        assert parent.get("g").value == 7
        parent.merge(None)  # tolerated
        parent.merge({})

    def test_merge_rejects_bucket_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1, 2)).observe(1)
        b.histogram("h", buckets=(1, 4)).observe(1)
        with pytest.raises(ValueError):
            a.merge(b.collect())

    def test_dump_format_by_extension(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("n_total", "count").inc(4)
        prom = tmp_path / "m.prom"
        js = tmp_path / "m.json"
        reg.dump(str(prom))
        reg.dump(str(js))
        assert "n_total 4" in prom.read_text()
        import json
        assert json.loads(js.read_text())["n_total"]["samples"] == [
            [[], 4]]


# -- read-once: gallop --------------------------------------------------------


class TestGallopReadOnce:
    def test_gallop_reads_each_unit_exactly_once(self, rng):
        pts = rng.uniform(size=(400, 3))
        # Buffer big enough that every ε-interval fits: pure gallop.
        reg, ctx, sched, stats = run_schedule(pts, 0.05, 2048, 64,
                                              invariants=True)
        assert sched.num_units > 2
        assert reads(reg, "gallop") == sched.num_units
        assert reads(reg, "crabstep_pin") == 0
        assert reads(reg, "crabstep_reload") == 0
        trans = reg.get("ego_mode_transitions_total")
        assert trans.value_of("crabstep") == 0
        # Three independent accountings of the same property agree.
        assert stats.gallop_loads == sched.num_units
        assert len(ctx.monitor.gallop_loaded) == sched.num_units

    def test_every_unit_enters_buffer_once_even_in_crabstep(self, rng):
        pts = generate_workload("clusters", 500, 3, 0.3, seed=9).points
        reg, _ctx, sched, stats = run_schedule(pts, 0.3, 1024, 3)
        assert stats.crabstep_phases > 0  # the workload forces crabstep
        # Every unit becomes resident as "new" exactly once: either
        # galloped in or pinned at the start of a crabstep window.
        assert (reads(reg, "gallop")
                + reads(reg, "crabstep_pin")) == sched.num_units
        assert reg.get("ego_crabstep_phases_total").value \
            == stats.crabstep_phases
        assert reads(reg, "crabstep_reload") == stats.crabstep_reloads


# -- Figure-4 window model ----------------------------------------------------


def figure4_model(metas, capacity):
    """Independent count model of the Figure-4 schedule.

    Replays the paper's mode decisions from unit boundary metadata only
    (no buffer pool, no I/O): gallop while a frame is free and the
    read-once invariant holds, otherwise a crabstep window of
    ``capacity - 1`` pinned units plus re-reads of every earlier unit
    still inside the window's ε-interval (Lemma 2 in cell arithmetic).
    Returns ``(gallop_reads, pins, reloads, phases)``.
    """

    def needed(unit, frontier):
        return not lex_less(metas[unit].last_plus_eps_cells,
                            metas[frontier].last_cells)

    def interval_low(unit):
        low = unit
        while low > 0 and not lex_less(
                metas[low - 1].last_plus_eps_cells,
                metas[unit].first_cells):
            low -= 1
        return low

    n = len(metas)
    gallop, pins, reloads, phases = 1, 0, 0, 0  # unit 0 galloped in
    resident = {0}
    i = 1
    while i < n:
        frontier = i - 1
        resident = {k for k in resident
                    if k == frontier or needed(k, frontier)}
        low = min(resident)
        sound = low == 0 or not needed(low - 1, frontier)
        if len(resident) < capacity and sound:
            resident.add(i)
            gallop += 1
            i += 1
            continue
        phases += 1
        window_start = i
        window = list(range(i, min(i + capacity - 1, n)))
        pins += len(window)
        i += len(window)
        lo = interval_low(window[0])
        reloads += window_start - lo
        resident = set(window)
        if lo < window_start:
            # The last re-read stays in the streaming frame.
            resident.add(window_start - 1)
    return gallop, pins, reloads, phases


class TestFigure4WindowModel:
    @pytest.mark.parametrize("buffer_units,seed", [(3, 1), (4, 2), (6, 3)])
    def test_crabstep_counts_match_model(self, buffer_units, seed):
        pts = generate_workload("clusters", 400, 3, 0.25,
                                seed=seed).points
        reg, _ctx, sched, stats = run_schedule(pts, 0.25, 1024,
                                               buffer_units)
        # The model consumes the same boundary metadata the scheduler
        # recorded, but replays the schedule independently.
        metas = [sched.meta[k] for k in range(sched.num_units)]
        gallop, pins, reloads, phases = figure4_model(metas, buffer_units)
        assert stats.crabstep_phases > 0
        assert reads(reg, "gallop") == gallop
        assert reads(reg, "crabstep_pin") == pins
        assert reads(reg, "crabstep_reload") == reloads
        assert reg.get("ego_crabstep_phases_total").value == phases


# -- determinism --------------------------------------------------------------


class TestMetricsDeterminism:
    def test_exports_identical_across_runs_and_workers(self, rng):
        pts = rng.uniform(size=(300, 4))

        def run(workers):
            registry = MetricsRegistry()
            with SimulatedDisk() as disk:
                make_file(disk, pts)
                pf = PointFile.open(disk)
                report = ego_self_join_file(
                    pf, 0.1, unit_bytes=4096, buffer_units=4,
                    workers=workers, metrics=registry)
            return registry.to_prometheus_text(), report.result.count

        serial_a, count_a = run(1)
        serial_b, count_b = run(1)
        parallel, count_p = run(3)
        assert serial_a == serial_b
        assert serial_a == parallel
        assert count_a == count_b == count_p

    def test_worker_metrics_reach_the_parent(self, rng):
        pts = rng.uniform(size=(300, 4))
        registry = MetricsRegistry()
        with SimulatedDisk() as disk:
            make_file(disk, pts)
            pf = PointFile.open(disk)
            report = ego_self_join_file(pf, 0.1, unit_bytes=4096,
                                        buffer_units=4, workers=3,
                                        metrics=registry)
        assert report.result.count > 0
        # Sequence-level counters are produced inside the workers and
        # must survive the merge back into the parent registry.
        assert registry.get("ego_seq_pairs_total").value > 0
        # Every result pair was counted by exactly one leaf call.
        assert registry.get("ego_leaf_pairs_total").value \
            == report.result.count


# -- cross-check against the invariant monitor --------------------------------


class TestInvariantCrossCheck:
    @pytest.mark.parametrize("kind,seed", [("boundary", 11),
                                           ("duplicates", 12),
                                           ("degenerate", 13)])
    def test_metrics_agree_with_monitor(self, kind, seed):
        w = generate_workload(kind, 250, 3, 0.1, seed=seed)
        reg, ctx, sched, stats = run_schedule(w.points, w.epsilon,
                                              1024, 4, invariants=True)
        monitor = ctx.monitor
        # Read-once agreement: every gallop read was noted exactly once
        # by the monitor's independent set-based accounting.
        assert reads(reg, "gallop") == len(monitor.gallop_loaded)
        # Every considered-and-joined unit pair is in the monitor's set
        # (run() already passed check_interval_coverage, so the set also
        # covers every pair the ε-interval requires).
        pairs = reg.get("ego_unit_pairs_total")
        assert (pairs.value_of("joined") + pairs.value_of("resumed")
                == len(monitor.joined_unit_pairs))
        # And the instrumented run is still correct.
        truth = brute_truth(w.points, w.epsilon)
        got = {p for p in ctx.result.canonical_pair_set()
               if p[0] != p[1]}
        assert got == truth
