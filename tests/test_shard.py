"""Tests for the sharded external join (repro.core.shard).

Covers the shard planner on adversarial skew, byte-identity of the
sharded pipeline against the serial run across shard counts, policies
and storage backends, crash/resume across execution modes, worker-fault
injection inside shards, and the run-scoped pressure-gauge regression.
"""

import hashlib
import os

import numpy as np
import pytest

from repro.core.ego_join import ego_self_join_file
from repro.core.shard import (OVERSIZE_FACTOR, PlanningJoiner,
                              ShardRunner, UnitPairEvent, event_cost,
                              plan_shards)
from repro.core.supervisor import PoolFailureError, SupervisorPolicy
from repro.storage.backend import (BACKENDS, FileDisk, MemoryDisk,
                                   get_backend)
from repro.storage.disk import SimulatedDisk
from repro.storage.faults import (FaultPlan, SimulatedCrash,
                                  WorkerFaultPlan)
from repro.storage.pagefile import PointFile

from conftest import brute_truth, make_file

EPS = 0.15
GEOMETRY = dict(unit_bytes=2048, buffer_units=4)


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(7)
    return rng.random((400, 4))


@pytest.fixture(scope="module")
def skewed_dataset():
    # One heavy cluster dominating a sparse background: the workload
    # uniform partitioning is worst at.
    rng = np.random.default_rng(11)
    heavy = 0.5 + rng.normal(0.0, EPS, size=(280, 4))
    background = rng.random((120, 4))
    return np.clip(np.concatenate([heavy, background]), 0.0, 1.0)


def run_join(points, ckdir=None, **kw):
    with SimulatedDisk() as disk:
        pf = make_file(disk, points)
        return ego_self_join_file(pf, EPS, checkpoint_dir=ckdir,
                                  **GEOMETRY, **kw)


def file_digest(path):
    with open(path, "rb") as fh:
        return hashlib.sha256(fh.read()).hexdigest()


# -- planner ----------------------------------------------------------------


def chain_events(num_units, span=1):
    """Self pairs plus cross pairs reaching back ``span`` ordinals."""
    events = []
    for b in range(num_units):
        events.append(UnitPairEvent(len(events), b, b))
        for a in range(max(0, b - span), b):
            events.append(UnitPairEvent(len(events), a, b))
    return events


class TestPlanner:
    def test_validation(self):
        with pytest.raises(ValueError):
            plan_shards(4, [], {}, 0)
        with pytest.raises(ValueError):
            plan_shards(4, [], {}, 2, policy="zigzag")
        assert plan_shards(0, [], {}, 2) == []

    def test_uniform_equal_unit_counts(self):
        events = chain_events(8)
        records = {u: 10 for u in range(8)}
        specs = plan_shards(8, events, records, 4, policy="uniform")
        assert [(s.own_lo, s.own_hi) for s in specs] == \
            [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_shards_clamped_to_units(self):
        specs = plan_shards(3, chain_events(3), {u: 5 for u in range(3)},
                            16, policy="uniform")
        assert len(specs) == 3

    def test_every_event_owned_exactly_once(self):
        events = chain_events(10, span=3)
        records = {u: 10 + u for u in range(10)}
        for policy in ("uniform", "adaptive"):
            specs = plan_shards(10, events, records, 3, policy=policy)
            seen = [ev.seq for s in specs for ev in s.events]
            assert sorted(seen) == [ev.seq for ev in events]
            for s in specs:
                for ev in s.events:
                    assert s.own_lo <= ev.b < s.own_hi
                    assert ev.a >= s.fringe_lo

    def test_fringe_covers_lowest_partner(self):
        events = chain_events(8, span=3)
        records = {u: 10 for u in range(8)}
        specs = plan_shards(8, events, records, 2, policy="uniform")
        # Second shard owns [4, 8); its events reach back to unit 1.
        assert specs[1].fringe_lo == min(
            ev.a for ev in specs[1].events)
        assert specs[1].fringe_units == specs[1].own_lo - specs[1].fringe_lo

    def test_adaptive_beats_uniform_on_heavy_cluster(self):
        # One unit holds 100x the records of the rest: uniform puts the
        # whole heavy cell in one shard, adaptive isolates it.
        num_units = 8
        records = {u: 10 for u in range(num_units)}
        records[5] = 1000
        events = chain_events(num_units)
        uniform = plan_shards(num_units, events, records, 2,
                              policy="uniform")
        adaptive = plan_shards(num_units, events, records, 2,
                               policy="adaptive")
        assert max(s.cost for s in adaptive) < max(s.cost for s in uniform)

    def test_adaptive_resplit_bounded(self):
        # Re-splitting must never exceed 2x the requested shard count.
        num_units = 32
        records = {u: (1000 if u % 5 == 0 else 1) for u in range(num_units)}
        events = chain_events(num_units, span=2)
        specs = plan_shards(num_units, events, records, 4,
                            policy="adaptive")
        assert len(specs) <= 8
        # Contiguous, gap-free coverage of the ordinal range.
        assert specs[0].own_lo == 0 and specs[-1].own_hi == num_units
        for left, right in zip(specs, specs[1:]):
            assert left.own_hi == right.own_lo

    def test_adaptive_duplicate_record_counts(self):
        # All-equal counts (duplicates everywhere) degenerate to a
        # near-uniform plan without loops or zero-width shards.
        records = {u: 50 for u in range(12)}
        specs = plan_shards(12, chain_events(12), records, 4,
                            policy="adaptive")
        assert all(s.units >= 1 for s in specs)
        total = sum(s.cost for s in specs)
        assert max(s.cost for s in specs) <= OVERSIZE_FACTOR * total / 4 \
            + max(event_cost(ev, records) for ev in chain_events(12))

    def test_event_cost_model(self):
        records = {0: 10, 1: 20}
        assert event_cost(UnitPairEvent(0, 0, 1), records) == 200
        assert event_cost(UnitPairEvent(0, 0, 0), records) == 45
        assert event_cost(UnitPairEvent(0, 2, 2), records) == 0

    def test_planning_joiner_records_submission_order(self):
        pj = PlanningJoiner()
        with pj:
            pj.submit(None, None, None, None, key=(3, 3))
            pj.submit(None, None, None, None, key=(2, 5))
            pj.drain()
        assert [(ev.seq, ev.a, ev.b) for ev in pj.events] == \
            [(0, 3, 3), (1, 2, 5)]


# -- backends ---------------------------------------------------------------


class TestBackends:
    def test_registry(self):
        assert set(BACKENDS) == {"simulated", "file", "memory"}
        with pytest.raises(ValueError, match="unknown storage backend"):
            get_backend("ramdisk")

    def test_memory_disk_counts_like_simulated(self):
        md, sd = MemoryDisk(), SimulatedDisk()
        for d in (md, sd):
            d.write(0, b"x" * 100)       # sequential (first op at 0)
            d.read(0, 50)                # random (arm moved by write)
            d.read(50, 50)               # sequential
        assert (md.counters.sequential_reads, md.counters.random_reads) \
            == (sd.counters.sequential_reads, sd.counters.random_reads)
        assert md.counters.bytes_written == sd.counters.bytes_written
        assert md.simulated_time_s == 0.0
        sd.close()

    def test_file_disk_roundtrip_and_cleanup(self):
        fd = FileDisk()
        path = fd.path
        fd.write(0, b"hello world")
        assert fd.read(6, 5) == b"world"
        assert fd.size() == 11
        fd.close()
        assert not os.path.exists(path)


# -- sharded pipeline byte-identity -----------------------------------------


class TestShardedIdentity:
    @pytest.fixture(scope="class")
    def serial(self, dataset):
        return run_join(dataset)

    @pytest.mark.parametrize("policy", ["uniform", "adaptive"])
    @pytest.mark.parametrize("backend", ["simulated", "file", "memory"])
    def test_matrix_two_shards(self, dataset, serial, policy, backend):
        rep = run_join(dataset, shards=2, shard_policy=policy,
                       backend=backend)
        sa, sb = serial.result.pairs()
        pa, pb = rep.result.pairs()
        assert np.array_equal(pa, sa) and np.array_equal(pb, sb)
        assert rep.io == serial.io
        assert rep.schedule_stats == serial.schedule_stats
        assert rep.cpu == serial.cpu
        assert len(rep.shards) == 2
        assert sum(s.pairs for s in rep.shards) == len(pa)
        assert all(s.backend == backend for s in rep.shards)

    @pytest.mark.parametrize("shards", [1, 4])
    def test_shard_counts(self, dataset, serial, shards):
        rep = run_join(dataset, shards=shards)
        sa, sb = serial.result.pairs()
        pa, pb = rep.result.pairs()
        assert np.array_equal(pa, sa) and np.array_equal(pb, sb)
        assert rep.io == serial.io

    def test_matches_brute_force(self, skewed_dataset):
        rep = run_join(skewed_dataset, shards=3)
        assert rep.result.canonical_pair_set() == \
            brute_truth(skewed_dataset, EPS)

    def test_checkpointed_bytes_identical(self, dataset, tmp_path):
        d1, d2 = str(tmp_path / "serial"), str(tmp_path / "sharded")
        run_join(dataset, ckdir=d1)
        rep = run_join(dataset, ckdir=d2, shards=3)
        assert file_digest(os.path.join(d1, "result.prs")) == \
            file_digest(os.path.join(d2, "result.prs"))
        assert file_digest(os.path.join(d1, "journal.json")) == \
            file_digest(os.path.join(d2, "journal.json"))
        assert rep.total_pairs is not None

    def test_shard_stats_surface(self, skewed_dataset):
        from repro.analysis.reporting import shard_summary
        rep = run_join(skewed_dataset, shards=2)
        rows = shard_summary(rep)
        assert len(rows) == 2
        assert {r["shard"] for r in rows} == {0, 1}
        assert sum(r["pairs"] for r in rows) == rep.result.count
        assert all(r["io accesses"] > 0 for r in rows)

    def test_shard_metrics_registered(self, dataset):
        from repro.obs.metrics import MetricsRegistry
        registry = MetricsRegistry()
        run_join(dataset, shards=2, metrics=registry)
        assert "ego_shard_units" in registry.names()
        assert "ego_shard_pairs" in registry.names()

    def test_validation(self, dataset):
        with pytest.raises(ValueError):
            run_join(dataset, shards=0)
        with pytest.raises(ValueError):
            run_join(dataset, shards=2, shard_policy="zigzag")
        with pytest.raises(ValueError):
            run_join(dataset, shards=2, backend="ramdisk")


# -- crash / resume ---------------------------------------------------------


class TestShardCrashResume:
    def crash_then_resume(self, dataset, tmp_path, crash_kw, resume_kw):
        ref_dir = str(tmp_path / "ref")
        run_join(dataset, ckdir=ref_dir)
        crash_dir = str(tmp_path / "crash")
        fired = False
        for op in (21, 24, 28, 33):
            try:
                run_join(dataset, ckdir=crash_dir,
                         fault_plan=FaultPlan(seed=1, crash_ops=(op,)),
                         **crash_kw)
            except SimulatedCrash:
                fired = True
                break
        assert fired, "no scheduled crash landed inside the run"
        rep = run_join(dataset, ckdir=crash_dir, resume=True, **resume_kw)
        assert file_digest(os.path.join(ref_dir, "result.prs")) == \
            file_digest(os.path.join(crash_dir, "result.prs"))
        return rep

    def test_sharded_crash_sharded_resume(self, dataset, tmp_path):
        rep = self.crash_then_resume(dataset, tmp_path,
                                     dict(shards=2), dict(shards=2))
        assert rep.resumed

    def test_serial_crash_sharded_resume(self, dataset, tmp_path):
        # A journal written by the serial join must be consumable by a
        # sharded resume: completed pairs are excluded from the plan.
        rep = self.crash_then_resume(dataset, tmp_path,
                                     {}, dict(shards=2))
        assert rep.resumed
        assert rep.schedule_stats.pairs_resumed > 0

    def test_sharded_crash_serial_resume(self, dataset, tmp_path):
        rep = self.crash_then_resume(dataset, tmp_path,
                                     dict(shards=2), {})
        assert rep.resumed


# -- worker faults inside shards --------------------------------------------


FAST = SupervisorPolicy(task_timeout=None, max_task_retries=2,
                        degrade=True, real_sleep=False)


class TestShardFaults:
    @pytest.mark.parametrize("kw, logged", [
        (dict(error_rate=1.0, max_attempt=0), "task_errors"),
        (dict(corrupt_rate=1.0, max_attempt=0), "corrupted_results"),
        (dict(crash_rate=0.3, max_attempt=0), "crashes"),
    ])
    def test_first_attempt_faults_retried(self, dataset, kw, logged):
        serial = run_join(dataset)
        plan = WorkerFaultPlan(seed=5, **kw)
        rep = run_join(dataset, shards=2, worker_fault_plan=plan,
                       supervisor_policy=FAST)
        sa, sb = serial.result.pairs()
        pa, pb = rep.result.pairs()
        assert np.array_equal(pa, sa) and np.array_equal(pb, sb)
        assert sum(s.retries for s in rep.shards) > 0
        assert getattr(rep.worker_faults, logged) > 0
        assert not any(s.degraded for s in rep.shards)

    def test_stall_triggers_timeout_recycle(self, dataset):
        serial = run_join(dataset)
        plan = WorkerFaultPlan(seed=5, stall_rate=1.0, stall_seconds=15.0,
                               max_attempt=0)
        policy = SupervisorPolicy(task_timeout=1.0, max_task_retries=2,
                                  degrade=True, real_sleep=False)
        rep = run_join(dataset, shards=2, worker_fault_plan=plan,
                       supervisor_policy=policy)
        sa, _ = serial.result.pairs()
        pa, _ = rep.result.pairs()
        assert np.array_equal(pa, sa)
        assert rep.worker_faults.stalls > 0

    def test_permanent_fault_degrades_inline(self, dataset):
        serial = run_join(dataset)
        plan = WorkerFaultPlan(seed=5, error_rate=1.0, max_attempt=None)
        rep = run_join(dataset, shards=2, worker_fault_plan=plan,
                       supervisor_policy=FAST)
        sa, _ = serial.result.pairs()
        pa, _ = rep.result.pairs()
        assert np.array_equal(pa, sa)
        assert all(s.degraded for s in rep.shards if s.events)

    def test_no_degrade_raises(self, dataset):
        plan = WorkerFaultPlan(seed=5, error_rate=1.0, max_attempt=None)
        policy = SupervisorPolicy(max_task_retries=1, degrade=False,
                                  real_sleep=False)
        with pytest.raises(PoolFailureError):
            run_join(dataset, shards=2, worker_fault_plan=plan,
                     supervisor_policy=policy)


# -- run-scoped pressure gauge ----------------------------------------------


class TestPressureScope:
    def test_back_to_back_runs_rescope_pressure(self, dataset):
        # One fault plan reused across consecutive runs: the pressure
        # window is defined in run-relative operation indices, so the
        # second run must react exactly like the first instead of
        # sliding out of (or staying stuck inside) the window as the
        # plan's global op counter advances.
        def run_twice(**kw):
            plan = FaultPlan(seed=5, pressure_ranges=[(5, 60)])
            with SimulatedDisk() as disk:
                pf = make_file(disk, dataset)
                first = ego_self_join_file(pf, EPS, fault_plan=plan,
                                           **GEOMETRY, **kw)
                second = ego_self_join_file(pf, EPS, fault_plan=plan,
                                            **GEOMETRY, **kw)
            return first, second

        first, second = run_twice()
        assert first.schedule_stats.pressure_shrinks > 0
        assert second.schedule_stats.pressure_shrinks == \
            first.schedule_stats.pressure_shrinks
        s1, s2 = run_twice(shards=2)
        assert s2.schedule_stats.pressure_shrinks == \
            s1.schedule_stats.pressure_shrinks
        assert s1.schedule_stats.pressure_shrinks == \
            first.schedule_stats.pressure_shrinks

    def test_pressure_scope_rebase(self):
        plan = FaultPlan(seed=0, pressure_ranges=[(0, 3)])
        assert plan.under_pressure()
        plan._op = 10
        assert not plan.under_pressure()
        plan.begin_pressure_scope()
        assert plan.under_pressure()


# -- verify-layer registration ----------------------------------------------


class TestVerifyIntegration:
    def test_oracle_sharded_mode(self, skewed_dataset):
        from repro.verify.oracle import STORAGE_MODES, run_impl
        assert "sharded" in STORAGE_MODES
        pts = skewed_dataset[:150]
        expected = run_impl("brute", pts, EPS)
        observed = run_impl("ego_external", pts, EPS, storage="sharded",
                            shards=2, shard_policy="adaptive")
        assert np.array_equal(observed, expected)

    def test_skewed_workload_registered(self):
        from repro.verify.workloads import WORKLOAD_KINDS, generate_workload
        assert "skewed" in WORKLOAD_KINDS
        w1 = generate_workload("skewed", 200, 4, EPS, seed=3)
        w2 = generate_workload("skewed", 200, 4, EPS, seed=3)
        assert np.array_equal(w1.points, w2.points)
        assert w1.points.shape == (200, 4)
        assert w1.points.min() >= 0.0 and w1.points.max() <= 1.0
        # The heavy cluster concentrates most points in a tight ball.
        center = np.median(w1.points, axis=0)
        dist = np.linalg.norm(w1.points - center, axis=1)
        assert np.mean(dist < 4 * EPS) > 0.6
