"""Tests for the external merge sort."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ego_join import ego_key_function
from repro.core.ego_order import ego_key, is_ego_sorted
from repro.sorting.external_sort import external_sort, merge_sorted_arrays
from repro.storage.disk import SimulatedDisk
from repro.storage.pagefile import PointFile

from conftest import make_file


def identity_key(points):
    """Sort by raw integer value of the first coordinate."""
    return points[:, 0].astype(np.int64)


def run_sort(points, key, memory_records, fanin=4, epsilon=None):
    """Helper: sort an array through the full external machinery."""
    pts = np.asarray(points, dtype=np.float64)
    with SimulatedDisk() as src, SimulatedDisk() as dst, \
            SimulatedDisk() as scratch:
        pf = make_file(src, pts)
        out, stats = external_sort(pf, dst, scratch, key, memory_records,
                                   fanin=fanin)
        ids, sorted_pts = out.read_all()
        return ids.copy(), sorted_pts.copy(), stats


class TestSingleRun:
    def test_already_fits_in_memory(self, rng):
        pts = rng.integers(0, 100, (20, 1)).astype(float)
        ids, out, stats = run_sort(pts, identity_key, memory_records=64)
        assert stats.runs_generated == 1
        assert (np.diff(out[:, 0]) >= 0).all()

    def test_ids_follow_points(self, rng):
        pts = rng.integers(0, 50, (30, 2)).astype(float)
        ids, out, _ = run_sort(pts, identity_key, memory_records=64)
        np.testing.assert_allclose(pts[ids], out)


class TestMultiRun:
    def test_many_runs_single_merge(self, rng):
        pts = rng.integers(0, 1000, (100, 1)).astype(float)
        ids, out, stats = run_sort(pts, identity_key, memory_records=16,
                                   fanin=8)
        assert stats.runs_generated == 7
        assert stats.merge_passes == 1
        assert (np.diff(out[:, 0]) >= 0).all()
        assert sorted(ids.tolist()) == list(range(100))

    def test_multi_pass_merge(self, rng):
        pts = rng.integers(0, 1000, (200, 1)).astype(float)
        ids, out, stats = run_sort(pts, identity_key, memory_records=10,
                                   fanin=2)
        assert stats.runs_generated == 20
        assert stats.merge_passes > 1
        assert (np.diff(out[:, 0]) >= 0).all()
        assert sorted(ids.tolist()) == list(range(200))

    def test_records_sorted_counted(self, rng):
        pts = rng.random((55, 2))
        _, _, stats = run_sort(pts, identity_key, memory_records=10)
        assert stats.records_sorted == 55

    def test_stable_tiebreak_by_id(self):
        pts = np.zeros((40, 1))  # all keys equal
        ids, _, _ = run_sort(pts, identity_key, memory_records=7)
        assert ids.tolist() == list(range(40))


class TestEgoKeySort:
    def test_output_is_ego_sorted(self, rng):
        eps = 0.2
        pts = rng.random((150, 4))
        _, out, _ = run_sort(pts, ego_key_function(eps), memory_records=20)
        assert is_ego_sorted(out, eps)

    def test_matches_in_memory_ego_sort(self, rng):
        eps = 0.3
        pts = rng.random((80, 3))
        ids, out, _ = run_sort(pts, ego_key_function(eps),
                               memory_records=12)
        keys = [ego_key(p, eps) for p in out]
        assert keys == sorted(keys)
        # Same multiset of points.
        np.testing.assert_allclose(pts[ids], out)

    @given(st.integers(min_value=2, max_value=60),
           st.integers(min_value=2, max_value=25))
    @settings(max_examples=20, deadline=None)
    def test_sortedness_property(self, n, memory):
        rng = np.random.default_rng(n * 31 + memory)
        eps = 0.25
        pts = rng.random((n, 3))
        _, out, _ = run_sort(pts, ego_key_function(eps),
                             memory_records=memory)
        assert is_ego_sorted(out, eps)
        assert len(out) == n


class TestValidation:
    def test_rejects_tiny_memory(self, rng):
        with SimulatedDisk() as src, SimulatedDisk() as dst, \
                SimulatedDisk() as scratch:
            pf = make_file(src, rng.random((5, 2)))
            with pytest.raises(ValueError):
                external_sort(pf, dst, scratch, identity_key, 1)

    def test_rejects_tiny_fanin(self, rng):
        with SimulatedDisk() as src, SimulatedDisk() as dst, \
                SimulatedDisk() as scratch:
            pf = make_file(src, rng.random((5, 2)))
            with pytest.raises(ValueError):
                external_sort(pf, dst, scratch, identity_key, 8, fanin=1)

    def test_empty_input(self):
        with SimulatedDisk() as src, SimulatedDisk() as dst, \
                SimulatedDisk() as scratch:
            pf = PointFile.create(src, 2)
            pf.close()
            out, stats = external_sort(pf, dst, scratch, identity_key, 8)
            assert out.count == 0
            assert stats.runs_generated == 0


class TestIOAccounting:
    def test_sort_moves_bounded_data(self, rng):
        """A single merge pass reads and writes each record O(1) times.

        Input is read once; each record is written to a run, read back
        during the merge, and written to the output — no thrashing
        re-reads.
        """
        pts = rng.random((300, 2))
        data_bytes = 300 * 24
        with SimulatedDisk() as src, SimulatedDisk() as dst, \
                SimulatedDisk() as scratch:
            pf = make_file(src, pts)
            src.reset_accounting()
            _, stats = external_sort(pf, dst, scratch,
                                     ego_key_function(0.2),
                                     memory_records=50)
            assert stats.merge_passes == 1
            assert src.counters.bytes_read <= data_bytes + 1024
            assert scratch.counters.bytes_written <= data_bytes
            assert scratch.counters.bytes_read <= data_bytes
            assert dst.counters.bytes_written <= data_bytes + 1024

    def test_run_generation_reads_are_sequential(self, rng):
        """The run-generation scan of the input never seeks backwards."""
        pts = rng.random((200, 2))
        with SimulatedDisk() as src, SimulatedDisk() as dst, \
                SimulatedDisk() as scratch:
            pf = make_file(src, pts)
            src.reset_accounting()
            external_sort(pf, dst, scratch, ego_key_function(0.2),
                          memory_records=40)
            assert src.counters.random_reads <= 1


class TestMergeSortedArrays:
    def _runs(self, rng, k, total):
        """Random points cut into k runs, each sorted by (key, id)."""
        key = ego_key_function(0.2)
        pts = rng.random((total, 3))
        ids = rng.permutation(total).astype(np.int64)
        cuts = np.sort(rng.integers(0, total, size=k - 1))
        runs = []
        for lo, hi in zip(np.r_[0, cuts], np.r_[cuts, total]):
            ri, rp = ids[lo:hi], pts[lo:hi]
            keys = key(rp)
            order = np.lexsort(
                (ri,) + tuple(keys[:, c]
                              for c in range(keys.shape[1] - 1, -1, -1)))
            runs.append((ri[order], rp[order]))
        return runs, key

    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_vectorized_equals_heap_merge(self, rng, k):
        """The lexsort fast path is the heap merge, bit for bit."""
        runs, key = self._runs(rng, k, 257)
        fast_ids, fast_pts = merge_sorted_arrays(runs, key)
        heap_ids, heap_pts = merge_sorted_arrays(runs, key,
                                                 via_heap=True)
        assert np.array_equal(fast_ids, heap_ids)
        assert np.array_equal(fast_pts, heap_pts)

    def test_output_globally_sorted(self, rng):
        runs, key = self._runs(rng, 3, 120)
        ids, pts = merge_sorted_arrays(runs, key)
        keys = [tuple(row) + (int(i),)
                for row, i in zip(key(pts).tolist(), ids.tolist())]
        assert keys == sorted(keys)

    def test_empty_and_empty_runs(self):
        key = ego_key_function(0.2)
        ids, pts = merge_sorted_arrays([], key)
        assert len(ids) == 0
        empty = (np.empty(0, dtype=np.int64), np.empty((0, 3)))
        one = (np.array([7], dtype=np.int64), np.array([[0.1, 0.2, 0.3]]))
        ids, pts = merge_sorted_arrays([empty, one], key)
        assert ids.tolist() == [7]
