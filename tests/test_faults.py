"""Tests for fault injection and the detection/recovery layers."""

import os

import pytest

from repro.core.ego_join import ego_self_join_file
from repro.storage.disk import SimulatedDisk
from repro.storage.faults import (FaultPlan, FaultyDisk, SimulatedCrash,
                                  TransientReadError)
from repro.storage.integrity import (ChecksummedDisk, CorruptPageError,
                                     RetryingDisk, RetryPolicy,
                                     make_robust_disk)

from conftest import make_file


def faulty(disk, **plan_kwargs):
    return FaultyDisk(disk, FaultPlan(**plan_kwargs))


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(read_error_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(corrupt_rate=-0.1)

    def test_same_seed_same_faults(self, temp_disk):
        temp_disk.write(0, b"payload" * 100)

        def run(seed):
            plan = FaultPlan(seed=seed, read_error_rate=0.3)
            fd = FaultyDisk(temp_disk, plan)
            outcomes = []
            for _ in range(50):
                try:
                    fd.read(0, 64)
                    outcomes.append("ok")
                except TransientReadError:
                    outcomes.append("err")
            return outcomes

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_crash_fires_once_at_scheduled_op(self, temp_disk):
        fd = faulty(temp_disk, crash_ops=[2])
        fd.write(0, b"a" * 10)          # op 0
        fd.read(0, 10)                  # op 1
        with pytest.raises(SimulatedCrash) as exc:
            fd.read(0, 10)              # op 2: crash
        assert exc.value.op_index == 2
        fd.read(0, 10)                  # fires at most once
        assert fd.plan.injected.crashes == 1

    def test_crash_is_not_an_ioerror(self):
        # Retry layers must never swallow a crash.
        assert not issubclass(SimulatedCrash, IOError)

    def test_without_crashes_keeps_rates(self):
        plan = FaultPlan(seed=3, read_error_rate=0.25, crash_ops=[5, 9])
        resumed = plan.without_crashes()
        assert resumed.crash_ops == set()
        assert resumed.read_error_rate == 0.25
        assert resumed.seed == 3

    def test_shared_plan_has_global_op_order(self, tmp_path):
        plan = FaultPlan(crash_ops=[3])
        d1 = SimulatedDisk(path=str(tmp_path / "a.bin"))
        d2 = SimulatedDisk(path=str(tmp_path / "b.bin"))
        try:
            f1, f2 = FaultyDisk(d1, plan), FaultyDisk(d2, plan)
            f1.write(0, b"x")            # op 0
            f2.write(0, b"y")            # op 1
            f1.read(0, 1)                # op 2
            with pytest.raises(SimulatedCrash):
                f2.read(0, 1)            # op 3 across both devices
        finally:
            d1.close()
            d2.close()

    def test_pressure_windows(self, temp_disk):
        fd = faulty(temp_disk, pressure_ranges=[(1, 3)])
        assert not fd.under_pressure
        fd.write(0, b"a")                # op 0 -> now at 1
        assert fd.under_pressure
        fd.write(1, b"b")                # op 1 -> now at 2
        assert fd.under_pressure
        fd.write(2, b"c")                # op 2 -> now at 3
        assert not fd.under_pressure


class TestFaultyDisk:
    def test_torn_write_is_silent_and_short(self, temp_disk):
        fd = faulty(temp_disk, seed=0, torn_write_rate=1.0)
        payload = b"0123456789" * 10
        assert fd.write(0, payload) == len(payload)  # reports full success
        assert temp_disk.size() < len(payload)
        assert fd.plan.injected.torn_writes == 1

    def test_corruption_flips_exactly_one_bit(self, temp_disk):
        temp_disk.write(0, bytes(256))
        fd = faulty(temp_disk, seed=1, corrupt_rate=1.0)
        data = fd.read(0, 256)
        flipped = [i for i, b in enumerate(data) if b != 0]
        assert len(flipped) == 1
        assert bin(data[flipped[0]]).count("1") == 1

    def test_crash_on_write_tears_it(self, temp_disk):
        fd = faulty(temp_disk, seed=2, crash_ops=[0], tear_on_crash=True)
        with pytest.raises(SimulatedCrash):
            fd.write(0, b"z" * 100)
        assert 0 < temp_disk.size() < 100

    def test_accounting_shared_with_base_disk(self, temp_disk):
        fd = faulty(temp_disk)
        fd.write(0, b"x" * 64)
        fd.read(0, 64)
        assert fd.counters is temp_disk.counters
        assert temp_disk.counters.total_accesses == 2


class TestChecksummedDisk:
    def test_round_trip_verified(self, temp_disk):
        cd = ChecksummedDisk(temp_disk, page_bytes=64, sidecar=False)
        cd.write(0, b"a" * 200)
        assert cd.read(0, 200) == b"a" * 200

    def test_detects_out_of_band_corruption(self, temp_disk):
        cd = ChecksummedDisk(temp_disk, page_bytes=64, sidecar=False)
        cd.write(0, b"a" * 200)
        temp_disk.write(70, b"X")  # corrupt behind the layer's back
        with pytest.raises(CorruptPageError) as exc:
            cd.read(0, 200)
        assert exc.value.page == 1
        assert temp_disk.counters.corrupt_pages == 1

    def test_detects_torn_write(self, temp_disk):
        cd = ChecksummedDisk(temp_disk, page_bytes=64, sidecar=False)
        cd.write(0, b"b" * 100)
        temp_disk.truncate(50)  # the tail of the write never made it
        with pytest.raises(CorruptPageError):
            cd.read(0, 50)

    def test_sequential_extension_streams(self, temp_disk):
        cd = ChecksummedDisk(temp_disk, page_bytes=4096, sidecar=False)
        cd.write(0, b"a" * 1000)
        cd.write(1000, b"b" * 1000)  # extends page 0's stream
        assert cd.read(500, 1000) == b"a" * 500 + b"b" * 500

    def test_rewrite_restarts_stream(self, temp_disk):
        cd = ChecksummedDisk(temp_disk, page_bytes=64, sidecar=False)
        cd.write(0, b"old " * 16)
        cd.write(0, b"new " * 16)
        assert cd.read(0, 64) == b"new " * 16

    def test_interior_overwrite_is_uncheckable_not_fatal(self, temp_disk):
        cd = ChecksummedDisk(temp_disk, page_bytes=64, sidecar=False)
        cd.write(0, b"h" * 64)
        cd.write(8, b"patch")  # e.g. a header count update
        assert cd.read(0, 64)[8:13] == b"patch"

    def test_sidecar_survives_reopen(self, tmp_path):
        path = str(tmp_path / "d.bin")
        with ChecksummedDisk(SimulatedDisk(path=path), page_bytes=64) as cd:
            cd.write(0, b"persisted" * 20)
        disk = SimulatedDisk(path=path)
        cd2 = ChecksummedDisk(disk, page_bytes=64)
        try:
            assert cd2.verify_file() > 0
            disk.write(3, b"!")  # corrupt after the checksums persisted
            with pytest.raises(CorruptPageError):
                cd2.read(0, 64)
        finally:
            disk.close()

    def test_truncate_drops_checksums_past_cut(self, temp_disk):
        cd = ChecksummedDisk(temp_disk, page_bytes=64, sidecar=False)
        cd.write(0, b"c" * 200)
        cd.truncate(64)
        cd.write(64, b"d" * 64)
        assert cd.read(0, 128) == b"c" * 64 + b"d" * 64


class TestRetryingDisk:
    def test_transient_errors_retried_to_success(self, temp_disk):
        temp_disk.write(0, b"stable content")
        plan = FaultPlan(seed=4, read_error_rate=0.5)
        rd = RetryingDisk(FaultyDisk(temp_disk, plan),
                          RetryPolicy(max_attempts=50))
        for _ in range(20):
            assert rd.read(0, 14) == b"stable content"
        assert temp_disk.counters.read_faults > 0
        assert (temp_disk.counters.read_retries
                == temp_disk.counters.read_faults)

    def test_exhausted_policy_reraises(self, temp_disk):
        temp_disk.write(0, b"x")
        plan = FaultPlan(seed=0, read_error_rate=1.0)
        rd = RetryingDisk(FaultyDisk(temp_disk, plan),
                          RetryPolicy(max_attempts=3))
        with pytest.raises(TransientReadError):
            rd.read(0, 1)
        assert temp_disk.counters.read_faults == 3
        assert temp_disk.counters.read_retries == 2

    def test_backoff_charged_to_simulated_clock(self, temp_disk):
        temp_disk.write(0, b"x")
        plan = FaultPlan(seed=0, read_error_rate=1.0)
        policy = RetryPolicy(max_attempts=3, initial_backoff_s=0.1,
                             multiplier=2.0)
        rd = RetryingDisk(FaultyDisk(temp_disk, plan), policy)
        before = temp_disk.simulated_time_s
        with pytest.raises(TransientReadError):
            rd.read(0, 1)
        waited = temp_disk.simulated_time_s - before
        assert waited >= 0.1 + 0.2  # two backoffs, plus read transfer time
        assert temp_disk.counters.retry_backoff_s == pytest.approx(0.3)

    def test_crash_never_retried(self, temp_disk):
        temp_disk.write(0, b"x")
        plan = FaultPlan(crash_ops=[0])
        rd = RetryingDisk(FaultyDisk(temp_disk, plan),
                          RetryPolicy(max_attempts=100))
        with pytest.raises(SimulatedCrash):
            rd.read(0, 1)
        assert temp_disk.counters.read_retries == 0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_retry_heals_corruption_through_checksums(self, temp_disk):
        # The canonical stack: corruption injected below the checksum
        # layer is detected there and healed by a re-read above it.
        plan = FaultPlan(seed=9, corrupt_rate=0.2)
        disk = make_robust_disk(temp_disk, plan=plan, checksums=True,
                                page_bytes=256, sidecar=False,
                                retry=RetryPolicy(max_attempts=20))
        disk.write(0, b"truth" * 200)
        for _ in range(30):
            assert disk.read(0, 1000) == b"truth" * 200
        assert plan.injected.corrupted_reads > 0
        assert temp_disk.counters.corrupt_pages > 0


class TestJoinUnderFaults:
    """Acceptance-level behaviour of the external join under faults."""

    @pytest.fixture()
    def dataset(self, rng):
        return rng.random((300, 4))

    def baseline(self, pts):
        with SimulatedDisk() as disk:
            pf = make_file(disk, pts)
            report = ego_self_join_file(pf, 0.25, unit_bytes=512,
                                        buffer_units=4)
            return report.result.canonical_pair_set()

    def test_corruption_without_retries_raises_not_wrong(self, dataset):
        # Acceptance criterion: a corrupted page with no retry policy
        # must surface as CorruptPageError, never as wrong pairs.
        with SimulatedDisk() as disk:
            pf = make_file(disk, dataset)
            with pytest.raises(CorruptPageError):
                ego_self_join_file(pf, 0.25, unit_bytes=512, buffer_units=4,
                                   fault_plan=FaultPlan(seed=11,
                                                        corrupt_rate=0.05),
                                   checksums=True)

    def test_transient_errors_with_retries_give_exact_result(self, dataset):
        expected = self.baseline(dataset)
        with SimulatedDisk() as disk:
            pf = make_file(disk, dataset)
            plan = FaultPlan(seed=3, read_error_rate=0.05)
            report = ego_self_join_file(pf, 0.25, unit_bytes=512,
                                        buffer_units=4, fault_plan=plan,
                                        retry=RetryPolicy())
        assert report.result.canonical_pair_set() == expected
        assert report.faults.transient_read_errors > 0
        assert report.io.read_retries > 0
        assert report.io.retry_backoff_s > 0

    def test_corruption_with_retries_gives_exact_result(self, dataset):
        expected = self.baseline(dataset)
        with SimulatedDisk() as disk:
            pf = make_file(disk, dataset)
            plan = FaultPlan(seed=11, corrupt_rate=0.02)
            report = ego_self_join_file(pf, 0.25, unit_bytes=512,
                                        buffer_units=4, fault_plan=plan,
                                        checksums=True, retry=RetryPolicy())
        assert report.result.canonical_pair_set() == expected
        assert report.faults.corrupted_reads > 0
        assert report.io.corrupt_pages > 0

    def test_crash_does_not_leak_temp_disks(self, dataset):
        # The join's anonymous sorted/scratch disks must be cleaned up
        # even when an exception escapes mid-pipeline.
        import glob
        import tempfile
        pattern = os.path.join(tempfile.gettempdir(), "repro-disk-*")
        before = set(glob.glob(pattern))
        with SimulatedDisk() as disk:
            pf = make_file(disk, dataset)
            with pytest.raises(SimulatedCrash):
                ego_self_join_file(pf, 0.25, unit_bytes=512, buffer_units=4,
                                   fault_plan=FaultPlan(crash_ops=[50]))
        assert set(glob.glob(pattern)) == before

    @pytest.mark.parametrize("ranges", [[(20, 120)], [(0, 10 ** 9)],
                                        [(50, 80), (150, 400)]])
    def test_pressure_degrades_gracefully(self, dataset, ranges):
        expected = self.baseline(dataset)
        with SimulatedDisk() as disk:
            pf = make_file(disk, dataset)
            plan = FaultPlan(seed=5, pressure_ranges=ranges)
            report = ego_self_join_file(pf, 0.25, unit_bytes=512,
                                        buffer_units=6, fault_plan=plan)
        assert report.result.canonical_pair_set() == expected
        if ranges == [(0, 10 ** 9)]:
            # Constant pressure must actually shrink the buffer; narrow
            # windows may legitimately never catch the pool with a frame
            # to spare, so only correctness is asserted for those.
            assert report.schedule_stats.pressure_shrinks > 0
