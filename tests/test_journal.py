"""Tests for the crash-safe progress journal."""

import json
import os

import pytest

from repro.storage.journal import Journal


class TestPersistence:
    def test_fresh_journal_is_empty(self, tmp_path):
        j = Journal(str(tmp_path / "j.json"))
        assert j.sort_complete is None
        assert j.join_complete is None
        assert j.pair_watermark == 0
        assert j.sort_run(0) is None
        assert j.latest_merge_pass() is None

    def test_reload_round_trip(self, tmp_path):
        path = str(tmp_path / "j.json")
        j = Journal(path)
        j.record_sort_run(0, 0, 100)
        j.record_sort_run(1, 2400, 50)
        j.record_merge_pass(1, [(0, 150)])
        j.record_unit_pair(3, 5, 42)
        j.mark_sort_complete(150, 2, 1)

        j2 = Journal(path)
        assert j2.sort_run(0) == (0, 100)
        assert j2.sort_run(1) == (2400, 50)
        assert j2.latest_merge_pass() == (1, [(0, 150)])
        assert j2.pair_done(5, 3)
        assert not j2.pair_done(0, 1)
        assert j2.pair_watermark == 42
        assert j2.sort_complete == {"count": 150, "runs_generated": 2,
                                    "merge_passes": 1}

    def test_update_is_atomic(self, tmp_path):
        path = str(tmp_path / "j.json")
        j = Journal(path)
        j.record_sort_run(0, 0, 10)
        # The journal on disk is always a complete, parseable document
        # and no temp file is left behind.
        with open(path) as fh:
            state = json.load(fh)
        assert state["sort_runs"]["0"] == [0, 10]
        assert not os.path.exists(path + ".tmp")

    def test_reset_discards_progress(self, tmp_path):
        path = str(tmp_path / "j.json")
        j = Journal(path)
        j.record_unit_pair(0, 1, 7)
        j.reset()
        assert Journal(path).pair_watermark == 0

    def test_unknown_version_rejected(self, tmp_path):
        path = str(tmp_path / "j.json")
        with open(path, "w") as fh:
            json.dump({"version": 99}, fh)
        with pytest.raises(ValueError, match="version"):
            Journal(path)


class TestBatching:
    def test_flush_every_batches_writes(self, tmp_path):
        path = str(tmp_path / "j.json")
        j = Journal(path, flush_every=10)
        j.record_sort_run(0, 0, 10)
        # In memory immediately, not yet on disk.
        assert j.sort_run(0) == (0, 10)
        assert Journal(path).sort_run(0) is None
        j.flush()
        assert Journal(path).sort_run(0) == (0, 10)

    def test_completion_marks_always_persist(self, tmp_path):
        path = str(tmp_path / "j.json")
        j = Journal(path, flush_every=1000)
        j.mark_sort_complete(5, 1, 1)
        assert Journal(path).sort_complete is not None

    def test_invalid_flush_every(self, tmp_path):
        with pytest.raises(ValueError):
            Journal(str(tmp_path / "j.json"), flush_every=0)


class TestPairs:
    def test_pair_key_is_canonical(self, tmp_path):
        j = Journal(str(tmp_path / "j.json"))
        j.record_unit_pair(9, 2, 5)
        assert j.pair_done(2, 9)
        assert j.pair_done(9, 2)

    def test_duplicate_pair_keeps_first_watermark(self, tmp_path):
        j = Journal(str(tmp_path / "j.json"))
        j.record_unit_pair(1, 2, 10)
        j.record_unit_pair(2, 1, 999)
        assert j.pair_watermark == 10

    def test_watermark_advances(self, tmp_path):
        j = Journal(str(tmp_path / "j.json"))
        j.record_unit_pair(0, 0, 3)
        j.record_unit_pair(0, 1, 8)
        assert j.pair_watermark == 8

    def test_join_complete(self, tmp_path):
        path = str(tmp_path / "j.json")
        j = Journal(path)
        j.mark_join_complete(1234)
        assert Journal(path).join_complete == {"pairs": 1234}
