"""Tests for the high-throughput leaf kernels (GEMM engine, windowing,
scratch buffers, engine selection)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.distance import natural_ordering, pairs_within_scalar
from repro.core.ego_join import ego_self_join
from repro.core.ego_order import ego_sorted
from repro.core.kernels import (AUTO_MATMUL_VOLUME, ScratchBuffers,
                                candidate_windows, pairs_within_matmul,
                                select_engine)
from repro.core.metrics import get_metric
from repro.core.sequence import Sequence
from repro.core.sequence_join import JoinContext
from repro.core.result import JoinResult
from repro.storage.stats import CPUCounters

from conftest import brute_truth

METRICS = [None, "manhattan", "chebyshev", 3.0]


def pair_set(ia, ib):
    return set(zip(ia.tolist(), ib.tolist()))


class TestMatmulKernel:
    @given(st.integers(min_value=0, max_value=20),
           st.integers(min_value=0, max_value=20),
           st.integers(min_value=1, max_value=8),
           st.floats(min_value=0.05, max_value=2.0),
           st.sampled_from(METRICS),
           st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar_reference(self, na, nb, d, eps, metric, seed):
        rng = np.random.default_rng(seed)
        a = rng.random((na, d))
        b = rng.random((nb, d))
        order = natural_ordering(d)
        m = get_metric(metric)
        threshold = m.threshold(eps)
        em = None if m.name == "euclidean" else m
        sa, sb = pairs_within_scalar(a, b, threshold, order, metric=em)
        ma, mb = pairs_within_matmul(a, b, threshold, order, metric=em)
        assert pair_set(sa, sb) == pair_set(ma, mb)

    @given(st.integers(min_value=2, max_value=24),
           st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_upper_triangle_matches_scalar(self, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.random((n, 4))
        order = natural_ordering(4)
        sa, sb = pairs_within_scalar(a, a, 0.25, order,
                                     upper_triangle=True)
        ma, mb = pairs_within_matmul(a, a, 0.25, order,
                                     upper_triangle=True)
        assert pair_set(sa, sb) == pair_set(ma, mb)
        if len(ma):
            assert (ma < mb).all()

    def test_duplicate_points(self):
        """Exact duplicates (distance 0) survive the Gram identity."""
        a = np.tile([[0.5, 0.5, 0.5]], (6, 1))
        order = natural_ordering(3)
        ia, ib = pairs_within_matmul(a, a, 1e-12, order,
                                     upper_triangle=True)
        assert len(ia) == 6 * 5 // 2

    def test_empty_and_single_point(self):
        order = natural_ordering(2)
        ia, ib = pairs_within_matmul(np.empty((0, 2)), np.empty((3, 2)),
                                     1.0, order)
        assert len(ia) == 0 == len(ib)
        one = np.array([[0.1, 0.2]])
        ia, ib = pairs_within_matmul(one, one, 1.0, order,
                                     upper_triangle=True)
        assert len(ia) == 0

    def test_distances_match_scalar(self, rng):
        a = rng.random((40, 6))
        b = rng.random((35, 6))
        order = natural_ordering(6)
        sa, sb, sd = pairs_within_scalar(a, b, 0.5, order,
                                         return_sq_distances=True)
        ma, mb, md = pairs_within_matmul(a, b, 0.5, order,
                                         return_sq_distances=True)
        assert pair_set(sa, sb) == pair_set(ma, mb)
        smap = dict(zip(zip(sa.tolist(), sb.tolist()), sd.tolist()))
        # Accepts are re-verified from exact differences, so the
        # distances match the reference to the last ulp or so.
        for i, j, d2 in zip(ma.tolist(), mb.tolist(), md.tolist()):
            assert d2 == pytest.approx(smap[(i, j)], rel=1e-12, abs=1e-15)

    def test_boundary_pair_is_inclusive(self):
        """A pair at exactly distance ε is reported (≤, not <)."""
        a = np.array([[0.0, 0.0]])
        b = np.array([[0.6, 0.8]])
        order = natural_ordering(2)
        ia, ib = pairs_within_matmul(a, b, 1.0, order)
        assert len(ia) == 1

    def test_blocking_invariance(self, rng):
        """Any tile size returns the same pair set."""
        a = rng.random((70, 5))
        b = rng.random((90, 5))
        order = natural_ordering(5)
        ref = pair_set(*pairs_within_matmul(a, b, 0.3, order))
        for block in (1, 3, 16, 64, 1024):
            got = pairs_within_matmul(a, b, 0.3, order,
                                      scratch=ScratchBuffers(block))
            assert pair_set(*got) == ref

    def test_counters_charge_dense_work(self, rng):
        a = rng.random((10, 4))
        b = rng.random((12, 4))
        c = CPUCounters()
        pairs_within_matmul(a, b, 0.2, natural_ordering(4), counters=c)
        assert c.distance_calculations == 10 * 12
        assert c.dimension_evaluations == 10 * 12 * 4
        c2 = CPUCounters()
        pairs_within_matmul(a, a, 0.2, natural_ordering(4), counters=c2,
                            upper_triangle=True)
        assert c2.distance_calculations == 10 * 9 // 2


class TestCandidateWindows:
    def test_windows_are_sound_and_contiguous(self, rng):
        eps = 0.15
        ids, pts = ego_sorted(rng.random((200, 3)), eps)
        seq = Sequence(ids, pts, eps)
        wdim = seq.active_dimension()
        assert wdim is not None
        lo, hi = candidate_windows(pts, pts, wdim, eps)
        truth = brute_truth(pts, eps)
        for i, j in truth:
            assert lo[i] <= j < hi[i], "window dropped a true mate"
            assert lo[j] <= i < hi[j]

    def test_windowed_kernel_matches_unwindowed(self, rng):
        eps = 0.2
        _ids, pts = ego_sorted(rng.random((150, 3)), eps)
        order = natural_ordering(3)
        lo, hi = candidate_windows(pts, pts, 0, eps)
        ref = pairs_within_matmul(pts, pts, eps * eps, order,
                                  upper_triangle=True)
        win = pairs_within_matmul(pts, pts, eps * eps, order,
                                  upper_triangle=True, windows=(lo, hi))
        assert pair_set(*ref) == pair_set(*win)

    def test_window_reduces_counter_charges(self, rng):
        eps = 0.05
        _ids, pts = ego_sorted(rng.random((300, 2)), eps)
        order = natural_ordering(2)
        dense, windowed = CPUCounters(), CPUCounters()
        pairs_within_matmul(pts, pts, eps * eps, order, counters=dense,
                            upper_triangle=True)
        lo, hi = candidate_windows(pts, pts, 0, eps)
        pairs_within_matmul(pts, pts, eps * eps, order, counters=windowed,
                            upper_triangle=True, windows=(lo, hi))
        assert windowed.distance_calculations \
            < dense.distance_calculations


class TestEngineSelection:
    def test_explicit_engines_pass_through(self):
        for eng in ("scalar", "vector", "matmul"):
            assert select_engine(eng, 1000, 1000, 32) == eng

    def test_auto_small_leaf_uses_vector(self):
        assert select_engine("auto", 8, 8, 4) == "vector"

    def test_auto_large_leaf_uses_matmul(self):
        assert select_engine("auto", 256, 256, 16) == "matmul"

    def test_auto_non_euclidean_uses_vector(self):
        m = get_metric("manhattan")
        assert select_engine("auto", 256, 256, 16, m) == "vector"

    def test_threshold_is_the_knob(self):
        na = nb = d = 32
        assert na * nb * d >= AUTO_MATMUL_VOLUME
        assert select_engine("auto", na, nb, d) == "matmul"

    def test_context_accepts_new_engines(self):
        for eng in ("matmul", "auto"):
            ctx = JoinContext(epsilon=0.1, result=JoinResult(), engine=eng)
            assert ctx.engine == eng

    def test_context_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            JoinContext(epsilon=0.1, result=JoinResult(), engine="gpu")


class TestEnginesEndToEnd:
    @given(st.integers(min_value=0, max_value=120),
           st.integers(min_value=1, max_value=5),
           st.floats(min_value=0.05, max_value=0.6),
           st.sampled_from(["matmul", "batched", "auto"]),
           st.sampled_from(METRICS),
           st.integers(min_value=1, max_value=64),
           st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_self_join_matches_vector(self, n, d, eps, engine, metric,
                                      minlen, seed):
        rng = np.random.default_rng(seed)
        pts = rng.random((n, d))
        ref = ego_self_join(pts, eps, engine="vector",
                            metric=metric).canonical_pair_set()
        got = ego_self_join(pts, eps, engine=engine, minlen=minlen,
                            metric=metric).canonical_pair_set()
        assert got == ref

    def test_self_join_with_duplicates(self, rng):
        base = rng.random((40, 3))
        pts = np.vstack([base, base[:10]])  # exact duplicates
        eps = 0.2
        ref = brute_truth(pts, eps)
        for eng in ("matmul", "batched", "auto"):
            got = ego_self_join(pts, eps, engine=eng,
                                minlen=16).canonical_pair_set()
            assert got == ref

    def test_scratch_buffers_are_reused(self, rng):
        ctx = JoinContext(epsilon=0.1, result=JoinResult(),
                          engine="matmul")
        first = ctx.scratch
        assert ctx.scratch is first
        tile = first.gram_tile(16, 16)
        assert tile.shape == (16, 16)
        again = first.gram_tile(16, 16)
        assert again.base is tile.base

    def test_collect_distances_end_to_end(self, rng):
        pts = rng.random((200, 4))
        eps = 0.25
        res_v = JoinResult(collect_distances=True)
        res_m = JoinResult(collect_distances=True)
        ego_self_join(pts, eps, engine="vector", result=res_v)
        ego_self_join(pts, eps, engine="matmul", minlen=64, result=res_m)

        def dist_map(res):
            ia, ib = res.pairs()
            keys = [(min(i, j), max(i, j))
                    for i, j in zip(ia.tolist(), ib.tolist())]
            return dict(zip(keys, res.distances().tolist()))

        dv, dm = dist_map(res_v), dist_map(res_m)
        assert set(dv) == set(dm)
        for k in dv:
            assert dm[k] == pytest.approx(dv[k], rel=1e-9)
