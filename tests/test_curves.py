"""Tests for the Z-order and Hilbert space-filling curves."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.curves.hilbert import (hilbert_decode, hilbert_encode,
                                  hilbert_key_columns,
                                  hilbert_transpose_batch)
from repro.curves.zorder import (morton_decode, morton_encode,
                                 morton_key_columns, normalize_cells,
                                 required_bits)

small_dims = st.integers(min_value=1, max_value=4)
small_bits = st.integers(min_value=1, max_value=6)


class TestMortonScalar:
    def test_known_values_2d(self):
        # Classic 2-d Morton: (x=dim0 is the high bit of each pair).
        assert morton_encode([0, 0], 2) == 0
        assert morton_encode([0, 1], 2) == 1
        assert morton_encode([1, 0], 2) == 2
        assert morton_encode([1, 1], 2) == 3
        assert morton_encode([2, 0], 2) == 8

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            morton_encode([-1, 0], 4)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            morton_encode([4, 0], 2)

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            morton_encode([0], 0)

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                    max_size=4), small_bits)
    def test_round_trip(self, coords, bits):
        if max(coords) >= (1 << bits):
            coords = [c % (1 << bits) for c in coords]
        code = morton_encode(coords, bits)
        out = morton_decode(code, len(coords), bits)
        assert out.tolist() == coords

    @given(small_dims, small_bits, st.integers(0, 1000))
    def test_bijective_on_grid(self, dims, bits, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 1 << bits, dims)
        b = rng.integers(0, 1 << bits, dims)
        ca, cb = morton_encode(a, bits), morton_encode(b, bits)
        assert (ca == cb) == bool((a == b).all())


class TestMortonColumns:
    def test_column_order_matches_numeric_order(self, rng):
        cells = rng.integers(0, 1 << 10, (200, 3))
        keys = morton_key_columns(cells, 10)
        codes = [morton_encode(c, 10) for c in cells]
        column_order = np.lexsort(
            [keys[:, j] for j in range(keys.shape[1] - 1, -1, -1)])
        numeric_order = np.argsort(codes, kind="stable")
        # Compare by resulting code sequence (ties permute freely).
        assert ([codes[i] for i in column_order]
                == [codes[i] for i in numeric_order])

    def test_high_dimension_many_columns(self, rng):
        cells = rng.integers(0, 1 << 16, (10, 16))
        keys = morton_key_columns(cells, 16)
        assert keys.shape == (10, -(-16 * 16 // 63))
        assert (keys >= 0).all()

    def test_rejects_negative_cells(self):
        with pytest.raises(ValueError):
            morton_key_columns(np.array([[-1, 0]]), 4)

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            morton_key_columns(np.array([1, 2]), 4)


class TestNormalization:
    def test_normalize_shifts_min_to_zero(self):
        cells = np.array([[-5, 3], [0, -2], [7, 0]])
        out = normalize_cells(cells)
        assert out.min(axis=0).tolist() == [0, 0]
        # Relative order preserved per dimension.
        np.testing.assert_array_equal(np.argsort(out[:, 0]),
                                      np.argsort(cells[:, 0]))

    def test_normalize_empty(self):
        out = normalize_cells(np.empty((0, 2), dtype=np.int64))
        assert out.shape == (0, 2)

    def test_required_bits(self):
        assert required_bits(np.array([[0, 0]])) == 1
        assert required_bits(np.array([[1, 0]])) == 1
        assert required_bits(np.array([[255, 3]])) == 8
        assert required_bits(np.array([[256, 3]])) == 9


class TestHilbertScalar:
    def test_first_quadrant_walk_2d(self):
        """Consecutive indices must be adjacent grid cells (unit steps)."""
        bits = 3
        prev = hilbert_decode(0, 2, bits)
        for code in range(1, 2 ** (2 * bits)):
            cur = hilbert_decode(code, 2, bits)
            assert np.abs(cur - prev).sum() == 1, f"jump at {code}"
            prev = cur

    def test_unit_steps_3d(self):
        bits = 2
        prev = hilbert_decode(0, 3, bits)
        for code in range(1, 2 ** (3 * bits)):
            cur = hilbert_decode(code, 3, bits)
            assert np.abs(cur - prev).sum() == 1
            prev = cur

    @given(st.lists(st.integers(min_value=0, max_value=31), min_size=1,
                    max_size=4), st.integers(min_value=5, max_value=6))
    def test_round_trip(self, coords, bits):
        code = hilbert_encode(coords, bits)
        out = hilbert_decode(code, len(coords), bits)
        assert out.tolist() == coords

    def test_bijective_covers_grid(self):
        bits, dims = 2, 2
        seen = {tuple(hilbert_decode(c, dims, bits).tolist())
                for c in range(2 ** (dims * bits))}
        assert len(seen) == 2 ** (dims * bits)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            hilbert_encode([-1, 2], 4)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            hilbert_encode([16, 0], 4)


class TestHilbertBatch:
    @given(st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=5),
           st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_batch_matches_scalar(self, dims, bits, seed):
        rng = np.random.default_rng(seed)
        cells = rng.integers(0, 1 << bits, (20, dims))
        batch = hilbert_transpose_batch(cells, bits)
        for row in range(len(cells)):
            from repro.curves.hilbert import _axes_to_transpose
            expected = _axes_to_transpose(
                cells[row].astype(np.int64).copy(), bits)
            assert batch[row].tolist() == expected.tolist()

    def test_key_columns_order_matches_codes(self, rng):
        bits = 8
        cells = rng.integers(0, 1 << bits, (100, 2))
        keys = hilbert_key_columns(cells, bits)
        codes = [hilbert_encode(c, bits) for c in cells]
        order = np.lexsort([keys[:, j]
                            for j in range(keys.shape[1] - 1, -1, -1)])
        assert ([codes[i] for i in order]
                == [codes[i] for i in np.argsort(codes, kind="stable")])
