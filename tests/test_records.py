"""Tests for the fixed-width record codec."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.storage.records import RecordCodec, record_size


class TestRecordSize:
    def test_scales_with_dimensions(self):
        assert record_size(1) == 16
        assert record_size(8) == 72
        assert record_size(16) == 136

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError):
            record_size(bad)


class TestCodecRoundTrip:
    def test_simple_round_trip(self):
        codec = RecordCodec(3)
        ids = np.array([1, 2, 3], dtype=np.int64)
        pts = np.array([[0.1, 0.2, 0.3], [1, 2, 3], [-1, -2, -3]])
        out_ids, out_pts = codec.decode(codec.encode(ids, pts))
        np.testing.assert_array_equal(out_ids, ids)
        np.testing.assert_allclose(out_pts, pts)

    def test_empty_round_trip(self):
        codec = RecordCodec(2)
        ids, pts = codec.decode(codec.encode(
            np.empty(0, dtype=np.int64), np.empty((0, 2))))
        assert len(ids) == 0
        assert pts.shape == (0, 2)

    def test_extreme_ids_preserved_exactly(self):
        codec = RecordCodec(1)
        ids = np.array([0, -1, 2**62, -(2**62)], dtype=np.int64)
        pts = np.zeros((4, 1))
        out_ids, _ = codec.decode(codec.encode(ids, pts))
        np.testing.assert_array_equal(out_ids, ids)

    def test_special_floats_preserved(self):
        codec = RecordCodec(2)
        pts = np.array([[np.inf, -np.inf], [np.nan, 0.0]])
        _, out = codec.decode(codec.encode(np.arange(2), pts))
        assert np.isinf(out[0, 0]) and np.isinf(out[0, 1])
        assert np.isnan(out[1, 0]) and out[1, 1] == 0.0

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=50))
    def test_round_trip_property(self, dims, n):
        rng = np.random.default_rng(dims * 100 + n)
        codec = RecordCodec(dims)
        ids = rng.integers(-2**40, 2**40, size=n).astype(np.int64)
        pts = rng.normal(size=(n, dims))
        out_ids, out_pts = codec.decode(codec.encode(ids, pts))
        np.testing.assert_array_equal(out_ids, ids)
        np.testing.assert_array_equal(out_pts, pts)


class TestCodecValidation:
    def test_encode_rejects_wrong_dimension(self):
        codec = RecordCodec(3)
        with pytest.raises(ValueError):
            codec.encode(np.arange(2), np.zeros((2, 4)))

    def test_encode_rejects_mismatched_lengths(self):
        codec = RecordCodec(2)
        with pytest.raises(ValueError):
            codec.encode(np.arange(3), np.zeros((2, 2)))

    def test_decode_rejects_partial_record(self):
        codec = RecordCodec(2)
        with pytest.raises(ValueError):
            codec.decode(b"\x00" * (codec.record_bytes + 1))

    def test_rejects_zero_dimensions(self):
        with pytest.raises(ValueError):
            RecordCodec(0)


class TestFragmentGeometry:
    def test_aligned_window_has_no_fragments(self):
        codec = RecordCodec(1)  # 16-byte records
        head, tail = codec.split_fragments(start_offset=32, data_len=64)
        assert (head, tail) == (0, 0)

    def test_head_fragment(self):
        codec = RecordCodec(1)
        head, tail = codec.split_fragments(start_offset=8, data_len=40)
        assert head == 8
        assert tail == (40 - 8) % 16

    def test_window_inside_one_record(self):
        codec = RecordCodec(3)  # 32-byte records
        head, tail = codec.split_fragments(start_offset=5, data_len=10)
        assert head == 10 and tail == 0

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=1000),
           st.integers(min_value=1, max_value=300))
    def test_fragment_invariants(self, dims, offset, length):
        codec = RecordCodec(dims)
        head, tail = codec.split_fragments(offset, length)
        assert 0 <= head <= length
        assert 0 <= tail < codec.record_bytes or tail == 0
        body = length - head - tail
        assert body >= 0
        assert body % codec.record_bytes == 0
        if head < length:
            assert (offset + head) % codec.record_bytes == 0
