"""Tests for the top-level EGO join entry points."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ego_join import (ego_join, ego_self_join,
                                 ego_self_join_file)
from repro.core.result import JoinResult
from repro.storage.disk import SimulatedDisk
from repro.storage.stats import CPUCounters

from conftest import brute_truth, make_file


class TestInMemorySelfJoin:
    def test_matches_brute_force(self, rng):
        pts = rng.random((250, 4))
        eps = 0.3
        result = ego_self_join(pts, eps)
        assert result.canonical_pair_set() == brute_truth(pts, eps)

    def test_empty_input(self):
        result = ego_self_join(np.empty((0, 3)), 0.5)
        assert result.count == 0

    def test_custom_ids(self, rng):
        pts = rng.random((30, 2))
        ids = np.arange(1000, 1030)
        result = ego_self_join(pts, 0.4, ids=ids)
        a, b = result.pairs()
        assert ((a >= 1000) & (a < 1030)).all()
        assert ((b >= 1000) & (b < 1030)).all()

    def test_counters_populated(self, rng):
        cpu = CPUCounters()
        ego_self_join(rng.random((50, 3)), 0.3, cpu=cpu)
        assert cpu.distance_calculations > 0
        assert cpu.sequence_pairs > 0

    def test_existing_result_extended(self, rng):
        result = JoinResult()
        ego_self_join(rng.random((20, 2)), 0.5, result=result)
        count_first = result.count
        ego_self_join(rng.random((20, 2)), 0.5, result=result)
        assert result.count >= count_first

    def test_rejects_bad_epsilon(self, rng):
        with pytest.raises(ValueError):
            ego_self_join(rng.random((5, 2)), -0.5)

    @given(st.floats(min_value=0.01, max_value=1.4),
           st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_epsilon_sweep_property(self, eps, seed):
        rng = np.random.default_rng(seed)
        pts = rng.random((60, 3))
        result = ego_self_join(pts, eps)
        assert result.canonical_pair_set() == brute_truth(pts, eps)

    def test_monotone_in_epsilon(self, rng):
        pts = rng.random((100, 3))
        small = ego_self_join(pts, 0.1).canonical_pair_set()
        large = ego_self_join(pts, 0.3).canonical_pair_set()
        assert small <= large


class TestInMemoryTwoSetJoin:
    def test_matches_brute_force(self, rng):
        eps = 0.25
        r = rng.random((60, 3))
        s = rng.random((45, 3))
        result = ego_join(r, s, eps)
        expected = set()
        for i in range(60):
            for j in range(45):
                if np.linalg.norm(r[i] - s[j]) <= eps:
                    expected.add((i, j))
        assert result.pair_set() == expected

    def test_empty_side(self, rng):
        result = ego_join(np.empty((0, 2)), rng.random((10, 2)), 0.5)
        assert result.count == 0

    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            ego_join(rng.random((5, 2)), rng.random((5, 3)), 0.5)

    def test_join_with_itself_gives_reflexive_pairs(self, rng):
        """R ⋈ R (two-set semantics) includes (i, i) pairs."""
        pts = rng.random((20, 2))
        result = ego_join(pts, pts, 0.2)
        pairs = result.pair_set()
        for i in range(20):
            assert (i, i) in pairs


class TestExternalSelfJoin:
    def test_matches_brute_force(self, rng):
        pts = rng.random((300, 4))
        eps = 0.25
        with SimulatedDisk() as disk:
            pf = make_file(disk, pts)
            report = ego_self_join_file(pf, eps, unit_bytes=1024,
                                        buffer_units=4)
            assert (report.result.canonical_pair_set()
                    == brute_truth(pts, eps))

    def test_report_accounting_complete(self, rng):
        pts = rng.random((200, 3))
        with SimulatedDisk() as disk:
            pf = make_file(disk, pts)
            report = ego_self_join_file(pf, 0.3, unit_bytes=512,
                                        buffer_units=4)
            assert report.sort_stats.records_sorted == 200
            assert report.schedule_stats.total_unit_loads > 0
            assert report.io.bytes_read > 0
            assert report.simulated_io_time_s > 0
            assert report.simulated_io_time_s == pytest.approx(
                report.sort_io_time_s + report.join_io_time_s)
            assert report.cpu.distance_calculations > 0

    def test_count_only_mode(self, rng):
        pts = rng.random((100, 2))
        with SimulatedDisk() as disk:
            pf = make_file(disk, pts)
            report = ego_self_join_file(pf, 0.2, unit_bytes=512,
                                        buffer_units=4,
                                        materialize=False)
            assert report.result.count == len(brute_truth(pts, 0.2))
            with pytest.raises(RuntimeError):
                report.result.pairs()

    def test_explicit_disks_reused(self, rng):
        pts = rng.random((80, 2))
        with SimulatedDisk() as disk, SimulatedDisk() as sorted_disk, \
                SimulatedDisk() as scratch:
            pf = make_file(disk, pts)
            report = ego_self_join_file(pf, 0.3, unit_bytes=512,
                                        buffer_units=4,
                                        sorted_disk=sorted_disk,
                                        scratch_disk=scratch)
            assert report.result.canonical_pair_set() == brute_truth(
                pts, 0.3)
            assert sorted_disk.counters.bytes_written > 0

    def test_small_sort_memory_forces_multiple_runs(self, rng):
        pts = rng.random((150, 2))
        with SimulatedDisk() as disk:
            pf = make_file(disk, pts)
            report = ego_self_join_file(pf, 0.3, unit_bytes=512,
                                        buffer_units=4,
                                        sort_memory_records=20)
            assert report.sort_stats.runs_generated > 1
            assert (report.result.canonical_pair_set()
                    == brute_truth(pts, 0.3))

    def test_duplicate_coordinates(self):
        pts = np.array([[0.5, 0.5]] * 10 + [[0.9, 0.9]] * 5)
        with SimulatedDisk() as disk:
            pf = make_file(disk, pts)
            report = ego_self_join_file(pf, 0.1, unit_bytes=128,
                                        buffer_units=2)
            assert report.result.count == 10 * 9 // 2 + 5 * 4 // 2
