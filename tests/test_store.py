"""Tests for the long-lived incremental EGOStore service.

Covers the tentpole guarantees: every query is digest-identical to the
batch pipeline over the current live point set, the journal replays to
a byte-identical store, and the result LRU can never serve a stale
entry across a mutation (the data-version key plus the loud
:class:`StaleCacheError` guard).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.service import EGOStore, StaleCacheError
from repro.storage.journal import Journal
from repro.verify.canonical import canonical_pairs, pair_digest

from conftest import brute_truth

EPS = 0.2


def pair_set(pairs: np.ndarray) -> set:
    return {tuple(r) for r in pairs.tolist()}


def store_truth(store: EGOStore, epsilon: float = None) -> set:
    """Brute-force join of the store's live points, in user-id space."""
    ids, pts = store.live_points()
    eps = store.epsilon if epsilon is None else epsilon
    positional = brute_truth(pts, eps)
    return {(min(int(ids[a]), int(ids[b])), max(int(ids[a]), int(ids[b])))
            for a, b in positional}


@pytest.fixture
def seeded_store(rng):
    pts = rng.random((150, 3))
    return EGOStore.from_points(pts, EPS), pts


class TestConstruction:
    def test_from_points_matches_brute(self, seeded_store):
        store, pts = seeded_store
        assert pair_set(store.join()) == brute_truth(pts, EPS)
        assert len(store) == len(pts)
        assert store.dimensions == 3

    def test_empty_store(self):
        store = EGOStore(EPS)
        assert len(store) == 0
        assert len(store.join()) == 0
        assert store.ids().size == 0

    def test_explicit_ids(self, rng):
        pts = rng.random((30, 2))
        ids = np.arange(1000, 1030, dtype=np.int64)
        store = EGOStore.from_points(pts, EPS, ids=ids)
        assert set(store.ids().tolist()) == set(ids.tolist())
        got = pair_set(store.join())
        want = {(a + 1000, b + 1000) for a, b in brute_truth(pts, EPS)}
        assert got == want

    def test_bad_epsilon_rejected(self):
        with pytest.raises(ValueError):
            EGOStore(0.0)

    def test_bad_thresholds_rejected(self):
        with pytest.raises(ValueError):
            EGOStore(EPS, compact_threshold=0)
        with pytest.raises(ValueError):
            EGOStore(EPS, unit_records=0)

    def test_dimension_mismatch_rejected(self, rng):
        store = EGOStore.from_points(rng.random((10, 3)), EPS)
        with pytest.raises(ValueError, match="3-dimensional"):
            store.insert(rng.random((5, 2)))

    def test_nonfinite_rejected(self):
        store = EGOStore(EPS)
        with pytest.raises(ValueError):
            store.insert(np.array([[0.1, np.nan]]))


class TestUpdates:
    def test_insert_without_compaction_still_exact(self, rng):
        """Delta×delta and delta×main cross paths are join-complete."""
        pts = rng.random((80, 3))
        store = EGOStore.from_points(pts[:50], EPS,
                                     compact_threshold=10_000)
        store.insert(pts[50:])
        assert store.stats().delta_rows == 30
        assert pair_set(store.join()) == brute_truth(pts, EPS)

    def test_compaction_preserves_result(self, rng):
        pts = rng.random((80, 3))
        store = EGOStore.from_points(pts[:50], EPS,
                                     compact_threshold=10_000)
        store.insert(pts[50:])
        before = pair_set(store.join())
        store.compact()
        assert store.stats().delta_rows == 0
        assert pair_set(store.join()) == before

    def test_delete_from_main_and_delta(self, rng):
        pts = rng.random((60, 3))
        store = EGOStore.from_points(pts[:40], EPS,
                                     compact_threshold=10_000)
        store.insert(pts[40:])
        store.delete([3, 45])  # one main row, one delta row
        assert 3 not in store and 45 not in store
        assert pair_set(store.join()) == store_truth(store)

    def test_delete_unknown_id_raises(self, seeded_store):
        store, _ = seeded_store
        with pytest.raises(KeyError):
            store.delete([10**6])

    def test_duplicate_insert_id_rejected(self, seeded_store):
        store, _ = seeded_store
        with pytest.raises(ValueError, match="already live"):
            store.insert(np.array([[0.5, 0.5, 0.5]]),
                         ids=np.array([0]))

    def test_delete_then_reinsert_same_id(self, rng):
        """A dead main row must not shadow a re-inserted user id."""
        pts = rng.random((40, 3))
        store = EGOStore.from_points(pts, EPS, compact_threshold=10_000)
        store.delete([7])
        new_pt = rng.random(3)
        store.insert(new_pt, ids=np.array([7]))
        assert 7 in store
        assert pair_set(store.join()) == store_truth(store)

    def test_auto_ids_monotone_after_explicit(self):
        store = EGOStore(EPS)
        store.insert(np.array([[0.1, 0.1]]), ids=np.array([50]))
        fresh = store.insert(np.array([[0.9, 0.9]]))
        assert fresh[0] == 51

    def test_threshold_triggers_compaction(self, rng):
        store = EGOStore(EPS, compact_threshold=16)
        for _ in range(4):
            store.insert(rng.random((8, 2)))
        stats = store.stats()
        assert stats.compactions >= 1
        assert stats.delta_rows < 16


class TestEpsilonChanges:
    def test_smaller_epsilon_no_resort(self, seeded_store):
        store, pts = seeded_store
        store.set_epsilon(EPS / 2)
        assert store.grid_epsilon == EPS  # resident order untouched
        assert pair_set(store.join()) == brute_truth(pts, EPS / 2)

    def test_larger_epsilon_uses_coarse_view(self, seeded_store):
        """ε above the grid ε must re-order — the k·ε shortcut is
        unsound (lexicographic order does not survive coarsening)."""
        store, pts = seeded_store
        for factor in (1.5, 2.0, 3.3):
            eps = EPS * factor
            assert pair_set(store.join(eps)) == brute_truth(pts, eps)

    def test_coarse_view_cached_and_invalidated(self, seeded_store):
        store, pts = seeded_store
        eps = EPS * 2
        store.join(eps)
        assert eps in store._coarse_views
        store.insert(np.full((1, 3), 0.5))
        store.compact()
        assert eps not in store._coarse_views  # dropped with the run
        assert pair_set(store.join(eps)) == store_truth(store, eps)

    def test_epsilon_ladder_nested(self, seeded_store):
        store, _ = seeded_store
        sweep = [len(store.join(e))
                 for e in (0.05, 0.1, EPS, 0.3, 0.45)]
        assert sweep == sorted(sweep)


class TestQueries:
    def test_range_matches_brute(self, seeded_store, rng):
        store, pts = seeded_store
        q = rng.random(3)
        ids, dists = store.range(q)
        d = np.linalg.norm(pts - q, axis=1)
        want = set(np.nonzero(d <= EPS)[0].tolist())
        assert set(ids.tolist()) == want
        assert np.all(np.diff(dists) >= 0)

    def test_range_sees_delta_rows(self, rng):
        store = EGOStore(EPS, compact_threshold=10_000)
        store.insert(np.array([[0.5, 0.5]]))
        ids, dists = store.range(np.array([0.5, 0.5]))
        assert ids.tolist() == [0] and dists[0] == 0.0

    def test_knn_matches_brute(self, seeded_store, rng):
        store, pts = seeded_store
        q = rng.random(3)
        ids, dists = store.knn(q, 9)
        d = np.linalg.norm(pts - q, axis=1)
        want = np.lexsort((np.arange(len(pts)), d))[:9]
        assert ids.tolist() == want.tolist()
        assert np.allclose(dists, d[want])

    def test_knn_k_larger_than_store(self, rng):
        store = EGOStore.from_points(rng.random((5, 2)), EPS)
        ids, _dists = store.knn(rng.random(2), 50)
        assert len(ids) == 5

    def test_batch_mixed_requests(self, seeded_store, rng):
        store, pts = seeded_store
        q1, q2 = rng.random(3), rng.random(3)
        res = store.batch([
            {"kind": "range", "query": q1, "epsilon": 0.3},
            {"kind": "join"},
            {"kind": "range", "query": q2, "epsilon": 0.3},
            {"kind": "knn", "query": q1, "k": 4},
        ])
        assert len(res) == 4
        for q, (ids, _d) in ((q1, res[0]), (q2, res[2])):
            d = np.linalg.norm(pts - q, axis=1)
            assert set(ids.tolist()) == \
                set(np.nonzero(d <= 0.3)[0].tolist())
        assert pair_set(res[1]) == brute_truth(pts, EPS)
        assert len(res[3][0]) == 4

    def test_batch_unknown_kind_rejected(self, seeded_store):
        store, _ = seeded_store
        with pytest.raises(ValueError, match="unknown request kind"):
            store.batch([{"kind": "nope"}])

    def test_join_result_distances(self, rng):
        pts = rng.random((40, 2))
        store = EGOStore.from_points(pts, EPS)
        res = store.join_result(collect_distances=True)
        a, b = res.pairs()
        d = res.distances()
        assert np.allclose(
            d, np.linalg.norm(pts[a] - pts[b], axis=1))
        assert (d <= EPS + 1e-12).all()

    def test_digest_identical_to_batch_pipeline(self, rng):
        """The acceptance criterion: store join ≡ batch ego join."""
        from repro.core.ego_join import ego_self_join

        pts = rng.random((120, 4))
        store = EGOStore.from_points(pts[:90], EPS)
        store.insert(pts[90:])
        store.delete(list(range(0, 30, 3)))
        ids, live = store.live_points()
        batch = canonical_pairs(ego_self_join(live, EPS, ids=ids))
        assert pair_digest(store.join()) == pair_digest(batch)


class TestCacheStaleness:
    """Satellite: the LRU can never serve a result across a mutation."""

    def test_hit_only_at_same_version(self, seeded_store):
        store, _ = seeded_store
        store.join()
        before = store.stats()
        store.join()
        after = store.stats()
        assert after.cache_hits == before.cache_hits + 1

    @pytest.mark.parametrize("mutate", ["insert", "delete", "epsilon"])
    def test_every_mutation_invalidates(self, seeded_store, rng, mutate):
        store, _ = seeded_store
        store.join()
        assert len(store._cache) == 1
        if mutate == "insert":
            store.insert(rng.random((1, 3)))
        elif mutate == "delete":
            store.delete([int(store.ids()[0])])
        else:
            store.set_epsilon(EPS * 0.9)
        assert len(store._cache) == 0

    def test_qualifying_insert_never_served_stale(self, rng):
        """Regression: a join cached before an insert that adds pairs
        must not answer the join after it."""
        pts = rng.random((60, 3))
        store = EGOStore.from_points(pts, EPS)
        stale = pair_set(store.join())
        anchor = pts[11]
        mate = anchor + EPS / 4  # inside ε of the anchor: adds pairs
        new_id = int(store.insert(mate[None, :])[0])
        fresh = pair_set(store.join())
        assert fresh != stale
        assert any(new_id in p for p in fresh)
        assert fresh == store_truth(store)

    def test_manually_planted_stale_entry_raises(self, seeded_store):
        """If invalidation were broken, the read guard still fails
        loudly instead of serving the stale result."""
        store, _ = seeded_store
        pairs = store.join()
        key = ("join", float(EPS), store.data_version)
        store.insert(np.full((1, 3), 0.25))  # bumps the version
        store._cache[key] = (key[-1], pairs)  # simulate broken LRU
        with pytest.raises(StaleCacheError):
            store._cache_get(key)

    def test_surviving_entry_detected_on_invalidate(self, seeded_store):
        store, _ = seeded_store
        store._version += 1  # mutate without invalidating…
        store._cache[("join", EPS, store._version)] = (
            store._version, np.empty((0, 2), dtype=np.int64))
        with pytest.raises(StaleCacheError):
            store._invalidate_cache()  # …the guard still catches it

    def test_cache_size_zero_disables(self, rng):
        store = EGOStore.from_points(rng.random((30, 2)), EPS,
                                     cache_size=0)
        store.join()
        store.join()
        assert store.stats().cache_hits == 0

    def test_lru_eviction_bounded(self, seeded_store):
        store, _ = seeded_store
        for i in range(2 * store._cache_size):
            store.join(0.01 + 0.002 * i)
        assert len(store._cache) <= store._cache_size


class TestJournal:
    def test_replay_rebuilds_identical_store(self, tmp_path, rng):
        jpath = str(tmp_path / "store.journal")
        store = EGOStore(EPS, compact_threshold=16, journal=jpath)
        for _ in range(6):
            store.insert(rng.random((7, 3)))
        store.delete(store.ids()[:5].tolist())
        store.set_epsilon(0.3)
        recovered = EGOStore.recover(jpath)
        assert recovered.state_digest() == store.state_digest()
        assert np.array_equal(recovered.join(), store.join())

    def test_crash_mid_sequence_replays(self, tmp_path, rng):
        jpath = str(tmp_path / "store.journal")
        store = EGOStore(EPS, compact_threshold=8, journal=jpath)
        for _ in range(8):
            store.insert(rng.random((5, 2)))
        digest = store.state_digest()
        jr = Journal(jpath)
        ops = jr.store_ops()
        jr.state["store_ops"] = ops[:4]  # "crash" loses the tail
        jr.flush()
        partial = EGOStore.recover(jr)
        assert partial.state_digest() != digest
        for op in ops[4:]:  # the client re-sends the lost tail
            partial.insert(np.asarray(op[2]),
                           ids=np.asarray(op[1], dtype=np.int64))
        assert partial.state_digest() == digest

    def test_recovery_continues_journaling(self, tmp_path, rng):
        jpath = str(tmp_path / "store.journal")
        store = EGOStore(EPS, journal=jpath)
        store.insert(rng.random((10, 2)))
        rec1 = EGOStore.recover(jpath)
        rec1.insert(rng.random((5, 2)))
        rec2 = EGOStore.recover(jpath)
        assert rec2.state_digest() == rec1.state_digest()

    def test_recover_without_meta_rejected(self, tmp_path):
        jpath = str(tmp_path / "plain.journal")
        Journal(jpath).flush()
        with pytest.raises(ValueError, match="store metadata"):
            EGOStore.recover(jpath)


class TestObservability:
    def test_counters_and_spans_recorded(self, rng):
        from repro.obs import MetricsRegistry, Tracer

        registry = MetricsRegistry()
        tracer = Tracer()
        store = EGOStore(EPS, compact_threshold=8, metrics=registry,
                         trace=tracer)
        store.insert(rng.random((20, 2)))
        store.join()
        store.range(rng.random(2))
        assert registry.get("ego_store_inserts_total").total() == 20
        assert registry.get("ego_store_compactions_total").total() >= 1
        queries = registry.get("ego_store_queries_total")
        assert queries.value_of("join") == 1
        assert queries.value_of("range") == 1
        names = {e["name"] for e in tracer.events}
        assert "store_compaction" in names and "store_join" in names


class TestServeCli:
    def test_serve_selftest_passes(self, capsys):
        assert main(["serve", "--selftest-ops", "25", "--seed", "5",
                     "--compact-threshold", "16"]) == 0
        out = capsys.readouterr().out
        assert "digest:" in out
        assert "identical to the batch pipeline" in out

    def test_serve_journal_then_recover(self, tmp_path, capsys):
        jpath = str(tmp_path / "serve.journal")
        assert main(["serve", "--selftest-ops", "15", "--seed", "2",
                     "--journal", jpath]) == 0
        digest1 = [ln for ln in capsys.readouterr().out.splitlines()
                   if ln.startswith("digest:")][0]
        assert main(["serve", "--selftest-ops", "0", "--journal", jpath,
                     "--recover"]) == 0
        digest2 = [ln for ln in capsys.readouterr().out.splitlines()
                   if ln.startswith("digest:")][0]
        assert digest1 == digest2

    def test_serve_recover_requires_journal(self, capsys):
        assert main(["serve", "--recover"]) == 2
