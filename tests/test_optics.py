"""Tests for OPTICS on top of the similarity join."""

import numpy as np
import pytest

from repro.apps.dbscan import dbscan
from repro.apps.optics import UNDEFINED, optics
from repro.core.ego_join import ego_self_join
from repro.core.result import JoinResult


def blobs(rng, centers, per=60, std=0.02, noise=0):
    parts = [c + rng.normal(0, std, (per, len(c))) for c in centers]
    if noise:
        parts.append(rng.random((noise, len(centers[0]))))
    return np.vstack(parts)


class TestOrderingInvariants:
    def test_ordering_is_permutation(self, rng):
        pts = rng.random((120, 3))
        res = optics(pts, 0.3, 5)
        assert sorted(res.ordering.tolist()) == list(range(120))

    def test_first_point_has_undefined_reachability(self, rng):
        pts = rng.random((50, 2))
        res = optics(pts, 0.3, 4)
        assert np.isinf(res.reachability[res.ordering[0]])

    def test_core_distance_definition(self, rng):
        """Core distance = distance to the min_pts-th closest object
        (counting the point itself), undefined below min_pts."""
        pts = rng.random((60, 2))
        eps, mp = 0.25, 5
        res = optics(pts, eps, mp)
        diff = pts[:, None, :] - pts[None, :, :]
        d = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        for p in range(60):
            within = np.sort(d[p][d[p] <= eps])  # includes self (0.0)
            if len(within) >= mp:
                assert res.core_distance[p] == pytest.approx(
                    within[mp - 1])
            else:
                assert np.isinf(res.core_distance[p])

    def test_min_pts_one_core_distance_zero(self, rng):
        pts = rng.random((20, 2))
        res = optics(pts, 0.3, 1)
        assert (res.core_distance == 0).all()

    def test_reachability_at_least_core_distance(self, rng):
        """Reachability of any reached point >= some core distance and
        >= the actual distance; in particular it is never below the
        global minimum core distance."""
        pts = rng.random((80, 2))
        res = optics(pts, 0.4, 4)
        finite = np.isfinite(res.reachability)
        if finite.any():
            assert res.reachability[finite].min() >= \
                res.core_distance.min() - 1e-12

    def test_reachability_plot_aligned(self, rng):
        pts = rng.random((40, 2))
        res = optics(pts, 0.3, 4)
        plot = res.reachability_plot()
        assert len(plot) == 40
        assert np.isinf(plot[0])


class TestClusterStructure:
    def test_separated_blobs_form_valleys(self, rng):
        pts = blobs(rng, np.array([[0.2, 0.2], [0.8, 0.8]]))
        res = optics(pts, 0.2, 5)
        plot = res.reachability_plot()
        finite = plot[np.isfinite(plot)]
        # Deep valleys: most reachabilities tiny, separated by one jump.
        assert np.median(finite) < 0.03
        assert np.isinf(plot).sum() <= 2

    def test_extract_dbscan_matches_dbscan_on_core_points(self, rng):
        pts = blobs(rng, np.array([[0.2, 0.2], [0.8, 0.2], [0.5, 0.8]]),
                    noise=25)
        eps, mp = 0.08, 5
        res = optics(pts, eps, mp)
        labels = res.extract_dbscan(eps)
        ref = dbscan(pts, eps, mp)
        # Same number of clusters and a consistent relabeling on cores.
        assert len(set(labels[labels >= 0].tolist())) == ref.num_clusters
        mapping = {}
        for o, d in zip(labels[ref.core_mask], ref.labels[ref.core_mask]):
            assert o != -1 and d != -1
            assert mapping.setdefault(int(o), int(d)) == int(d)

    def test_extract_at_smaller_eps_prime(self, rng):
        pts = blobs(rng, np.array([[0.2, 0.2], [0.8, 0.8]]), std=0.01)
        res = optics(pts, 0.3, 5)
        labels = res.extract_dbscan(0.05)
        ref = dbscan(pts, 0.05, 5)
        assert len(set(labels[labels >= 0].tolist())) == ref.num_clusters

    def test_extract_rejects_eps_above_generating(self, rng):
        res = optics(rng.random((20, 2)), 0.2, 3)
        with pytest.raises(ValueError):
            res.extract_dbscan(0.5)

    def test_isolated_points_stay_noise(self, rng):
        pts = np.vstack([blobs(rng, np.array([[0.5, 0.5]]), std=0.005),
                         [[0.01, 0.01]]])
        res = optics(pts, 0.1, 5)
        labels = res.extract_dbscan(0.1)
        assert labels[-1] == -1


class TestInputs:
    def test_precomputed_join_accepted(self, rng):
        pts = rng.random((60, 2))
        join = JoinResult(collect_distances=True)
        ego_self_join(pts, 0.3, result=join)
        a = optics(pts, 0.3, 4, join_result=join)
        b = optics(pts, 0.3, 4)
        np.testing.assert_array_equal(a.ordering, b.ordering)
        np.testing.assert_allclose(a.reachability, b.reachability)

    def test_rejects_distance_free_join(self, rng):
        pts = rng.random((20, 2))
        join = ego_self_join(pts, 0.3)
        with pytest.raises(ValueError):
            optics(pts, 0.3, 4, join_result=join)

    def test_rejects_bad_min_pts(self, rng):
        with pytest.raises(ValueError):
            optics(rng.random((10, 2)), 0.3, 0)


class TestDistanceCollection:
    def test_join_distances_match_geometry(self, rng):
        pts = rng.random((80, 3))
        join = JoinResult(collect_distances=True)
        ego_self_join(pts, 0.35, result=join)
        a, b = join.pairs()
        d = join.distances()
        expected = np.linalg.norm(pts[a] - pts[b], axis=1)
        np.testing.assert_allclose(d, expected, rtol=1e-9)
        assert (d <= 0.35 + 1e-12).all()

    def test_scalar_engine_also_collects(self, rng):
        pts = rng.random((30, 2))
        join = JoinResult(collect_distances=True)
        ego_self_join(pts, 0.4, result=join, engine="scalar")
        d = join.distances()
        a, b = join.pairs()
        np.testing.assert_allclose(
            d, np.linalg.norm(pts[a] - pts[b], axis=1), rtol=1e-9)

    def test_result_guards(self):
        r = JoinResult(collect_distances=True)
        with pytest.raises(ValueError):
            r.add_batch(np.array([1]), np.array([2]))
        r2 = JoinResult()
        r2.add_pair(1, 2)
        with pytest.raises(RuntimeError):
            r2.distances()

    def test_mismatched_distance_length_rejected(self):
        r = JoinResult(collect_distances=True)
        with pytest.raises(ValueError):
            r.add_batch(np.array([1, 2]), np.array([3, 4]),
                        distances=np.array([0.1]))
