"""Tests for the external two-file (R ⋈ S) join scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ego_join import ego_join, ego_join_files
from repro.core.ego_order import ego_sorted
from repro.core.result import JoinResult
from repro.core.rs_scheduler import TwoFileScheduler, scheduled_units
from repro.core.sequence_join import JoinContext
from repro.storage.disk import SimulatedDisk
from repro.storage.pagefile import PointFile

from conftest import make_file


def make_files(r, s, epsilon, presorted=True):
    """Write (optionally EGO-sorted) copies of r and s to fresh disks."""
    disks = [SimulatedDisk(), SimulatedDisk()]
    files = []
    for disk, pts, offset in ((disks[0], r, 0), (disks[1], s, 0)):
        pts = np.asarray(pts, dtype=float)
        ids = np.arange(len(pts), dtype=np.int64)
        if presorted:
            ids, pts = ego_sorted(pts, epsilon, ids)
        files.append(make_file(disk, pts, ids=ids))
    return disks, files


def expected_pairs(r, s, epsilon):
    out = set()
    for i in range(len(r)):
        for j in range(len(s)):
            if np.linalg.norm(r[i] - s[j]) <= epsilon:
                out.add((i, j))
    return out


class TestScheduledUnits:
    def test_counts_units_with_record_starts(self, temp_disk, rng):
        pf = make_file(temp_disk, rng.random((20, 1)))  # 16-byte records
        assert scheduled_units(pf, 16) == 20
        assert scheduled_units(pf, 64) == 5
        assert scheduled_units(pf, 10_000) == 1

    def test_empty_file(self, temp_disk):
        pf = PointFile.create(temp_disk, 2)
        pf.close()
        assert scheduled_units(pf, 64) == 0


class TestTwoFileScheduler:
    def test_sliding_mode_matches_reference(self, rng):
        eps = 0.3
        r, s = rng.random((150, 3)), rng.random((120, 3))
        disks, (fr, fs) = make_files(r, s, eps)
        try:
            result = JoinResult()
            ctx = JoinContext(epsilon=eps, result=result, minlen=8)
            sched = TwoFileScheduler(fr, fs, ctx, unit_bytes=8192,
                                     buffer_units=16)
            stats = sched.run()
            assert stats.block_phases == 0
            assert result.pair_set() == expected_pairs(r, s, eps)
        finally:
            for d in disks:
                d.close()

    def test_block_mode_matches_reference(self, rng):
        eps = 0.7  # wide interval: the S window cannot fit 2 frames
        r, s = rng.random((200, 2)), rng.random((180, 2))
        disks, (fr, fs) = make_files(r, s, eps)
        try:
            result = JoinResult()
            ctx = JoinContext(epsilon=eps, result=result, minlen=8)
            sched = TwoFileScheduler(fr, fs, ctx, unit_bytes=400,
                                     buffer_units=2)
            stats = sched.run()
            assert stats.block_phases > 0
            assert result.pair_set() == expected_pairs(r, s, eps)
        finally:
            for d in disks:
                d.close()

    def test_sliding_mode_loads_each_unit_once(self, rng):
        eps = 0.05
        r, s = rng.random((300, 2)), rng.random((300, 2))
        disks, (fr, fs) = make_files(r, s, eps)
        try:
            ctx = JoinContext(epsilon=eps, result=JoinResult(), minlen=8)
            sched = TwoFileScheduler(fr, fs, ctx, unit_bytes=512,
                                     buffer_units=16)
            stats = sched.run()
            assert stats.r_loads == sched.n_r
            assert stats.s_loads <= sched.n_s
        finally:
            for d in disks:
                d.close()

    def test_rejects_bad_parameters(self, rng):
        eps = 0.3
        disks, (fr, fs) = make_files(rng.random((5, 2)),
                                     rng.random((5, 2)), eps)
        try:
            ctx = JoinContext(epsilon=eps, result=JoinResult())
            with pytest.raises(ValueError):
                TwoFileScheduler(fr, fs, ctx, 512, 1)
        finally:
            for d in disks:
                d.close()

    def test_dimension_mismatch_rejected(self, rng):
        with SimulatedDisk() as d1, SimulatedDisk() as d2:
            fr = make_file(d1, rng.random((5, 2)))
            fs = make_file(d2, rng.random((5, 3)))
            ctx = JoinContext(epsilon=0.3, result=JoinResult())
            with pytest.raises(ValueError):
                TwoFileScheduler(fr, fs, ctx, 512, 4)


class TestEgoJoinFiles:
    def test_matches_in_memory_join(self, rng):
        eps = 0.3
        r, s = rng.random((200, 4)), rng.random((150, 4))
        with SimulatedDisk() as dr, SimulatedDisk() as ds:
            fr = make_file(dr, r)
            fs = make_file(ds, s)
            report = ego_join_files(fr, fs, eps, unit_bytes=1024,
                                    buffer_units=4)
            want = ego_join(r, s, eps).pair_set()
            assert report.result.pair_set() == want

    def test_empty_side(self, rng):
        with SimulatedDisk() as dr, SimulatedDisk() as ds:
            fr = make_file(dr, rng.random((10, 2)))
            fs = PointFile.create(ds, 2)
            fs.close()
            report = ego_join_files(fr, fs, 0.5, unit_bytes=512,
                                    buffer_units=2)
            assert report.result.count == 0

    def test_report_accounting(self, rng):
        eps = 0.25
        with SimulatedDisk() as dr, SimulatedDisk() as ds:
            fr = make_file(dr, rng.random((100, 3)))
            fs = make_file(ds, rng.random((80, 3)))
            report = ego_join_files(fr, fs, eps, unit_bytes=512,
                                    buffer_units=4)
            assert report.sort_stats_r.records_sorted == 100
            assert report.sort_stats_s.records_sorted == 80
            assert report.io.bytes_read > 0
            assert report.simulated_io_time_s == pytest.approx(
                report.sort_io_time_s + report.join_io_time_s)

    def test_disjoint_sets_no_pairs_few_s_loads(self, rng):
        """S far from R in dimension 0: the window stays empty."""
        eps = 0.1
        r = rng.random((100, 2)) * np.array([0.3, 1.0])
        s = rng.random((100, 2)) * np.array([0.3, 1.0]) + [0.6, 0.0]
        with SimulatedDisk() as dr, SimulatedDisk() as ds:
            fr = make_file(dr, r)
            fs = make_file(ds, s)
            report = ego_join_files(fr, fs, eps, unit_bytes=256,
                                    buffer_units=4)
            assert report.result.count == 0
            assert report.schedule_stats.s_loads == 0

    @given(st.integers(min_value=1, max_value=60),
           st.integers(min_value=1, max_value=60),
           st.floats(min_value=0.05, max_value=0.9),
           st.integers(min_value=2, max_value=5),
           st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_property_matches_in_memory(self, nr, ns, eps, buffers,
                                        seed):
        rng = np.random.default_rng(seed)
        r, s = rng.random((nr, 2)), rng.random((ns, 2))
        with SimulatedDisk() as dr, SimulatedDisk() as ds:
            fr = make_file(dr, r)
            fs = make_file(ds, s)
            report = ego_join_files(fr, fs, eps, unit_bytes=200,
                                    buffer_units=buffers)
            assert report.result.pair_set() == expected_pairs(r, s, eps)
