"""Tests for Sequence and active/inactive dimensions (Definition 2)."""

import numpy as np
import pytest

from repro.core.ego_order import ego_sorted
from repro.core.sequence import Sequence


def seq_of(points, epsilon):
    """EGO-sort points and wrap them in a Sequence."""
    ids, pts = ego_sorted(np.asarray(points, dtype=float), epsilon)
    return Sequence(ids, pts, epsilon)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Sequence(np.empty(0, dtype=np.int64), np.empty((0, 2)), 1.0)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            Sequence(np.arange(2), np.zeros((3, 2)), 1.0)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            Sequence(np.arange(1), np.zeros((1, 2)), -1.0)

    def test_basic_properties(self):
        s = seq_of([[0.1, 0.2], [0.9, 0.8]], 1.0)
        assert len(s) == 2
        assert s.dimensions == 2
        np.testing.assert_allclose(s.first_point, [0.1, 0.2])
        np.testing.assert_allclose(s.last_point, [0.9, 0.8])


class TestActiveDimension:
    def test_all_in_one_cell_no_active(self):
        s = seq_of([[0.1, 0.1], [0.5, 0.9], [0.9, 0.3]], 1.0)
        assert s.active_dimension() is None
        assert s.inactive_count() == 2

    def test_first_dimension_active(self):
        s = seq_of([[0.5, 0.5], [1.5, 0.5]], 1.0)
        assert s.active_dimension() == 0
        assert s.inactive_count() == 0

    def test_second_dimension_active(self):
        """First dim same cell, second differs: Figure 5's situation."""
        s = seq_of([[0.5, 0.2, 0.9], [0.6, 1.7, 0.1]], 1.0)
        assert s.active_dimension() == 1
        assert s.inactive_count() == 1

    def test_single_point_all_inactive(self):
        s = seq_of([[3.3, 4.4]], 1.0)
        assert s.active_dimension() is None

    def test_active_dim_from_first_and_last_only(self):
        """Definition 2 looks only at p_1 and p_k."""
        pts = [[0.1, 0.1], [0.2, 5.0], [0.3, 9.9]]
        s = seq_of(pts, 10.0)  # all in cell (0, 0) at eps=10
        assert s.active_dimension() is None

    def test_cells_cached(self):
        s = seq_of([[0.5, 1.5], [2.5, 0.5]], 1.0)
        assert s.first_cells.tolist() == [0, 1]
        assert s.last_cells.tolist() == [2, 0]


class TestHalving:
    def test_halves_partition_the_sequence(self, rng):
        s = seq_of(rng.random((11, 2)), 0.3)
        f, g = s.first_half(), s.second_half()
        assert len(f) == 6 and len(g) == 5
        np.testing.assert_allclose(np.vstack([f.points, g.points]),
                                   s.points)

    def test_halves_are_views(self, rng):
        s = seq_of(rng.random((8, 2)), 0.3)
        f = s.first_half()
        assert f.points.base is not None

    def test_two_point_split(self):
        s = seq_of([[0.1, 0.1], [0.9, 0.9]], 1.0)
        f, g = s.first_half(), s.second_half()
        assert len(f) == 1 and len(g) == 1

    def test_slice_bounds(self, rng):
        s = seq_of(rng.random((10, 3)), 0.5)
        sub = s.slice(2, 7)
        assert len(sub) == 5
        np.testing.assert_allclose(sub.points, s.points[2:7])


class TestSameStorage:
    def test_identical_sequence_objects(self, rng):
        ids, pts = ego_sorted(rng.random((6, 2)), 0.5)
        a = Sequence(ids, pts, 0.5)
        b = Sequence(ids, pts, 0.5)
        assert a.same_storage(b)

    def test_same_slice_of_same_array(self, rng):
        s = seq_of(rng.random((10, 2)), 0.5)
        assert s.slice(2, 6).same_storage(s.slice(2, 6))

    def test_different_slices_differ(self, rng):
        s = seq_of(rng.random((10, 2)), 0.5)
        assert not s.slice(0, 5).same_storage(s.slice(5, 10))
        assert not s.slice(0, 5).same_storage(s.slice(0, 6))

    def test_copies_differ(self, rng):
        ids, pts = ego_sorted(rng.random((4, 2)), 0.5)
        a = Sequence(ids, pts, 0.5)
        b = Sequence(ids.copy(), pts.copy(), 0.5)
        assert not a.same_storage(b)
