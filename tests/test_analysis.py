"""Tests for the cost model, calibration and reporting."""

import numpy as np
import pytest

from repro.analysis.calibrate import (measure_avg_dimension_evals,
                                      measure_ordering_gain)
from repro.analysis.costmodel import (CPUModel, ego_total_time,
                                      join_total_time,
                                      nested_loop_estimate)
from repro.analysis.reporting import (format_table, format_value,
                                      series_markdown, speedup_summary)
from repro.core.ego_join import ego_self_join_file
from repro.data.synthetic import cad_like, uniform
from repro.joins.rsj import rsj_self_join
from repro.index.rtree import RTree
from repro.storage.disk import DiskModel, SimulatedDisk

from conftest import make_file


class TestCPUModel:
    def test_cpu_time_scales_with_counters(self):
        from repro.storage.stats import CPUCounters
        model = CPUModel()
        small = CPUCounters(distance_calculations=10,
                            dimension_evaluations=50)
        big = CPUCounters(distance_calculations=1000,
                          dimension_evaluations=5000)
        assert model.cpu_time(big, 8) > 50 * model.cpu_time(small, 8)

    def test_mbr_tests_cost_scales_with_dimension(self):
        from repro.storage.stats import CPUCounters
        model = CPUModel()
        c = CPUCounters(mbr_tests=100)
        assert model.cpu_time(c, 16) == pytest.approx(
            2 * model.cpu_time(c, 8))


class TestTotalTimes:
    def test_ego_total_includes_sort_and_join(self, rng):
        pts = uniform(200, 4, seed=1)
        with SimulatedDisk() as disk:
            pf = make_file(disk, pts)
            report = ego_self_join_file(pf, 0.25, unit_bytes=512,
                                        buffer_units=4)
            total = ego_total_time(report, 4)
            assert total > report.simulated_io_time_s

    def test_join_total_time(self, rng):
        pts = uniform(150, 3, seed=2)
        with SimulatedDisk() as disk:
            tree = RTree.bulk_load(np.arange(150), pts, disk, 16)
            report = rsj_self_join(tree, 0.3, pool_pages=4)
            total = join_total_time(report, 3)
            assert total > report.simulated_io_time_s


class TestNestedLoopEstimate:
    def test_quadratic_growth(self):
        small = nested_loop_estimate(1000, 8, buffer_records=100)
        big = nested_loop_estimate(2000, 8, buffer_records=100)
        assert big.distance_calculations == pytest.approx(
            4 * small.distance_calculations, rel=0.01)
        assert big.total_time_s > 3 * small.total_time_s

    def test_bigger_buffer_less_io(self):
        tight = nested_loop_estimate(5000, 4, buffer_records=100)
        roomy = nested_loop_estimate(5000, 4, buffer_records=2000)
        assert roomy.io_time_s < tight.io_time_s
        assert roomy.cpu_time_s == pytest.approx(tight.cpu_time_s)

    def test_avg_evals_reduces_cpu(self):
        full = nested_loop_estimate(1000, 16, buffer_records=100)
        fast = nested_loop_estimate(1000, 16, buffer_records=100,
                                    avg_dimension_evals=2.0)
        assert fast.cpu_time_s < full.cpu_time_s

    def test_estimate_tracks_real_run_io(self, rng):
        """The closed form should be close to the measured BNLJ bytes."""
        from repro.joins.nested_loop import nested_loop_self_join_file
        pts = uniform(120, 3, seed=3)
        with SimulatedDisk() as disk:
            pf = make_file(disk, pts)
            report = nested_loop_self_join_file(pf, 0.2,
                                                buffer_records=30)
        est = nested_loop_estimate(120, 3, buffer_records=30)
        assert est.bytes_read == pytest.approx(report.io.bytes_read,
                                               rel=0.05)
        assert est.distance_calculations == \
            report.cpu.distance_calculations

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            nested_loop_estimate(-1, 8, 100)
        with pytest.raises(ValueError):
            nested_loop_estimate(10, 8, 1)


class TestCalibrate:
    def test_avg_evals_between_one_and_d(self, rng):
        pts = uniform(300, 8, seed=4)
        evals = measure_avg_dimension_evals(pts, 0.3)
        assert 1.0 <= evals <= 8.0

    def test_uniform_data_aborts_early(self):
        """Random 16-d pairs at small eps abort within a few dimensions."""
        pts = uniform(400, 16, seed=5)
        evals = measure_avg_dimension_evals(pts, 0.1)
        assert evals < 3.0

    def test_ordering_gain_on_correlated_data(self):
        """On spectrum-decayed data, leading dims distinguish best, so
        the natural order is already good — a reversed order is worse."""
        pts = cad_like(300, seed=6)
        worst = measure_ordering_gain(pts[:150], pts[150:], 0.1,
                                      np.arange(15, -1, -1))
        assert worst > 1.0

    def test_rejects_tiny_input(self):
        with pytest.raises(ValueError):
            measure_avg_dimension_evals(np.zeros((1, 2)), 0.5)


class TestReporting:
    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(3) == "3"
        assert format_value(0.0) == "0"
        assert format_value(1234567.0) == "1.235e+06"
        assert format_value("x") == "x"

    def test_format_table_alignment(self):
        rows = [{"alg": "ego", "time": 1.5},
                {"alg": "rsj", "time": 20.25}]
        table = format_table(rows, title="demo")
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "alg" in lines[1] and "time" in lines[1]
        assert len(lines) == 5

    def test_format_table_infers_columns(self):
        table = format_table([{"a": 1}, {"b": 2}])
        assert "a" in table and "b" in table
        assert "-" in table  # missing cells

    def test_speedup_summary(self):
        times = {"ego": [1.0, 2.0], "mux": [6.0, 18.0]}
        out = speedup_summary(times, "ego")
        assert out["mux"] == "6.0x - 9.0x"

    def test_speedup_unknown_reference(self):
        with pytest.raises(KeyError):
            speedup_summary({"a": [1.0]}, "b")

    def test_series_markdown(self):
        md = series_markdown([{"n": 10, "t": 0.5}])
        lines = md.splitlines()
        assert lines[0] == "| n | t |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 10 | 0.5 |"
