"""Metamorphic-relation tests for the similarity join.

Each relation predicts how the exact pair set responds to an input
transformation — no reference implementation involved, so these can
catch a bug every implementation shares.  The tests check that the
relations (a) hold for the shipped implementations on adversarial
seeded workloads and (b) actually flag planted violations.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.verify import (
    RELATION_NAMES,
    REGISTRY,
    check_epsilon_nesting,
    check_permutation,
    check_rs_symmetry,
    check_self_vs_rr,
    check_translation,
    diff_pairs,
    generate_workload,
    register,
    run_impl,
    run_relations,
)

EPS = 0.25

#: Implementations fast enough to sweep through every relation.
RELATION_IMPLS = ("ego", "grid_hash", "spatial_hash", "epskdb", "msj")


@pytest.fixture
def temp_impl():
    """Register a throwaway oracle implementation, always cleaned up."""
    added = []

    def add(name, fn, **kwargs):
        register(name, **kwargs)(fn)
        added.append(name)
        return name

    yield add
    for name in added:
        REGISTRY.pop(name, None)


# -- relations hold on the shipped implementations ---------------------------


class TestRelationsHold:
    @pytest.mark.parametrize("impl", RELATION_IMPLS)
    @pytest.mark.parametrize("kind", ["boundary", "duplicates",
                                      "degenerate"])
    def test_all_relations(self, impl, kind):
        wl = generate_workload(kind, 60, 3, EPS, seed=9)
        for report in run_relations(impl, wl.points, EPS, seed=9):
            assert report.ok, report.describe()

    def test_relation_names_all_run(self):
        wl = generate_workload("uniform", 30, 2, EPS, seed=0)
        reports = run_relations("ego", wl.points, EPS)
        assert tuple(r.relation for r in reports) == RELATION_NAMES

    def test_unknown_relation_rejected(self):
        wl = generate_workload("uniform", 10, 2, EPS, seed=0)
        with pytest.raises(ValueError, match="unknown relation"):
            run_relations("ego", wl.points, EPS, relations=("nope",))

    def test_translation_skipped_for_unit_cube_impl(self):
        wl = generate_workload("uniform", 30, 2, EPS, seed=0)
        report = check_translation("msj", wl.points, EPS)
        assert report.ok
        assert "skipped" in report.detail

    def test_nesting_strict_on_boundary_workload(self):
        """The planted ε·(1+2⁻⁴⁰) mates make the ε-nesting strict."""
        wl = generate_workload("boundary", 60, 3, EPS, seed=3)
        at_eps = {tuple(r) for r in run_impl("ego", wl.points, EPS)}
        wide = {tuple(r) for r in
                run_impl("ego", wl.points, EPS * (1 + 1e-6))}
        assert at_eps < wide  # strict: just-outside mates join only above ε

    def test_rs_symmetry_direct(self):
        wl = generate_workload("clusters", 50, 3, EPS, seed=6)
        report = check_rs_symmetry(wl.points[:25], wl.points[25:], EPS)
        assert report.ok, report.describe()

    def test_self_vs_rr_direct(self):
        wl = generate_workload("duplicates", 50, 3, EPS, seed=6)
        report = check_self_vs_rr("ego", wl.points, EPS)
        assert report.ok, report.describe()


# -- relations catch planted violations --------------------------------------


class TestRelationsCatchViolations:
    def test_translation_catches_grid_quantisation(self, temp_impl):
        def quantised(points, epsilon, ids=None):
            # Joins cell representatives instead of points: distances
            # change whenever the grid shifts relative to the data.
            q = np.floor(points / epsilon) * epsilon
            return run_impl("brute", q, epsilon, ids=ids)

        temp_impl("_test_quantised", quantised)
        wl = generate_workload("uniform", 50, 3, EPS, seed=1)
        report = check_translation("_test_quantised", wl.points, EPS)
        assert not report.ok

    def test_nesting_catches_epsilon_cap(self, temp_impl):
        def capped(points, epsilon, ids=None):
            # Shrinks large epsilons: pairs vanish as ε grows.
            eff = epsilon if epsilon < 1.2 * EPS else 0.5 * epsilon
            return run_impl("brute", points, eff, ids=ids)

        temp_impl("_test_capped", capped)
        wl = generate_workload("clusters", 50, 3, EPS, seed=2)
        report = check_epsilon_nesting(
            "_test_capped", wl.points, (0.5 * EPS, EPS, 1.5 * EPS))
        assert not report.ok
        assert "missing at" in report.detail

    def test_permutation_catches_position_dependence(self, temp_impl):
        def drops_first_row(points, epsilon, ids=None):
            # Ignores the first *row* — which row that is depends on
            # the input order, so shuffling changes the result.
            if ids is None:
                ids = np.arange(len(points), dtype=np.int64)
            return run_impl("brute", points[1:], epsilon,
                            ids=np.asarray(ids)[1:])

        temp_impl("_test_posdep", drops_first_row)
        wl = generate_workload("duplicates", 40, 3, EPS, seed=3)
        report = check_permutation("_test_posdep", wl.points, EPS, seed=3)
        assert not report.ok


# -- property-based sweeps (seed-driven, deterministic under the profile) ----


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_property_ego_matches_brute(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 36))
    d = int(rng.integers(1, 5))
    eps = float(rng.uniform(0.05, 0.5))
    pts = rng.random((n, d))
    diff = diff_pairs(run_impl("brute", pts, eps),
                      run_impl("ego", pts, eps))
    assert diff.ok, f"seed={seed} n={n} d={d} ε={eps}: {diff.summary()}"


@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       kind=st.sampled_from(["uniform", "boundary", "duplicates"]))
def test_property_permutation_and_translation(seed, kind):
    wl = generate_workload(kind, 24, 3, EPS, seed=seed)
    perm = check_permutation("ego", wl.points, EPS, seed=seed)
    assert perm.ok, f"seed={seed} {kind}: {perm.describe()}"
    move = check_translation("ego", wl.points, EPS)
    assert move.ok, f"seed={seed} {kind}: {move.describe()}"
