"""Metamorphic-relation tests for the similarity join.

Each relation predicts how the exact pair set responds to an input
transformation — no reference implementation involved, so these can
catch a bug every implementation shares.  The tests check that the
relations (a) hold for the shipped implementations on adversarial
seeded workloads and (b) actually flag planted violations.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from hypothesis import stateful

from repro.verify import (
    RELATION_NAMES,
    REGISTRY,
    STORE_RELATION_NAMES,
    check_epsilon_nesting,
    check_permutation,
    check_rs_symmetry,
    check_self_vs_rr,
    check_store_epsilon_nesting,
    check_store_insert_delete,
    check_store_insert_union,
    check_translation,
    diff_pairs,
    generate_workload,
    register,
    run_impl,
    run_relations,
    run_store_relations,
)

from conftest import brute_truth

EPS = 0.25

#: Implementations fast enough to sweep through every relation.
RELATION_IMPLS = ("ego", "grid_hash", "spatial_hash", "epskdb", "msj")


@pytest.fixture
def temp_impl():
    """Register a throwaway oracle implementation, always cleaned up."""
    added = []

    def add(name, fn, **kwargs):
        register(name, **kwargs)(fn)
        added.append(name)
        return name

    yield add
    for name in added:
        REGISTRY.pop(name, None)


# -- relations hold on the shipped implementations ---------------------------


class TestRelationsHold:
    @pytest.mark.parametrize("impl", RELATION_IMPLS)
    @pytest.mark.parametrize("kind", ["boundary", "duplicates",
                                      "degenerate"])
    def test_all_relations(self, impl, kind):
        wl = generate_workload(kind, 60, 3, EPS, seed=9)
        for report in run_relations(impl, wl.points, EPS, seed=9):
            assert report.ok, report.describe()

    def test_relation_names_all_run(self):
        wl = generate_workload("uniform", 30, 2, EPS, seed=0)
        reports = run_relations("ego", wl.points, EPS)
        assert tuple(r.relation for r in reports) == RELATION_NAMES

    def test_unknown_relation_rejected(self):
        wl = generate_workload("uniform", 10, 2, EPS, seed=0)
        with pytest.raises(ValueError, match="unknown relation"):
            run_relations("ego", wl.points, EPS, relations=("nope",))

    def test_translation_skipped_for_unit_cube_impl(self):
        wl = generate_workload("uniform", 30, 2, EPS, seed=0)
        report = check_translation("msj", wl.points, EPS)
        assert report.ok
        assert "skipped" in report.detail

    def test_nesting_strict_on_boundary_workload(self):
        """The planted ε·(1+2⁻⁴⁰) mates make the ε-nesting strict."""
        wl = generate_workload("boundary", 60, 3, EPS, seed=3)
        at_eps = {tuple(r) for r in run_impl("ego", wl.points, EPS)}
        wide = {tuple(r) for r in
                run_impl("ego", wl.points, EPS * (1 + 1e-6))}
        assert at_eps < wide  # strict: just-outside mates join only above ε

    def test_rs_symmetry_direct(self):
        wl = generate_workload("clusters", 50, 3, EPS, seed=6)
        report = check_rs_symmetry(wl.points[:25], wl.points[25:], EPS)
        assert report.ok, report.describe()

    def test_self_vs_rr_direct(self):
        wl = generate_workload("duplicates", 50, 3, EPS, seed=6)
        report = check_self_vs_rr("ego", wl.points, EPS)
        assert report.ok, report.describe()


# -- relations catch planted violations --------------------------------------


class TestRelationsCatchViolations:
    def test_translation_catches_grid_quantisation(self, temp_impl):
        def quantised(points, epsilon, ids=None):
            # Joins cell representatives instead of points: distances
            # change whenever the grid shifts relative to the data.
            q = np.floor(points / epsilon) * epsilon
            return run_impl("brute", q, epsilon, ids=ids)

        temp_impl("_test_quantised", quantised)
        wl = generate_workload("uniform", 50, 3, EPS, seed=1)
        report = check_translation("_test_quantised", wl.points, EPS)
        assert not report.ok

    def test_nesting_catches_epsilon_cap(self, temp_impl):
        def capped(points, epsilon, ids=None):
            # Shrinks large epsilons: pairs vanish as ε grows.
            eff = epsilon if epsilon < 1.2 * EPS else 0.5 * epsilon
            return run_impl("brute", points, eff, ids=ids)

        temp_impl("_test_capped", capped)
        wl = generate_workload("clusters", 50, 3, EPS, seed=2)
        report = check_epsilon_nesting(
            "_test_capped", wl.points, (0.5 * EPS, EPS, 1.5 * EPS))
        assert not report.ok
        assert "missing at" in report.detail

    def test_permutation_catches_position_dependence(self, temp_impl):
        def drops_first_row(points, epsilon, ids=None):
            # Ignores the first *row* — which row that is depends on
            # the input order, so shuffling changes the result.
            if ids is None:
                ids = np.arange(len(points), dtype=np.int64)
            return run_impl("brute", points[1:], epsilon,
                            ids=np.asarray(ids)[1:])

        temp_impl("_test_posdep", drops_first_row)
        wl = generate_workload("duplicates", 40, 3, EPS, seed=3)
        report = check_permutation("_test_posdep", wl.points, EPS, seed=3)
        assert not report.ok


# -- update-sequence relations on the incremental store ----------------------


class TestStoreRelations:
    @pytest.mark.parametrize("kind", ["uniform", "boundary", "duplicates",
                                      "clusters"])
    def test_store_relations_hold(self, kind):
        wl = generate_workload(kind, 50, 3, EPS, seed=11)
        for report in run_store_relations(wl.points, EPS, seed=11):
            assert report.ok, report.describe()

    def test_store_relation_names_all_run(self):
        wl = generate_workload("uniform", 24, 2, EPS, seed=0)
        reports = run_store_relations(wl.points, EPS)
        assert tuple(r.relation for r in reports) == STORE_RELATION_NAMES

    def test_unknown_store_relation_rejected(self):
        wl = generate_workload("uniform", 8, 2, EPS, seed=0)
        with pytest.raises(ValueError, match="unknown store relation"):
            run_store_relations(wl.points, EPS, relations=("nope",))

    def test_insert_union_direct(self):
        wl = generate_workload("clusters", 40, 2, EPS, seed=2)
        report = check_store_insert_union(wl.points, EPS, seed=2)
        assert report.ok, report.describe()

    def test_insert_delete_direct(self):
        wl = generate_workload("boundary", 40, 2, EPS, seed=2)
        report = check_store_insert_delete(wl.points, EPS, seed=2)
        assert report.ok, report.describe()

    def test_store_nesting_strict_on_boundary_workload(self):
        """Planted just-outside mates appear only above ε — strictly."""
        from repro.service import EGOStore

        wl = generate_workload("boundary", 60, 3, EPS, seed=3)
        store = EGOStore.from_points(wl.points, EPS)
        at_eps = {tuple(r) for r in store.join()}
        wide = {tuple(r) for r in store.join(EPS * (1 + 1e-6))}
        assert at_eps < wide
        report = check_store_epsilon_nesting(
            wl.points, (0.5 * EPS, EPS, 1.5 * EPS), seed=3)
        assert report.ok, report.describe()


class StoreMachine(stateful.RuleBasedStateMachine):
    """Random interleavings of store ops, brute-checked after each.

    The model is a plain dict ``uid -> point``; after every rule the
    store's join at the current ε must equal the brute-force join of
    the model — the strongest form of the update-sequence relations.
    """

    EPS = 0.25
    DIMS = 2

    def __init__(self):
        super().__init__()
        from repro.service import EGOStore

        self.store = EGOStore(self.EPS, compact_threshold=8, cache_size=4)
        self.model = {}

    @stateful.rule(seed=st.integers(0, 2**16), n=st.integers(1, 6))
    def insert(self, seed, n):
        pts = np.random.default_rng(seed).random((n, self.DIMS))
        ids = self.store.insert(pts)
        for uid, p in zip(ids.tolist(), pts):
            self.model[uid] = p

    @stateful.precondition(lambda self: self.model)
    @stateful.rule(seed=st.integers(0, 2**16), k=st.integers(1, 3))
    def delete(self, seed, k):
        rng = np.random.default_rng(seed)
        uids = rng.choice(sorted(self.model),
                         size=min(k, len(self.model)), replace=False)
        self.store.delete(uids)
        for uid in uids.tolist():
            del self.model[uid]

    @stateful.rule(eps=st.floats(min_value=0.05, max_value=0.5))
    def set_epsilon(self, eps):
        self.store.set_epsilon(eps)

    @stateful.rule()
    def compact(self):
        self.store.compact()

    @stateful.invariant()
    def join_matches_brute(self):
        uids = sorted(self.model)
        pts = np.array([self.model[u] for u in uids]) if uids \
            else np.empty((0, self.DIMS))
        positional = brute_truth(pts, self.store.epsilon)
        want = {(min(uids[a], uids[b]), max(uids[a], uids[b]))
                for a, b in positional}
        got = {tuple(r) for r in self.store.join().tolist()}
        assert got == want

    @stateful.invariant()
    def counts_agree(self):
        assert len(self.store) == len(self.model)


TestStoreMachine = StoreMachine.TestCase


# -- property-based sweeps (seed-driven, deterministic under the profile) ----


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_property_ego_matches_brute(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 36))
    d = int(rng.integers(1, 5))
    eps = float(rng.uniform(0.05, 0.5))
    pts = rng.random((n, d))
    diff = diff_pairs(run_impl("brute", pts, eps),
                      run_impl("ego", pts, eps))
    assert diff.ok, f"seed={seed} n={n} d={d} ε={eps}: {diff.summary()}"


@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       kind=st.sampled_from(["uniform", "boundary", "duplicates"]))
def test_property_permutation_and_translation(seed, kind):
    wl = generate_workload(kind, 24, 3, EPS, seed=seed)
    perm = check_permutation("ego", wl.points, EPS, seed=seed)
    assert perm.ok, f"seed={seed} {kind}: {perm.describe()}"
    move = check_translation("ego", wl.points, EPS)
    assert move.ok, f"seed={seed} {kind}: {move.describe()}"
