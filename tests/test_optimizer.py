"""Tests for the query-optimizer cost model (paper future work)."""

import numpy as np
import pytest

from repro.analysis.optimizer import (backward_fraction, calibrate_cpu,
                                      choose_unit_size, estimate_ego_join,
                                      interval_fraction)
from repro.analysis.costmodel import DEFAULT_CPU_MODEL
from repro.core.ego_join import ego_self_join_file
from repro.data.loader import make_point_file
from repro.data.synthetic import uniform


def measured_run(n, d, eps, unit_bytes, buffer_units, seed=1):
    pts = uniform(n, d, seed=seed)
    disk, pf = make_point_file(pts)
    try:
        return ego_self_join_file(pf, eps, unit_bytes=unit_bytes,
                                  buffer_units=buffer_units,
                                  materialize=False)
    finally:
        disk.close()


class TestFractions:
    def test_interval_is_two_sided(self):
        assert interval_fraction(0.2) == pytest.approx(0.4)
        assert backward_fraction(0.2) == pytest.approx(0.2)

    def test_clipped_at_one(self):
        assert interval_fraction(0.7) == 1.0
        assert backward_fraction(1.5) == 1.0

    def test_extent_scales(self):
        assert interval_fraction(0.2, data_extent=2.0) == pytest.approx(0.2)

    def test_rejects_bad_extent(self):
        with pytest.raises(ValueError):
            interval_fraction(0.2, data_extent=0.0)


class TestEstimate:
    def test_unit_count_exact(self):
        est = estimate_ego_join(1000, 8, 0.2, unit_bytes=7200,
                                buffer_units=4)
        assert est.units == 10  # 1000 * 72 / 7200

    def test_gallop_detected_with_big_buffer(self):
        est = estimate_ego_join(10000, 8, 0.1, unit_bytes=7200,
                                buffer_units=1000)
        assert est.gallop
        assert est.predicted_unit_loads == est.units

    def test_crabstep_predicts_rereads(self):
        est = estimate_ego_join(10000, 8, 0.4, unit_bytes=7200,
                                buffer_units=3)
        assert not est.gallop
        assert est.predicted_unit_loads > est.units

    def test_loads_prediction_tracks_measurement(self):
        """The key optimizer property: predictions within ~25 % of runs."""
        for n, eps in [(8000, 0.15), (8000, 0.3), (16000, 0.25)]:
            rec = 72
            budget = int(n * rec * 0.10)
            unit_bytes = max(16 * rec, budget // 8)
            buffer_units = max(2, budget // unit_bytes)
            est = estimate_ego_join(n, 8, eps, unit_bytes, buffer_units)
            run = measured_run(n, 8, eps, unit_bytes, buffer_units)
            measured = run.schedule_stats.total_unit_loads
            assert est.predicted_unit_loads == pytest.approx(
                measured, rel=0.25)
            assert est.predicted_io_time_s == pytest.approx(
                run.simulated_io_time_s, rel=0.35)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            estimate_ego_join(-1, 8, 0.2, 1024, 4)
        with pytest.raises(ValueError):
            estimate_ego_join(10, 8, 0.2, 1024, 1)
        with pytest.raises(ValueError):
            estimate_ego_join(10, 8, -0.2, 1024, 4)

    def test_empty_dataset(self):
        est = estimate_ego_join(0, 8, 0.2, 1024, 4)
        assert est.predicted_unit_loads == 0


class TestCalibrateCpu:
    def test_scales_quadratically(self, rng):
        pts = uniform(600, 8, seed=3)
        small = calibrate_cpu(pts, 0.25, n_target=600)
        big = calibrate_cpu(pts, 0.25, n_target=1200)
        assert big == pytest.approx(4 * small)

    def test_roughly_tracks_measurement(self):
        n, d, eps = 8000, 8, 0.25
        pts = uniform(n, d, seed=4)
        predicted = calibrate_cpu(pts[::4], eps, n_target=n)
        run = measured_run(n, d, eps, unit_bytes=14400, buffer_units=8,
                           seed=4)
        measured = DEFAULT_CPU_MODEL.cpu_time(run.cpu, d)
        # Sampling keeps this within a small factor, not exact.
        assert predicted == pytest.approx(measured, rel=1.5)
        assert predicted > 0

    def test_rejects_tiny_sample(self):
        with pytest.raises(ValueError):
            calibrate_cpu(np.zeros((1, 2)), 0.2, 100)


class TestChooseUnitSize:
    def test_returns_feasible_configuration(self):
        budget = 100_000
        best = choose_unit_size(50_000, 8, 0.2, budget_bytes=budget)
        assert best.unit_bytes * best.buffer_units <= budget * 2
        assert best.buffer_units >= 2

    def test_picks_minimum_of_candidates(self):
        budget = 200_000
        candidates = [4096, 16384, 65536]
        best = choose_unit_size(100_000, 8, 0.15, budget,
                                candidates=candidates)
        all_costs = {
            ub: estimate_ego_join(100_000, 8, 0.15, ub,
                                  max(2, budget // ub)).predicted_io_time_s
            for ub in candidates}
        assert best.predicted_io_time_s == min(all_costs.values())

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            choose_unit_size(1000, 8, 0.2, budget_bytes=0)
