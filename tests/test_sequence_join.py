"""Tests for the recursive sequence join (Figure 6)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ego_order import ego_sorted
from repro.core.result import JoinResult
from repro.core.sequence import Sequence
from repro.core.sequence_join import (JoinContext, join_point_blocks,
                                      join_sequences, simple_join)
from repro.storage.stats import CPUCounters

from conftest import brute_truth


def run_self_join(points, epsilon, **kwargs):
    pts = np.asarray(points, dtype=float)
    ids, spts = ego_sorted(pts, epsilon)
    result = JoinResult()
    ctx = JoinContext(epsilon=epsilon, result=result, **kwargs)
    seq = Sequence(ids, spts, epsilon)
    join_sequences(seq, seq, ctx)
    return result, ctx


class TestContextValidation:
    def test_rejects_bad_minlen(self):
        with pytest.raises(ValueError):
            JoinContext(epsilon=1.0, result=JoinResult(), minlen=0)

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            JoinContext(epsilon=1.0, result=JoinResult(), engine="gpu")

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            JoinContext(epsilon=0.0, result=JoinResult())

    def test_eps_sq_derived(self):
        ctx = JoinContext(epsilon=0.5, result=JoinResult())
        assert ctx.eps_sq == pytest.approx(0.25)


class TestSelfJoinCorrectness:
    @pytest.mark.parametrize("minlen", [1, 2, 8, 64])
    def test_matches_brute_force(self, rng, minlen):
        pts = rng.random((120, 3))
        eps = 0.25
        result, _ = run_self_join(pts, eps, minlen=minlen)
        assert result.canonical_pair_set() == brute_truth(pts, eps)

    @pytest.mark.parametrize("engine", ["vector", "scalar"])
    def test_engines_equivalent(self, rng, engine):
        pts = rng.random((60, 4))
        eps = 0.35
        result, _ = run_self_join(pts, eps, engine=engine, minlen=4)
        assert result.canonical_pair_set() == brute_truth(pts, eps)

    def test_no_self_pairs(self, rng):
        pts = rng.random((40, 2))
        result, _ = run_self_join(pts, 0.5)
        a, b = result.pairs()
        assert (a != b).all()

    def test_no_duplicate_pairs(self, rng):
        pts = rng.random((100, 2))
        result, _ = run_self_join(pts, 0.4)
        a, b = result.pairs()
        canon = set(zip(np.minimum(a, b).tolist(),
                        np.maximum(a, b).tolist()))
        assert len(canon) == len(a)

    def test_duplicate_points_pair_up(self):
        pts = np.array([[0.5, 0.5]] * 4)
        result, _ = run_self_join(pts, 0.1)
        assert result.count == 6  # C(4, 2)

    def test_single_point(self):
        result, _ = run_self_join(np.array([[1.0, 2.0]]), 0.5)
        assert result.count == 0

    def test_without_dimension_ordering(self, rng):
        pts = rng.random((80, 5))
        eps = 0.3
        result, _ = run_self_join(pts, eps, order_dimensions=False)
        assert result.canonical_pair_set() == brute_truth(pts, eps)

    @given(st.integers(min_value=1, max_value=50),
           st.integers(min_value=1, max_value=4),
           st.floats(min_value=0.05, max_value=1.5),
           st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_brute(self, n, d, eps, seed):
        rng = np.random.default_rng(seed)
        pts = rng.random((n, d))
        result, _ = run_self_join(pts, eps, minlen=3)
        assert result.canonical_pair_set() == brute_truth(pts, eps)


class TestTwoSequenceJoin:
    def test_cross_join_matches_brute(self, rng):
        eps = 0.3
        a = rng.random((50, 3))
        b = rng.random((40, 3))
        ids_a, pts_a = ego_sorted(a, eps, ids=np.arange(50))
        ids_b, pts_b = ego_sorted(b, eps, ids=np.arange(100, 140))
        result = JoinResult()
        ctx = JoinContext(epsilon=eps, result=result, minlen=4)
        join_sequences(Sequence(ids_a, pts_a, eps),
                       Sequence(ids_b, pts_b, eps), ctx)
        expected = set()
        for i in range(50):
            for j in range(40):
                if np.linalg.norm(a[i] - b[j]) <= eps:
                    expected.add((i, 100 + j))
        assert result.pair_set() == expected


class TestPruning:
    def test_distant_sequences_excluded(self):
        eps = 0.1
        a = np.array([[0.05, 0.5], [0.06, 0.7]])
        b = np.array([[0.95, 0.5], [0.96, 0.7]])
        ids_a, pts_a = ego_sorted(a, eps)
        ids_b, pts_b = ego_sorted(b, eps)
        cpu = CPUCounters()
        ctx = JoinContext(epsilon=eps, result=JoinResult(), cpu=cpu)
        join_sequences(Sequence(ids_a, pts_a, eps),
                       Sequence(ids_b, pts_b, eps), ctx)
        assert cpu.sequence_exclusions == 1
        assert cpu.distance_calculations == 0

    def test_exclusion_counts_tracked(self, rng):
        pts = rng.random((200, 2))
        _result, ctx = run_self_join(pts, 0.05, minlen=4,
                                     cpu=CPUCounters())
        assert ctx.cpu.sequence_pairs > 0
        assert ctx.cpu.sequence_exclusions > 0

    def test_pruning_saves_distance_calls(self, rng):
        """With small eps, pruning must beat the all-pairs count."""
        pts = rng.random((300, 2))
        _res, ctx = run_self_join(pts, 0.02, minlen=8, cpu=CPUCounters())
        all_pairs = 300 * 299 // 2
        assert ctx.cpu.distance_calculations < all_pairs / 3

    def test_looser_threshold_still_correct(self, rng):
        """Figure 6's '> 2' variant (threshold 3) is safe, just looser."""
        pts = rng.random((100, 3))
        eps = 0.3
        result, _ = run_self_join(pts, eps, exclusion_distance=3)
        assert result.canonical_pair_set() == brute_truth(pts, eps)


class TestSimpleJoinAndBlocks:
    def test_simple_join_upper_triangle(self, rng):
        eps = 0.5
        raw = rng.random((10, 2))
        ids, pts = ego_sorted(raw, eps)
        result = JoinResult()
        ctx = JoinContext(epsilon=eps, result=result)
        seq = Sequence(ids, pts, eps)
        simple_join(seq, seq, ctx, upper_triangle=True)
        assert result.canonical_pair_set() == brute_truth(raw, eps)
        a, b = result.pairs()
        assert (a != b).all()

    def test_join_point_blocks_empty(self):
        ctx = JoinContext(epsilon=1.0, result=JoinResult())
        join_point_blocks(np.empty(0, dtype=np.int64), np.empty((0, 2)),
                          np.empty(0, dtype=np.int64), np.empty((0, 2)),
                          ctx)
        assert ctx.result.count == 0

    def test_join_point_blocks_same_block(self, rng):
        eps = 0.4
        ids, pts = ego_sorted(rng.random((30, 2)), eps)
        ctx = JoinContext(epsilon=eps, result=JoinResult(), minlen=4)
        join_point_blocks(ids, pts, ids, pts, ctx, same_block=True)
        truth = brute_truth(pts[np.argsort(ids)], eps)
        assert ctx.result.canonical_pair_set() == truth
