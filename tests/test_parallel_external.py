"""Tests for the parallel unit-pair join in the external pipeline.

The parallel path must be *indistinguishable* from the serial one in
every observable: the pair stream, the durable result bytes, the
journal, the CPU counters and the schedule statistics.  Only wall-clock
time is allowed to differ.
"""

import json
import os

import numpy as np
import pytest

from repro.core.ego_join import ego_self_join_file
from repro.storage.disk import SimulatedDisk
from repro.storage.faults import FaultPlan, SimulatedCrash

from conftest import make_file

pytestmark = pytest.mark.faults

EPSILON = 0.25
UNIT_BYTES = 512
BUFFER_UNITS = 4


@pytest.fixture(scope="module")
def dataset():
    return np.random.default_rng(99).random((400, 4))


def run_join(pts, **kwargs):
    kwargs.setdefault("unit_bytes", UNIT_BYTES)
    kwargs.setdefault("buffer_units", BUFFER_UNITS)
    with SimulatedDisk() as disk:
        pf = make_file(disk, pts)
        return ego_self_join_file(pf, EPSILON, **kwargs)


def checkpoint_artifacts(ck):
    with open(os.path.join(ck, "result.prs"), "rb") as fh:
        result_bytes = fh.read()
    with open(os.path.join(ck, "journal.json")) as fh:
        journal = json.load(fh)
    return result_bytes, journal


class TestParallelMatchesSerial:
    def test_pair_stream_and_counters_identical(self, dataset):
        serial = run_join(dataset)
        parallel = run_join(dataset, workers=3)
        sa, sb = serial.result.pairs()
        pa, pb = parallel.result.pairs()
        # Byte-identical stream: same pairs in the same order.
        assert np.array_equal(sa, pa)
        assert np.array_equal(sb, pb)
        assert serial.cpu == parallel.cpu
        assert serial.schedule_stats == parallel.schedule_stats

    @pytest.mark.parametrize("workers", [2, 4])
    def test_checkpoint_bytes_identical(self, dataset, tmp_path, workers):
        ck_s = str(tmp_path / "serial")
        ck_p = str(tmp_path / f"parallel{workers}")
        serial = run_join(dataset, checkpoint_dir=ck_s)
        parallel = run_join(dataset, checkpoint_dir=ck_p,
                            workers=workers)
        assert serial.total_pairs == parallel.total_pairs
        bytes_s, journal_s = checkpoint_artifacts(ck_s)
        bytes_p, journal_p = checkpoint_artifacts(ck_p)
        assert bytes_s == bytes_p
        assert journal_s == journal_p

    def test_parallel_with_matmul_engine(self, dataset):
        serial = run_join(dataset, engine="vector")
        parallel = run_join(dataset, workers=2, engine="matmul",
                            minlen=64)
        assert serial.result.canonical_pair_set() \
            == parallel.result.canonical_pair_set()

    def test_empty_input_with_workers(self):
        report = run_join(np.empty((0, 3)), workers=2)
        assert report.total_pairs == 0

    def test_workers_must_be_positive(self, dataset):
        with pytest.raises(ValueError, match="workers"):
            run_join(dataset, workers=0)


class TestParallelCrashResume:
    def test_crash_then_parallel_resume(self, dataset, tmp_path):
        baseline_ck = str(tmp_path / "baseline")
        run_join(dataset, checkpoint_dir=baseline_ck)
        base_bytes, base_journal = checkpoint_artifacts(baseline_ck)

        ck = str(tmp_path / "ck")
        plan = FaultPlan(seed=1, crash_ops=[150])
        with pytest.raises(SimulatedCrash):
            run_join(dataset, checkpoint_dir=ck, workers=3,
                     fault_plan=plan)
        report = run_join(dataset, checkpoint_dir=ck, resume=True,
                          workers=3, fault_plan=plan.without_crashes())
        assert report.resumed
        got_bytes, got_journal = checkpoint_artifacts(ck)
        assert got_bytes == base_bytes
        assert got_journal == base_journal

    def test_parallel_crash_serial_resume(self, dataset, tmp_path):
        # Worker count is not part of the durable state: a run started
        # with workers=4 can be finished with workers=1 and vice versa.
        baseline_ck = str(tmp_path / "baseline")
        run_join(dataset, checkpoint_dir=baseline_ck)
        base_bytes, _ = checkpoint_artifacts(baseline_ck)

        ck = str(tmp_path / "ck")
        with pytest.raises(SimulatedCrash):
            run_join(dataset, checkpoint_dir=ck, workers=4,
                     fault_plan=FaultPlan(seed=1, crash_ops=[100]))
        report = run_join(dataset, checkpoint_dir=ck, resume=True)
        assert report.resumed
        got_bytes, _ = checkpoint_artifacts(ck)
        assert got_bytes == base_bytes
