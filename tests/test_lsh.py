"""Tests for the p-stable LSH hash family and approximate join engine.

The property layer checks the *collision model* itself: the empirical
collision frequency of seeded projections must bracket the analytic
p1/p2 curve within binomial tolerance.  The join layer checks the
engine's three invariants (precision 1.0, monotone-in-L, same-seed
determinism), the bucket files' byte-identical round-trip through every
storage backend, and the recall-floor oracle integration.
"""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.optimizer import (choose_join_impl, estimate_ego_join,
                                      estimate_lsh_join)
from repro.analysis.reporting import format_table, robustness_summary
from repro.cli import main
from repro.data.loader import save_points
from repro.index.lsh import (DEFAULT_K, DEFAULT_W_SCALE, MAX_TABLES,
                             PStableHashFamily, collision_probability,
                             sort_by_keys)
from repro.joins.lsh_join import (lsh_self_join, lsh_self_join_file,
                                  write_bucket_file)
from repro.storage.backend import FileBackend, InMemoryBackend
from repro.storage.disk import SimulatedDisk
from repro.storage.pagefile import PointFile
from repro.verify.canonical import canonical_pairs, pair_digest
from repro.verify.fuzz import DEFAULT_CONFIGS
from repro.verify.metamorphic import (check_lsh_determinism,
                                      check_lsh_precision,
                                      check_lsh_tables_monotone,
                                      run_lsh_relations)
from repro.verify.oracle import (REGISTRY, differential_check, register,
                                 run_impl)
from repro.verify.workloads import (BOUNDARY_DELTA, WORKLOAD_KINDS,
                                    generate_workload)

from conftest import brute_truth, make_file

EPS = 0.25


@pytest.fixture
def temp_impl():
    """Register a throwaway oracle implementation, always cleaned up."""
    added = []

    def add(name, fn, **kwargs):
        register(name, **kwargs)(fn)
        added.append(name)
        return name

    yield add
    for name in added:
        REGISTRY.pop(name, None)


def pair_set(report) -> set:
    a, b = report.result.pairs()
    return set(zip(a.tolist(), b.tolist()))


# -- the collision-probability closed form ----------------------------------


class TestCollisionModel:
    def test_limits(self):
        assert collision_probability(0.0) == 0.0
        assert collision_probability(float("inf")) == 1.0
        with pytest.raises(ValueError):
            collision_probability(-1.0)

    def test_monotone_in_ratio(self):
        ratios = np.linspace(0.05, 20.0, 200)
        values = [collision_probability(r) for r in ratios]
        assert all(0.0 <= v <= 1.0 for v in values)
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    @given(seed=st.integers(0, 2**20),
           ratio=st.floats(0.5, 8.0, allow_nan=False))
    def test_empirical_frequency_brackets_analytic(self, seed, ratio):
        """Monte-Carlo projections agree with the closed form.

        One projection of a pair at distance c collides iff the shifted
        offset stays in the same width-w bin; with w = ratio·c the
        frequency over m seeded trials must sit within ~4.5 binomial
        sigmas of ``collision_probability(ratio)`` — a seeded, hard
        bound, not a flaky statistical test (hypothesis's ci profile is
        derandomised).
        """
        m = 4000
        rng = np.random.default_rng(seed)
        c, w = 1.0, ratio
        a = rng.standard_normal(m)
        b = rng.uniform(0.0, w, size=m)
        collide = np.floor(b / w) == np.floor((a * c + b) / w)
        frequency = collide.mean()
        p = collision_probability(ratio)
        tolerance = 4.5 * math.sqrt(max(p * (1 - p), 1e-4) / m) + 1e-3
        assert abs(frequency - p) <= tolerance

    def test_p1_p2_gap_through_family_keys(self):
        """End-to-end: hashing real pairs reproduces p1 and p2."""
        d, eps, tables = 6, 0.3, 400
        family = PStableHashFamily(d, eps, k=1, seed=9)
        rng = np.random.default_rng(17)
        base = rng.random(d)

        def table_frequency(distance):
            direction = rng.standard_normal(d)
            direction /= np.linalg.norm(direction)
            pair = np.stack([base, base + distance * direction])
            hits = sum(
                1 for t in range(tables)
                if np.array_equal(*family.keys(pair, t)))
            return hits / tables

        for distance, expected in ((eps, family.p1),
                                   (2 * eps, family.p2())):
            frequency = table_frequency(distance)
            sigma = math.sqrt(max(expected * (1 - expected), 1e-4)
                              / tables)
            assert abs(frequency - expected) <= 4.5 * sigma + 5e-3


# -- the hash family --------------------------------------------------------


class TestHashFamily:
    def test_table_params_independent_of_probe_order(self):
        fam_a = PStableHashFamily(4, EPS, seed=3)
        fam_b = PStableHashFamily(4, EPS, seed=3)
        fam_b.table_params(5)  # warm a later table first
        for t in (0, 3, 5):
            a1, b1 = fam_a.table_params(t)
            a2, b2 = fam_b.table_params(t)
            assert np.array_equal(a1, a2) and np.array_equal(b1, b2)
        a_other, _ = PStableHashFamily(4, EPS, seed=4).table_params(0)
        assert not np.array_equal(a1, a_other)

    def test_keys_shape_and_determinism(self, rng):
        family = PStableHashFamily(5, EPS, k=3, seed=1)
        pts = rng.random((40, 5))
        keys = family.keys(pts, 2)
        assert keys.shape == (40, 3) and keys.dtype == np.int64
        assert np.array_equal(keys, family.keys(pts, 2))
        with pytest.raises(ValueError):
            family.keys(pts[:, :4], 0)

    def test_recall_model_inversion(self):
        family = PStableHashFamily(8, EPS)
        for target in (0.5, 0.9, 0.99, 0.999):
            tables = family.tables_for_recall(target)
            assert family.recall_for_tables(tables) >= target
            if tables > 1:
                assert family.recall_for_tables(tables - 1) < target

    def test_unreachable_recall_raises(self):
        weak = PStableHashFamily(8, EPS, k=24, w_scale=0.5)
        assert weak.p1 < 1e-4
        with pytest.raises(ValueError, match="above the cap"):
            weak.tables_for_recall(0.999, max_tables=MAX_TABLES)

    def test_validation(self):
        with pytest.raises(ValueError):
            PStableHashFamily(0, EPS)
        with pytest.raises(ValueError):
            PStableHashFamily(3, 0.0)
        with pytest.raises(ValueError):
            PStableHashFamily(3, EPS, k=0)
        with pytest.raises(ValueError):
            PStableHashFamily(3, EPS, w_scale=0.0)
        family = PStableHashFamily(3, EPS)
        with pytest.raises(ValueError):
            family.table_params(-1)
        with pytest.raises(ValueError):
            family.tables_for_recall(1.0)

    def test_sort_by_keys_groups_buckets(self):
        keys = np.array([[1, 2], [0, 5], [1, 2], [0, 5], [2, 0]])
        order, starts = sort_by_keys(keys)
        assert starts[0] == 0 and starts[-1] == len(keys)
        sorted_keys = keys[order]
        for i in range(len(starts) - 1):
            run = sorted_keys[starts[i]:starts[i + 1]]
            assert (run == run[0]).all()  # one bucket, one key
            if i:
                assert tuple(run[0]) != tuple(sorted_keys[starts[i] - 1])
        assert len(starts) - 1 == 3  # three distinct keys

    def test_sort_by_keys_empty(self):
        order, starts = sort_by_keys(np.empty((0, 2), dtype=np.int64))
        assert len(order) == 0 and list(starts) == [0]


# -- bucket files through the storage backends ------------------------------


class TestBucketRoundTrip:
    @given(seed=st.integers(0, 2**16), n=st.integers(0, 60))
    def test_backends_byte_identical(self, seed, n):
        """The same bucket layout yields identical device bytes."""
        rng = np.random.default_rng(seed)
        pts = rng.random((n, 4))
        ids = rng.permutation(n).astype(np.int64)
        order = np.argsort(rng.random(n), kind="stable")
        raw = {}
        for backend in (FileBackend(), InMemoryBackend()):
            with backend.create_disk() as disk:
                bucket = write_bucket_file(disk, ids, pts, order,
                                           chunk_records=7)
                raw[backend.name] = disk.read(0, disk.size())
                got_ids, got_pts = bucket.read_all()
                assert np.array_equal(got_ids, ids[order])
                assert np.array_equal(got_pts, pts[order])
        assert raw["file"] == raw["memory"]


# -- the join engine --------------------------------------------------------


class TestLSHJoin:
    def test_precision_exact_and_recall_floor(self, rng):
        pts = rng.random((300, 6))
        truth = brute_truth(pts, EPS)
        report = lsh_self_join(pts, EPS, recall_target=0.999, seed=2)
        got = pair_set(report)
        assert got <= truth  # precision exactly 1.0
        assert len(got) >= 0.9 * len(truth)
        assert 0.999 <= report.lsh.model_recall <= 1.0

    def test_engines_and_backends_agree(self, rng):
        pts = rng.random((150, 5))
        digests = {
            (engine, backend): pair_digest(canonical_pairs(
                lsh_self_join(pts, EPS, seed=4, engine=engine,
                              backend=backend).result))
            for engine in ("scalar", "vector", "matmul", "batched",
                           "auto")
            for backend in ("simulated", "file", "memory")
        }
        assert len(set(digests.values())) == 1

    def test_monotone_in_tables(self, rng):
        pts = rng.random((200, 4))
        previous = set()
        for tables in (1, 2, 4, 8):
            current = pair_set(lsh_self_join(pts, EPS, tables=tables,
                                             seed=6))
            assert previous <= current
            previous = current

    def test_same_seed_bit_identical(self, rng):
        pts = rng.random((120, 5))
        a = lsh_self_join(pts, EPS, seed=8).result.pairs()
        b = lsh_self_join(pts, EPS, seed=8).result.pairs()
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_io_charged_for_input_and_buckets(self, temp_disk, rng):
        pts = rng.random((100, 4))
        pf = make_file(temp_disk, pts)
        temp_disk.reset_accounting()
        report = lsh_self_join_file(pf, EPS, tables=3, seed=1)
        rec = pf.record_bytes
        # Input scanned once; every table writes all n records, then
        # reads back its non-singleton buckets.
        assert report.io.bytes_read > 100 * rec
        assert report.io.bytes_written >= 3 * 100 * rec
        assert report.io.sequential_writes > 0
        assert report.simulated_io_time_s > 0.0
        stats = report.lsh
        assert stats.buckets > 0
        assert stats.candidates >= stats.verified
        assert stats.verified >= report.result.count

    def test_explicit_ids(self, rng):
        pts = rng.random((60, 3))
        ids = (np.arange(60, dtype=np.int64) * 10) + 7
        report = lsh_self_join(pts, EPS, ids=ids, recall_target=0.999,
                               seed=3)
        got = pair_set(report)
        assert got  # dense enough to have pairs
        flat = {v for pair in got for v in pair}
        assert flat <= set(ids.tolist())

    def test_tiny_inputs(self):
        for n in (0, 1):
            report = lsh_self_join(np.random.default_rng(0).random((n, 3)),
                                   EPS)
            assert report.result.count == 0

    def test_validation(self, rng):
        pts = rng.random((10, 3))
        with pytest.raises(ValueError):
            lsh_self_join(pts, 0.0)
        with pytest.raises(ValueError):
            lsh_self_join(pts, EPS, tables=0)
        with pytest.raises(ValueError):
            lsh_self_join(pts, EPS, engine="warp")
        with pytest.raises(ValueError):
            lsh_self_join(pts[0], EPS)

    def test_count_only_mode(self, rng):
        pts = rng.random((80, 4))
        full = lsh_self_join(pts, EPS, seed=5)
        counted = lsh_self_join(pts, EPS, seed=5, materialize=False)
        assert counted.result.count == full.result.count
        assert not counted.result.materialize


# -- oracle + metamorphic integration ---------------------------------------


class TestRecallFloorOracle:
    def test_default_configs_pass_across_workloads(self):
        lsh_configs = [c for c in DEFAULT_CONFIGS if c[0] == "lsh"]
        assert len(lsh_configs) >= 2
        for kind in ("uniform", "near_threshold", "clusters"):
            wl = generate_workload(kind, 90, 5, 0.2, seed=11)
            report = differential_check(wl.points, wl.epsilon,
                                        lsh_configs)
            assert report.ok, report.describe()
            for outcome in report.outcomes:
                assert outcome.approximate
                assert outcome.recall >= 0.9
                assert len(outcome.diff.extra) == 0

    def test_recall_floor_option_consumed_not_forwarded(self, rng):
        pts = rng.random((60, 4))
        report = differential_check(
            pts, EPS, [("lsh", {"recall_floor": 0.5, "seed": 1})])
        assert report.ok
        (outcome,) = report.outcomes
        assert outcome.recall_floor == 0.5

    def test_planted_extra_pair_fails(self, temp_impl, rng):
        def inventing(points, epsilon, ids=None, **kw):
            good = run_impl("lsh", points, epsilon, ids=ids, **kw)
            fake = np.array([[10 * len(points), 10 * len(points) + 1]],
                            dtype=np.int64)
            return canonical_pairs(np.concatenate([good, fake]))

        temp_impl("_test_inventing_lsh", inventing, approximate=True)
        pts = rng.random((50, 4))
        report = differential_check(pts, EPS,
                                    [("_test_inventing_lsh", {})])
        assert not report.ok
        assert report.outcomes[0].recall is not None

    def test_miss_allowance_tolerates_absolute_misses(self, temp_impl,
                                                      rng):
        def near_perfect(points, epsilon, ids=None, **kw):
            good = run_impl("brute", points, epsilon, ids=ids)
            return good[:-1] if len(good) else good  # one miss

        temp_impl("_test_one_miss_lsh", near_perfect, approximate=True,
                  recall_floor=0.9)
        pts = rng.random((20, 3))
        truth = brute_truth(pts, EPS)
        assert 1 <= len(truth) <= 10  # small sample: one miss breaks 0.9
        strict = differential_check(pts, EPS, [("_test_one_miss_lsh", {})])
        assert not strict.ok
        allowed = differential_check(
            pts, EPS, [("_test_one_miss_lsh", {"miss_allowance": 1})])
        assert allowed.ok
        (outcome,) = allowed.outcomes
        assert outcome.miss_allowance == 1
        # The allowance never excuses extra pairs.
        assert "allowance" in outcome.describe()

    def test_planted_low_recall_fails_floor(self, temp_impl, rng):
        def halving(points, epsilon, ids=None, **kw):
            good = run_impl("brute", points, epsilon, ids=ids)
            return good[: len(good) // 2]

        temp_impl("_test_halving_lsh", halving, approximate=True,
                  recall_floor=0.9)
        pts = rng.random((80, 3))
        assert len(brute_truth(pts, EPS)) >= 4
        report = differential_check(pts, EPS, [("_test_halving_lsh", {})])
        assert not report.ok
        # The same impl passes once the per-config floor drops below 1/2.
        relaxed = differential_check(
            pts, EPS, [("_test_halving_lsh", {"recall_floor": 0.3})])
        assert relaxed.ok


class TestLSHRelations:
    def test_relations_hold_on_shipped_engine(self, rng):
        pts = rng.random((90, 4))
        for report in run_lsh_relations(pts, EPS, seed=2):
            assert report.ok, report.describe()

    def test_precision_relation_catches_invention(self, temp_impl, rng):
        def inventing(points, epsilon, ids=None, **kw):
            good = run_impl("lsh", points, epsilon, ids=ids, **kw)
            fake = np.array([[10 * len(points), 10 * len(points) + 1]],
                            dtype=np.int64)
            return canonical_pairs(np.concatenate([good, fake]))

        temp_impl("_test_inventing_rel", inventing, approximate=True)
        pts = rng.random((40, 3))
        report = check_lsh_precision(pts, EPS, impl="_test_inventing_rel")
        assert not report.ok

    def test_monotone_relation_catches_shrinking(self, temp_impl, rng):
        def shrinking(points, epsilon, ids=None, tables=1, **kw):
            # More tables, *smaller* result: a broken dedup would look
            # like this.
            good = run_impl("brute", points, epsilon, ids=ids)
            keep = max(0, len(good) - (tables - 1) * 2)
            return good[:keep]

        temp_impl("_test_shrinking_lsh", shrinking, approximate=True)
        pts = rng.random((60, 3))
        assert len(brute_truth(pts, EPS)) >= 6
        report = check_lsh_tables_monotone(pts, EPS,
                                           impl="_test_shrinking_lsh")
        assert not report.ok

    def test_determinism_relation_catches_drift(self, temp_impl, rng):
        calls = {"count": 0}

        def drifting(points, epsilon, ids=None, **kw):
            calls["count"] += 1
            good = run_impl("brute", points, epsilon, ids=ids)
            return good[: len(good) - (calls["count"] % 2)]

        temp_impl("_test_drifting_lsh", drifting, approximate=True)
        pts = rng.random((50, 3))
        report = check_lsh_determinism(pts, EPS, impl="_test_drifting_lsh")
        assert not report.ok


class TestNearThresholdWorkload:
    def test_registered_and_deterministic(self):
        assert "near_threshold" in WORKLOAD_KINDS
        a = generate_workload("near_threshold", 70, 4, EPS, seed=5)
        b = generate_workload("near_threshold", 70, 4, EPS, seed=5)
        assert np.array_equal(a.points, b.points)
        assert a.points.shape == (70, 4)

    def test_pairs_straddle_the_threshold(self):
        wl = generate_workload("near_threshold", 80, 5, EPS, seed=3)
        d = np.sqrt(((wl.points[:, None] - wl.points[None, :]) ** 2)
                    .sum(-1))
        iu = np.triu_indices(len(wl.points), k=1)
        distances = d[iu]
        near = distances[np.abs(distances - EPS) < EPS * 1e-9]
        inside = near[near <= EPS]
        outside = near[near > EPS]
        # Mates alternate just-inside / just-outside by ±ε·2⁻⁴⁰.
        assert len(inside) >= 10 and len(outside) >= 10
        assert np.all(np.abs(near - EPS) <= EPS * BOUNDARY_DELTA * 4)


# -- optimizer and reporting ------------------------------------------------


class TestOptimizerIntegration:
    def test_estimate_fields(self):
        est = estimate_lsh_join(10_000, 16, 0.3, recall_target=0.95)
        assert est.tables >= 1 and est.k == DEFAULT_K
        assert est.w == pytest.approx(DEFAULT_W_SCALE * 0.3)
        assert est.model_recall >= 0.95
        assert est.predicted_io_time_s > 0
        assert est.predicted_cpu_time_s > 0
        assert est.predicted_candidates > 0

    def test_io_scales_with_tables(self):
        small = estimate_lsh_join(5_000, 8, 0.2, tables=2)
        large = estimate_lsh_join(5_000, 8, 0.2, tables=8)
        assert large.predicted_io_time_s > small.predicted_io_time_s

    def test_auto_prefers_lsh_in_high_d_large_eps(self):
        impl, ego_est, lsh_est = choose_join_impl(
            20_000, 16, 0.45, unit_bytes=1 << 14, buffer_units=4,
            recall_target=0.9)
        assert impl == "lsh" and lsh_est is not None
        assert not ego_est.gallop  # EGO is in its degenerate regime

    def test_exactness_demand_forces_ego(self):
        impl, ego_est, lsh_est = choose_join_impl(
            20_000, 16, 0.45, unit_bytes=1 << 14, buffer_units=4,
            recall_target=None)
        assert impl == "ego" and lsh_est is None
        assert ego_est.predicted_io_time_s == pytest.approx(
            estimate_ego_join(20_000, 16, 0.45, 1 << 14,
                              4).predicted_io_time_s)

    def test_easy_regime_keeps_ego(self):
        impl, _, _ = choose_join_impl(
            2_000, 4, 0.01, unit_bytes=1 << 15, buffer_units=16,
            recall_target=0.95)
        assert impl == "ego"


class TestReportingIntegration:
    def test_robustness_summary_renders_approximate_report(self, rng):
        report = lsh_self_join(rng.random((80, 4)), EPS, seed=1)
        rows = robustness_summary(report)  # must not raise
        metrics = {row["metric"] for row in rows}
        assert "lsh model recall at ε" in metrics
        assert "lsh candidate pairs" in metrics
        assert "total result pairs" in metrics
        assert format_table(rows, title="lsh")  # renders


# -- CLI --------------------------------------------------------------------


class TestCLI:
    @pytest.fixture
    def lsh_file(self, tmp_path, rng):
        path = str(tmp_path / "lsh.pts")
        save_points(path, rng.random((250, 8)))
        return path

    def test_join_impl_lsh(self, lsh_file, capsys):
        assert main(["join", lsh_file, "--epsilon", "0.4", "--impl",
                     "lsh", "--recall-target", "0.95",
                     "--count-only"]) == 0
        err = capsys.readouterr().err
        assert "approximate" in err and "lsh" in err

    def test_join_impl_auto_routes(self, lsh_file, capsys):
        assert main(["join", lsh_file, "--epsilon", "0.4", "--impl",
                     "auto", "--count-only"]) == 0
        assert "impl auto ->" in capsys.readouterr().err

    def test_lsh_result_is_subset_of_exact(self, lsh_file, capsys):
        assert main(["join", lsh_file, "--epsilon", "0.4", "--impl",
                     "lsh", "--lsh-seed", "7", "--recall-target",
                     "0.999", "--limit", "-1"]) == 0
        lsh_pairs = _parse_pairs(capsys.readouterr().out)
        assert main(["join", lsh_file, "--epsilon", "0.4",
                     "--limit", "-1"]) == 0
        exact_pairs = _parse_pairs(capsys.readouterr().out)
        assert lsh_pairs <= exact_pairs
        assert len(lsh_pairs) >= 0.9 * len(exact_pairs)

    def test_usage_errors(self, lsh_file):
        assert main(["join", lsh_file, "--epsilon", "0.4", "--impl",
                     "lsh", "--metric", "manhattan"]) == 2
        assert main(["join", lsh_file, "--epsilon", "0.4", "--impl",
                     "lsh", "--recall-target", "1.5"]) == 2
        assert main(["join", lsh_file, "--epsilon", "0.4", "--impl",
                     "lsh", "--lsh-tables", "0"]) == 2

    def test_verify_impls_lsh(self, capsys):
        assert main(["verify", "--impls", "lsh", "--budget", "5s",
                     "--max-points", "60"]) == 0
        assert "trials" in capsys.readouterr().out


def _parse_pairs(out: str) -> set:
    pairs = set()
    for line in out.splitlines():
        parts = line.strip().split(",")
        if len(parts) == 2 and all(p.lstrip("-").isdigit()
                                   for p in parts):
            a, b = int(parts[0]), int(parts[1])
            pairs.add((min(a, b), max(a, b)))
    return pairs
