"""Tests for Minkowski/Chebyshev metric support."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.dbscan import dbscan
from repro.core.ego_join import ego_join, ego_self_join
from repro.core.metrics import (CHEBYSHEV, EUCLIDEAN, MANHATTAN, Metric,
                                get_metric)
from repro.core.parallel import ego_self_join_parallel
from repro.core.result import JoinResult


def metric_truth(points, epsilon, metric):
    """Ground-truth pair set under an arbitrary metric."""
    pts = np.asarray(points, dtype=float)
    out = set()
    for i in range(len(pts)):
        for j in range(i + 1, len(pts)):
            if metric.distance(pts[i], pts[j]) <= epsilon:
                out.add((i, j))
    return out


class TestMetricObjects:
    def test_get_metric_by_name(self):
        assert get_metric("euclidean") is EUCLIDEAN
        assert get_metric("L1") is MANHATTAN
        assert get_metric("linf") is CHEBYSHEV
        assert get_metric(None) is EUCLIDEAN

    def test_get_metric_by_power(self):
        assert get_metric(2.0) is EUCLIDEAN
        assert get_metric(1) is MANHATTAN
        m = get_metric(3.0)
        assert m.power == 3.0

    def test_get_metric_passthrough(self):
        assert get_metric(CHEBYSHEV) is CHEBYSHEV

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            get_metric("cosine")

    def test_power_below_one_rejected(self):
        with pytest.raises(ValueError):
            Metric("bad", 0.5)

    def test_distances(self):
        a, b = np.array([0.0, 0.0]), np.array([3.0, 4.0])
        assert EUCLIDEAN.distance(a, b) == pytest.approx(5.0)
        assert MANHATTAN.distance(a, b) == pytest.approx(7.0)
        assert CHEBYSHEV.distance(a, b) == pytest.approx(4.0)
        assert get_metric(3.0).distance(a, b) == pytest.approx(
            (27 + 64) ** (1 / 3))

    def test_thresholds(self):
        assert EUCLIDEAN.threshold(0.5) == pytest.approx(0.25)
        assert MANHATTAN.threshold(0.5) == pytest.approx(0.5)
        assert CHEBYSHEV.threshold(0.5) == pytest.approx(0.5)

    def test_finalize_inverts_threshold(self):
        for metric in (EUCLIDEAN, MANHATTAN, CHEBYSHEV, get_metric(4.0)):
            val = metric.threshold(0.37)
            assert float(metric.finalize(np.asarray(val))) \
                == pytest.approx(0.37)


class TestJoinWithMetrics:
    @pytest.mark.parametrize("spec", ["manhattan", "chebyshev", 3.0])
    def test_self_join_matches_truth(self, rng, spec):
        metric = get_metric(spec)
        pts = rng.random((120, 3))
        eps = 0.3
        result = ego_self_join(pts, eps, metric=spec)
        assert result.canonical_pair_set() == metric_truth(pts, eps,
                                                           metric)

    @pytest.mark.parametrize("engine", ["vector", "scalar"])
    def test_engines_agree_under_manhattan(self, rng, engine):
        pts = rng.random((60, 4))
        result = ego_self_join(pts, 0.4, metric="manhattan",
                               engine=engine)
        assert result.canonical_pair_set() == metric_truth(
            pts, 0.4, MANHATTAN)

    def test_chebyshev_wider_than_euclidean(self, rng):
        """L∞ ball contains the L2 ball contains the L1 ball."""
        pts = rng.random((100, 3))
        eps = 0.25
        l1 = ego_self_join(pts, eps, metric="l1").canonical_pair_set()
        l2 = ego_self_join(pts, eps).canonical_pair_set()
        linf = ego_self_join(pts, eps,
                             metric="linf").canonical_pair_set()
        assert l1 <= l2 <= linf

    def test_two_set_join_with_metric(self, rng):
        r, s = rng.random((40, 2)), rng.random((35, 2))
        eps = 0.3
        result = ego_join(r, s, eps, metric="chebyshev")
        expected = {(i, j) for i in range(40) for j in range(35)
                    if CHEBYSHEV.distance(r[i], s[j]) <= eps}
        assert result.pair_set() == expected

    def test_parallel_join_with_metric(self, rng):
        pts = rng.random((150, 3))
        result = ego_self_join_parallel(pts, 0.35, workers=1,
                                        metric="manhattan")
        assert result.canonical_pair_set() == metric_truth(
            pts, 0.35, MANHATTAN)

    def test_collected_distances_are_metric_distances(self, rng):
        pts = rng.random((50, 3))
        join = JoinResult(collect_distances=True)
        ego_self_join(pts, 0.5, metric="manhattan", result=join)
        a, b = join.pairs()
        d = join.distances()
        expected = np.abs(pts[a] - pts[b]).sum(axis=1)
        np.testing.assert_allclose(d, expected, rtol=1e-9)

    def test_dbscan_with_metric(self, rng):
        pts = rng.random((200, 2))
        result_l1 = dbscan(pts, 0.08, 4, metric="manhattan")
        result_l2 = dbscan(pts, 0.08, 4)
        # L1 neighbourhoods are subsets of L2 neighbourhoods, so L1 can
        # only have fewer (or equal) core points.
        assert result_l1.core_mask.sum() <= result_l2.core_mask.sum()

    @given(st.integers(min_value=2, max_value=50),
           st.floats(min_value=0.05, max_value=1.0),
           st.sampled_from(["manhattan", "chebyshev", "euclidean"]),
           st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_property_all_metrics(self, n, eps, spec, seed):
        rng = np.random.default_rng(seed)
        metric = get_metric(spec)
        pts = rng.random((n, 2))
        result = ego_self_join(pts, eps, metric=spec, minlen=4)
        assert result.canonical_pair_set() == metric_truth(pts, eps,
                                                           metric)


class TestExternalJoinWithMetric:
    def test_external_pipeline_manhattan(self, rng):
        from repro.core.ego_join import ego_self_join_file
        from repro.data.loader import make_point_file
        pts = rng.random((200, 3))
        eps = 0.35
        disk, pf = make_point_file(pts)
        try:
            report = ego_self_join_file(pf, eps, unit_bytes=512,
                                        buffer_units=3,
                                        metric="manhattan")
        finally:
            disk.close()
        assert (report.result.canonical_pair_set()
                == metric_truth(pts, eps, MANHATTAN))

    def test_two_file_pipeline_chebyshev(self, rng):
        from repro.core.ego_join import ego_join_files
        from repro.data.loader import make_point_file
        r, s = rng.random((80, 2)), rng.random((70, 2))
        eps = 0.25
        dr, fr = make_point_file(r)
        ds, fs = make_point_file(s)
        try:
            report = ego_join_files(fr, fs, eps, unit_bytes=256,
                                    buffer_units=3, metric="chebyshev")
        finally:
            dr.close()
            ds.close()
        expected = {(i, j) for i in range(80) for j in range(70)
                    if CHEBYSHEV.distance(r[i], s[j]) <= eps}
        assert report.result.pair_set() == expected
