"""Tests for sorted-file reuse across epsilon parameter sweeps."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ego_join import (ego_key_function, ego_self_join,
                                 ego_self_join_file)
from repro.core.query import EGOIndex
from repro.core.sequence_join import JoinContext
from repro.core.result import JoinResult
from repro.sorting.external_sort import external_sort
from repro.storage.disk import SimulatedDisk
from repro.storage.pagefile import PointFile

from conftest import brute_truth, make_file


@pytest.fixture(scope="module")
def sorted_setup():
    """One file sorted once at eps=0.4, reused by every test here."""
    rng = np.random.default_rng(77)
    pts = rng.random((350, 3))
    eps_sort = 0.4
    src = SimulatedDisk()
    dst = SimulatedDisk()
    scratch = SimulatedDisk()
    pf = make_file(src, pts)
    sorted_file, _ = external_sort(pf, dst, scratch,
                                   ego_key_function(eps_sort), 80)
    yield pts, eps_sort, sorted_file
    for d in (src, dst, scratch):
        d.close()


class TestPresortedFileJoin:
    @pytest.mark.parametrize("eps", [0.05, 0.2, 0.4])
    def test_smaller_epsilon_on_presorted_file(self, sorted_setup, eps):
        pts, eps_sort, sorted_file = sorted_setup
        report = ego_self_join_file(sorted_file, eps, unit_bytes=800,
                                    buffer_units=4, assume_sorted=True,
                                    sorted_epsilon=eps_sort)
        assert report.result.canonical_pair_set() == brute_truth(pts, eps)
        assert report.sort_io_time_s == 0.0
        assert report.sort_stats.records_sorted == 0

    @pytest.mark.parametrize("factor", [1.5, 2, 3])
    def test_larger_epsilon_resorts(self, sorted_setup, factor):
        """ε above the sort ε re-sorts — no coarser grid keeps the order.

        Regression for the removed k·εs shortcut: fine lexicographic
        order does not imply coarse lexicographic order, so a file
        sorted at εs must be re-sorted for any larger join ε (integer
        multiples included) to stay exact.
        """
        pts, eps_sort, sorted_file = sorted_setup
        eps = eps_sort * factor
        report = ego_self_join_file(sorted_file, eps, unit_bytes=800,
                                    buffer_units=4, assume_sorted=True,
                                    sorted_epsilon=eps_sort)
        assert report.result.canonical_pair_set() == brute_truth(pts, eps)
        assert report.sort_stats.records_sorted == len(pts)

    def test_multiple_epsilon_shortcut_was_unsound(self, rng):
        """The coarse order a k·εs join needs differs from the fine order.

        Documents why the shortcut had to go: on enough random data the
        fine-sorted permutation is not sorted for the doubled width.
        """
        from repro.core.ego_order import ego_sorted, grid_cells
        pts = rng.random((400, 4))
        _ids, spts = ego_sorted(pts, 0.1)
        coarse = [tuple(r) for r in grid_cells(spts, 0.4).tolist()]
        assert coarse != sorted(coarse)

    def test_assume_sorted_default_epsilon(self, sorted_setup):
        """Without sorted_epsilon the file must be sorted at epsilon."""
        pts, eps_sort, sorted_file = sorted_setup
        report = ego_self_join_file(sorted_file, eps_sort,
                                    unit_bytes=800, buffer_units=4,
                                    assume_sorted=True)
        assert report.result.canonical_pair_set() == brute_truth(
            pts, eps_sort)


class TestGridEpsilonContext:
    def test_coarser_grid_still_exact(self, rng):
        """Joining at eps with pruning on a coarser grid stays exact."""
        pts = rng.random((150, 2))
        from repro.core.ego_order import ego_sorted
        from repro.core.sequence import Sequence
        from repro.core.sequence_join import join_sequences
        grid_eps = 0.5
        ids, spts = ego_sorted(pts, grid_eps)
        for eps in (0.1, 0.3, 0.5):
            result = JoinResult()
            ctx = JoinContext(epsilon=eps, result=result,
                              grid_epsilon=grid_eps, minlen=8)
            seq = Sequence(ids, spts, grid_eps)
            join_sequences(seq, seq, ctx)
            assert result.canonical_pair_set() == brute_truth(pts, eps)

    def test_grid_below_join_epsilon_rejected(self):
        with pytest.raises(ValueError, match="grid_epsilon"):
            JoinContext(epsilon=0.5, result=JoinResult(),
                        grid_epsilon=0.2)

    def test_default_grid_equals_epsilon(self):
        ctx = JoinContext(epsilon=0.3, result=JoinResult())
        assert ctx.grid_epsilon == pytest.approx(0.3)


class TestIndexSweep:
    def test_self_join_sweep_matches_fresh_joins(self, rng):
        pts = rng.random((200, 3))
        idx = EGOIndex(pts, 0.4)
        for eps in (0.1, 0.25, 0.4):
            via_index = idx.self_join(epsilon=eps).canonical_pair_set()
            fresh = ego_self_join(pts, eps).canonical_pair_set()
            assert via_index == fresh

    def test_sweep_monotone(self, rng):
        idx = EGOIndex(rng.random((150, 2)), 0.5)
        sweep = [idx.self_join(epsilon=e).count
                 for e in (0.1, 0.2, 0.3, 0.4, 0.5)]
        assert sweep == sorted(sweep)

    def test_epsilon_above_index_rejected(self, rng):
        idx = EGOIndex(rng.random((20, 2)), 0.2)
        with pytest.raises(ValueError):
            idx.self_join(epsilon=0.5)

    def test_cross_join_sweep(self, rng):
        r, s = rng.random((60, 2)), rng.random((50, 2))
        a, b = EGOIndex(r, 0.4), EGOIndex(s, 0.4)
        for eps in (0.1, 0.3):
            got = a.join(b, epsilon=eps).pair_set()
            expected = {(i, j) for i in range(60) for j in range(50)
                        if np.linalg.norm(r[i] - s[j]) <= eps}
            assert got == expected

    @given(st.floats(min_value=0.02, max_value=0.5),
           st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_sweep_property(self, eps, seed):
        rng = np.random.default_rng(seed)
        pts = rng.random((60, 2))
        idx = EGOIndex(pts, 0.5)
        assert (idx.self_join(epsilon=eps).canonical_pair_set()
                == brute_truth(pts, eps))
