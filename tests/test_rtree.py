"""Tests for the bulk-loaded R-tree."""

import numpy as np
import pytest

from repro.index.rtree import RTree
from repro.storage.disk import SimulatedDisk


def build(points, page_records=8, fanout=4, method="str"):
    disk = SimulatedDisk()
    ids = np.arange(len(points), dtype=np.int64)
    tree = RTree.bulk_load(ids, np.asarray(points, dtype=float), disk,
                           page_records, fanout=fanout, method=method)
    return disk, tree


class TestBulkLoad:
    @pytest.mark.parametrize("method", ["str", "zorder", "hilbert"])
    def test_invariants_hold(self, rng, method):
        disk, tree = build(rng.random((100, 3)), method=method)
        try:
            tree.validate()
            assert tree.num_leaves == -(-100 // 8)
        finally:
            disk.close()

    def test_all_points_stored(self, rng):
        pts = rng.random((57, 2))
        disk, tree = build(pts)
        try:
            seen = []
            for page in range(tree.num_leaves):
                ids, _ = tree.read_leaf(page)
                seen.extend(ids.tolist())
            assert sorted(seen) == list(range(57))
        finally:
            disk.close()

    def test_single_page_tree(self, rng):
        disk, tree = build(rng.random((5, 2)), page_records=8)
        try:
            assert tree.num_leaves == 1
            assert tree.root.is_leaf
            assert tree.height == 0
        finally:
            disk.close()

    def test_multi_level_directory(self, rng):
        disk, tree = build(rng.random((200, 2)), page_records=4, fanout=4)
        try:
            assert tree.height >= 2
            tree.validate()
        finally:
            disk.close()

    def test_rejects_empty(self):
        with SimulatedDisk() as disk:
            with pytest.raises(ValueError):
                RTree.bulk_load(np.empty(0, dtype=np.int64),
                                np.empty((0, 2)), disk, 8)

    def test_rejects_bad_parameters(self, rng):
        with SimulatedDisk() as disk:
            pts = rng.random((5, 2))
            ids = np.arange(5)
            with pytest.raises(ValueError):
                RTree.bulk_load(ids, pts, disk, 0)
            with pytest.raises(ValueError):
                RTree.bulk_load(ids, pts, disk, 8, fanout=1)
            with pytest.raises(ValueError):
                RTree.bulk_load(np.arange(3), pts, disk, 8)

    def test_str_produces_spatial_locality(self, rng):
        """STR pages should have small MBRs compared to random packing."""
        pts = rng.random((256, 2))
        disk, tree = build(pts, page_records=16)
        try:
            str_vol = sum(n.mbr.volume() for n in tree.leaf_nodes)
            # Random (insertion-order) packing for comparison.
            per_page = [pts[i:i + 16] for i in range(0, 256, 16)]
            rand_vol = sum(
                float(np.prod(c.max(axis=0) - c.min(axis=0)))
                for c in per_page)
            assert str_vol < rand_vol
        finally:
            disk.close()


class TestLeafAccess:
    def test_leaf_read_is_one_access(self, rng):
        disk, tree = build(rng.random((64, 2)))
        try:
            disk.reset_accounting()
            tree.read_leaf(3)
            assert disk.counters.total_reads == 1
        finally:
            disk.close()

    def test_leaf_pool_caches(self, rng):
        disk, tree = build(rng.random((64, 2)))
        try:
            pool = tree.make_leaf_pool(4)
            pool.get(0)
            pool.get(0)
            assert pool.stats.hits == 1
        finally:
            disk.close()

    def test_last_leaf_may_be_partial(self, rng):
        disk, tree = build(rng.random((10, 2)), page_records=8)
        try:
            ids, pts = tree.read_leaf(tree.num_leaves - 1)
            assert len(ids) == 2
        finally:
            disk.close()


class TestRangeQuery:
    def test_matches_linear_scan(self, rng):
        pts = rng.random((150, 3))
        disk, tree = build(pts)
        try:
            for _ in range(5):
                center = rng.random(3)
                radius = 0.3
                expected = {
                    i for i in range(150)
                    if np.linalg.norm(pts[i] - center) <= radius}
                got = set(tree.range_query(center, radius).tolist())
                assert got == expected
        finally:
            disk.close()

    def test_zero_radius(self, rng):
        pts = rng.random((20, 2))
        disk, tree = build(pts)
        try:
            got = set(tree.range_query(pts[7], 0.0).tolist())
            assert 7 in got
        finally:
            disk.close()

    def test_rejects_negative_radius(self, rng):
        disk, tree = build(rng.random((5, 2)))
        try:
            with pytest.raises(ValueError):
                tree.range_query(np.zeros(2), -1.0)
        finally:
            disk.close()

    def test_query_through_pool_counts_io(self, rng):
        pts = rng.random((100, 2))
        disk, tree = build(pts)
        try:
            pool = tree.make_leaf_pool(2)
            disk.reset_accounting()
            tree.range_query(np.array([0.5, 0.5]), 0.2, pool=pool)
            assert disk.counters.total_reads == pool.stats.misses
        finally:
            disk.close()
