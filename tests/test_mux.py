"""Tests for the Multipage Index."""

import numpy as np
import pytest

from repro.index.mux import MultipageIndex
from repro.storage.disk import SimulatedDisk


def build(points, page_bytes=4096, bucket_records=8):
    disk = SimulatedDisk()
    ids = np.arange(len(points), dtype=np.int64)
    mux = MultipageIndex.bulk_load(ids, np.asarray(points, dtype=float),
                                   disk, page_bytes, bucket_records)
    return disk, mux


class TestBulkLoad:
    def test_pages_partition_records(self, rng):
        pts = rng.random((200, 4))
        disk, mux = build(pts)
        try:
            covered = []
            for page in mux.pages:
                assert page.first < page.last
                covered.extend(range(page.first, page.last))
            assert covered == list(range(200))
        finally:
            disk.close()

    def test_buckets_partition_pages(self, rng):
        disk, mux = build(rng.random((150, 3)))
        try:
            for page in mux.pages:
                pos = page.first
                for bucket in page.buckets:
                    assert bucket.first == pos
                    pos = bucket.last
                assert pos == page.last
        finally:
            disk.close()

    def test_bucket_mbrs_bound_points(self, rng):
        pts = rng.random((120, 3))
        disk, mux = build(pts)
        try:
            _ids, stored = mux.leaf_file.read_all()
            for page in mux.pages:
                for bucket in page.buckets:
                    chunk = stored[bucket.first:bucket.last]
                    assert (chunk >= bucket.mbr.low - 1e-12).all()
                    assert (chunk <= bucket.mbr.high + 1e-12).all()
        finally:
            disk.close()

    def test_page_mbr_covers_buckets(self, rng):
        disk, mux = build(rng.random((100, 2)))
        try:
            for page in mux.pages:
                for bucket in page.buckets:
                    assert (page.mbr.low <= bucket.mbr.low + 1e-12).all()
                    assert (page.mbr.high >= bucket.mbr.high - 1e-12).all()
        finally:
            disk.close()

    def test_mbr_overhead_reduces_capacity(self, rng):
        """Smaller buckets → more bucket MBRs → fewer records per page."""
        pts = rng.random((400, 8))
        d_small, mux_small = build(pts, page_bytes=4096, bucket_records=4)
        d_big, mux_big = build(pts, page_bytes=4096, bucket_records=64)
        try:
            assert mux_small.records_per_page < mux_big.records_per_page
            assert (mux_small.storage_overhead_fraction()
                    > mux_big.storage_overhead_fraction())
        finally:
            d_small.close()
            d_big.close()

    def test_rejects_too_small_page(self, rng):
        with SimulatedDisk() as disk:
            with pytest.raises(ValueError):
                MultipageIndex.bulk_load(np.arange(5), rng.random((5, 16)),
                                         disk, page_bytes=64,
                                         bucket_records=1)

    def test_rejects_empty(self):
        with SimulatedDisk() as disk:
            with pytest.raises(ValueError):
                MultipageIndex.bulk_load(np.empty(0, dtype=np.int64),
                                         np.empty((0, 2)), disk, 4096, 8)


class TestPageAccess:
    def test_read_page_is_one_access(self, rng):
        disk, mux = build(rng.random((300, 2)))
        try:
            disk.reset_accounting()
            mux.read_page(0)
            assert disk.counters.total_reads == 1
        finally:
            disk.close()

    def test_read_page_returns_page_records(self, rng):
        pts = rng.random((100, 2))
        disk, mux = build(pts)
        try:
            ids, out = mux.read_page(0)
            page = mux.pages[0]
            assert len(ids) == len(page)
        finally:
            disk.close()

    def test_pool_counts_hits(self, rng):
        disk, mux = build(rng.random((300, 2)))
        try:
            pool = mux.make_page_pool(2)
            pool.get(0)
            pool.get(0)
            assert pool.stats.hits == 1
        finally:
            disk.close()
