"""Tests for point files, I/O units and sequential readers/writers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.disk import SimulatedDisk
from repro.storage.pagefile import (PointFile, SequentialReader,
                                    SequentialWriter)

from conftest import make_file


class TestPointFileBasics:
    def test_create_and_reopen(self, temp_disk, rng):
        pts = rng.random((25, 3))
        make_file(temp_disk, pts)
        reopened = PointFile.open(temp_disk)
        assert reopened.count == 25
        assert reopened.dimensions == 3
        ids, out = reopened.read_all()
        np.testing.assert_array_equal(ids, np.arange(25))
        np.testing.assert_allclose(out, pts)

    def test_open_rejects_garbage(self, temp_disk):
        temp_disk.write(0, b"not a point file header, definitely not")
        with pytest.raises(ValueError):
            PointFile.open(temp_disk)

    def test_open_rejects_short_file(self, temp_disk):
        temp_disk.write(0, b"short")
        with pytest.raises(ValueError):
            PointFile.open(temp_disk)

    def test_multiple_appends_accumulate(self, temp_disk, rng):
        pf = PointFile.create(temp_disk, 2)
        a = rng.random((10, 2))
        b = rng.random((7, 2))
        pf.append(np.arange(10), a)
        pf.append(np.arange(10, 17), b)
        pf.close()
        ids, pts = pf.read_all()
        assert len(pf) == 17
        np.testing.assert_allclose(pts, np.vstack([a, b]))

    def test_read_range(self, temp_disk, rng):
        pts = rng.random((30, 2))
        pf = make_file(temp_disk, pts)
        ids, out = pf.read_range(10, 5)
        np.testing.assert_array_equal(ids, np.arange(10, 15))
        np.testing.assert_allclose(out, pts[10:15])

    def test_read_range_bounds_checked(self, temp_disk, rng):
        pf = make_file(temp_disk, rng.random((5, 2)))
        with pytest.raises(IndexError):
            pf.read_range(3, 5)
        with pytest.raises(IndexError):
            pf.read_range(-1, 2)

    def test_read_empty_range(self, temp_disk, rng):
        pf = make_file(temp_disk, rng.random((5, 2)))
        ids, pts = pf.read_range(2, 0)
        assert len(ids) == 0 and pts.shape == (0, 2)

    def test_iter_chunks_covers_everything(self, temp_disk, rng):
        pts = rng.random((23, 2))
        pf = make_file(temp_disk, pts)
        seen = [chunk for _ids, chunk in pf.iter_chunks(7)]
        assert [len(c) for c in seen] == [7, 7, 7, 2]
        np.testing.assert_allclose(np.vstack(seen), pts)

    def test_iter_chunks_rejects_non_positive(self, temp_disk, rng):
        pf = make_file(temp_disk, rng.random((3, 2)))
        with pytest.raises(ValueError):
            list(pf.iter_chunks(0))


class TestIOUnits:
    def test_every_record_belongs_to_exactly_one_unit(self, temp_disk, rng):
        pts = rng.random((40, 3))  # 32-byte records
        pf = make_file(temp_disk, pts)
        unit_bytes = 100  # deliberately not a record multiple
        collected = []
        for u in range(pf.num_units(unit_bytes)):
            ids, _pts = pf.read_unit(u, unit_bytes)
            collected.extend(ids.tolist())
        assert sorted(collected) == list(range(40))
        assert len(collected) == len(set(collected))

    def test_unit_sizes_vary_by_at_most_one(self, temp_disk, rng):
        """Fragmentation makes record counts per unit vary by ±1 (§3.2)."""
        pts = rng.random((200, 7))  # 64-byte records
        pf = make_file(temp_disk, pts)
        unit_bytes = 1000
        counts = [pf.unit_record_range(u, unit_bytes)[1]
                  - pf.unit_record_range(u, unit_bytes)[0]
                  for u in range(pf.num_units(unit_bytes) - 1)]
        assert max(counts) - min(counts) <= 1

    def test_aligned_units_have_equal_counts(self, temp_disk, rng):
        pts = rng.random((64, 3))  # 32-byte records
        pf = make_file(temp_disk, pts)
        unit_bytes = 8 * 32
        counts = {pf.unit_record_range(u, unit_bytes)[1]
                  - pf.unit_record_range(u, unit_bytes)[0]
                  for u in range(pf.num_units(unit_bytes))}
        assert counts == {8}

    def test_unit_read_is_one_access(self, temp_disk, rng):
        pts = rng.random((50, 3))
        pf = make_file(temp_disk, pts)
        temp_disk.reset_accounting()
        pf.read_unit(2, 300)
        assert temp_disk.counters.total_reads == 1

    @given(st.integers(min_value=1, max_value=5),
           st.integers(min_value=1, max_value=80),
           st.integers(min_value=17, max_value=400))
    @settings(max_examples=40, deadline=None)
    def test_unit_partition_property(self, dims, n, unit_bytes):
        rng = np.random.default_rng(n * 7 + dims)
        disk = SimulatedDisk()
        try:
            pf = make_file(disk, rng.random((n, dims)))
            seen = []
            for u in range(pf.num_units(unit_bytes)):
                first, last = pf.unit_record_range(u, unit_bytes)
                seen.extend(range(first, last))
            assert seen == list(range(n))
        finally:
            disk.close()


class TestSequentialWriter:
    def test_buffered_writes_flush_on_close(self, temp_disk, rng):
        pf = PointFile.create(temp_disk, 2)
        writer = SequentialWriter(pf, buffer_records=100)
        pts = rng.random((30, 2))
        for i in range(30):
            writer.write(np.array([i]), pts[i:i + 1])
        assert pf.count < 30  # still buffered
        writer.close()
        assert pf.count == 30
        _ids, out = pf.read_all()
        np.testing.assert_allclose(out, pts)

    def test_auto_flush_on_buffer_full(self, temp_disk, rng):
        pf = PointFile.create(temp_disk, 2)
        writer = SequentialWriter(pf, buffer_records=8)
        writer.write(np.arange(10), rng.random((10, 2)))
        assert pf.count == 10  # exceeded the buffer, flushed

    def test_batching_reduces_accesses(self, rng):
        pts = rng.random((64, 2))
        with SimulatedDisk() as d1, SimulatedDisk() as d2:
            pf1 = PointFile.create(d1, 2)
            w = SequentialWriter(pf1, buffer_records=64)
            for i in range(64):
                w.write(np.array([i]), pts[i:i + 1])
            w.close()
            pf2 = PointFile.create(d2, 2)
            for i in range(64):
                pf2.append(np.array([i]), pts[i:i + 1])
            pf2.close()
            assert d1.counters.total_writes < d2.counters.total_writes

    def test_rejects_non_positive_buffer(self, temp_disk):
        pf = PointFile.create(temp_disk, 2)
        with pytest.raises(ValueError):
            SequentialWriter(pf, buffer_records=0)


class TestSequentialReader:
    def test_pop_yields_records_in_order(self, temp_disk, rng):
        pts = rng.random((12, 2))
        pf = make_file(temp_disk, pts)
        reader = SequentialReader(pf, buffer_records=5)
        out = []
        while not reader.exhausted():
            rec_id, point = reader.pop()
            out.append((rec_id, point))
        assert [r[0] for r in out] == list(range(12))
        np.testing.assert_allclose(np.array([r[1] for r in out]), pts)

    def test_peek_does_not_consume(self, temp_disk, rng):
        pf = make_file(temp_disk, rng.random((3, 2)))
        reader = SequentialReader(pf)
        assert reader.peek()[0] == 0
        assert reader.peek()[0] == 0
        assert reader.pop()[0] == 0
        assert reader.peek()[0] == 1

    def test_subrange_reader(self, temp_disk, rng):
        pf = make_file(temp_disk, rng.random((20, 2)))
        reader = SequentialReader(pf, first=5, count=10)
        seen = []
        while not reader.exhausted():
            seen.append(reader.pop()[0])
        assert seen == list(range(5, 15))

    def test_next_batch_returns_remaining_buffer(self, temp_disk, rng):
        pf = make_file(temp_disk, rng.random((10, 2)))
        reader = SequentialReader(pf, buffer_records=4)
        ids, _ = reader.next_batch()
        assert ids.tolist() == [0, 1, 2, 3]

    def test_out_of_bounds_range_rejected(self, temp_disk, rng):
        pf = make_file(temp_disk, rng.random((5, 2)))
        with pytest.raises(IndexError):
            SequentialReader(pf, first=3, count=5)

    def test_exhausted_reader_raises_on_peek(self, temp_disk, rng):
        pf = make_file(temp_disk, rng.random((1, 2)))
        reader = SequentialReader(pf)
        reader.pop()
        with pytest.raises(StopIteration):
            reader.peek()
