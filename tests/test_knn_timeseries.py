"""Tests for the kNN-graph application and the time-series substrate."""

import numpy as np
import pytest

from repro.apps.knn import knn_graph
from repro.data.timeseries import (dft_features, normalize_series,
                                   random_walks, seasonal_series,
                                   series_distance)


def brute_knn(points, k):
    diff = points[:, None, :] - points[None, :, :]
    d = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    np.fill_diagonal(d, np.inf)
    order = np.argsort(d, axis=1, kind="stable")[:, :k]
    return order, np.take_along_axis(d, order, axis=1)


class TestKNNGraph:
    def test_matches_brute_force(self, rng):
        pts = rng.random((200, 3))
        g = knn_graph(pts, 4)
        truth_idx, truth_d = brute_knn(pts, 4)
        for i in range(200):
            assert set(g.neighbors[i].tolist()) \
                == set(truth_idx[i].tolist())
            np.testing.assert_allclose(g.distances[i], truth_d[i],
                                       rtol=1e-9)

    def test_distances_sorted(self, rng):
        g = knn_graph(rng.random((100, 2)), 6)
        finite = g.distances[np.isfinite(g.distances).all(axis=1)]
        assert (np.diff(finite, axis=1) >= -1e-12).all()

    def test_small_initial_epsilon_still_exact(self, rng):
        """Doubling must recover from a hopeless starting radius."""
        pts = rng.random((120, 2))
        g = knn_graph(pts, 3, initial_epsilon=1e-4)
        assert g.rounds > 1
        truth_idx, _ = brute_knn(pts, 3)
        for i in range(120):
            assert set(g.neighbors[i].tolist()) \
                == set(truth_idx[i].tolist())

    def test_k_exceeding_population_pads(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        g = knn_graph(pts, 5)
        assert (g.neighbors[:, 2:] == -1).all()
        assert np.isinf(g.distances[:, 2:]).all()

    def test_tiny_inputs(self):
        g = knn_graph(np.empty((0, 2)), 3)
        assert len(g) == 0
        g1 = knn_graph(np.array([[1.0, 2.0]]), 3)
        assert (g1.neighbors == -1).all()

    def test_rejects_bad_k(self, rng):
        with pytest.raises(ValueError):
            knn_graph(rng.random((10, 2)), 0)

    def test_mean_knn_distance(self, rng):
        g = knn_graph(rng.random((150, 2)), 3)
        assert 0 < g.mean_knn_distance() < 1.5

    def test_manhattan_metric(self, rng):
        pts = rng.random((80, 2))
        g = knn_graph(pts, 3, metric="manhattan")
        d = np.abs(pts[:, None, :] - pts[None, :, :]).sum(axis=2)
        np.fill_diagonal(d, np.inf)
        truth = np.argsort(d, axis=1, kind="stable")[:, :3]
        for i in range(80):
            assert set(g.neighbors[i].tolist()) == set(truth[i].tolist())


class TestTimeSeriesGenerators:
    def test_random_walks_shape(self):
        s = random_walks(20, 50, seed=1)
        assert s.shape == (20, 50)

    def test_random_walk_is_cumulative(self):
        s = random_walks(5, 30, seed=2)
        steps = np.diff(s, axis=1)
        assert np.abs(steps).max() < 6  # steps are N(0,1), not the walk

    def test_seasonal_series_assignment(self):
        s, assign = seasonal_series(100, 64, motifs=4, seed=3)
        assert s.shape == (100, 64)
        assert set(assign.tolist()) <= set(range(4))

    def test_same_motif_series_are_closer(self):
        s, assign = seasonal_series(200, 64, motifs=3, noise_std=0.1,
                                    seed=4)
        norm = normalize_series(s)
        same, diff = [], []
        for i in range(50):
            for j in range(i + 1, 50):
                d = np.linalg.norm(norm[i] - norm[j])
                (same if assign[i] == assign[j] else diff).append(d)
        assert np.mean(same) < np.mean(diff) / 2

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            random_walks(-1, 10)
        with pytest.raises(ValueError):
            seasonal_series(10, 32, motifs=0)


class TestDFTFeatures:
    def test_shape(self):
        s = random_walks(10, 64, seed=5)
        f = dft_features(s, coefficients=6)
        assert f.shape == (10, 12)

    def test_parseval_lower_bound(self, rng):
        """Feature distance never exceeds normalised series distance."""
        s = random_walks(40, 128, seed=6)
        f = dft_features(s, coefficients=10)
        norm = normalize_series(s)
        for i in range(20):
            for j in range(i + 1, 20):
                fd = np.linalg.norm(f[i] - f[j])
                sd = np.linalg.norm(norm[i] - norm[j])
                assert fd <= sd + 1e-9

    def test_more_coefficients_tighter(self):
        s = random_walks(20, 128, seed=7)
        few = dft_features(s, coefficients=2)
        many = dft_features(s, coefficients=20)
        d_few = np.linalg.norm(few[0] - few[1])
        d_many = np.linalg.norm(many[0] - many[1])
        assert d_few <= d_many + 1e-9

    def test_normalization_removes_offset(self):
        base = random_walks(1, 64, seed=8)[0]
        shifted = base + 1000.0
        assert series_distance(base, shifted) == pytest.approx(0.0,
                                                               abs=1e-9)

    def test_rejects_bad_coefficient_count(self):
        s = random_walks(5, 32, seed=9)
        with pytest.raises(ValueError):
            dft_features(s, coefficients=0)
        with pytest.raises(ValueError):
            dft_features(s, coefficients=17)

    def test_rejects_1d_series(self):
        with pytest.raises(ValueError):
            dft_features(np.zeros(16), coefficients=2)
