"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data.loader import load_points, save_points
from repro.data.synthetic import gaussian_clusters


@pytest.fixture
def data_file(tmp_path, rng):
    path = str(tmp_path / "data.pts")
    save_points(path, rng.random((200, 3)))
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_join_requires_epsilon(self, data_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["join", data_file])


class TestGenerateAndInfo:
    @pytest.mark.parametrize("kind", ["uniform", "clusters", "cad"])
    def test_generate_kinds(self, tmp_path, kind, capsys):
        out = str(tmp_path / f"{kind}.pts")
        dims = "16" if kind == "cad" else "4"
        assert main(["generate", "--kind", kind, "--n", "50",
                     "--dims", dims, "--out", out]) == 0
        ids, pts = load_points(out)
        assert pts.shape == (50, int(dims))

    def test_info_reports_header(self, data_file, capsys):
        assert main(["info", data_file]) == 0
        out = capsys.readouterr().out
        assert "points      : 200" in out
        assert "dimensions  : 3" in out


class TestJoin:
    def test_join_count_only(self, data_file, capsys):
        assert main(["join", data_file, "--epsilon", "0.2",
                     "--count-only"]) == 0
        err = capsys.readouterr().err
        assert "pairs:" in err

    def test_join_batched_engine_with_knobs(self, data_file, capsys):
        assert main(["join", data_file, "--epsilon", "0.2",
                     "--engine", "batched", "--batch-points", "512",
                     "--batch-leaves", "8", "--count-only"]) == 0
        batched = [ln for ln in capsys.readouterr().err.splitlines()
                   if "pairs:" in ln]
        assert main(["join", data_file, "--epsilon", "0.2",
                     "--engine", "vector", "--count-only"]) == 0
        vector = [ln for ln in capsys.readouterr().err.splitlines()
                  if "pairs:" in ln]
        assert batched == vector

    def test_bad_batch_knob_exits_2(self, data_file, capsys):
        assert main(["join", data_file, "--epsilon", "0.2",
                     "--batch-points", "0", "--count-only"]) == 2
        assert "error: --batch-points" in capsys.readouterr().err

    def test_join_prints_pairs(self, data_file, capsys):
        assert main(["join", data_file, "--epsilon", "0.3",
                     "--limit", "5"]) == 0
        captured = capsys.readouterr()
        lines = [ln for ln in captured.out.splitlines() if "," in ln]
        assert 0 < len(lines) <= 5
        a, b = lines[0].split(",")
        assert a.strip().isdigit() and b.strip().isdigit()

    def test_join_two(self, tmp_path, rng, capsys):
        r_path = str(tmp_path / "r.pts")
        s_path = str(tmp_path / "s.pts")
        save_points(r_path, rng.random((80, 2)))
        save_points(s_path, rng.random((70, 2)))
        assert main(["join-two", r_path, s_path, "--epsilon", "0.2",
                     "--count-only"]) == 0
        assert "pairs:" in capsys.readouterr().err

    def test_join_observability_flags(self, data_file, tmp_path, capsys):
        import json
        trace_path = str(tmp_path / "run.trace.json")
        metrics_path = str(tmp_path / "run.prom")
        assert main(["join", data_file, "--epsilon", "0.2",
                     "--count-only", "--trace", trace_path,
                     "--metrics", metrics_path, "--profile"]) == 0
        err = capsys.readouterr().err
        assert "trace:" in err and "metrics:" in err
        assert "phase" in err and "schedule" in err  # profiler table
        with open(trace_path) as fh:
            doc = json.load(fh)
        assert any(e["name"] == "external_self_join"
                   for e in doc["traceEvents"])
        with open(metrics_path) as fh:
            text = fh.read()
        assert "# TYPE ego_unit_reads_total counter" in text

    def test_join_metrics_json_extension(self, data_file, tmp_path,
                                         capsys):
        import json
        metrics_path = str(tmp_path / "run.metrics.json")
        assert main(["join", data_file, "--epsilon", "0.2",
                     "--count-only", "--metrics", metrics_path]) == 0
        capsys.readouterr()
        with open(metrics_path) as fh:
            doc = json.load(fh)
        assert doc["ego_unit_reads_total"]["kind"] == "counter"

    def test_join_two_observability_flags(self, tmp_path, rng, capsys):
        import json
        r_path = str(tmp_path / "r.pts")
        s_path = str(tmp_path / "s.pts")
        save_points(r_path, rng.random((80, 2)))
        save_points(s_path, rng.random((70, 2)))
        trace_path = str(tmp_path / "rs.trace.json")
        assert main(["join-two", r_path, s_path, "--epsilon", "0.2",
                     "--count-only", "--trace", trace_path]) == 0
        capsys.readouterr()
        with open(trace_path) as fh:
            doc = json.load(fh)
        assert any(e["name"] == "external_rs_join"
                   for e in doc["traceEvents"])


class TestApps:
    def test_dbscan_outputs_labels(self, tmp_path, capsys):
        path = str(tmp_path / "blobs.pts")
        save_points(path, gaussian_clusters(300, 3, clusters=3,
                                            std=0.01, seed=5))
        assert main(["dbscan", path, "--epsilon", "0.05",
                     "--min-pts", "5"]) == 0
        captured = capsys.readouterr()
        labels = [int(x) for x in captured.out.split()]
        assert len(labels) == 300
        assert "clusters:" in captured.err

    def test_outliers_outputs_ids(self, data_file, capsys):
        assert main(["outliers", data_file, "--distance", "0.05",
                     "--fraction", "0.99"]) == 0
        captured = capsys.readouterr()
        assert "outliers:" in captured.err
        for line in captured.out.split():
            assert 0 <= int(line) < 200


class TestEstimate:
    def test_fixed_configuration(self, capsys):
        assert main(["estimate", "--n", "100000", "--epsilon", "0.1",
                     "--unit-bytes", "65536",
                     "--buffer-units", "4"]) == 0
        out = capsys.readouterr().out
        assert "predicted unit loads" in out
        assert "mode" in out

    def test_budget_optimisation(self, capsys):
        assert main(["estimate", "--n", "100000", "--epsilon", "0.1",
                     "--budget-bytes", "1000000"]) == 0
        out = capsys.readouterr().out
        assert "recommended unit size" in out


class TestEstimateWithFile:
    def test_result_size_prediction(self, data_file, capsys):
        assert main(["estimate", "--n", "200", "--dims", "3",
                     "--epsilon", "0.2", "--file", data_file]) == 0
        out = capsys.readouterr().out
        assert "predicted result pairs" in out


class TestKnnAndOptics:
    def test_knn_outputs_neighbor_lists(self, data_file, capsys):
        assert main(["knn", data_file, "--k", "3", "--limit", "5"]) == 0
        captured = capsys.readouterr()
        assert "mean 3-NN distance" in captured.err
        lines = captured.out.strip().splitlines()
        assert len(lines) == 5
        head, neigh = lines[0].split(":")
        assert head == "0"
        assert len(neigh.split(",")) == 3

    def test_optics_outputs_reachability(self, data_file, capsys):
        assert main(["optics", data_file, "--epsilon", "0.3",
                     "--min-pts", "4"]) == 0
        captured = capsys.readouterr()
        lines = captured.out.strip().splitlines()
        assert len(lines) == 200
        first_point, first_reach = lines[0].split()
        assert first_reach == "undefined"


class TestJoinMetricFlag:
    def test_chebyshev_finds_at_least_euclidean(self, data_file, capsys):
        assert main(["join", data_file, "--epsilon", "0.2",
                     "--count-only"]) == 0
        euclid = int(capsys.readouterr().err.split("pairs:")[1]
                     .split()[0])
        assert main(["join", data_file, "--epsilon", "0.2",
                     "--count-only", "--metric", "chebyshev"]) == 0
        cheby = int(capsys.readouterr().err.split("pairs:")[1]
                    .split()[0])
        assert cheby >= euclid


@pytest.mark.faults
class TestJoinWorkerFaults:
    """Supervisor exit codes and --worker-faults parsing."""

    def _pairs(self, capsys):
        return int(capsys.readouterr().err.split("pairs:")[1].split()[0])

    def test_recovers_and_matches_fault_free(self, data_file, capsys):
        assert main(["join", data_file, "--epsilon", "0.2",
                     "--count-only"]) == 0
        baseline = self._pairs(capsys)
        assert main(["join", data_file, "--epsilon", "0.2",
                     "--count-only", "--workers", "2",
                     "--worker-faults", "seed=1,error-rate=0.9",
                     "--task-timeout", "5"]) == 0
        captured = capsys.readouterr()
        assert int(captured.err.split("pairs:")[1].split()[0]) == baseline
        assert "tasks retried" in captured.err

    def test_degraded_run_exits_3(self, data_file, capsys):
        code = main(["join", data_file, "--epsilon", "0.2",
                     "--count-only", "--workers", "2",
                     "--worker-faults",
                     "seed=1,crash-rate=1.0,max-attempt=none",
                     "--task-timeout", "5"])
        assert code == 3
        err = capsys.readouterr().err
        assert "degraded: worker pool failed" in err
        assert "results are complete and exact" in err

    def test_no_degrade_exits_4(self, data_file, capsys):
        code = main(["join", data_file, "--epsilon", "0.2",
                     "--count-only", "--workers", "2", "--no-degrade",
                     "--worker-faults",
                     "seed=1,crash-rate=1.0,max-attempt=none",
                     "--task-timeout", "5"])
        assert code == 4
        assert "unrecoverable worker fault" in capsys.readouterr().err

    def test_bad_spec_exits_2(self, data_file, capsys):
        assert main(["join", data_file, "--epsilon", "0.2",
                     "--workers", "2",
                     "--worker-faults", "frobnicate=1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_negative_task_retries_exits_2(self, data_file, capsys):
        assert main(["join", data_file, "--epsilon", "0.2",
                     "--task-retries", "-1"]) == 2
        assert "error:" in capsys.readouterr().err
