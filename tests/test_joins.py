"""Cross-validation of every join algorithm against brute force."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.index.epskdb import EpsKdbCacheError
from repro.index.mux import MultipageIndex
from repro.index.rtree import RTree
from repro.joins.brute import brute_force_join, brute_force_self_join
from repro.joins.epskdb_join import epskdb_self_join
from repro.joins.grid_hash import (grid_hash_self_join,
                                   grid_prefix_dimensions)
from repro.joins.mux_join import mux_self_join
from repro.joins.nested_loop import nested_loop_self_join_file
from repro.joins.rsj import rsj_join, rsj_self_join
from repro.joins.zorder_rsj import zorder_rsj_self_join
from repro.storage.disk import SimulatedDisk

from conftest import brute_truth, make_file


class TestBruteForce:
    def test_self_join_reference(self, rng):
        pts = rng.random((80, 3))
        result = brute_force_self_join(pts, 0.3)
        assert result.canonical_pair_set() == brute_truth(pts, 0.3)

    def test_chunking_does_not_change_result(self, rng):
        pts = rng.random((50, 2))
        a = brute_force_self_join(pts, 0.4, chunk=7).canonical_pair_set()
        b = brute_force_self_join(pts, 0.4, chunk=1000).canonical_pair_set()
        assert a == b

    def test_two_set_join(self, rng):
        r, s = rng.random((30, 2)), rng.random((25, 2))
        result = brute_force_join(r, s, 0.3, chunk=8)
        expected = {(i, j) for i in range(30) for j in range(25)
                    if np.linalg.norm(r[i] - s[j]) <= 0.3}
        assert result.pair_set() == expected

    def test_self_join_excludes_diagonal(self, rng):
        pts = rng.random((20, 2))
        a, b = brute_force_self_join(pts, 1.0).pairs()
        assert (a != b).all()


class TestGridHash:
    @pytest.mark.parametrize("d", [1, 2, 5, 12])
    def test_matches_brute(self, rng, d):
        pts = rng.random((100, d))
        eps = 0.4
        got = grid_hash_self_join(pts, eps).canonical_pair_set()
        assert got == brute_truth(pts, eps)

    def test_explicit_prefix(self, rng):
        pts = rng.random((60, 6))
        got = grid_hash_self_join(pts, 0.3,
                                  prefix_dims=2).canonical_pair_set()
        assert got == brute_truth(pts, 0.3)

    def test_prefix_dims_bounded(self):
        assert grid_prefix_dimensions(16) <= 8
        assert grid_prefix_dimensions(1) == 1
        assert grid_prefix_dimensions(3) == 3

    def test_rejects_bad_prefix(self, rng):
        with pytest.raises(ValueError):
            grid_hash_self_join(rng.random((5, 2)), 0.3, prefix_dims=5)

    def test_empty_input(self):
        result = grid_hash_self_join(np.empty((0, 3)), 0.5)
        assert result.count == 0


class TestRSJ:
    def test_self_join_matches_brute(self, rng):
        pts = rng.random((120, 3))
        eps = 0.3
        with SimulatedDisk() as disk:
            tree = RTree.bulk_load(np.arange(120), pts, disk, 16)
            report = rsj_self_join(tree, eps, pool_pages=4)
            assert report.result.canonical_pair_set() == brute_truth(
                pts, eps)
            assert report.io.total_reads > 0
            assert report.cpu.mbr_tests > 0

    def test_two_tree_join(self, rng):
        r, s = rng.random((60, 2)), rng.random((50, 2))
        with SimulatedDisk() as d1, SimulatedDisk() as d2:
            tr = RTree.bulk_load(np.arange(60), r, d1, 8)
            ts = RTree.bulk_load(np.arange(50), s, d2, 8)
            report = rsj_join(tr, ts, 0.25, pool_pages=4)
            expected = {(i, j) for i in range(60) for j in range(50)
                        if np.linalg.norm(r[i] - s[j]) <= 0.25}
            assert report.result.pair_set() == expected

    def test_small_eps_prunes_io(self, rng):
        """With tiny eps, most leaf pairs must never be fetched."""
        pts = rng.random((200, 2))
        with SimulatedDisk() as disk:
            tree = RTree.bulk_load(np.arange(200), pts, disk, 8)
            report = rsj_self_join(tree, 0.01, pool_pages=8)
            leaf_pairs = tree.num_leaves * (tree.num_leaves + 1) // 2
            assert report.io.total_reads < leaf_pairs


class TestZOrderRSJ:
    def test_matches_brute(self, rng):
        pts = rng.random((150, 4))
        eps = 0.35
        with SimulatedDisk() as disk:
            tree = RTree.bulk_load(np.arange(150), pts, disk, 16)
            report = zorder_rsj_self_join(tree, eps, pool_pages=4)
            assert report.result.canonical_pair_set() == brute_truth(
                pts, eps)

    def test_fewer_misses_than_dfs_rsj(self, rng):
        """The Z-order schedule improves buffer locality over DFS."""
        pts = rng.random((600, 2))
        eps = 0.25
        with SimulatedDisk() as disk:
            tree = RTree.bulk_load(np.arange(600), pts, disk, 8)
            dfs = rsj_self_join(tree, eps, pool_pages=4)
            zor = zorder_rsj_self_join(tree, eps, pool_pages=4)
            assert (zor.extra["buffer_misses"]
                    <= dfs.extra["buffer_misses"])

    def test_leaf_pair_count_recorded(self, rng):
        pts = rng.random((100, 2))
        with SimulatedDisk() as disk:
            tree = RTree.bulk_load(np.arange(100), pts, disk, 8)
            report = zorder_rsj_self_join(tree, 0.3, pool_pages=4)
            assert report.extra["leaf_pairs"] > 0


class TestMuXJoin:
    def test_matches_brute(self, rng):
        pts = rng.random((180, 4))
        eps = 0.35
        with SimulatedDisk() as disk:
            mux = MultipageIndex.bulk_load(np.arange(180), pts, disk,
                                           page_bytes=2048,
                                           bucket_records=8)
            report = mux_self_join(mux, eps, pool_pages=4)
            assert report.result.canonical_pair_set() == brute_truth(
                pts, eps)

    def test_fewer_distance_calcs_than_page_allpairs(self, rng):
        """Bucket filtering must beat naive page-level comparison."""
        pts = rng.random((400, 6))
        eps = 0.2
        with SimulatedDisk() as disk:
            mux = MultipageIndex.bulk_load(np.arange(400), pts, disk,
                                           page_bytes=8192,
                                           bucket_records=8)
            report = mux_self_join(mux, eps, pool_pages=4)
            # All-pairs over joined pages would be >= records_per_page^2
            # per pair; bucket filtering should cut this clearly.
            naive = report.extra["page_pairs"] * mux.records_per_page ** 2
            assert report.cpu.distance_calculations < naive

    def test_io_uses_few_large_accesses(self, rng):
        pts = rng.random((500, 4))
        with SimulatedDisk() as disk:
            mux = MultipageIndex.bulk_load(np.arange(500), pts, disk,
                                           page_bytes=16384,
                                           bucket_records=8)
            report = mux_self_join(mux, 0.3, pool_pages=4)
            assert report.io.total_reads <= mux.num_pages * 3


class TestEpsKdbJoin:
    def test_matches_brute(self, rng):
        pts = rng.random((150, 4))
        eps = 0.3
        report = epskdb_self_join(np.arange(150), pts, eps)
        assert report.result.canonical_pair_set() == brute_truth(pts, eps)

    @pytest.mark.parametrize("capacity", [1, 4, 32])
    def test_capacity_sweep(self, rng, capacity):
        pts = rng.random((100, 3))
        eps = 0.25
        report = epskdb_self_join(np.arange(100), pts, eps,
                                  node_capacity=capacity)
        assert report.result.canonical_pair_set() == brute_truth(pts, eps)

    def test_cache_violation_raises(self, rng):
        pts = rng.random((100, 2)) * 0.05  # one stripe
        with pytest.raises(EpsKdbCacheError):
            epskdb_self_join(np.arange(100), pts, 1.0, cache_records=10)

    def test_force_overrides_cache_check(self, rng):
        pts = rng.random((100, 2)) * 0.05
        report = epskdb_self_join(np.arange(100), pts, 1.0,
                                  cache_records=10, force=True)
        assert report.result.canonical_pair_set() == brute_truth(pts, 1.0)

    def test_reports_pair_fraction(self, rng):
        pts = rng.random((200, 2))
        report = epskdb_self_join(np.arange(200), pts, 0.2)
        assert 0.0 < report.extra["max_pair_fraction"] <= 1.0
        assert report.extra["num_stripes"] >= 1

    def test_charges_scan_io(self, rng):
        pts = rng.random((100, 2))
        with SimulatedDisk() as disk:
            pf = make_file(disk, pts)
            disk.reset_accounting()
            report = epskdb_self_join(np.arange(100), pts, 0.3,
                                      cache_records=100, input_file=pf)
            assert report.io.bytes_read > 0


class TestNestedLoop:
    def test_matches_brute(self, rng):
        pts = rng.random((90, 3))
        eps = 0.3
        with SimulatedDisk() as disk:
            pf = make_file(disk, pts)
            report = nested_loop_self_join_file(pf, eps,
                                                buffer_records=20)
            assert report.result.canonical_pair_set() == brute_truth(
                pts, eps)

    def test_compares_all_pairs(self, rng):
        pts = rng.random((50, 2))
        with SimulatedDisk() as disk:
            pf = make_file(disk, pts)
            report = nested_loop_self_join_file(pf, 0.1,
                                                buffer_records=16)
            assert report.cpu.distance_calculations == 50 * 49 // 2

    def test_quadratic_io_growth(self, rng):
        """Doubling n with fixed buffer should ~quadruple inner reads."""
        reads = []
        for n in (64, 128):
            pts = rng.random((n, 2))
            with SimulatedDisk() as disk:
                pf = make_file(disk, pts)
                report = nested_loop_self_join_file(pf, 0.1,
                                                    buffer_records=16)
                reads.append(report.io.bytes_read)
        assert reads[1] > 3 * reads[0]

    def test_rejects_tiny_buffer(self, rng):
        with SimulatedDisk() as disk:
            pf = make_file(disk, rng.random((5, 2)))
            with pytest.raises(ValueError):
                nested_loop_self_join_file(pf, 0.3, buffer_records=1)


class TestAllAlgorithmsAgree:
    @given(st.integers(min_value=2, max_value=60),
           st.integers(min_value=1, max_value=6),
           st.floats(min_value=0.05, max_value=0.9),
           st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_every_join_same_answer(self, n, d, eps, seed):
        rng = np.random.default_rng(seed)
        pts = rng.random((n, d))
        ids = np.arange(n, dtype=np.int64)
        truth = brute_truth(pts, eps)
        assert grid_hash_self_join(pts, eps).canonical_pair_set() == truth
        assert epskdb_self_join(
            ids, pts, eps).result.canonical_pair_set() == truth
        with SimulatedDisk() as disk:
            tree = RTree.bulk_load(ids, pts, disk, 8)
            assert rsj_self_join(
                tree, eps, 4).result.canonical_pair_set() == truth
            assert zorder_rsj_self_join(
                tree, eps, 4).result.canonical_pair_set() == truth
        with SimulatedDisk() as disk:
            mux = MultipageIndex.bulk_load(ids, pts, disk, 2048, 4)
            assert mux_self_join(
                mux, eps, 4).result.canonical_pair_set() == truth
