"""Tests for the resilient parallel-join supervisor.

The contract under test: whatever worker faults a seeded
:class:`WorkerFaultPlan` injects — crashes, stalls, corrupted results,
task errors — the supervised parallel join must produce a result
byte-identical to the fault-free serial run, its fault accounting must
be deterministic (no wall-clock), and a run crashed mid-join must
resume to the same result *and* the same cumulative supervisor
decisions as an uninterrupted run.
"""

import json
import os

import numpy as np
import pytest

from repro.core.ego_join import ego_self_join_file
from repro.core.supervisor import (PoolFailureError, SupervisorPolicy,
                                   SupervisorStats, TaskPoisonedError,
                                   backoff_for, replay_stats)
from repro.obs import MetricsRegistry
from repro.storage.disk import SimulatedDisk
from repro.storage.faults import (FaultPlan, SimulatedCrash,
                                  WorkerFaultPlan, stable_fraction)
from repro.storage.journal import Journal

from conftest import make_file

pytestmark = pytest.mark.faults

EPSILON = 0.25
UNIT_BYTES = 512
BUFFER_UNITS = 4

#: Fast test policy: no real backoff sleeps, tight hang deadline.
FAST = dict(task_timeout=1.0, max_task_retries=2, degrade=True,
            real_sleep=False)


@pytest.fixture(scope="module")
def dataset():
    return np.random.default_rng(7).random((300, 4))


def run_join(pts, **kwargs):
    with SimulatedDisk() as disk:
        pf = make_file(disk, pts)
        return ego_self_join_file(pf, EPSILON, unit_bytes=UNIT_BYTES,
                                  buffer_units=BUFFER_UNITS, **kwargs)


@pytest.fixture(scope="module")
def baseline(dataset, tmp_path_factory):
    ck = tmp_path_factory.mktemp("supervisor-baseline")
    report = run_join(dataset, checkpoint_dir=str(ck))
    with open(os.path.join(str(ck), "result.prs"), "rb") as fh:
        result_bytes = fh.read()
    return {"pairs": report.result.canonical_pair_set(),
            "count": report.total_pairs, "bytes": result_bytes}


class TestWorkerFaultPlan:
    def test_stable_fraction_is_pure_and_bounded(self):
        values = {stable_fraction(3, "crash", 1, 2) for _ in range(5)}
        assert len(values) == 1
        assert all(0.0 <= stable_fraction(s, "x", s) < 1.0
                   for s in range(50))

    def test_explicit_pairs_are_order_normalised(self):
        plan = WorkerFaultPlan(error_pairs=[(5, 2)])
        assert plan.decide((2, 5), 0) == "error"
        assert plan.decide((5, 2), 0) == "error"
        assert plan.decide((2, 2), 0) is None

    def test_precedence_crash_over_error(self):
        plan = WorkerFaultPlan(crash_pairs=[(1, 1)], error_pairs=[(1, 1)])
        assert plan.decide((1, 1), 0) == "crash"

    def test_max_attempt_bounds_faults(self):
        plan = WorkerFaultPlan(error_pairs=[(1, 1)], max_attempt=1)
        assert plan.decide((1, 1), 0) == "error"
        assert plan.decide((1, 1), 1) == "error"
        assert plan.decide((1, 1), 2) is None
        permanent = WorkerFaultPlan(error_pairs=[(1, 1)], max_attempt=None)
        assert permanent.decide((1, 1), 99) == "error"

    def test_rate_decisions_deterministic(self):
        plan = WorkerFaultPlan(seed=5, error_rate=0.3)
        again = WorkerFaultPlan(seed=5, error_rate=0.3)
        keys = [(a, a) for a in range(40)]
        decisions = [plan.decide(k, 0) for k in keys]
        assert decisions == [again.decide(k, 0) for k in keys]
        assert "error" in decisions and None in decisions

    def test_rate_validation(self):
        with pytest.raises(ValueError, match="rate"):
            WorkerFaultPlan(crash_rate=1.5)
        with pytest.raises(ValueError, match="stall_seconds"):
            WorkerFaultPlan(stall_seconds=0.0)

    def test_any_faults(self):
        assert not WorkerFaultPlan().any_faults
        assert WorkerFaultPlan(crash_pairs=[(0, 0)]).any_faults
        assert WorkerFaultPlan(error_rate=0.1).any_faults


class TestPolicyAndStats:
    def test_policy_validation(self):
        with pytest.raises(ValueError, match="task_timeout"):
            SupervisorPolicy(task_timeout=0.0)
        with pytest.raises(ValueError, match="max_task_retries"):
            SupervisorPolicy(max_task_retries=-1)
        with pytest.raises(ValueError, match="backoff"):
            SupervisorPolicy(backoff_factor=0.5)

    def test_backoff_is_deterministic_and_grows(self):
        policy = SupervisorPolicy()
        key = (3, 7)
        assert backoff_for(policy, key, 1) == backoff_for(policy, key, 1)
        # The exponential base dominates the bounded jitter: attempt k+2
        # always exceeds attempt k (factor 4 vs jitter range [0.5, 1.5)).
        assert backoff_for(policy, key, 3) > backoff_for(policy, key, 1)

    def test_replay_stats_reconstructs_counters(self):
        policy = SupervisorPolicy()
        events = [("error", 1, 1, 1), ("crash", 2, 2, 1),
                  ("pool_recycle", 2, 2, 1), ("timeout", 3, 3, 1),
                  ("corrupt", 4, 4, 1), ("quarantine", 1, 1, 3),
                  ("degrade", 2, 2, 1), ("inline", 5, 5, 0)]
        stats = replay_stats(events, policy)
        assert stats.retries == 4
        assert stats.task_errors == 1
        assert stats.crashes_detected == 1
        assert stats.timeouts == 1
        assert stats.corrupt_results == 1
        assert stats.pool_recycles == 1
        assert stats.quarantined == 1
        assert stats.inline_tasks == 1
        assert stats.degraded
        assert stats.backoff_simulated_s > 0.0

    def test_unknown_event_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown supervisor event"):
            SupervisorStats().apply_event("nope", (0, 0), 1,
                                          SupervisorPolicy())


class TestFaultRecovery:
    """Every injected fault kind must be absorbed without changing the
    result — the pair set always equals the fault-free serial run's."""

    @pytest.mark.parametrize("plan_kwargs", [
        {"error_pairs": [(2, 2)]},
        {"corrupt_pairs": [(4, 4)]},
        {"crash_pairs": [(6, 6)]},
        {"error_rate": 0.2},
    ], ids=["error", "corrupt", "crash", "error-rate"])
    def test_single_kind_recovered(self, dataset, baseline, plan_kwargs):
        plan = WorkerFaultPlan(seed=3, **plan_kwargs)
        report = run_join(dataset, workers=2, worker_fault_plan=plan,
                          supervisor_policy=SupervisorPolicy(**FAST))
        assert report.result.canonical_pair_set() == baseline["pairs"]
        assert report.supervisor.retries > 0
        assert not report.supervisor.degraded
        assert report.worker_faults.total > 0

    def test_stalled_worker_detected_by_deadline(self, dataset, baseline):
        plan = WorkerFaultPlan(seed=3, stall_pairs=[(1, 1)],
                               stall_seconds=8.0)
        report = run_join(dataset, workers=2, worker_fault_plan=plan,
                          supervisor_policy=SupervisorPolicy(**FAST))
        assert report.result.canonical_pair_set() == baseline["pairs"]
        assert report.supervisor.timeouts == 1
        assert report.supervisor.pool_recycles >= 1
        assert report.worker_faults.stalls == 1

    def test_all_kinds_mixed(self, dataset, baseline):
        plan = WorkerFaultPlan(seed=3, error_pairs=[(2, 2)],
                               corrupt_pairs=[(4, 4)],
                               crash_pairs=[(6, 6)],
                               stall_pairs=[(1, 1)], stall_seconds=8.0)
        report = run_join(dataset, workers=3, worker_fault_plan=plan,
                          supervisor_policy=SupervisorPolicy(**FAST))
        assert report.result.canonical_pair_set() == baseline["pairs"]
        sup = report.supervisor
        assert (sup.task_errors, sup.corrupt_results, sup.crashes_detected,
                sup.timeouts) == (1, 1, 1, 1)
        assert sup.backoff_simulated_s > 0.0

    def test_fault_accounting_is_deterministic(self, dataset):
        plan_kwargs = dict(seed=3, error_rate=0.15, corrupt_pairs=[(4, 4)])
        runs = [run_join(dataset, workers=2,
                         worker_fault_plan=WorkerFaultPlan(**plan_kwargs),
                         supervisor_policy=SupervisorPolicy(**FAST))
                for _ in range(2)]
        assert runs[0].supervisor == runs[1].supervisor

    def test_quarantined_task_recovered_inline(self, dataset, baseline):
        # The fault keeps firing through every pool retry but not in the
        # parent: an environment fault the quarantine must clear.
        plan = WorkerFaultPlan(seed=3, crash_pairs=[(2, 2)],
                               max_attempt=2)
        report = run_join(dataset, workers=2, worker_fault_plan=plan,
                          supervisor_policy=SupervisorPolicy(**FAST))
        assert report.result.canonical_pair_set() == baseline["pairs"]
        assert report.supervisor.quarantined == 1
        assert not report.supervisor.degraded

    def test_poisoned_task_aborts_the_run(self, dataset):
        # A permanent error reproduces in the inline quarantine retry:
        # that is a task bug, not an environment fault, and must abort.
        plan = WorkerFaultPlan(seed=3, error_pairs=[(2, 2)],
                               max_attempt=None)
        with pytest.raises(TaskPoisonedError, match=r"\(2, 2\)"):
            run_join(dataset, workers=2, worker_fault_plan=plan,
                     supervisor_policy=SupervisorPolicy(**FAST))


class TestDegradation:
    def test_repeated_pool_failure_degrades_to_serial(self, dataset,
                                                      baseline):
        plan = WorkerFaultPlan(seed=5, max_attempt=None,
                               crash_pairs=[(1, 1), (3, 3), (5, 5),
                                            (7, 7)])
        policy = SupervisorPolicy(max_task_retries=3, max_pool_recycles=2,
                                  degrade=True, real_sleep=False)
        report = run_join(dataset, workers=2, worker_fault_plan=plan,
                          supervisor_policy=policy)
        assert report.result.canonical_pair_set() == baseline["pairs"]
        assert report.supervisor.degraded
        assert report.supervisor.inline_tasks > 0

    def test_degradation_disabled_raises(self, dataset):
        plan = WorkerFaultPlan(seed=5, crash_pairs=[(1, 1)],
                               max_attempt=None)
        policy = SupervisorPolicy(max_task_retries=10, max_pool_recycles=1,
                                  degrade=False, real_sleep=False)
        with pytest.raises(PoolFailureError, match="degradation"):
            run_join(dataset, workers=2, worker_fault_plan=plan,
                     supervisor_policy=policy)


class TestCrashResumeUnderWorkerFaults:
    """The ISSUE's headline scenario: a seeded plan that kills one
    worker and stalls another, plus a mid-run crash — the resumed run
    must reproduce the fault-free bytes and the uninterrupted run's
    supervisor decisions."""

    PLAN_KWARGS = dict(seed=5, crash_pairs=[(8, 8)],
                       stall_pairs=[(3, 3)], stall_seconds=8.0,
                       error_pairs=[(2, 2)], corrupt_pairs=[(5, 5)])

    def faulted(self, dataset, ck, **kwargs):
        return run_join(dataset, checkpoint_dir=ck, workers=3,
                        worker_fault_plan=WorkerFaultPlan(
                            **self.PLAN_KWARGS),
                        supervisor_policy=SupervisorPolicy(**FAST),
                        **kwargs)

    def test_resume_reproduces_bytes_and_decisions(self, dataset,
                                                   baseline, tmp_path):
        uninterrupted = self.faulted(dataset, str(tmp_path / "full"))
        assert uninterrupted.supervisor.crashes_detected >= 1
        assert uninterrupted.supervisor.timeouts >= 1

        ck = str(tmp_path / "ck")
        crash = FaultPlan(seed=1, crash_ops=[60])
        with pytest.raises(SimulatedCrash):
            self.faulted(dataset, ck, fault_plan=crash)
        resumed = self.faulted(dataset, ck,
                               fault_plan=crash.without_crashes(),
                               resume=True)
        assert resumed.resumed
        with open(os.path.join(ck, "result.prs"), "rb") as fh:
            assert fh.read() == baseline["bytes"]
        # Identical cumulative supervisor decisions: the journal replay
        # plus the re-fired faults equal the uninterrupted run exactly.
        assert resumed.supervisor == uninterrupted.supervisor
        with open(os.path.join(ck, "journal.json")) as fh:
            got_events = json.load(fh).get("supervisor_events", [])
        full = str(tmp_path / "full")
        with open(os.path.join(full, "journal.json")) as fh:
            full_events = json.load(fh).get("supervisor_events", [])
        assert sorted(map(tuple, got_events)) \
            == sorted(map(tuple, full_events))

    def test_resume_of_completed_run_reports_ledger(self, dataset,
                                                    tmp_path):
        ck = str(tmp_path / "ck")
        first = self.faulted(dataset, ck)
        again = self.faulted(dataset, ck, resume=True)
        assert again.resumed
        assert again.total_pairs == first.total_pairs
        assert again.supervisor == first.supervisor


class TestJournalSupervisorEvents:
    def test_record_and_replay_roundtrip(self, tmp_path):
        path = str(tmp_path / "journal.json")
        journal = Journal(path)
        journal.record_supervisor_event("error", 2, 2, 1)
        journal.record_unit_pair(2, 2, 10)
        journal.record_supervisor_event("crash", 8, 8, 1)  # pair undone
        reloaded = Journal(path)
        kept = reloaded.replay_supervisor_events()
        assert kept == [("error", 2, 2, 1)]
        # The orphaned event was pruned durably.
        assert Journal(path).supervisor_events() == [("error", 2, 2, 1)]


class TestObservability:
    def run_with_metrics(self, dataset, **kwargs):
        registry = MetricsRegistry()
        run_join(dataset, metrics=registry, **kwargs)
        return registry.to_prometheus_text()

    def test_no_supervisor_metrics_without_faults(self, dataset):
        serial = self.run_with_metrics(dataset)
        supervised = self.run_with_metrics(
            dataset, workers=2,
            supervisor_policy=SupervisorPolicy(**FAST))
        assert "supervisor" not in supervised
        assert serial == supervised  # byte-identical dumps

    def test_supervisor_metrics_present_under_faults(self, dataset):
        dump = self.run_with_metrics(
            dataset, workers=2,
            worker_fault_plan=WorkerFaultPlan(seed=3,
                                              error_pairs=[(2, 2)]),
            supervisor_policy=SupervisorPolicy(**FAST))
        assert 'ego_supervisor_events_total{event="error"} 1' in dump
        assert "ego_supervisor_backoff_simulated_seconds" in dump
        # Policy gate: deterministic metrics only, no wall-clock.
        assert "wall" not in dump

    def test_faulted_metrics_dump_is_deterministic(self, dataset):
        dumps = [self.run_with_metrics(
            dataset, workers=2,
            worker_fault_plan=WorkerFaultPlan(seed=3, error_rate=0.15),
            supervisor_policy=SupervisorPolicy(**FAST))
            for _ in range(2)]
        assert dumps[0] == dumps[1]


class TestJoinerLifecycle:
    def test_joiners_are_context_managers(self, dataset):
        from repro.core.parallel import (ParallelUnitJoiner,
                                         SerialUnitJoiner)
        from repro.core.result import JoinResult
        from repro.core.sequence_join import JoinContext
        from repro.core.supervisor import SupervisedUnitJoiner
        ctx = JoinContext(epsilon=EPSILON, result=JoinResult())
        with SerialUnitJoiner(ctx) as joiner:
            joiner.drain()
        with ParallelUnitJoiner(ctx, workers=2) as joiner:
            joiner.drain()
        with SupervisedUnitJoiner(ctx, workers=2) as joiner:
            joiner.drain()

    def test_pool_released_when_schedule_crashes(self, dataset, tmp_path):
        # A storage crash mid-schedule must tear the pool down (the
        # with-block in ego_self_join_file) and still propagate.
        with pytest.raises(SimulatedCrash):
            run_join(dataset, checkpoint_dir=str(tmp_path / "ck"),
                     workers=2, fault_plan=FaultPlan(seed=1,
                                                     crash_ops=[60]),
                     supervisor_policy=SupervisorPolicy(**FAST))
