"""Tests for MBR geometry."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.index.mbr import (MBR, mindist_sq_batch, mindist_sq_point_batch,
                             union_all)

coords = st.floats(min_value=-50, max_value=50, allow_nan=False)


def mbr_strategy(d=2):
    def build(vals):
        lows = np.minimum(vals[0], vals[1])
        highs = np.maximum(vals[0], vals[1])
        return MBR(lows, highs)
    pts = st.tuples(
        st.lists(coords, min_size=d, max_size=d).map(np.array),
        st.lists(coords, min_size=d, max_size=d).map(np.array))
    return pts.map(build)


class TestConstruction:
    def test_of_points(self, rng):
        pts = rng.random((10, 3))
        m = MBR.of_points(pts)
        assert (m.low <= pts).all() and (pts <= m.high).all()
        np.testing.assert_allclose(m.low, pts.min(axis=0))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MBR.of_points(np.empty((0, 2)))

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            MBR(np.array([1.0]), np.array([0.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            MBR(np.zeros(2), np.ones(3))

    def test_degenerate_point_box(self):
        m = MBR(np.array([1.0, 2.0]), np.array([1.0, 2.0]))
        assert m.volume() == 0.0
        assert m.contains_point(np.array([1.0, 2.0]))


class TestMeasures:
    def test_volume_and_margin(self):
        m = MBR(np.array([0.0, 0.0]), np.array([2.0, 3.0]))
        assert m.volume() == pytest.approx(6.0)
        assert m.margin() == pytest.approx(5.0)

    def test_center(self):
        m = MBR(np.array([0.0, 0.0]), np.array([2.0, 4.0]))
        np.testing.assert_allclose(m.center, [1.0, 2.0])

    def test_union(self):
        a = MBR(np.array([0.0]), np.array([1.0]))
        b = MBR(np.array([2.0]), np.array([3.0]))
        u = a.union(b)
        assert u.low[0] == 0.0 and u.high[0] == 3.0

    def test_union_all(self):
        ms = [MBR(np.array([float(i)]), np.array([float(i + 1)]))
              for i in range(5)]
        u = union_all(ms)
        assert u.low[0] == 0.0 and u.high[0] == 5.0

    def test_union_all_empty_rejected(self):
        with pytest.raises(ValueError):
            union_all([])

    def test_enlarged(self):
        m = MBR(np.array([1.0, 1.0]), np.array([2.0, 2.0])).enlarged(0.5)
        np.testing.assert_allclose(m.low, [0.5, 0.5])
        np.testing.assert_allclose(m.high, [2.5, 2.5])

    def test_enlarged_rejects_negative(self):
        m = MBR(np.zeros(2), np.ones(2))
        with pytest.raises(ValueError):
            m.enlarged(-0.1)


class TestDistances:
    def test_overlapping_mindist_zero(self):
        a = MBR(np.array([0.0, 0.0]), np.array([2.0, 2.0]))
        b = MBR(np.array([1.0, 1.0]), np.array([3.0, 3.0]))
        assert a.mindist_sq(b) == 0.0
        assert a.intersects(b)

    def test_axis_gap(self):
        a = MBR(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        b = MBR(np.array([3.0, 0.0]), np.array([4.0, 1.0]))
        assert a.mindist_sq(b) == pytest.approx(4.0)
        assert not a.intersects(b)

    def test_diagonal_gap(self):
        a = MBR(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        b = MBR(np.array([2.0, 2.0]), np.array([3.0, 3.0]))
        assert a.mindist_sq(b) == pytest.approx(2.0)

    def test_point_distances(self):
        m = MBR(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        assert m.mindist_sq_point(np.array([0.5, 0.5])) == 0.0
        assert m.mindist_sq_point(np.array([2.0, 0.5])) == pytest.approx(1.0)
        assert m.maxdist_sq_point(np.array([0.0, 0.0])) == pytest.approx(2.0)

    @given(mbr_strategy(), mbr_strategy())
    def test_mindist_symmetric(self, a, b):
        assert a.mindist_sq(b) == pytest.approx(b.mindist_sq(a))

    @given(mbr_strategy(), st.lists(coords, min_size=2, max_size=2))
    @settings(max_examples=100)
    def test_lower_bounding_property(self, m, p):
        """mindist never exceeds the distance to any contained point."""
        p = np.array(p)
        inside = m.low + (m.high - m.low) * 0.5
        d = float(np.sum((inside - p) ** 2))
        assert m.mindist_sq_point(p) <= d + 1e-9


class TestBatchOperations:
    def test_batch_matches_scalar(self, rng):
        boxes_a = [MBR.of_points(rng.random((3, 2)) + i)
                   for i in range(4)]
        boxes_b = [MBR.of_points(rng.random((3, 2)) + 2 * i)
                   for i in range(5)]
        lows_a = np.array([m.low for m in boxes_a])
        highs_a = np.array([m.high for m in boxes_a])
        lows_b = np.array([m.low for m in boxes_b])
        highs_b = np.array([m.high for m in boxes_b])
        batch = mindist_sq_batch(lows_a, highs_a, lows_b, highs_b)
        for i in range(4):
            for j in range(5):
                assert batch[i, j] == pytest.approx(
                    boxes_a[i].mindist_sq(boxes_b[j]))

    def test_point_batch_matches_scalar(self, rng):
        m = MBR.of_points(rng.random((5, 3)))
        pts = rng.random((10, 3)) * 2
        batch = mindist_sq_point_batch(m.low, m.high, pts)
        for j in range(10):
            assert batch[j] == pytest.approx(m.mindist_sq_point(pts[j]))
