"""Adversarial and degenerate inputs across the whole pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ego_join import ego_join_files, ego_self_join, \
    ego_self_join_file
from repro.joins.epskdb_join import epskdb_self_join
from repro.joins.grid_hash import grid_hash_self_join
from repro.joins.msj_join import msj_self_join
from repro.storage.disk import SimulatedDisk

from conftest import brute_truth, make_file


def external(points, epsilon, unit_bytes=300, buffer_units=3, **kw):
    with SimulatedDisk() as disk:
        pf = make_file(disk, np.asarray(points, dtype=float))
        report = ego_self_join_file(pf, epsilon, unit_bytes=unit_bytes,
                                    buffer_units=buffer_units, **kw)
        return report.result.canonical_pair_set()


class TestDegenerateGeometry:
    def test_all_points_identical(self):
        pts = np.tile([[0.37, 0.91]], (40, 1))
        assert len(external(pts, 0.1)) == 40 * 39 // 2

    def test_points_on_cell_boundaries(self):
        """Coordinates exactly at multiples of eps (floor boundaries)."""
        eps = 0.25
        grid = np.array([[i * eps, j * eps]
                         for i in range(5) for j in range(5)])
        assert external(grid, eps) == brute_truth(grid, eps)

    def test_collinear_points(self):
        pts = np.column_stack([np.linspace(0, 1, 60), np.zeros(60)])
        eps = 0.04
        assert external(pts, eps) == brute_truth(pts, eps)

    def test_single_dimension(self, rng):
        pts = rng.random((80, 1))
        assert external(pts, 0.05) == brute_truth(pts, 0.05)

    def test_high_dimension_small_n(self, rng):
        pts = rng.random((30, 32))
        eps = 1.2
        assert external(pts, eps) == brute_truth(pts, eps)

    def test_two_points(self):
        pts = np.array([[0.0, 0.0], [0.05, 0.0]])
        assert external(pts, 0.1) == {(0, 1)}
        assert external(pts, 0.01) == set()

    def test_boundary_distance_inclusive(self):
        """Pairs at distance exactly eps belong to the result."""
        pts = np.array([[0.0, 0.0], [0.3, 0.4]])  # distance 0.5 exactly
        assert external(pts, 0.5) == {(0, 1)}


class TestCoordinateRanges:
    def test_negative_coordinates(self, rng):
        pts = rng.random((100, 3)) * 4 - 2
        eps = 0.4
        assert external(pts, eps) == brute_truth(pts, eps)

    def test_large_offset_coordinates(self, rng):
        pts = rng.random((80, 2)) + 1e6
        eps = 0.1
        assert external(pts, eps) == brute_truth(pts, eps)

    def test_mixed_scale_dimensions(self, rng):
        pts = rng.random((100, 3)) * np.array([1000.0, 1.0, 0.001])
        eps = 0.5
        assert external(pts, eps) == brute_truth(pts, eps)

    def test_tiny_epsilon(self, rng):
        pts = rng.random((60, 2))
        eps = 1e-9
        assert external(pts, eps) == brute_truth(pts, eps)

    def test_huge_epsilon_all_pairs(self, rng):
        pts = rng.random((40, 3))
        assert len(external(pts, 100.0)) == 40 * 39 // 2

    @given(st.floats(min_value=-1e3, max_value=1e3),
           st.floats(min_value=0.01, max_value=5.0),
           st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_translation_invariance(self, offset, eps, seed):
        """Shifting every point moves the grid anchor but not the result."""
        rng = np.random.default_rng(seed)
        pts = rng.random((40, 2))
        base = ego_self_join(pts, eps).canonical_pair_set()
        shifted = ego_self_join(pts + offset, eps).canonical_pair_set()
        assert base == shifted


class TestFragmentStress:
    @pytest.mark.parametrize("unit_bytes", [17, 33, 100, 301, 999])
    def test_pathological_unit_sizes(self, rng, unit_bytes):
        """Unit sizes co-prime with the record size exercise fragments."""
        pts = rng.random((60, 2))   # 24-byte records
        eps = 0.3
        assert external(pts, eps, unit_bytes=unit_bytes,
                        buffer_units=3) == brute_truth(pts, eps)

    def test_unit_smaller_than_record(self, rng):
        """Units shorter than one record still partition correctly."""
        pts = rng.random((30, 4))   # 40-byte records
        assert external(pts, 0.4, unit_bytes=24,
                        buffer_units=4) == brute_truth(pts, 0.4)

    def test_one_record_per_unit(self, rng):
        pts = rng.random((25, 2))
        assert external(pts, 0.35, unit_bytes=24,
                        buffer_units=2) == brute_truth(pts, 0.35)


class TestSkewedDistributions:
    def test_heavily_clustered(self, rng):
        """90% of the mass in one tiny cluster."""
        dense = rng.normal(0.5, 0.002, (180, 2))
        sparse = rng.random((20, 2))
        pts = np.vstack([dense, sparse])
        eps = 0.01
        assert external(pts, eps) == brute_truth(pts, eps)

    def test_exponential_spacing(self, rng):
        pts = np.column_stack([2.0 ** -np.arange(40, dtype=float),
                               np.zeros(40)])
        eps = 0.01
        assert external(pts, eps) == brute_truth(pts, eps)

    def test_other_joins_on_skewed_data(self, rng):
        dense = rng.normal(0.5, 0.002, (90, 2))
        sparse = rng.random((10, 2))
        pts = np.clip(np.vstack([dense, sparse]), 0, 1)
        eps = 0.02
        truth = brute_truth(pts, eps)
        assert grid_hash_self_join(pts, eps).canonical_pair_set() == truth
        assert msj_self_join(pts, eps).result.canonical_pair_set() == truth
        assert epskdb_self_join(
            np.arange(100), pts, eps).result.canonical_pair_set() == truth


class TestTwoFileEdges:
    def test_interleaved_sets(self, rng):
        r = rng.random((50, 2))
        s = rng.random((50, 2))
        with SimulatedDisk() as dr, SimulatedDisk() as ds:
            fr = make_file(dr, r)
            fs = make_file(ds, s)
            report = ego_join_files(fr, fs, 0.2, unit_bytes=120,
                                    buffer_units=2)
        expected = {(i, j) for i in range(50) for j in range(50)
                    if np.linalg.norm(r[i] - s[j]) <= 0.2}
        assert report.result.pair_set() == expected

    def test_singleton_files(self):
        r = np.array([[0.5, 0.5]])
        s = np.array([[0.52, 0.5]])
        with SimulatedDisk() as dr, SimulatedDisk() as ds:
            fr = make_file(dr, r)
            fs = make_file(ds, s)
            report = ego_join_files(fr, fs, 0.1, unit_bytes=64,
                                    buffer_units=2)
        assert report.result.pair_set() == {(0, 0)}


class TestNonFiniteInputs:
    def test_self_join_rejects_nan(self):
        pts = np.array([[0.1, np.nan], [0.2, 0.3]])
        with pytest.raises(ValueError, match="non-finite"):
            ego_self_join(pts, 0.5)

    def test_self_join_rejects_inf(self):
        pts = np.array([[0.1, np.inf], [0.2, 0.3]])
        with pytest.raises(ValueError, match="non-finite"):
            ego_self_join(pts, 0.5)

    def test_two_set_join_rejects_nan_in_either_side(self):
        from repro.core.ego_join import ego_join
        good = np.array([[0.1, 0.2]])
        bad = np.array([[np.nan, 0.2]])
        with pytest.raises(ValueError):
            ego_join(bad, good, 0.5)
        with pytest.raises(ValueError):
            ego_join(good, bad, 0.5)

    def test_parallel_join_rejects_nan(self):
        from repro.core.parallel import ego_self_join_parallel
        pts = np.array([[np.nan, 0.0]])
        with pytest.raises(ValueError):
            ego_self_join_parallel(pts, 0.5, workers=1)

    def test_finite_inputs_unaffected(self, rng):
        pts = rng.random((50, 2))
        result = ego_self_join(pts, 0.3)
        assert result.canonical_pair_set() == brute_truth(pts, 0.3)
