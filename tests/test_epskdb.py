"""Tests for the ε-kdB-tree and its striped dataset."""

import numpy as np
import pytest

from repro.index.epskdb import (EpsKdbCacheError, StripedDataset,
                                build_tree)


class TestStripedDataset:
    def test_stripes_partition_by_dim0(self, rng):
        pts = rng.random((100, 3)) * 3
        striped = StripedDataset(np.arange(100), pts, 1.0)
        total = 0
        for i in range(striped.num_stripes):
            ids, spts = striped.stripe_slice(i)
            cells = np.floor(spts[:, 0] / 1.0).astype(int)
            assert (cells == striped.stripe_keys[i]).all()
            total += len(ids)
        assert total == 100

    def test_stripe_keys_sorted(self, rng):
        pts = rng.random((60, 2)) * 5
        striped = StripedDataset(np.arange(60), pts, 0.7)
        keys = striped.stripe_keys
        assert (np.diff(keys) > 0).all()

    def test_adjacency(self):
        pts = np.array([[0.5, 0], [1.5, 0], [3.5, 0]])
        striped = StripedDataset(np.arange(3), pts, 1.0)
        assert striped.adjacent(0, 1)
        assert not striped.adjacent(1, 2)  # stripes 1 and 3

    def test_max_pair_fraction_uniform(self, rng):
        """Uniform data over k stripes → pair fraction ≈ 2/k."""
        pts = rng.random((1000, 2))
        striped = StripedDataset(np.arange(1000), pts, 0.1)
        frac = striped.max_pair_fraction()
        assert 0.15 < frac < 0.3

    def test_max_pair_fraction_skewed(self, rng):
        """All data in one stripe → fraction 1 (the paper's failure mode)."""
        pts = rng.random((100, 2)) * 0.05
        striped = StripedDataset(np.arange(100), pts, 1.0)
        assert striped.max_pair_fraction() == 1.0

    def test_check_cache_raises(self, rng):
        pts = rng.random((100, 2)) * 0.05
        striped = StripedDataset(np.arange(100), pts, 1.0)
        with pytest.raises(EpsKdbCacheError):
            striped.check_cache(50)
        striped.check_cache(100)  # exactly enough

    def test_empty_dataset(self):
        striped = StripedDataset(np.empty(0, dtype=np.int64),
                                 np.empty((0, 2)), 1.0)
        assert striped.num_stripes == 0
        assert striped.max_pair_fraction() == 0.0

    def test_rejects_bad_epsilon(self, rng):
        with pytest.raises(ValueError):
            StripedDataset(np.arange(2), rng.random((2, 2)), 0.0)

    def test_negative_coordinates(self):
        pts = np.array([[-0.5, 0], [-1.5, 0], [0.5, 0]])
        striped = StripedDataset(np.arange(3), pts, 1.0)
        assert striped.stripe_keys.tolist() == [-2, -1, 0]


class TestBuildTree:
    def test_leaf_when_under_capacity(self, rng):
        pts = rng.random((10, 3))
        tree = build_tree(pts, np.arange(10), 0.5, capacity=16)
        assert tree.is_leaf
        assert tree.size() == 10

    def test_splits_when_over_capacity(self, rng):
        pts = rng.random((100, 3))
        tree = build_tree(pts, np.arange(100), 0.2, capacity=8)
        assert not tree.is_leaf
        assert tree.split_dim == 1
        assert tree.size() == 100

    def test_children_partition_by_cell(self, rng):
        pts = rng.random((80, 2))
        tree = build_tree(pts, np.arange(80), 0.25, capacity=4)
        if not tree.is_leaf:
            for cell, child in tree.children.items():
                idx = (child.indices if child.is_leaf
                       else np.concatenate([
                           g.indices for g in _leaves(child)]))
                cells = np.floor(pts[idx, 1] / 0.25).astype(int)
                assert (cells == cell).all()

    def test_depth_capped_at_dimensions(self, rng):
        """Each dimension partitions at most once ([SSA 97])."""
        pts = np.zeros((100, 2))  # all identical: cells can't split them
        tree = build_tree(pts, np.arange(100), 0.1, capacity=4)
        # dim 1 split puts all in one child, which must become a leaf at
        # depth 2 == d even though it exceeds the capacity.
        leaves = _leaves(tree)
        assert sum(len(leaf.indices) for leaf in leaves) == 100
        assert all(leaf.depth <= 2 for leaf in leaves)


def _leaves(node):
    if node.is_leaf:
        return [node]
    out = []
    for child in node.children.values():
        out.extend(_leaves(child))
    return out


class TestMultiscanExtension:
    def test_quad_fraction_below_pair_fraction(self, rng):
        """The [SSA 97] multi-scan extension reduces the cache need
        (the paper's 60% -> 36% observation), without fixing it."""
        pts = rng.random((2000, 8))
        striped = StripedDataset(np.arange(2000), pts, 0.25)
        assert striped.max_quad_fraction() < striped.max_pair_fraction()
        assert striped.max_quad_fraction() > 0.1

    def test_quad_fraction_one_dimensional_data(self, rng):
        """With a single dimension there is no dim-1 sub-partitioning:
        the quad degenerates to the stripe pair."""
        pts = rng.random((500, 1))
        striped = StripedDataset(np.arange(500), pts, 0.3)
        assert striped.max_quad_fraction() == pytest.approx(
            striped.max_pair_fraction())

    def test_quad_fraction_empty(self):
        striped = StripedDataset(np.empty(0, dtype=np.int64),
                                 np.empty((0, 2)), 1.0)
        assert striped.max_quad_fraction() == 0.0
