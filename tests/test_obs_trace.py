"""Schema validation of the observability exports.

Checks the Chrome ``trace_event`` JSON a traced pipeline run produces
(well-formed events, proper span nesting, stable pids/tids, no negative
durations) and parses the Prometheus text exposition line by line
against the format grammar (TYPE lines, label syntax, cumulative
histogram series).
"""

import json
import re

import numpy as np
import pytest

from conftest import make_file
from repro.core.ego_join import ego_self_join_file
from repro.obs import MetricsRegistry, PhaseProfiler, Tracer
from repro.storage.disk import SimulatedDisk
from repro.storage.pagefile import PointFile


@pytest.fixture(scope="module")
def traced_run():
    """One fully instrumented pipeline run shared by the schema tests."""
    rng = np.random.default_rng(7)
    pts = rng.uniform(size=(350, 4))
    tracer = Tracer()
    registry = MetricsRegistry()
    profiler = PhaseProfiler(capture_hotspot=True)
    with SimulatedDisk() as disk:
        make_file(disk, pts)
        pf = PointFile.open(disk)
        report = ego_self_join_file(pf, 0.12, unit_bytes=2048,
                                    buffer_units=4, trace=tracer,
                                    metrics=registry, profiler=profiler)
    return tracer, registry, profiler, report


class TestChromeTraceSchema:
    def test_top_level_object(self, traced_run, tmp_path):
        tracer = traced_run[0]
        path = tmp_path / "trace.json"
        tracer.dump(str(path))
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] in ("ms", "ns")
        assert doc["traceEvents"] == tracer.to_chrome()["traceEvents"]

    def test_every_event_is_well_formed(self, traced_run):
        tracer = traced_run[0]
        assert tracer.events, "a traced run must emit events"
        for e in tracer.events:
            assert e["ph"] in ("X", "i")
            assert isinstance(e["name"], str) and e["name"]
            assert isinstance(e["cat"], str) and e["cat"]
            assert e["pid"] == 1
            assert isinstance(e["tid"], int) and e["tid"] >= 1
            assert e["ts"] >= 0.0
            if e["ph"] == "X":
                assert e["dur"] >= 0.0
            if "args" in e:
                assert isinstance(e["args"], dict) and e["args"]
                json.dumps(e["args"])  # JSON-serialisable

    def test_tids_are_stable_small_integers(self, traced_run):
        tracer = traced_run[0]
        tids = sorted({e["tid"] for e in tracer.events})
        assert tids == list(range(1, len(tids) + 1))

    def test_spans_nest_properly(self, traced_run):
        """Per thread, complete spans form a proper hierarchy.

        Two spans on one thread either do not overlap in time or one
        contains the other — context-managed spans cannot partially
        overlap.
        """
        tracer = traced_run[0]
        by_tid = {}
        for e in tracer.spans():
            by_tid.setdefault(e["tid"], []).append(e)
        for events in by_tid.values():
            # Sort by start; ties broken longest-first (parent first).
            events.sort(key=lambda e: (e["ts"], -e["dur"]))
            stack = []
            for e in events:
                end = e["ts"] + e["dur"]
                while stack and e["ts"] >= stack[-1]:
                    stack.pop()
                if stack:
                    assert end <= stack[-1], \
                        f"span {e['name']} escapes its parent"
                stack.append(end)

    def test_expected_hierarchy_present(self, traced_run):
        tracer, _registry, _profiler, report = traced_run
        names = {e["name"] for e in tracer.spans()}
        assert {"external_self_join", "sort", "run_generation",
                "schedule", "load", "unit_pair", "sequence_join",
                "leaf"} <= names
        root = tracer.spans("external_self_join")
        assert len(root) == 1
        # The root span covers every other span on its thread.
        lo, hi = root[0]["ts"], root[0]["ts"] + root[0]["dur"]
        for e in tracer.spans():
            if e["tid"] == root[0]["tid"]:
                assert lo <= e["ts"] and e["ts"] + e["dur"] <= hi
        # One load span per physical unit read.
        assert len(tracer.spans("load")) \
            == report.schedule_stats.total_unit_loads

    def test_profiler_report_matches_phases(self, traced_run):
        profiler = traced_run[2]
        rows = {r["phase"]: r for r in profiler.report()}
        assert set(rows) == {"sort", "schedule"}
        for r in rows.values():
            assert r["calls"] == 1
            assert r["wall_s"] >= 0.0 and r["cpu_s"] >= 0.0
        assert profiler.hottest_phase() in rows
        hotspot = profiler.hotspot_stats()
        assert hotspot is not None and "hottest phase" in hotspot
        table = profiler.format_table()
        assert "sort" in table and "schedule" in table


#: Prometheus exposition grammar for the pieces this exporter emits.
_METRIC_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? "
    r"(?P<value>[^ ]+)$")
_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"$')


class TestPrometheusText:
    def test_parses_line_by_line(self, traced_run):
        registry = traced_run[1]
        text = registry.to_prometheus_text()
        assert text.endswith("\n")
        typed = {}
        current = None
        for line in text.splitlines():
            assert line == line.strip() and line
            if line.startswith("# HELP "):
                continue
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ", 3)
                assert kind in ("counter", "gauge", "histogram")
                assert name not in typed, "one TYPE line per family"
                typed[name] = kind
                current = name
                continue
            m = _METRIC_RE.match(line)
            assert m, f"unparseable sample line: {line!r}"
            base = m.group("name")
            for suffix in ("_bucket", "_sum", "_count"):
                if typed.get(current) == "histogram" \
                        and base == current + suffix:
                    base = current
            assert base == current, f"sample {base} outside its family"
            if m.group("labels"):
                for pair in m.group("labels").split(","):
                    assert _LABEL_RE.match(pair), pair
            float(m.group("value"))  # must parse as a number

    def test_histogram_series_are_cumulative(self, traced_run):
        registry = traced_run[1]
        text = registry.to_prometheus_text()
        buckets = {}
        for line in text.splitlines():
            m = re.match(r'^(\w+)_bucket\{le="([^"]+)"\} (\d+)$', line)
            if m:
                buckets.setdefault(m.group(1), []).append(
                    (m.group(2), int(m.group(3))))
        assert buckets, "expected at least one histogram"
        for name, series in buckets.items():
            counts = [c for _le, c in series]
            assert counts == sorted(counts), f"{name} not cumulative"
            assert series[-1][0] == "+Inf"
            total = int(re.search(rf"^{name}_count (\d+)$", text,
                                  re.M).group(1))
            assert series[-1][1] == total

    def test_dumps_are_reproducible(self, traced_run, tmp_path):
        registry = traced_run[1]
        a, b = tmp_path / "a.prom", tmp_path / "b.prom"
        registry.dump(str(a))
        registry.dump(str(b))
        assert a.read_bytes() == b.read_bytes()
        j = tmp_path / "m.json"
        registry.dump(str(j))
        assert json.loads(j.read_text()) == registry.to_json()

    def test_no_wall_clock_metrics(self, traced_run):
        """Policy gate: wall-time goes to the profiler, never to metrics.

        ``ego_simulated_io_seconds`` is allowed — the simulated clock is
        deterministic — but nothing derived from the host's real clock
        may enter the registry, or exports stop being reproducible.
        """
        registry = traced_run[1]
        for name in registry.names():
            assert "wall" not in name and "cpu_seconds" not in name
