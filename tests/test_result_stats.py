"""Tests for JoinResult collection and the operation counters."""

import numpy as np
import pytest

from conftest import make_file
from repro.core.ego_join import ego_self_join_file
from repro.core.result import JoinResult
from repro.storage.disk import SimulatedDisk
from repro.storage.stats import (CPUCounters, IOCounters, IOScope,
                                 OperationStats)


class TestJoinResult:
    def test_add_and_pairs(self):
        r = JoinResult()
        r.add_batch(np.array([1, 2]), np.array([3, 4]))
        r.add_pair(5, 6)
        a, b = r.pairs()
        assert a.tolist() == [1, 2, 5]
        assert b.tolist() == [3, 4, 6]
        assert len(r) == 3

    def test_empty_pairs(self):
        r = JoinResult()
        a, b = r.pairs()
        assert len(a) == 0 and len(b) == 0

    def test_mismatched_batch_rejected(self):
        r = JoinResult()
        with pytest.raises(ValueError):
            r.add_batch(np.array([1]), np.array([2, 3]))

    def test_zero_length_batch_ignored(self):
        r = JoinResult()
        r.add_batch(np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.int64))
        assert r.count == 0

    def test_count_only_mode(self):
        r = JoinResult(materialize=False)
        r.add_batch(np.array([1]), np.array([2]))
        assert r.count == 1
        with pytest.raises(RuntimeError):
            r.pairs()

    def test_callback_streams_batches(self):
        seen = []
        r = JoinResult(materialize=False,
                       callback=lambda a, b: seen.append((a.copy(),
                                                          b.copy())))
        r.add_batch(np.array([1, 2]), np.array([3, 4]))
        r.add_pair(9, 9)
        assert len(seen) == 2
        assert seen[0][0].tolist() == [1, 2]

    def test_pair_set_and_canonical(self):
        r = JoinResult()
        r.add_pair(5, 2)
        r.add_pair(2, 5)
        assert r.pair_set() == {(5, 2), (2, 5)}
        assert r.canonical_pair_set() == {(2, 5)}


class TestIOCounters:
    def test_arithmetic(self):
        a = IOCounters(random_reads=2, bytes_read=100)
        b = IOCounters(random_reads=1, sequential_writes=3)
        s = a + b
        assert s.random_reads == 3
        assert s.sequential_writes == 3
        assert s.bytes_read == 100
        d = s - b
        assert d.random_reads == 2
        assert d.sequential_writes == 0

    def test_snapshot_is_independent(self):
        a = IOCounters(random_reads=1)
        snap = a.snapshot()
        a.random_reads = 99
        assert snap.random_reads == 1

    def test_reset(self):
        a = IOCounters(random_reads=5, bytes_written=10)
        a.reset()
        assert a.total_accesses == 0

    def test_totals(self):
        a = IOCounters(random_reads=1, sequential_reads=2,
                       random_writes=3, sequential_writes=4)
        assert a.total_reads == 3
        assert a.total_writes == 7
        assert a.total_accesses == 10


class TestCPUCounters:
    def test_arithmetic_and_snapshot(self):
        a = CPUCounters(distance_calculations=10, mbr_tests=2)
        b = CPUCounters(distance_calculations=5)
        assert (a + b).distance_calculations == 15
        assert (a - b).distance_calculations == 5
        snap = a.snapshot()
        a.mbr_tests = 0
        assert snap.mbr_tests == 2

    def test_reset(self):
        a = CPUCounters(sequence_pairs=7)
        a.reset()
        assert a.sequence_pairs == 0


class TestOperationStats:
    def test_bundle_arithmetic(self):
        a = OperationStats()
        a.io.bytes_read = 10
        a.cpu.distance_calculations = 3
        b = a + a
        assert b.io.bytes_read == 20
        assert b.cpu.distance_calculations == 6
        a.reset()
        assert a.io.bytes_read == 0


class TestIOScope:
    def test_delta_accounting(self, temp_disk):
        temp_disk.write(0, b"x" * 64)
        scope = IOScope(temp_disk).begin()
        temp_disk.write(64, b"y" * 32)
        temp_disk.read(0, 16)
        delta = scope.io_delta()
        assert delta.bytes_written == 32
        assert delta.bytes_read == 16
        assert delta.total_accesses == 2
        assert scope.time_delta() > 0.0

    def test_resets_arm_position(self, temp_disk):
        # Leave the arm exactly at offset 64; without the reset the next
        # access at 64 would count as sequential.
        temp_disk.write(0, b"x" * 64)
        with IOScope(temp_disk) as scope:
            temp_disk.read(64, 16)
        assert scope.io_delta().random_reads == 1
        assert scope.io_delta().sequential_reads == 0

    def test_dedups_and_tolerates_none(self, temp_disk):
        scope = IOScope(temp_disk, temp_disk, None).begin()
        temp_disk.write(0, b"z" * 8)
        assert scope.io_delta().bytes_written == 8  # counted once

    def test_requires_begin(self, temp_disk):
        scope = IOScope(temp_disk)
        with pytest.raises(RuntimeError):
            scope.io_delta()
        with pytest.raises(RuntimeError):
            scope.time_delta()

    def test_duck_typed_disk_without_reset_position(self):
        class Duck:
            def __init__(self):
                self.counters = IOCounters()
                self.simulated_time_s = 0.0
        duck = Duck()
        scope = IOScope(duck).begin()
        duck.counters.random_reads += 1
        assert scope.io_delta().random_reads == 1


class TestBackToBackRuns:
    def test_repeated_external_joins_report_identical_io(self, rng):
        """Regression: the arm position must not leak between runs.

        Before run-scoped accounting, a second ``ego_self_join_file``
        on the same disk inherited the arm position where the first run
        parked it, so its first access could be classified sequential
        instead of random — different counters and simulated time for
        byte-identical work.
        """
        pts = rng.uniform(size=(250, 4))
        with SimulatedDisk() as disk:
            make_file(disk, pts)
            from repro.storage.pagefile import PointFile
            pf = PointFile.open(disk)

            def run():
                r = ego_self_join_file(pf, 0.1, unit_bytes=2048,
                                       buffer_units=4, materialize=False)
                return (r.result.count, r.io, r.simulated_io_time_s,
                        r.sort_io_time_s, r.join_io_time_s)

            first, second = run(), run()
        assert first[0] == second[0]
        assert first[1] == second[1]
        assert first[2:] == second[2:]
