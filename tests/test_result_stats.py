"""Tests for JoinResult collection and the operation counters."""

import numpy as np
import pytest

from repro.core.result import JoinResult
from repro.storage.stats import CPUCounters, IOCounters, OperationStats


class TestJoinResult:
    def test_add_and_pairs(self):
        r = JoinResult()
        r.add_batch(np.array([1, 2]), np.array([3, 4]))
        r.add_pair(5, 6)
        a, b = r.pairs()
        assert a.tolist() == [1, 2, 5]
        assert b.tolist() == [3, 4, 6]
        assert len(r) == 3

    def test_empty_pairs(self):
        r = JoinResult()
        a, b = r.pairs()
        assert len(a) == 0 and len(b) == 0

    def test_mismatched_batch_rejected(self):
        r = JoinResult()
        with pytest.raises(ValueError):
            r.add_batch(np.array([1]), np.array([2, 3]))

    def test_zero_length_batch_ignored(self):
        r = JoinResult()
        r.add_batch(np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.int64))
        assert r.count == 0

    def test_count_only_mode(self):
        r = JoinResult(materialize=False)
        r.add_batch(np.array([1]), np.array([2]))
        assert r.count == 1
        with pytest.raises(RuntimeError):
            r.pairs()

    def test_callback_streams_batches(self):
        seen = []
        r = JoinResult(materialize=False,
                       callback=lambda a, b: seen.append((a.copy(),
                                                          b.copy())))
        r.add_batch(np.array([1, 2]), np.array([3, 4]))
        r.add_pair(9, 9)
        assert len(seen) == 2
        assert seen[0][0].tolist() == [1, 2]

    def test_pair_set_and_canonical(self):
        r = JoinResult()
        r.add_pair(5, 2)
        r.add_pair(2, 5)
        assert r.pair_set() == {(5, 2), (2, 5)}
        assert r.canonical_pair_set() == {(2, 5)}


class TestIOCounters:
    def test_arithmetic(self):
        a = IOCounters(random_reads=2, bytes_read=100)
        b = IOCounters(random_reads=1, sequential_writes=3)
        s = a + b
        assert s.random_reads == 3
        assert s.sequential_writes == 3
        assert s.bytes_read == 100
        d = s - b
        assert d.random_reads == 2
        assert d.sequential_writes == 0

    def test_snapshot_is_independent(self):
        a = IOCounters(random_reads=1)
        snap = a.snapshot()
        a.random_reads = 99
        assert snap.random_reads == 1

    def test_reset(self):
        a = IOCounters(random_reads=5, bytes_written=10)
        a.reset()
        assert a.total_accesses == 0

    def test_totals(self):
        a = IOCounters(random_reads=1, sequential_reads=2,
                       random_writes=3, sequential_writes=4)
        assert a.total_reads == 3
        assert a.total_writes == 7
        assert a.total_accesses == 10


class TestCPUCounters:
    def test_arithmetic_and_snapshot(self):
        a = CPUCounters(distance_calculations=10, mbr_tests=2)
        b = CPUCounters(distance_calculations=5)
        assert (a + b).distance_calculations == 15
        assert (a - b).distance_calculations == 5
        snap = a.snapshot()
        a.mbr_tests = 0
        assert snap.mbr_tests == 2

    def test_reset(self):
        a = CPUCounters(sequence_pairs=7)
        a.reset()
        assert a.sequence_pairs == 0


class TestOperationStats:
    def test_bundle_arithmetic(self):
        a = OperationStats()
        a.io.bytes_read = 10
        a.cpu.distance_calculations = 3
        b = a + a
        assert b.io.bytes_read == 20
        assert b.cpu.distance_calculations == 6
        a.reset()
        assert a.io.bytes_read == 0
