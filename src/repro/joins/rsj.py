"""R-tree Spatial Join (RSJ) adapted to distance predicates [BKS 93].

The indexes of both inputs are traversed synchronously, depth first: a
pair of directory nodes is expanded only if the minimum distance between
their MBRs does not exceed ε (the lower bounding property).  At the leaf
level, pages are fetched through a shared LRU buffer and the points are
compared exhaustively.

Depth-first traversal gives RSJ its characteristically scattered leaf
access pattern; the Z-order optimisation of
:mod:`repro.joins.zorder_rsj` addresses exactly that.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.ego_order import validate_epsilon
from ..core.result import JoinResult
from ..index.rtree import RTree, RTreeNode
from .base import DiskTracker, JoinReport, compare_blocks, wall_clock


def _mindist_ok(a: RTreeNode, b: RTreeNode, eps_sq: float,
                report: JoinReport) -> bool:
    report.cpu.mbr_tests += 1
    return a.mbr.mindist_sq(b.mbr) <= eps_sq


def _expand_pair(a: RTreeNode, b: RTreeNode,
                 same: bool) -> List[Tuple[RTreeNode, RTreeNode, bool]]:
    """Child pairs of a qualifying node pair.

    ``same`` marks the pair of a node with itself in a self-join; child
    pairs are then generated without mirrored duplicates.
    """
    if same:
        kids = a.children
        out = []
        for i, ci in enumerate(kids):
            out.append((ci, ci, True))
            for cj in kids[i + 1:]:
                out.append((ci, cj, False))
        return out
    # Descend on the side with the higher level (or both when equal).
    if a.level == b.level:
        return [(ca, cb, False) for ca in a.children for cb in b.children]
    if a.level > b.level:
        return [(ca, b, False) for ca in a.children]
    return [(a, cb, False) for cb in b.children]


def rsj_self_join(tree: RTree, epsilon: float, pool_pages: int,
                  materialize: bool = True) -> JoinReport:
    """Depth-first RSJ similarity self-join over one R-tree."""
    eps = validate_epsilon(epsilon)
    eps_sq = eps * eps
    result = JoinResult(materialize=materialize)
    report = JoinReport(algorithm="rsj", result=result)
    pool = tree.make_leaf_pool(pool_pages)
    tracker = DiskTracker(tree.leaf_file.disk)

    with wall_clock(report):
        stack: List[Tuple[RTreeNode, RTreeNode, bool]] = [
            (tree.root, tree.root, True)]
        while stack:
            a, b, same = stack.pop()
            if not same and not _mindist_ok(a, b, eps_sq, report):
                continue
            if a.is_leaf and b.is_leaf:
                ids_a, pts_a = pool.get(a.leaf_page)
                if same:
                    compare_blocks(ids_a, pts_a, ids_a, pts_a, eps_sq,
                                   result, cpu=report.cpu,
                                   upper_triangle=True)
                else:
                    ids_b, pts_b = pool.get(b.leaf_page)
                    compare_blocks(ids_a, pts_a, ids_b, pts_b, eps_sq,
                                   result, cpu=report.cpu)
                continue
            if a.is_leaf or b.is_leaf:
                # Mixed pair: descend on the internal side.
                if a.is_leaf:
                    stack.extend((a, cb, False) for cb in b.children)
                else:
                    stack.extend((ca, b, False) for ca in a.children)
                continue
            stack.extend(_expand_pair(a, b, same))
    report.io = tracker.io_delta()
    report.simulated_io_time_s = tracker.time_delta()
    report.extra["buffer_hits"] = pool.stats.hits
    report.extra["buffer_misses"] = pool.stats.misses
    return report


def rsj_join(tree_r: RTree, tree_s: RTree, epsilon: float, pool_pages: int,
             materialize: bool = True) -> JoinReport:
    """Depth-first RSJ similarity join of two R-trees."""
    eps = validate_epsilon(epsilon)
    eps_sq = eps * eps
    result = JoinResult(materialize=materialize)
    report = JoinReport(algorithm="rsj", result=result)
    pool_r = tree_r.make_leaf_pool(max(1, pool_pages // 2))
    pool_s = tree_s.make_leaf_pool(max(1, pool_pages - pool_pages // 2))
    tracker = DiskTracker(tree_r.leaf_file.disk, tree_s.leaf_file.disk)

    with wall_clock(report):
        stack: List[Tuple[RTreeNode, RTreeNode]] = [(tree_r.root,
                                                     tree_s.root)]
        while stack:
            a, b = stack.pop()
            if not _mindist_ok(a, b, eps_sq, report):
                continue
            if a.is_leaf and b.is_leaf:
                ids_a, pts_a = pool_r.get(a.leaf_page)
                ids_b, pts_b = pool_s.get(b.leaf_page)
                compare_blocks(ids_a, pts_a, ids_b, pts_b, eps_sq, result,
                               cpu=report.cpu)
            elif b.is_leaf or (not a.is_leaf and a.level >= b.level):
                stack.extend((ca, b) for ca in a.children)
            else:
                stack.extend((a, cb) for cb in b.children)
    report.io = tracker.io_delta()
    report.simulated_io_time_s = tracker.time_delta()
    return report
