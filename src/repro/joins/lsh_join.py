"""I/O-efficient approximate ε-join via p-stable LSH bucket files.

The 13th join implementation — and the first *approximate* one.  In the
style of Pagh et al., *I/O-Efficient Similarity Join*, the join
materialises, for each of ``L`` hash tables, a **bucket file**: the
input points rewritten in bucket order through the ordinary
:mod:`repro.storage` page layer, so every byte moved is charged to the
same sequential/random accounting as the EGO pipeline (on a
:class:`~repro.storage.disk.SimulatedDisk` or any other
:class:`~repro.storage.backend.Backend`).  Each bucket is then scanned
once, sequentially, and its candidate pairs are **exactly re-verified**
through the :mod:`repro.core.kernels` distance engines.

The contract that makes the engine testable:

* **precision is always 1.0** — every reported pair passed an exact
  distance test, so the result is a *subset* of the exact join;
* **only recall is approximate** — a qualifying pair is missed iff no
  table put its two points in one bucket, which the p-stable collision
  model bounds: ``recall ≥ 1 − (1 − p1^k)^L`` at the worst-case
  distance ε (:mod:`repro.index.lsh`);
* **seeded and deterministic** — the result is a pure function of
  ``(points, ε, k, L, w_scale, seed)``; same-seed runs are
  bit-identical, and because table ``t`` depends only on ``(seed, t)``
  the reported pair set is monotone non-decreasing in ``L``.

``tables=None`` auto-sizes ``L`` from the collision-probability model
to meet ``recall_target`` — the recall-vs-cost knob named by the
roadmap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Set, Tuple

import numpy as np

from ..core.distance import (natural_ordering, pairs_within_scalar,
                             pairs_within_vector)
from ..core.kernels import ScratchBuffers, pairs_within_matmul, select_engine
from ..core.result import JoinResult
from ..index.lsh import (DEFAULT_K, DEFAULT_W_SCALE, PStableHashFamily,
                         sort_by_keys)
from ..obs import ensure_metrics, ensure_tracer
from ..storage.backend import Backend, get_backend
from ..storage.disk import SimulatedDisk
from ..storage.pagefile import PointFile, SequentialWriter
from ..storage.stats import CPUCounters, IOCounters
from .base import DiskTracker, JoinReport

#: Records per buffered write/read while streaming bucket files.
BUCKET_CHUNK_RECORDS = 4096

#: Engines the verification pass accepts (``batched`` needs the
#: leaf-batch accumulator of the EGO recursion and resolves to the
#: fused GEMM kernel here — same arithmetic, no batching seam).
LSH_ENGINES = ("scalar", "vector", "matmul", "batched", "auto")


@dataclass
class LSHStats:
    """Shape and work accounting of one LSH join run."""

    k: int
    tables: int
    w: float
    seed: int
    backend: str
    engine: str
    recall_target: Optional[float]
    #: Model recall at the worst-case distance ε: 1 − (1 − p1^k)^L.
    model_recall: float = 0.0
    #: Non-singleton buckets scanned, over all tables.
    buckets: int = 0
    #: Largest bucket encountered (records).
    max_bucket_records: int = 0
    #: Candidate pairs generated (bucket-local, before verification).
    candidates: int = 0
    #: Candidates that passed the exact distance test (incl. duplicates
    #: re-found by later tables).
    verified: int = 0
    #: Verified pairs already reported by an earlier table.
    duplicates: int = 0


@dataclass
class LSHJoinReport(JoinReport):
    """A :class:`~repro.joins.base.JoinReport` plus LSH accounting."""

    lsh: LSHStats = field(default=None)  # filled in by the join


def _verify_bucket(engine: str, pts: np.ndarray, eps_sq: float,
                   order: np.ndarray, cpu: CPUCounters,
                   scratch: ScratchBuffers
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Exact upper-triangle pairs of one bucket block."""
    resolved = select_engine(
        "matmul" if engine == "batched" else engine,
        len(pts), len(pts), pts.shape[1])
    if resolved == "scalar":
        return pairs_within_scalar(pts, pts, eps_sq, order, counters=cpu,
                                   upper_triangle=True)
    if resolved == "matmul" or resolved == "batched":
        return pairs_within_matmul(pts, pts, eps_sq, order, counters=cpu,
                                   upper_triangle=True, scratch=scratch)
    return pairs_within_vector(pts, pts, eps_sq, order, counters=cpu,
                               upper_triangle=True)


def write_bucket_file(disk, ids: np.ndarray, points: np.ndarray,
                      order: np.ndarray,
                      chunk_records: int = BUCKET_CHUNK_RECORDS
                      ) -> PointFile:
    """Write points in bucket ``order`` to a fresh point file on ``disk``.

    The write is buffered and sequential — the layout (and therefore the
    bytes on the device) depends only on ``(ids, points, order)``, so a
    bucket file round-trips identically through every
    :class:`~repro.storage.backend.Backend`.
    """
    bucket_file = PointFile.create(disk, points.shape[1])
    with SequentialWriter(bucket_file,
                          buffer_records=chunk_records) as writer:
        for start in range(0, len(order), chunk_records):
            rows = order[start:start + chunk_records]
            writer.write(ids[rows], points[rows])
    return bucket_file


def lsh_self_join_file(point_file: PointFile, epsilon: float, *,
                       k: int = DEFAULT_K,
                       tables: Optional[int] = None,
                       recall_target: float = 0.95,
                       w_scale: float = DEFAULT_W_SCALE,
                       seed: int = 0,
                       engine: str = "auto",
                       backend: str = "simulated",
                       materialize: bool = True,
                       chunk_records: int = BUCKET_CHUNK_RECORDS,
                       trace=None, metrics=None) -> LSHJoinReport:
    """Approximate ε self-join of a point file via LSH bucket files.

    Parameters
    ----------
    point_file:
        The input on its (simulated) disk; it is read once,
        sequentially, in chunks.
    epsilon:
        Join threshold; reported pairs are exactly within ε.
    k, tables, w_scale, seed:
        Hash-family knobs (see :class:`~repro.index.lsh.PStableHashFamily`).
        ``tables=None`` auto-sizes ``L`` for ``recall_target``.
    recall_target:
        Model recall to hit at the worst-case distance ε when ``tables``
        is not given.
    engine:
        Verification kernel (``scalar``/``vector``/``matmul``/``auto``;
        ``batched`` resolves to the fused GEMM kernel).
    backend:
        Storage backend name (or a :class:`Backend` instance) for the
        per-table bucket files.
    """
    if epsilon <= 0 or not np.isfinite(epsilon):
        raise ValueError(f"epsilon must be positive and finite, "
                         f"got {epsilon}")
    if engine not in LSH_ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; choose from {LSH_ENGINES}")
    backend_obj = backend if isinstance(backend, Backend) \
        else get_backend(backend)

    tracer = ensure_tracer(trace)
    registry = ensure_metrics(metrics)
    start_wall = time.perf_counter()
    tracker = DiskTracker(point_file.disk)
    cpu = CPUCounters()
    result = JoinResult(materialize=materialize)

    dimensions = point_file.dimensions
    family = PStableHashFamily(dimensions, epsilon, k=k, w_scale=w_scale,
                               seed=seed)
    if tables is None:
        tables = family.tables_for_recall(recall_target)
    elif tables < 1:
        raise ValueError(f"tables must be at least 1, got {tables}")
    stats = LSHStats(k=family.k, tables=int(tables), w=family.w,
                     seed=family.seed, backend=backend_obj.name,
                     engine=engine, recall_target=recall_target,
                     model_recall=family.recall_for_tables(tables))

    with tracer.span("lsh_self_join"):
        # One sequential pass over the input; the points stay resident
        # for hashing while all data *movement* below goes through the
        # bucket files.
        with tracer.span("lsh_read_input"):
            chunks = list(point_file.iter_chunks(chunk_records))
        if chunks:
            ids = np.concatenate([c[0] for c in chunks])
            pts = np.concatenate([c[1] for c in chunks])
        else:
            ids = np.empty(0, dtype=np.int64)
            pts = np.empty((0, dimensions), dtype=np.float64)

        eps_sq = float(epsilon) * float(epsilon)
        order_dims = natural_ordering(dimensions)
        scratch = ScratchBuffers()
        seen: Set[Tuple[int, int]] = set()
        bucket_io = IOCounters()
        bucket_time = 0.0

        for t in range(stats.tables):
            with tracer.span("lsh_table", args={"table": t}):
                keys = family.keys(pts, t)
                order, starts = sort_by_keys(keys)
                with backend_obj.create_disk() as disk:
                    with tracer.span("lsh_bucket_write"):
                        bucket_file = write_bucket_file(
                            disk, ids, pts, order,
                            chunk_records=chunk_records)
                    with tracer.span("lsh_bucket_join"):
                        _join_buckets(bucket_file, starts, eps_sq,
                                      engine, order_dims, cpu, scratch,
                                      seen, result, stats)
                    bucket_io = bucket_io + disk.counters
                    bucket_time += disk.simulated_time_s

    registry.counter("ego_lsh_tables_total",
                     "LSH hash tables probed").inc(stats.tables)
    registry.counter("ego_lsh_buckets_total",
                     "non-singleton LSH buckets scanned").inc(stats.buckets)
    registry.counter("ego_lsh_candidates_total",
                     "LSH candidate pairs generated").inc(stats.candidates)
    registry.counter("ego_lsh_reverified_total",
                     "LSH candidates exactly re-verified"
                     ).inc(stats.verified)
    registry.counter("ego_lsh_duplicate_pairs_total",
                     "verified pairs re-found by a later table"
                     ).inc(stats.duplicates)
    registry.gauge("ego_lsh_recall_estimate",
                   "model recall at the worst-case distance ε"
                   ).set(round(stats.model_recall, 6))

    return LSHJoinReport(
        algorithm="lsh", result=result,
        io=tracker.io_delta() + bucket_io, cpu=cpu,
        simulated_io_time_s=tracker.time_delta() + bucket_time,
        wall_time_s=time.perf_counter() - start_wall, lsh=stats)


def _join_buckets(bucket_file: PointFile, starts: np.ndarray,
                  eps_sq: float, engine: str, order_dims: np.ndarray,
                  cpu: CPUCounters, scratch: ScratchBuffers,
                  seen: Set[Tuple[int, int]], result: JoinResult,
                  stats: LSHStats) -> None:
    """Scan one table's bucket file and verify its candidates exactly.

    Buckets are consecutive record runs of the file, so the scan is one
    sequential sweep; singleton buckets contribute no candidates and are
    skipped without a read.
    """
    for i in range(len(starts) - 1):
        lo, hi = int(starts[i]), int(starts[i + 1])
        size = hi - lo
        if size < 2:
            continue
        stats.buckets += 1
        stats.max_bucket_records = max(stats.max_bucket_records, size)
        stats.candidates += size * (size - 1) // 2
        bucket_ids, bucket_pts = bucket_file.read_range(lo, size)
        ia, ib = _verify_bucket(engine, bucket_pts, eps_sq, order_dims,
                                cpu, scratch)
        if not len(ia):
            continue
        stats.verified += len(ia)
        out_a, out_b = [], []
        for a, b in zip(bucket_ids[ia], bucket_ids[ib]):
            key = (int(a), int(b)) if a <= b else (int(b), int(a))
            if key in seen:
                stats.duplicates += 1
                continue
            seen.add(key)
            out_a.append(key[0])
            out_b.append(key[1])
        if out_a:
            result.add_batch(np.asarray(out_a, dtype=np.int64),
                             np.asarray(out_b, dtype=np.int64))


def lsh_self_join(points: np.ndarray, epsilon: float,
                  ids: Optional[np.ndarray] = None,
                  **options) -> LSHJoinReport:
    """Array-input convenience wrapper around :func:`lsh_self_join_file`.

    The points are first written to a point file on a fresh simulated
    disk, so the input scan is charged exactly like the external EGO
    pipeline's and the reports stay comparable.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError(f"points must be 2-d, got shape {pts.shape}")
    if ids is None:
        ids = np.arange(len(pts), dtype=np.int64)
    else:
        ids = np.asarray(ids, dtype=np.int64)
    with SimulatedDisk() as disk:
        pf = PointFile.create(disk, pts.shape[1])
        pf.append(ids, pts)
        pf.close()
        disk.reset_accounting()
        return lsh_self_join_file(pf, epsilon, **options)
