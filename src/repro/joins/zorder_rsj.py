"""RSJ with Z-ordering optimisation (≈ BFRJ [HJR 97]).

The paper's strongest R-tree competitor: the indexes are traversed
breadth-first, producing an intermediate join index per level, and the
page accesses of the final level are globally re-ordered by the Z-order
of the page regions.  The reordering turns the scattered leaf accesses
of depth-first RSJ into a locality-friendly schedule, which the paper
credits with ~50 % speed-ups.

Implementation: the (in-memory) directories are swept level by level to
the qualifying leaf-page pair list; the pairs are then sorted by the
Morton code of the page centres and streamed through the LRU leaf
buffer.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core.ego_order import validate_epsilon
from ..core.result import JoinResult
from ..curves.zorder import morton_key_columns, normalize_cells, required_bits
from ..index.rtree import RTree, RTreeNode
from .base import DiskTracker, JoinReport, compare_blocks, wall_clock


def _leaf_pairs_breadth_first(root: RTreeNode, eps_sq: float,
                              report: JoinReport
                              ) -> List[Tuple[RTreeNode, RTreeNode, bool]]:
    """Qualifying leaf pairs via level-wise (BFRJ-style) expansion."""
    level: List[Tuple[RTreeNode, RTreeNode, bool]] = [(root, root, True)]
    leaf_pairs: List[Tuple[RTreeNode, RTreeNode, bool]] = []
    while level:
        next_level: List[Tuple[RTreeNode, RTreeNode, bool]] = []
        for a, b, same in level:
            if not same:
                report.cpu.mbr_tests += 1
                if a.mbr.mindist_sq(b.mbr) > eps_sq:
                    continue
            if a.is_leaf and b.is_leaf:
                leaf_pairs.append((a, b, same))
            elif a.is_leaf:
                next_level.extend((a, cb, False) for cb in b.children)
            elif b.is_leaf:
                next_level.extend((ca, b, False) for ca in a.children)
            elif same:
                kids = a.children
                for i, ci in enumerate(kids):
                    next_level.append((ci, ci, True))
                    next_level.extend((ci, cj, False)
                                      for cj in kids[i + 1:])
            elif a.level > b.level:
                next_level.extend((ca, b, False) for ca in a.children)
            elif b.level > a.level:
                next_level.extend((a, cb, False) for cb in b.children)
            else:
                next_level.extend((ca, cb, False)
                                  for ca in a.children for cb in b.children)
        level = next_level
    return leaf_pairs


def _zorder_of_pages(tree: RTree, resolution: int = 1024) -> np.ndarray:
    """Morton rank of every leaf page, computed from the page centres."""
    centers = np.array([node.mbr.center for node in tree.leaf_nodes])
    span = centers.max(axis=0) - centers.min(axis=0)
    span[span == 0] = 1.0
    scaled = (centers - centers.min(axis=0)) / span * (resolution - 1)
    cells = normalize_cells(scaled.astype(np.int64))
    bits = max(1, required_bits(cells))
    keys = morton_key_columns(cells, bits)
    columns = [keys[:, j] for j in range(keys.shape[1] - 1, -1, -1)]
    order = np.lexsort(columns)
    ranks = np.empty(len(order), dtype=np.int64)
    ranks[order] = np.arange(len(order))
    return ranks


def zorder_rsj_self_join(tree: RTree, epsilon: float, pool_pages: int,
                         materialize: bool = True) -> JoinReport:
    """Z-Order-RSJ similarity self-join over one R-tree."""
    eps = validate_epsilon(epsilon)
    eps_sq = eps * eps
    result = JoinResult(materialize=materialize)
    report = JoinReport(algorithm="zorder-rsj", result=result)
    pool = tree.make_leaf_pool(pool_pages)
    tracker = DiskTracker(tree.leaf_file.disk)

    with wall_clock(report):
        leaf_pairs = _leaf_pairs_breadth_first(tree.root, eps_sq, report)
        ranks = _zorder_of_pages(tree)

        def schedule_key(pair):
            a, b, _same = pair
            ra, rb = ranks[a.leaf_page], ranks[b.leaf_page]
            return (min(ra, rb), max(ra, rb))

        leaf_pairs.sort(key=schedule_key)
        report.extra["leaf_pairs"] = len(leaf_pairs)
        for a, b, same in leaf_pairs:
            ids_a, pts_a = pool.get(a.leaf_page)
            if same:
                compare_blocks(ids_a, pts_a, ids_a, pts_a, eps_sq, result,
                               cpu=report.cpu, upper_triangle=True)
            else:
                ids_b, pts_b = pool.get(b.leaf_page)
                compare_blocks(ids_a, pts_a, ids_b, pts_b, eps_sq, result,
                               cpu=report.cpu)
    report.io = tracker.io_delta()
    report.simulated_io_time_s = tracker.time_delta()
    report.extra["buffer_hits"] = pool.stats.hits
    report.extra["buffer_misses"] = pool.stats.misses
    return report
