"""Common infrastructure of the similarity-join implementations.

Every join produces a :class:`JoinReport` with the same accounting
(result pairs, I/O counters, CPU counters, simulated I/O time, wall
time), so the benchmark harness can compare algorithms uniformly, as the
paper's evaluation does.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..core.distance import natural_ordering, pairs_within_vector
from ..core.result import JoinResult
from ..storage.disk import SimulatedDisk
from ..storage.stats import CPUCounters, IOCounters


@dataclass
class JoinReport:
    """Uniform accounting of one similarity-join run."""

    algorithm: str
    result: JoinResult
    io: IOCounters = field(default_factory=IOCounters)
    cpu: CPUCounters = field(default_factory=CPUCounters)
    simulated_io_time_s: float = 0.0
    wall_time_s: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def pair_count(self) -> int:
        """Number of result pairs."""
        return self.result.count


class DiskTracker:
    """Captures the I/O a join performs on one or more simulated disks."""

    def __init__(self, *disks: SimulatedDisk) -> None:
        self.disks = disks
        self._io_before = [d.counters.snapshot() for d in disks]
        self._time_before = [d.simulated_time_s for d in disks]

    def io_delta(self) -> IOCounters:
        """I/O performed since construction, summed over the disks."""
        total = IOCounters()
        for disk, before in zip(self.disks, self._io_before):
            total = total + (disk.counters - before)
        return total

    def time_delta(self) -> float:
        """Simulated I/O seconds since construction."""
        return sum(d.simulated_time_s - t
                   for d, t in zip(self.disks, self._time_before))


@contextmanager
def wall_clock(report: JoinReport):
    """Context manager recording wall time into a report."""
    start = time.perf_counter()
    try:
        yield report
    finally:
        report.wall_time_s = time.perf_counter() - start


def compare_blocks(ids_a: np.ndarray, points_a: np.ndarray,
                   ids_b: np.ndarray, points_b: np.ndarray,
                   eps_sq: float, result: JoinResult,
                   cpu: Optional[CPUCounters] = None,
                   upper_triangle: bool = False) -> None:
    """Compare two point blocks exhaustively and record qualifying pairs.

    This is the candidate-refinement step shared by all index-based
    joins; the early-abort accounting matches the scalar loop of
    Figure 7 under the natural dimension order.
    """
    if len(ids_a) == 0 or len(ids_b) == 0:
        return
    order = natural_ordering(points_a.shape[1])
    ia, ib = pairs_within_vector(points_a, points_b, eps_sq, order,
                                 counters=cpu,
                                 upper_triangle=upper_triangle)
    if len(ia):
        result.add_batch(ids_a[ia], ids_b[ib])
