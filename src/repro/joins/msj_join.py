"""Similarity self-join over size-separated level files (S³J/MSJ).

Join processing follows [KS 97]/[KS 98a]: "each subpartition of a
level-file must be matched against the corresponding subpartitions at
the same level and each higher level file".  Because joinable points
(distance ≤ ε) have intersecting ε-cubes, and each cube is contained in
its level cell, the cells of a joinable pair are always in an
ancestor–descendant (or equal) relation — so every candidate of a point
lives in one cell per coarser-or-equal level, found by right-shifting
its own cell coordinates.
"""

from __future__ import annotations

import numpy as np

from ..core.ego_order import validate_epsilon
from ..core.result import JoinResult
from ..index.msj import LevelFiles
from .base import JoinReport, compare_blocks, wall_clock


def msj_self_join(points: np.ndarray, epsilon: float,
                  materialize: bool = True,
                  max_level: int = 20) -> JoinReport:
    """S³J/MSJ similarity self-join (in-memory).

    Points must lie in the unit hypercube (the decomposition's domain);
    values outside are clipped when levelling, which keeps the join
    exact for data in ``[0, 1]``.
    """
    eps = validate_epsilon(epsilon)
    pts = np.asarray(points, dtype=np.float64)
    result = JoinResult(materialize=materialize)
    report = JoinReport(algorithm="msj", result=result)
    if len(pts) == 0:
        return report
    eps_sq = eps * eps

    with wall_clock(report):
        structure = LevelFiles(pts, eps, max_level=max_level)
        report.extra["resident_fraction"] = \
            structure.average_resident_fraction()
        report.extra["levels"] = len(structure.files)
        populated = sorted(structure.files)
        for level in populated:
            lf = structure.files[level]
            for cell, idx in lf.cells.items():
                # Same cell, same level: all pairs once.
                compare_blocks(idx, pts[idx], idx, pts[idx], eps_sq,
                               result, cpu=report.cpu,
                               upper_triangle=True)
                # Ancestors at every coarser populated level.
                for coarser in populated:
                    if coarser >= level:
                        break
                    anc = structure.ancestor_cell(cell, level, coarser)
                    other = structure.files[coarser].cells.get(anc)
                    if other is None:
                        continue
                    compare_blocks(idx, pts[idx], other, pts[other],
                                   eps_sq, result, cpu=report.cpu)
    return report
