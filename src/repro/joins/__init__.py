"""Similarity-join algorithms: EGO's competitors and references."""

from .base import DiskTracker, JoinReport, compare_blocks, wall_clock
from .brute import brute_force_join, brute_force_self_join
from .epskdb_join import DEFAULT_NODE_CAPACITY, epskdb_self_join
from .grid_hash import grid_hash_self_join, grid_prefix_dimensions
from .lsh_join import (LSHJoinReport, LSHStats, lsh_self_join,
                       lsh_self_join_file, write_bucket_file)
from .msj_join import msj_self_join
from .mux_join import mux_self_join
from .spatial_hash import (DEFAULT_BUCKET_CAPACITY, spatial_hash_self_join)
from .nested_loop import nested_loop_self_join_file
from .rsj import rsj_join, rsj_self_join
from .zorder_rsj import zorder_rsj_self_join

__all__ = [
    "DEFAULT_NODE_CAPACITY",
    "DiskTracker",
    "JoinReport",
    "brute_force_join",
    "brute_force_self_join",
    "compare_blocks",
    "epskdb_self_join",
    "grid_hash_self_join",
    "grid_prefix_dimensions",
    "LSHJoinReport",
    "LSHStats",
    "lsh_self_join",
    "lsh_self_join_file",
    "write_bucket_file",
    "msj_self_join",
    "mux_self_join",
    "spatial_hash_self_join",
    "DEFAULT_BUCKET_CAPACITY",
    "nested_loop_self_join_file",
    "rsj_join",
    "rsj_self_join",
    "wall_clock",
    "zorder_rsj_self_join",
]
