"""Block nested loop join with its quadratic I/O behaviour.

The paper uses the nested loop join as the lower baseline ("the values
… were merely calculated").  This module provides a *runnable* block
nested loop join over a point file — outer-loop blocks pinned in the
buffer, inner relation rescanned per outer block — so the quadratic
behaviour is measured rather than assumed at small scales; the
closed-form estimate used for large scales lives in
:mod:`repro.analysis.costmodel`.
"""

from __future__ import annotations

from ..core.ego_order import validate_epsilon
from ..core.result import JoinResult
from ..storage.pagefile import PointFile
from .base import DiskTracker, JoinReport, compare_blocks, wall_clock


def nested_loop_self_join_file(point_file: PointFile, epsilon: float,
                               buffer_records: int,
                               materialize: bool = True) -> JoinReport:
    """Block nested loop self-join of a point file.

    The buffer is split in the classic way: all but one block's worth of
    memory holds the outer blocks, one block is used to stream the inner
    relation.  Every unordered pair of blocks is formed exactly once, so
    each pair of points is compared once.
    """
    eps = validate_epsilon(epsilon)
    if buffer_records < 2:
        raise ValueError("buffer_records must be at least 2")
    inner_block = max(1, buffer_records // 4)
    outer_block = max(1, buffer_records - inner_block)
    n = point_file.count
    result = JoinResult(materialize=materialize)
    report = JoinReport(algorithm="nested-loop", result=result)
    tracker = DiskTracker(point_file.disk)
    eps_sq = eps * eps

    with wall_clock(report):
        for outer_start in range(0, n, outer_block):
            outer_n = min(outer_block, n - outer_start)
            o_ids, o_pts = point_file.read_range(outer_start, outer_n)
            compare_blocks(o_ids, o_pts, o_ids, o_pts, eps_sq, result,
                           cpu=report.cpu, upper_triangle=True)
            for inner_start in range(outer_start + outer_n, n, inner_block):
                inner_n = min(inner_block, n - inner_start)
                i_ids, i_pts = point_file.read_range(inner_start, inner_n)
                compare_blocks(o_ids, o_pts, i_ids, i_pts, eps_sq, result,
                               cpu=report.cpu)
    report.io = tracker.io_delta()
    report.simulated_io_time_s = tracker.time_delta()
    return report
