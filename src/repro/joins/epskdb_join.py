"""Similarity self-join over the ε-kdB-tree [SSA 97].

Dimension 0 is partitioned into ε-stripes; the join is restricted to
identical and subsequent stripes, each of which carries an in-memory
ε-kdB-tree over the remaining dimensions.  Tree matching descends only
into identical or neighboring ε-cells.

The join assumes two adjacent stripes fit in the cache — the scalability
limitation Section 2.2 of the paper dwells on.  ``cache_records``
enforces it: the join raises
:class:`~repro.index.epskdb.EpsKdbCacheError` when the requirement is
violated, unless ``force=True``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.ego_order import validate_epsilon
from ..core.result import JoinResult
from ..index.epskdb import EpsKdbNode, StripedDataset, build_tree
from ..storage.pagefile import PointFile
from .base import DiskTracker, JoinReport, compare_blocks, wall_clock

DEFAULT_NODE_CAPACITY = 64


class _StripeJoiner:
    """Tree matching between (possibly identical) stripe trees."""

    def __init__(self, points_a: np.ndarray, ids_a: np.ndarray,
                 points_b: np.ndarray, ids_b: np.ndarray,
                 epsilon: float, eps_sq: float, result: JoinResult,
                 report: JoinReport) -> None:
        self.points_a = points_a
        self.ids_a = ids_a
        self.points_b = points_b
        self.ids_b = ids_b
        self.epsilon = epsilon
        self.eps_sq = eps_sq
        self.result = result
        self.report = report

    def _leaf_pair(self, a: EpsKdbNode, b: EpsKdbNode, same: bool) -> None:
        ia, ib = a.indices, b.indices
        compare_blocks(self.ids_a[ia], self.points_a[ia],
                       self.ids_b[ib], self.points_b[ib],
                       self.eps_sq, self.result, cpu=self.report.cpu,
                       upper_triangle=same)

    def _cell_span(self, points: np.ndarray, indices: np.ndarray,
                   dim: int) -> range:
        """Cells the given points may join in ``dim`` (their span ± 1)."""
        coords = points[indices, dim]
        lo = int(np.floor(coords.min() / self.epsilon))
        hi = int(np.floor(coords.max() / self.epsilon))
        return range(lo - 1, hi + 2)

    def _leaf_indices(self, node: EpsKdbNode) -> np.ndarray:
        if node.is_leaf:
            return node.indices
        return np.concatenate(
            [self._leaf_indices(c) for c in node.children.values()])

    def match(self, a: EpsKdbNode, b: EpsKdbNode, same: bool) -> None:
        """Recursive match of two stripe-tree nodes."""
        if a.is_leaf and b.is_leaf:
            self._leaf_pair(a, b, same)
            return
        if a.is_leaf:
            span = self._cell_span(self.points_a, a.indices, b.split_dim)
            for cell, child in b.children.items():
                if cell in span:
                    self.match(a, child, False)
            return
        if b.is_leaf:
            span = self._cell_span(self.points_b, b.indices, a.split_dim)
            for cell, child in a.children.items():
                if cell in span:
                    self.match(child, b, False)
            return
        # Both internal; synchronous descent means equal split dimensions.
        for cell_a, child_a in a.children.items():
            for offset in (-1, 0, 1):
                cell_b = cell_a + offset
                child_b = b.children.get(cell_b)
                if child_b is None:
                    continue
                if same:
                    # Each unordered cell pair once; the identical cell
                    # continues as a self-match.
                    if cell_b < cell_a:
                        continue
                    self.match(child_a, child_b, cell_b == cell_a)
                else:
                    self.match(child_a, child_b, False)


def epskdb_self_join(ids: np.ndarray, points: np.ndarray, epsilon: float,
                     cache_records: Optional[int] = None,
                     node_capacity: int = DEFAULT_NODE_CAPACITY,
                     force: bool = False,
                     input_file: Optional[PointFile] = None,
                     materialize: bool = True) -> JoinReport:
    """ε-kdB-tree similarity self-join.

    Parameters
    ----------
    cache_records:
        Available cache size in records.  The join refuses to run when
        two adjacent stripes exceed it (the paper's §2.2 failure mode)
        unless ``force`` is set.
    input_file:
        When given, one sequential scan of the file is charged as the
        join's I/O (the single-pass assumption of [SSA 97]).
    """
    eps = validate_epsilon(epsilon)
    eps_sq = eps * eps
    result = JoinResult(materialize=materialize)
    report = JoinReport(algorithm="eps-kdb", result=result)

    striped = StripedDataset(ids, points, eps)
    report.extra["max_pair_fraction"] = striped.max_pair_fraction()
    report.extra["num_stripes"] = striped.num_stripes
    if cache_records is not None and not force:
        striped.check_cache(cache_records)

    tracker = None
    if input_file is not None:
        tracker = DiskTracker(input_file.disk)

    with wall_clock(report):
        if input_file is not None:
            for _chunk in input_file.iter_chunks(
                    max(1, cache_records or input_file.count)):
                pass
        trees = {}

        def stripe_tree(i: int) -> EpsKdbNode:
            if i not in trees:
                _sids, spts = striped.stripe_slice(i)
                trees[i] = build_tree(spts, np.arange(len(spts)), eps,
                                      node_capacity)
            return trees[i]

        for i in range(striped.num_stripes):
            ids_i, pts_i = striped.stripe_slice(i)
            tree_i = stripe_tree(i)
            joiner = _StripeJoiner(pts_i, ids_i, pts_i, ids_i, eps, eps_sq,
                                   result, report)
            joiner.match(tree_i, tree_i, True)
            if i + 1 < striped.num_stripes and striped.adjacent(i, i + 1):
                ids_j, pts_j = striped.stripe_slice(i + 1)
                tree_j = stripe_tree(i + 1)
                cross = _StripeJoiner(pts_i, ids_i, pts_j, ids_j, eps,
                                      eps_sq, result, report)
                cross.match(tree_i, tree_j, False)
            # Emulate the two-stripe cache: older trees are dropped.
            trees.pop(i - 1, None)
    if tracker is not None:
        report.io = tracker.io_delta()
        report.simulated_io_time_s = tracker.time_delta()
    return report
