"""In-memory grid hash join (spatial-hash reference, cf. [LR 96]).

Points are hashed by their ε-grid cell over a *prefix* of the
dimensions; candidate pairs come from identical or neighboring cells and
are refined with exact distances.  Partitioning only a dimension prefix
keeps the neighbor enumeration (3^k offsets) tractable in high
dimensions — with a full 16-dimensional grid the 3^16 neighbor probes
would dwarf the join itself, which is one of the reasons grid methods
degrade in high dimensions (Section 2.2).

This join is an in-memory reference implementation used by the tests and
as a fast exact joiner for the application layer; it performs no I/O
accounting.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.ego_order import grid_cells, validate_epsilon
from ..core.result import JoinResult

#: Upper bound on enumerated neighbor offsets (3^k <= this).
MAX_NEIGHBOR_PROBES = 8192


def grid_prefix_dimensions(dimensions: int,
                           max_probes: int = MAX_NEIGHBOR_PROBES) -> int:
    """Largest dimension prefix whose 3^k neighbor probes fit the budget."""
    k = 1
    while k < dimensions and 3 ** (k + 1) <= max_probes:
        k += 1
    return k


def grid_hash_self_join(points: np.ndarray, epsilon: float,
                        ids: Optional[np.ndarray] = None,
                        prefix_dims: Optional[int] = None,
                        result: Optional[JoinResult] = None) -> JoinResult:
    """Exact ε self-join via a hash grid on a dimension prefix."""
    eps = validate_epsilon(epsilon)
    pts = np.asarray(points, dtype=np.float64)
    if ids is None:
        ids = np.arange(len(pts), dtype=np.int64)
    else:
        ids = np.asarray(ids, dtype=np.int64)
    if result is None:
        result = JoinResult()
    n = len(pts)
    if n == 0:
        return result
    d = pts.shape[1]
    k = prefix_dims if prefix_dims is not None else grid_prefix_dimensions(d)
    if not 1 <= k <= d:
        raise ValueError(f"prefix_dims must be in [1, {d}], got {k}")
    cells = grid_cells(pts[:, :k], eps)
    buckets: Dict[Tuple[int, ...], list] = defaultdict(list)
    for row, cell in enumerate(map(tuple, cells.tolist())):
        buckets[cell].append(row)
    index = {cell: np.array(rows, dtype=np.intp)
             for cell, rows in buckets.items()}
    eps_sq = eps * eps
    offsets = [off for off in itertools.product((-1, 0, 1), repeat=k)]

    for cell, rows_a in index.items():
        pts_a = pts[rows_a]
        for off in offsets:
            neighbor = tuple(c + o for c, o in zip(cell, off))
            # Process each unordered cell pair once; ties (same cell)
            # use the upper triangle below.
            if neighbor < cell:
                continue
            rows_b = index.get(neighbor)
            if rows_b is None:
                continue
            pts_b = pts[rows_b]
            diff = pts_a[:, None, :] - pts_b[None, :, :]
            d2 = np.einsum("ijk,ijk->ij", diff, diff)
            within = d2 <= eps_sq
            if neighbor == cell:
                within = np.triu(within, k=1)
            ia, ib = np.nonzero(within)
            if len(ia):
                result.add_batch(ids[rows_a[ia]], ids[rows_b[ib]])
    return result
