"""Brute-force similarity join: the correctness reference.

Compares every point pair with chunked numpy arithmetic.  O(n·m) work
and no pruning of any kind — this is the ground truth every other join
is tested against, and (with I/O accounting added by
:mod:`repro.joins.nested_loop`) the basis of the paper's nested-loop
baseline.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.ego_order import validate_epsilon
from ..core.result import JoinResult


def brute_force_self_join(points: np.ndarray, epsilon: float,
                          ids: Optional[np.ndarray] = None,
                          chunk: int = 1024,
                          result: Optional[JoinResult] = None) -> JoinResult:
    """All unordered pairs of distinct points within ``epsilon``."""
    eps = validate_epsilon(epsilon)
    pts = np.asarray(points, dtype=np.float64)
    if ids is None:
        ids = np.arange(len(pts), dtype=np.int64)
    else:
        ids = np.asarray(ids, dtype=np.int64)
    if result is None:
        result = JoinResult()
    eps_sq = eps * eps
    n = len(pts)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        block = pts[start:stop]
        # Pairs inside the block (upper triangle).
        diff = block[:, None, :] - block[None, :, :]
        d2 = np.einsum("ijk,ijk->ij", diff, diff)
        ia, ib = np.nonzero(np.triu(d2 <= eps_sq, k=1))
        if len(ia):
            result.add_batch(ids[start + ia], ids[start + ib])
        # Pairs between this block and everything after it.
        for other in range(stop, n, chunk):
            other_stop = min(other + chunk, n)
            rest = pts[other:other_stop]
            diff = block[:, None, :] - rest[None, :, :]
            d2 = np.einsum("ijk,ijk->ij", diff, diff)
            ia, ib = np.nonzero(d2 <= eps_sq)
            if len(ia):
                result.add_batch(ids[start + ia], ids[other + ib])
    return result


def brute_force_join(points_r: np.ndarray, points_s: np.ndarray,
                     epsilon: float,
                     ids_r: Optional[np.ndarray] = None,
                     ids_s: Optional[np.ndarray] = None,
                     chunk: int = 1024,
                     result: Optional[JoinResult] = None) -> JoinResult:
    """All pairs ``(r, s)`` within ``epsilon`` between two point sets."""
    eps = validate_epsilon(epsilon)
    r = np.asarray(points_r, dtype=np.float64)
    s = np.asarray(points_s, dtype=np.float64)
    if r.ndim != 2 or s.ndim != 2 or (len(r) and len(s)
                                      and r.shape[1] != s.shape[1]):
        raise ValueError("point sets must be 2-d arrays of equal dimension")
    if ids_r is None:
        ids_r = np.arange(len(r), dtype=np.int64)
    if ids_s is None:
        ids_s = np.arange(len(s), dtype=np.int64)
    ids_r = np.asarray(ids_r, dtype=np.int64)
    ids_s = np.asarray(ids_s, dtype=np.int64)
    if result is None:
        result = JoinResult()
    eps_sq = eps * eps
    for start in range(0, len(r), chunk):
        block = r[start:start + chunk]
        for other in range(0, len(s), chunk):
            rest = s[other:other + chunk]
            diff = block[:, None, :] - rest[None, :, :]
            d2 = np.einsum("ijk,ijk->ij", diff, diff)
            ia, ib = np.nonzero(d2 <= eps_sq)
            if len(ia):
                result.add_batch(ids_r[start + ia], ids_s[other + ib])
    return result
