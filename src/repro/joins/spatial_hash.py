"""Spatial hash join ([LR 96], [PD 96]) adapted to distance predicates.

The set R is decomposed into a number of buckets determined from a
target capacity; sampling picks the initial bucket regions and each R
point joins the bucket whose region it enlarges least (here: the
nearest sample centre — the standard simplification).  Each S point is
then *replicated* into every bucket whose ε-enlarged MBR contains it,
after which one bucket-local pass finds all join pairs.

For the similarity self-join the same set plays both roles; each
unordered pair is reported once (from the bucket of its smaller-id
member).  Replication is the method's cost: the total S copies are
reported in the join's ``extra`` statistics, since replication is what
makes bucket sizes — and the memory footprint — grow with ε.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.ego_order import validate_epsilon
from ..core.result import JoinResult
from ..index.mbr import MBR
from .base import JoinReport, wall_clock

DEFAULT_BUCKET_CAPACITY = 256


def _assign_buckets(points: np.ndarray, n_buckets: int,
                    rng: np.random.Generator) -> np.ndarray:
    """Nearest-sample bucket assignment (the [LR 96] initial buckets)."""
    n = len(points)
    seeds = points[rng.choice(n, size=n_buckets, replace=False)]
    assignment = np.empty(n, dtype=np.int64)
    chunk = 4096
    for start in range(0, n, chunk):
        block = points[start:start + chunk]
        diff = block[:, None, :] - seeds[None, :, :]
        d2 = np.einsum("ijk,ijk->ij", diff, diff)
        assignment[start:start + chunk] = np.argmin(d2, axis=1)
    return assignment


def spatial_hash_self_join(points: np.ndarray, epsilon: float,
                           bucket_capacity: int = DEFAULT_BUCKET_CAPACITY,
                           seed: int = 0,
                           materialize: bool = True) -> JoinReport:
    """Spatial-hash similarity self-join (in-memory)."""
    eps = validate_epsilon(epsilon)
    if bucket_capacity < 1:
        raise ValueError("bucket_capacity must be positive")
    pts = np.asarray(points, dtype=np.float64)
    n = len(pts)
    result = JoinResult(materialize=materialize)
    report = JoinReport(algorithm="spatial-hash", result=result)
    if n == 0:
        return report
    eps_sq = eps * eps
    rng = np.random.default_rng(seed)
    n_buckets = max(1, -(-n // bucket_capacity))

    with wall_clock(report):
        assignment = _assign_buckets(pts, n_buckets, rng)
        members: List[np.ndarray] = [
            np.nonzero(assignment == b)[0] for b in range(n_buckets)]
        members = [m for m in members if len(m)]
        mbrs = [MBR.of_points(pts[m]).enlarged(eps) for m in members]

        from ..core.distance import natural_ordering, pairs_within_vector
        order = natural_ordering(pts.shape[1])
        replicas = 0
        for m, box in zip(members, mbrs):
            inside = np.nonzero(
                ((pts >= box.low) & (pts <= box.high)).all(axis=1))[0]
            replicas += len(inside)
            if len(inside) == 0:
                continue
            # Pair (a, b) with a < b is reported from the bucket owning
            # its smaller-id member, so only owner < replica survives.
            ia, ib = pairs_within_vector(pts[m], pts[inside], eps_sq,
                                         order, counters=report.cpu)
            if len(ia):
                keep = m[ia] < inside[ib]
                if keep.any():
                    result.add_batch(m[ia[keep]], inside[ib[keep]])
        report.extra["buckets"] = len(members)
        report.extra["replicas"] = replicas
        report.extra["replication_factor"] = replicas / n
    return report
