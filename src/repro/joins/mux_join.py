"""Similarity join over the Multipage Index (MuX-Join, [BK 01]).

I/O behaves like an R-tree join over the large hosting pages; CPU work
is limited by matching the small accommodated buckets first: points are
only compared between bucket pairs whose MBR mindist is within ε.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core.ego_order import validate_epsilon
from ..core.result import JoinResult
from ..index.mbr import mindist_sq_batch
from ..index.mux import HostingPage, MultipageIndex
from ..index.rtree import RTreeNode
from .base import DiskTracker, JoinReport, compare_blocks, wall_clock


def _page_pairs(root: RTreeNode, index: MultipageIndex, eps_sq: float,
                report: JoinReport) -> List[Tuple[int, int, bool]]:
    """Qualifying hosting-page pairs via directory traversal."""
    pairs: List[Tuple[int, int, bool]] = []
    stack: List[Tuple[RTreeNode, RTreeNode, bool]] = [(root, root, True)]
    while stack:
        a, b, same = stack.pop()
        if not same:
            report.cpu.mbr_tests += 1
            if a.mbr.mindist_sq(b.mbr) > eps_sq:
                continue
        if a.is_leaf and b.is_leaf:
            pairs.append((a.leaf_page, b.leaf_page, same))
        elif a.is_leaf:
            stack.extend((a, cb, False) for cb in b.children)
        elif b.is_leaf:
            stack.extend((ca, b, False) for ca in a.children)
        elif same:
            kids = a.children
            for i, ci in enumerate(kids):
                stack.append((ci, ci, True))
                stack.extend((ci, cj, False) for cj in kids[i + 1:])
        elif a.level >= b.level:
            stack.extend((ca, b, False) for ca in a.children)
        else:
            stack.extend((a, cb, False) for cb in b.children)
    return pairs


def _join_page_pair(index: MultipageIndex, pool, pa: int, pb: int,
                    same: bool, eps_sq: float, result: JoinResult,
                    report: JoinReport) -> None:
    page_a: HostingPage = index.pages[pa]
    ids_a, pts_a = pool.get(pa)
    if same:
        ids_b, pts_b, page_b = ids_a, pts_a, page_a
    else:
        page_b = index.pages[pb]
        ids_b, pts_b = pool.get(pb)
    mind = mindist_sq_batch(page_a.bucket_lows, page_a.bucket_highs,
                            page_b.bucket_lows, page_b.bucket_highs)
    report.cpu.mbr_tests += mind.size
    qualify = mind <= eps_sq
    for i, j in zip(*np.nonzero(qualify)):
        if same and j < i:
            continue
        ba = page_a.buckets[i]
        bb = page_b.buckets[j]
        a_lo, a_hi = ba.first - page_a.first, ba.last - page_a.first
        b_lo, b_hi = bb.first - page_b.first, bb.last - page_b.first
        compare_blocks(ids_a[a_lo:a_hi], pts_a[a_lo:a_hi],
                       ids_b[b_lo:b_hi], pts_b[b_lo:b_hi],
                       eps_sq, result, cpu=report.cpu,
                       upper_triangle=(same and i == j))


def mux_self_join(index: MultipageIndex, epsilon: float, pool_pages: int,
                  materialize: bool = True) -> JoinReport:
    """MuX similarity self-join."""
    eps = validate_epsilon(epsilon)
    eps_sq = eps * eps
    result = JoinResult(materialize=materialize)
    report = JoinReport(algorithm="mux", result=result)
    pool = index.make_page_pool(pool_pages)
    tracker = DiskTracker(index.leaf_file.disk)

    with wall_clock(report):
        pairs = _page_pairs(index.root, index, eps_sq, report)
        # Schedule page pairs in page order for locality (the hosting
        # pages are large, so there are few of them and ordering is cheap).
        pairs.sort(key=lambda p: (min(p[0], p[1]), max(p[0], p[1])))
        report.extra["page_pairs"] = len(pairs)
        for pa, pb, same in pairs:
            _join_page_pair(index, pool, pa, pb, same, eps_sq, result,
                            report)
    report.io = tracker.io_delta()
    report.simulated_io_time_s = tracker.time_delta()
    report.extra["buffer_hits"] = pool.stats.hits
    report.extra["buffer_misses"] = pool.stats.misses
    report.extra["storage_overhead"] = index.storage_overhead_fraction()
    return report
