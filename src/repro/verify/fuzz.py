"""Seeded differential fuzzing with shrinking and replayable artifacts.

``run_fuzz`` draws adversarial workloads (see
:mod:`repro.verify.workloads`), sweeps join configurations through the
oracle registry and the metamorphic relations, and stops at a time
budget.  Everything is a pure function of the seed: trial ``i`` of seed
``s`` is always the same workload and configuration, so a CI failure
line (seed + trial) is already a reproducer.

When a trial fails, the driver first **shrinks** the workload — greedy
chunk removal, re-running the failed check after each bite — to a
minimal point set that still fails, then dumps a **replayable
artifact**: an ``.npz`` with the points next to a ``.json`` with the
seed, epsilon, implementation and options.  ``replay_artifact`` loads
the pair and re-runs the exact check, so a nightly-fuzz failure can be
triaged locally with one command::

    python -m repro verify --replay artifacts/fail-....json
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .canonical import pair_digest
from .metamorphic import (run_lsh_relations, run_relations,
                          run_store_relations)
from .oracle import REGISTRY, differential_check, run_impl
from .workloads import WORKLOAD_KINDS, generate_workload

#: Implementations the fuzz driver sweeps by default.  The external
#: pipeline runs with every storage wrapper; competitors at defaults.
DEFAULT_CONFIGS: Tuple[Tuple[str, Dict[str, object]], ...] = (
    ("ego", {"engine": "scalar"}),
    ("ego", {"engine": "vector", "invariants": True}),
    ("ego", {"engine": "matmul"}),
    ("ego", {"engine": "batched"}),
    ("ego", {"engine": "vector", "split_strategy": "boundary"}),
    ("ego_parallel", {"workers": 1}),
    ("ego_external", {"storage": "plain", "invariants": True}),
    ("ego_external", {"storage": "checksummed"}),
    ("ego_external", {"storage": "crash_resume"}),
    ("ego_external", {"storage": "worker_faults", "workers": 2}),
    ("ego_external", {"engine": "batched", "storage": "crash_resume"}),
    ("ego_rs_files", {}),
    ("ego_store", {"mode": "fresh"}),
    ("ego_store", {"mode": "churn"}),
    ("ego_store", {"mode": "churn", "compact_threshold": 12}),
    ("ego_store_replay", {}),
    ("grid_hash", {}),
    ("spatial_hash", {}),
    ("msj", {}),
    ("epskdb", {}),
    ("rsj", {}),
    ("mux", {}),
    ("zorder_rsj", {}),
    # The approximate engine is judged by the recall floor, not digest
    # equality.  Fuzz workloads are tiny (tens of pairs), so two guards
    # keep the seeded runs deterministic-safe: a high recall_target
    # (0.999 — the auto-sized L makes each miss a ≤1e-3 event) plus a
    # miss_allowance of 2, because the model *permits* rare misses and
    # on a 3-pair workload a single one would crater a relative floor.
    # Failing now needs ≥3 misses in one trial (~1e-9 per run).
    ("lsh", {"recall_target": 0.999, "seed": 1, "miss_allowance": 2}),
    ("lsh", {"recall_target": 0.999, "seed": 2, "engine": "matmul",
             "backend": "memory", "miss_allowance": 2}),
    ("lsh", {"k": 1, "tables": 8, "seed": 3, "backend": "file",
             "miss_allowance": 2}),
)

#: Metamorphic relations checked per trial (on the in-memory EGO join;
#: the differential sweep extends their reach to every implementation).
FUZZ_RELATIONS = ("permutation", "translation", "epsilon_nesting",
                  "self_vs_rr")

#: Update-sequence relations checked per trial on the incremental store.
FUZZ_STORE_RELATIONS = ("store_insert_union", "store_insert_delete",
                        "store_epsilon_nesting")

#: Approximate-join relations checked per trial on the LSH engine.
FUZZ_LSH_RELATIONS = ("lsh_precision", "lsh_tables_monotone",
                      "lsh_determinism")


@dataclass
class FuzzFailure:
    """One failing trial, after shrinking."""

    trial: int
    seed: int
    kind: str
    epsilon: float
    n_original: int
    n_shrunk: int
    detail: str
    artifact: Optional[str] = None

    def describe(self) -> str:
        text = (f"trial {self.trial} (seed {self.seed}, {self.kind}, "
                f"ε={self.epsilon:g}, n={self.n_original}"
                f"→{self.n_shrunk}): {self.detail}")
        if self.artifact:
            text += f" [artifact: {self.artifact}]"
        return text


@dataclass
class FuzzReport:
    """Outcome of one fuzzing session."""

    seed: int
    budget_s: float
    trials: int = 0
    checks: int = 0
    elapsed_s: float = 0.0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        lines = [f"fuzz seed {self.seed}: {self.trials} trials, "
                 f"{self.checks} checks in {self.elapsed_s:.1f}s — "
                 f"{'OK' if self.ok else f'{len(self.failures)} FAILURE(S)'}"]
        lines += ["  " + f.describe() for f in self.failures]
        return "\n".join(lines)


def parse_budget(spec: str) -> float:
    """Parse a time budget like ``60s``, ``2m`` or a bare second count."""
    text = spec.strip().lower()
    factor = 1.0
    if text.endswith("ms"):
        text, factor = text[:-2], 1e-3
    elif text.endswith("s"):
        text = text[:-1]
    elif text.endswith("m"):
        text, factor = text[:-1], 60.0
    try:
        value = float(text) * factor
    except ValueError:
        raise ValueError(f"cannot parse time budget {spec!r}") from None
    if value <= 0:
        raise ValueError(f"time budget must be positive, got {spec!r}")
    return value


def _check_workload(points: np.ndarray, epsilon: float,
                    configs: Sequence) -> Tuple[bool, str, int]:
    """Differential sweep + metamorphic relations on one workload.

    Returns ``(ok, detail, checks_run)`` where ``detail`` names the
    first failure.
    """
    checks = 0
    report = differential_check(points, epsilon, configs)
    checks += len(report.outcomes)
    if not report.ok:
        return False, report.failures[0].describe(), checks
    relations = run_relations("ego", points, epsilon,
                              relations=FUZZ_RELATIONS)
    relations += run_store_relations(points, epsilon,
                                     relations=FUZZ_STORE_RELATIONS)
    relations += run_lsh_relations(points, epsilon,
                                   relations=FUZZ_LSH_RELATIONS,
                                   seed=1)
    checks += len(relations)
    for rel in relations:
        if not rel.ok:
            return False, rel.describe(), checks
    return True, "", checks


def shrink_workload(points: np.ndarray, epsilon: float,
                    fails: Callable[[np.ndarray], bool],
                    max_rounds: int = 12) -> np.ndarray:
    """Greedy chunk-removal shrinking of a failing point set.

    Repeatedly tries to delete contiguous chunks (halving the chunk
    size each round) while ``fails`` keeps returning ``True``.  The
    result is 1-minimal with respect to chunk removal at the final
    granularity — small enough to eyeball, cheap enough to run inline.
    """
    current = points
    chunk = max(1, len(current) // 2)
    rounds = 0
    while rounds < max_rounds and len(current) > 2:
        rounds += 1
        removed_any = False
        start = 0
        while start < len(current) and len(current) > 2:
            candidate = np.concatenate(
                [current[:start], current[start + chunk:]])
            if len(candidate) >= 2 and fails(candidate):
                current = candidate
                removed_any = True
            else:
                start += chunk
        if chunk == 1 and not removed_any:
            break
        chunk = max(1, chunk // 2)
    return current


def dump_artifact(directory: str, failure_id: str, points: np.ndarray,
                  epsilon: float, seed: int, kind: str,
                  configs: Sequence, detail: str) -> str:
    """Write a replayable (json + npz) failure artifact; returns json path."""
    os.makedirs(directory, exist_ok=True)
    npz_path = os.path.join(directory, f"{failure_id}.npz")
    json_path = os.path.join(directory, f"{failure_id}.json")
    np.savez_compressed(npz_path, points=points)
    meta = {
        "format": 1,
        "seed": int(seed),
        "kind": kind,
        "epsilon": float(epsilon),
        "n": int(len(points)),
        "points_file": os.path.basename(npz_path),
        "configs": [[name, options] for name, options in _as_pairs(configs)],
        "detail": detail,
    }
    with open(json_path, "w") as fh:
        json.dump(meta, fh, indent=2, sort_keys=True)
    return json_path


def _as_pairs(configs: Sequence) -> List[Tuple[str, Dict[str, object]]]:
    pairs = []
    for config in configs:
        if isinstance(config, str):
            pairs.append((config, {}))
        else:
            pairs.append((config[0], dict(config[1])))
    return pairs


def replay_artifact(json_path: str) -> Tuple[bool, str]:
    """Re-run the check recorded in a fuzz artifact.

    Returns ``(still_fails, detail)`` — a fixed bug replays as
    ``(False, ...)``.
    """
    with open(json_path) as fh:
        meta = json.load(fh)
    npz_path = os.path.join(os.path.dirname(json_path),
                            meta["points_file"])
    points = np.load(npz_path)["points"]
    configs = [(name, options) for name, options in meta["configs"]]
    ok, detail, _ = _check_workload(points, float(meta["epsilon"]),
                                    configs)
    return (not ok), detail or "check passes now"


def _trial_parameters(rng: np.random.Generator, dimensions: int,
                      max_points: int):
    kind = WORKLOAD_KINDS[int(rng.integers(0, len(WORKLOAD_KINDS)))]
    n = int(rng.integers(8, max(9, max_points + 1)))
    d = int(rng.integers(2, dimensions + 1))
    epsilon = float(rng.uniform(0.05, 0.4))
    return kind, n, d, epsilon


def run_fuzz(seed: int = 0, budget_s: float = 60.0,
             dimensions: int = 5, max_points: int = 120,
             configs: Sequence = DEFAULT_CONFIGS,
             artifact_dir: Optional[str] = None,
             max_failures: int = 5,
             max_trials: Optional[int] = None,
             log: Optional[Callable[[str], None]] = None) -> FuzzReport:
    """Fuzz the join implementations until the time budget runs out."""
    rng = np.random.default_rng(seed)
    report = FuzzReport(seed=seed, budget_s=budget_s)
    deadline = time.monotonic() + budget_s
    while time.monotonic() < deadline:
        if max_trials is not None and report.trials >= max_trials:
            break
        if len(report.failures) >= max_failures:
            break
        trial = report.trials
        report.trials += 1
        kind, n, d, epsilon = _trial_parameters(rng, dimensions,
                                                max_points)
        trial_seed = seed * 1_000_003 + trial
        workload = generate_workload(kind, n, d, epsilon, trial_seed)
        ok, detail, checks = _check_workload(workload.points, epsilon,
                                             configs)
        report.checks += checks
        if ok:
            if log is not None:
                log(f"trial {trial}: {kind} n={n} d={d} "
                    f"ε={epsilon:.3f} ok ({checks} checks)")
            continue

        shrunk = shrink_workload(workload.points, epsilon,
                                 lambda pts: not _check_workload(
                                     pts, epsilon, configs)[0])
        _, shrunk_detail, _ = _check_workload(shrunk, epsilon, configs)
        failure = FuzzFailure(trial=trial, seed=trial_seed, kind=kind,
                              epsilon=epsilon, n_original=n,
                              n_shrunk=len(shrunk),
                              detail=shrunk_detail or detail)
        if artifact_dir is not None:
            failure_id = f"fail-seed{seed}-trial{trial}"
            failure.artifact = dump_artifact(
                artifact_dir, failure_id, shrunk, epsilon, trial_seed,
                kind, configs, failure.detail)
        report.failures.append(failure)
        if log is not None:
            log(failure.describe())
    report.elapsed_s = max(0.0, time.monotonic() - (deadline - budget_s))
    return report


def acceptance_matrix(points: np.ndarray, epsilon: float,
                      engines: Sequence[str] = ("scalar", "vector",
                                                "matmul", "batched"),
                      workers: Sequence[int] = (1, 4),
                      storages: Sequence[str] = ("plain", "checksummed",
                                                 "crash_resume")):
    """The acceptance-criteria sweep: engine × workers × storage.

    Returns ``(ok, digests)`` where ``digests`` maps each configuration
    label to the canonical pair digest; ``ok`` means every digest —
    including the in-memory reference — is identical.
    """
    reference = run_impl("ego", points, epsilon)
    digests = {"ego[reference]": pair_digest(reference)}
    for engine in engines:
        for w in workers:
            for storage in storages:
                canon = run_impl("ego_external", points, epsilon,
                                 engine=engine, workers=w,
                                 storage=storage)
                digests[f"ego_external[{engine},w{w},{storage}]"] = \
                    pair_digest(canon)
    unique = set(digests.values())
    return len(unique) == 1, digests


# Re-export for CLI convenience.
__all__ = [
    "DEFAULT_CONFIGS", "FUZZ_LSH_RELATIONS", "FUZZ_RELATIONS",
    "FUZZ_STORE_RELATIONS",
    "FuzzFailure", "FuzzReport", "REGISTRY", "acceptance_matrix",
    "dump_artifact", "parse_budget", "replay_artifact", "run_fuzz",
    "shrink_workload",
]
