"""Oracle registry: every join implementation behind one interface.

The repository has many ways to compute the same ε self-join — the EGO
recursion with three leaf engines, the external pipeline with serial or
parallel unit joins and three storage wrappers, and the competitor
algorithms (brute force, grid hash, spatial hash, RSJ, MSJ, ε-kdB, MuX,
Z-order-RSJ).  The registry wraps each behind one signature::

    fn(points, epsilon, ids=None, **options) -> canonical (n, 2) array

so any two can be differentially compared on any workload, and the fuzz
driver can sweep configuration axes (``engine``, ``workers``,
``storage``) without knowing anything implementation-specific.

``differential_check`` runs a set of implementations against a
reference (brute force by default) and reports, per implementation, the
canonical-pair-set difference — empty everywhere iff all configurations
produced the identical pair set.

Implementations registered with ``approximate=True`` (the LSH join) are
held to a different contract: their pair set must be a **subset** of the
reference's (precision exactly 1.0 — every reported pair is exactly
re-verified) and its **recall** — the fraction of reference pairs found
— must meet a configurable floor (``recall_floor``, default 0.9, per
entry or per config).  Digest equality would reject every run of a
Monte-Carlo algorithm; the recall floor is the strongest check an
approximate join can honestly pass, and the precision half stays exact.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.ego_join import ego_join_files, ego_self_join, ego_self_join_file
from ..core.parallel import ego_self_join_parallel
from ..joins.brute import brute_force_self_join
from ..joins.epskdb_join import epskdb_self_join
from ..joins.grid_hash import grid_hash_self_join
from ..joins.msj_join import msj_self_join
from ..joins.mux_join import mux_self_join
from ..joins.rsj import rsj_self_join
from ..joins.spatial_hash import spatial_hash_self_join
from ..joins.zorder_rsj import zorder_rsj_self_join
from ..storage.disk import SimulatedDisk
from ..storage.faults import FaultPlan, SimulatedCrash
from ..storage.integrity import RetryPolicy
from ..storage.pagefile import PointFile
from ..storage.pairfile import PairFile
from ..storage.records import record_size
from .canonical import PairSetDiff, canonical_pairs, diff_pairs

OracleFn = Callable[..., np.ndarray]

#: Storage wrappers the external pipeline can run under.
STORAGE_MODES = ("plain", "checksummed", "crash_resume", "worker_faults",
                 "sharded")


@dataclass
class OracleEntry:
    """One registered join implementation."""

    name: str
    fn: OracleFn
    #: Option names the implementation accepts (for sweep generation).
    options: Sequence[str] = ()
    #: The implementation requires data in the unit hypercube (so
    #: translation metamorphic relations must not be applied to it).
    unit_cube_only: bool = False
    #: Runs the full external pipeline (slower; the fuzz driver caps n).
    external: bool = False
    #: The implementation is allowed to miss pairs (never to invent
    #: them): it is checked against the reference by recall floor
    #: instead of digest equality.
    approximate: bool = False
    #: Default recall floor for approximate implementations; a config
    #: may override it with a ``recall_floor`` option.
    recall_floor: float = 0.9


REGISTRY: Dict[str, OracleEntry] = {}


def register(name: str, options: Sequence[str] = (),
             unit_cube_only: bool = False, external: bool = False,
             approximate: bool = False, recall_floor: float = 0.9):
    """Decorator adding an implementation to the registry."""

    def wrap(fn: OracleFn) -> OracleFn:
        REGISTRY[name] = OracleEntry(name=name, fn=fn, options=options,
                                     unit_cube_only=unit_cube_only,
                                     external=external,
                                     approximate=approximate,
                                     recall_floor=recall_floor)
        return fn

    return wrap


def implementations(include_external: bool = True) -> List[str]:
    """Registered implementation names, stable order."""
    return [name for name, entry in REGISTRY.items()
            if include_external or not entry.external]


def run_impl(name: str, points: np.ndarray, epsilon: float,
             ids: Optional[np.ndarray] = None, **options) -> np.ndarray:
    """Run a registered implementation, returning canonical pairs."""
    if name not in REGISTRY:
        raise KeyError(
            f"unknown implementation {name!r}; known: {sorted(REGISTRY)}")
    return REGISTRY[name].fn(points, epsilon, ids=ids, **options)


# -- in-memory EGO variants -------------------------------------------------


@register("ego", options=("engine", "minlen", "split_strategy",
                          "order_dimensions", "sort_dims", "invariants"))
def _ego(points, epsilon, ids=None, *, engine="vector", minlen=None,
         split_strategy="half", order_dimensions=True, sort_dims=None,
         invariants=False) -> np.ndarray:
    kwargs = {} if minlen is None else {"minlen": minlen}
    res = ego_self_join(points, epsilon, ids=ids, engine=engine,
                        split_strategy=split_strategy,
                        order_dimensions=order_dimensions,
                        sort_dims=sort_dims, invariants=invariants,
                        **kwargs)
    return canonical_pairs(res)


@register("ego_parallel", options=("engine", "workers", "chunks"))
def _ego_parallel(points, epsilon, ids=None, *, engine="vector",
                  workers=2, chunks=None) -> np.ndarray:
    res = ego_self_join_parallel(points, epsilon, ids=ids, engine=engine,
                                 workers=workers, chunks=chunks)
    return canonical_pairs(res)


# -- external EGO pipeline --------------------------------------------------


def _external_geometry(points: np.ndarray, unit_records: int,
                       buffer_units: int):
    rec = record_size(points.shape[1])
    return max(rec, unit_records * rec), max(2, buffer_units)


def _write_point_file(disk: SimulatedDisk, points: np.ndarray,
                      ids: Optional[np.ndarray]) -> PointFile:
    if ids is None:
        ids = np.arange(len(points), dtype=np.int64)
    pf = PointFile.create(disk, points.shape[1])
    pf.append(np.asarray(ids, dtype=np.int64),
              np.asarray(points, dtype=np.float64))
    pf.close()
    return pf


@register("ego_external",
          options=("engine", "workers", "storage", "unit_records",
                   "buffer_units", "crash_op", "invariants",
                   "fault_kind", "fault_seed", "shards", "shard_policy",
                   "backend"),
          external=True)
def _ego_external(points, epsilon, ids=None, *, engine="vector",
                  workers=1, storage="plain", unit_records=24,
                  buffer_units=4, crash_op=64, invariants=False,
                  fault_kind="mixed", fault_seed=13, shards=2,
                  shard_policy="adaptive",
                  backend="simulated") -> np.ndarray:
    """The full external pipeline under a chosen storage wrapper.

    ``storage`` picks the wrapper: ``plain`` (bare simulated disk),
    ``checksummed`` (per-page CRC32 plus a bounded-retry policy),
    ``crash_resume`` (checkpointed run killed by a scheduled crash at
    global operation ``crash_op``, then resumed; the canonical pairs
    are read back from the durable pair file), ``worker_faults``
    (parallel join under a seeded
    :class:`~repro.storage.faults.WorkerFaultPlan` injecting worker
    crashes, corrupted task results and task errors that the supervisor
    must absorb without changing the result) or ``sharded`` (the join
    partitioned into ``shards`` unit-range shards joined in separate
    processes under ``shard_policy`` against private ``backend`` disks
    — see :mod:`repro.core.shard`).
    """
    if storage not in STORAGE_MODES:
        raise ValueError(
            f"unknown storage mode {storage!r}; known: {STORAGE_MODES}")
    pts = np.asarray(points, dtype=np.float64)
    unit_bytes, buffer_units = _external_geometry(pts, unit_records,
                                                  buffer_units)
    common = dict(unit_bytes=unit_bytes, buffer_units=buffer_units,
                  engine=engine, workers=workers, invariants=invariants)
    with SimulatedDisk() as disk:
        pf = _write_point_file(disk, pts, ids)
        if storage == "plain":
            report = ego_self_join_file(pf, epsilon, **common)
            return canonical_pairs(report.result)
        if storage == "checksummed":
            report = ego_self_join_file(
                pf, epsilon, checksums=True,
                retry=RetryPolicy(max_attempts=3), **common)
            return canonical_pairs(report.result)
        if storage == "sharded":
            report = ego_self_join_file(
                pf, epsilon, shards=shards, shard_policy=shard_policy,
                backend=backend, **common)
            return canonical_pairs(report.result)
        if storage == "worker_faults":
            from ..core.supervisor import SupervisorPolicy
            from .workloads import worker_fault_plan
            common["workers"] = max(2, workers)
            report = ego_self_join_file(
                pf, epsilon,
                worker_fault_plan=worker_fault_plan(fault_kind,
                                                    fault_seed),
                supervisor_policy=SupervisorPolicy(
                    task_timeout=5.0, max_task_retries=2, degrade=True,
                    real_sleep=False),
                **common)
            return canonical_pairs(report.result)
        with tempfile.TemporaryDirectory(prefix="ego-verify-") as ck:
            plan = FaultPlan(seed=0, crash_ops=[crash_op])
            try:
                ego_self_join_file(pf, epsilon, checkpoint_dir=ck,
                                   fault_plan=plan, **common)
            except SimulatedCrash:
                ego_self_join_file(pf, epsilon, checkpoint_dir=ck,
                                   resume=True, **common)
            with SimulatedDisk(path=os.path.join(ck, "result.prs")) as rd:
                a, b, _ = PairFile.open(rd).read_all()
            return canonical_pairs((a, b))


@register("ego_rs_files", options=("engine", "unit_records",
                                   "buffer_units"), external=True)
def _ego_rs_files(points, epsilon, ids=None, *, engine="vector",
                  unit_records=24, buffer_units=4) -> np.ndarray:
    """R ⋈ S external join with R = S, reduced to self-join semantics.

    ``ego_join_files`` on the same data uses two-set semantics (mirrored
    pairs and the diagonal included); canonicalisation strips both, so
    the result is directly comparable with every self-join.
    """
    pts = np.asarray(points, dtype=np.float64)
    unit_bytes, buffer_units = _external_geometry(pts, unit_records,
                                                  buffer_units)
    with SimulatedDisk() as disk_r, SimulatedDisk() as disk_s:
        fr = _write_point_file(disk_r, pts, ids)
        fs = _write_point_file(disk_s, pts, ids)
        report = ego_join_files(fr, fs, epsilon, unit_bytes=unit_bytes,
                                buffer_units=buffer_units, engine=engine)
    return canonical_pairs(report.result)


# -- competitor algorithms --------------------------------------------------


@register("brute")
def _brute(points, epsilon, ids=None) -> np.ndarray:
    return canonical_pairs(brute_force_self_join(points, epsilon, ids=ids))


@register("grid_hash", options=("prefix_dims",))
def _grid_hash(points, epsilon, ids=None, *, prefix_dims=None) -> np.ndarray:
    return canonical_pairs(grid_hash_self_join(points, epsilon, ids=ids,
                                               prefix_dims=prefix_dims))


@register("spatial_hash", options=("bucket_capacity",))
def _spatial_hash(points, epsilon, ids=None, *,
                  bucket_capacity=None) -> np.ndarray:
    kwargs = {} if bucket_capacity is None \
        else {"bucket_capacity": bucket_capacity}
    report = spatial_hash_self_join(points, epsilon, **kwargs)
    return _with_ids(canonical_pairs(report.result), ids)


@register("msj", unit_cube_only=True)
def _msj(points, epsilon, ids=None) -> np.ndarray:
    report = msj_self_join(points, epsilon)
    return _with_ids(canonical_pairs(report.result), ids)


@register("epskdb", options=("node_capacity",))
def _epskdb(points, epsilon, ids=None, *, node_capacity=None) -> np.ndarray:
    pts = np.asarray(points, dtype=np.float64)
    if ids is None:
        ids = np.arange(len(pts), dtype=np.int64)
    kwargs = {} if node_capacity is None \
        else {"node_capacity": node_capacity}
    report = epskdb_self_join(np.asarray(ids, dtype=np.int64), pts, epsilon,
                              cache_records=4 * max(1, len(pts)),
                              force=True, **kwargs)
    return canonical_pairs(report.result)


def _with_ids(canon: np.ndarray, ids: Optional[np.ndarray]) -> np.ndarray:
    """Map positional pair ids through an explicit id array."""
    if ids is None or len(canon) == 0:
        return canon
    ids = np.asarray(ids, dtype=np.int64)
    return canonical_pairs((ids[canon[:, 0]], ids[canon[:, 1]]))


def _rtree_join(points, epsilon, ids, joiner, page_records=16,
                pool_pages=8) -> np.ndarray:
    from ..index.rtree import RTree

    pts = np.asarray(points, dtype=np.float64)
    if ids is None:
        ids = np.arange(len(pts), dtype=np.int64)
    with SimulatedDisk() as disk:
        tree = RTree.bulk_load(np.asarray(ids, dtype=np.int64), pts, disk,
                               page_records)
        report = joiner(tree, epsilon, pool_pages)
    return canonical_pairs(report.result)


@register("rsj", options=("page_records", "pool_pages"))
def _rsj(points, epsilon, ids=None, *, page_records=16,
         pool_pages=8) -> np.ndarray:
    return _rtree_join(points, epsilon, ids, rsj_self_join,
                       page_records, pool_pages)


@register("zorder_rsj", options=("page_records", "pool_pages"))
def _zorder_rsj(points, epsilon, ids=None, *, page_records=16,
                pool_pages=8) -> np.ndarray:
    return _rtree_join(points, epsilon, ids, zorder_rsj_self_join,
                       page_records, pool_pages)


@register("mux", options=("page_bytes", "bucket_records", "pool_pages"))
def _mux(points, epsilon, ids=None, *, page_bytes=2048, bucket_records=4,
         pool_pages=8) -> np.ndarray:
    from ..index.mux import MultipageIndex

    pts = np.asarray(points, dtype=np.float64)
    if ids is None:
        ids = np.arange(len(pts), dtype=np.int64)
    with SimulatedDisk() as disk:
        index = MultipageIndex.bulk_load(np.asarray(ids, dtype=np.int64),
                                         pts, disk, page_bytes,
                                         bucket_records)
        report = mux_self_join(index, epsilon, pool_pages)
    return canonical_pairs(report.result)


# -- approximate (LSH) ------------------------------------------------------


@register("lsh", options=("k", "tables", "recall_target", "w_scale",
                          "seed", "engine", "backend"),
          approximate=True, recall_floor=0.9)
def _lsh(points, epsilon, ids=None, *, k=None, tables=None,
         recall_target=0.95, w_scale=None, seed=0, engine="auto",
         backend="simulated") -> np.ndarray:
    """The p-stable LSH join — the registry's only approximate entry.

    Candidates are exactly re-verified, so the result is always a
    subset of the reference's pair set; the recall floor (not digest
    equality) is what ``differential_check`` holds it to.
    """
    from ..index.lsh import DEFAULT_K, DEFAULT_W_SCALE
    from ..joins.lsh_join import lsh_self_join

    report = lsh_self_join(
        np.asarray(points, dtype=np.float64), epsilon, ids=ids,
        k=DEFAULT_K if k is None else k, tables=tables,
        recall_target=recall_target,
        w_scale=DEFAULT_W_SCALE if w_scale is None else w_scale,
        seed=seed, engine=engine, backend=backend)
    return canonical_pairs(report.result)


# -- incremental store ------------------------------------------------------


def _store_churn_index(n: int, seed: int) -> np.ndarray:
    """Deterministic quarter of ``range(n)`` to delete and re-insert."""
    rng = np.random.default_rng(seed)
    return np.sort(rng.choice(n, size=max(1, n // 4), replace=False))


@register("ego_store", options=("mode", "compact_threshold", "engine",
                                "batch", "seed"))
def _ego_store(points, epsilon, ids=None, *, mode="fresh",
               compact_threshold=64, engine="auto", batch=17,
               seed=5) -> np.ndarray:
    """The incremental :class:`~repro.service.EGOStore`.

    ``fresh`` builds the store from the batch and joins; ``churn``
    inserts in small batches, then deletes a deterministic quarter of
    the points and re-inserts it (same ids, same coordinates), so the
    delta buffer, dead main rows and compaction all participate in the
    final join.  Either way the live point set at join time is exactly
    ``points``, so the result must equal every batch oracle's.
    """
    from ..service import EGOStore

    pts = np.asarray(points, dtype=np.float64)
    uids = np.arange(len(pts), dtype=np.int64) if ids is None \
        else np.asarray(ids, dtype=np.int64)
    store = EGOStore(epsilon, engine=engine,
                     compact_threshold=compact_threshold)
    if mode == "fresh":
        if len(pts):
            store.insert(pts, ids=uids)
        store.compact()
    elif mode == "churn":
        for start in range(0, len(pts), batch):
            store.insert(pts[start:start + batch],
                         ids=uids[start:start + batch])
        if len(pts):
            idx = _store_churn_index(len(pts), seed)
            store.delete(uids[idx])
            store.insert(pts[idx], ids=uids[idx])
    else:
        raise ValueError(f"unknown store mode {mode!r}")
    return canonical_pairs(store.join())


@register("ego_store_replay", options=("compact_threshold", "crash_after",
                                       "seed"))
def _ego_store_replay(points, epsilon, ids=None, *, compact_threshold=48,
                      crash_after=None, seed=7) -> np.ndarray:
    """Crash + journal-replay variant of ``ego_store``.

    A store applies a churn op sequence with a journal attached; the op
    log is then truncated to ``crash_after`` entries (default: half) —
    the crash-mid-sequence shape — a second store is recovered from the
    truncated journal, and the lost tail is re-sent through the public
    API.  The recovered store must match the original's
    :meth:`~repro.service.EGOStore.state_digest` exactly; its join is
    returned.
    """
    from ..service import EGOStore
    from ..storage.journal import Journal

    pts = np.asarray(points, dtype=np.float64)
    uids = np.arange(len(pts), dtype=np.int64) if ids is None \
        else np.asarray(ids, dtype=np.int64)
    with tempfile.TemporaryDirectory(prefix="ego-store-") as td:
        jpath = os.path.join(td, "store.journal")
        store = EGOStore(epsilon, compact_threshold=compact_threshold,
                         journal=jpath)
        for start in range(0, len(pts), 13):
            store.insert(pts[start:start + 13],
                         ids=uids[start:start + 13])
        if len(pts):
            idx = _store_churn_index(len(pts), seed)
            store.delete(uids[idx])
            store.insert(pts[idx], ids=uids[idx])
        expected_digest = store.state_digest()

        jr = Journal(jpath)
        ops = jr.store_ops()
        cut = len(ops) // 2 if crash_after is None \
            else min(int(crash_after), len(ops))
        jr.state["store_ops"] = ops[:cut]
        jr.flush()
        recovered = EGOStore.recover(jr)
        for op in ops[cut:]:  # the client re-sends what the crash lost
            if op[0] == "insert":
                recovered.insert(np.asarray(op[2], dtype=np.float64),
                                 ids=np.asarray(op[1], dtype=np.int64))
            elif op[0] == "delete":
                recovered.delete(op[1])
            else:
                recovered.set_epsilon(float(op[1]))
        if recovered.state_digest() != expected_digest:
            raise AssertionError(
                "journal replay digest mismatch: recovered store differs "
                "from the store that wrote the log")
        return canonical_pairs(recovered.join())


# -- differential comparison ------------------------------------------------


@dataclass
class ImplOutcome:
    """One implementation's result in a differential check."""

    name: str
    options: Dict[str, object]
    diff: Optional[PairSetDiff] = None
    error: Optional[str] = None
    #: Filled for approximate implementations: measured recall against
    #: the reference and the floor it was held to.
    recall: Optional[float] = None
    recall_floor: Optional[float] = None
    #: Absolute misses always tolerated regardless of the floor — the
    #: small-sample allowance.  A relative floor alone is statistically
    #: unsound on tiny workloads: with three true pairs, one
    #: model-permitted miss (probability 1−recall_target per pair, by
    #: design) drops measured recall to 0.67 and "fails" a 0.9 floor.
    miss_allowance: int = 0

    @property
    def approximate(self) -> bool:
        """The outcome was judged by recall floor, not digest equality."""
        return self.recall_floor is not None

    @property
    def ok(self) -> bool:
        if self.error is not None or self.diff is None:
            return False
        if not self.approximate:
            return self.diff.ok
        # Precision stays exact even for approximate joins: extra pairs
        # are a hard failure; only missing pairs trade against the floor
        # (or the absolute small-sample allowance, whichever is looser).
        if len(self.diff.extra) != 0:
            return False
        return (self.recall >= self.recall_floor
                or len(self.diff.missing) <= self.miss_allowance)

    def describe(self) -> str:
        label = self.name
        if self.options:
            opts = ",".join(f"{k}={v}" for k, v in
                            sorted(self.options.items()))
            label = f"{label}[{opts}]"
        if self.error is not None:
            return f"{label}: ERROR {self.error}"
        if self.approximate:
            verdict = "ok" if self.ok else "FAIL"
            allowance = (f", allowance {self.miss_allowance}"
                         if self.miss_allowance else "")
            return (f"{label}: {verdict} recall={self.recall:.4f} "
                    f"(floor {self.recall_floor:g}{allowance}, "
                    f"extra {len(self.diff.extra)})")
        return f"{label}: {self.diff.summary()}"


@dataclass
class DifferentialReport:
    """Outcome of comparing implementations against a reference."""

    reference: str
    pair_count: int
    outcomes: List[ImplOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def failures(self) -> List[ImplOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def describe(self) -> str:
        lines = [f"reference {self.reference}: {self.pair_count} pairs"]
        lines += ["  " + o.describe() for o in self.outcomes]
        return "\n".join(lines)


def differential_check(points: np.ndarray, epsilon: float,
                       configs: Sequence,
                       ids: Optional[np.ndarray] = None,
                       reference: str = "brute") -> DifferentialReport:
    """Run implementations against a reference and report differences.

    ``configs`` is a sequence of implementation names or ``(name,
    options)`` tuples.  An implementation raising an exception is
    reported as a failure rather than aborting the sweep.

    Implementations registered ``approximate=True`` are judged by the
    recall floor (entry default, overridable per config with a
    ``recall_floor`` option — consumed here, never passed to the
    implementation) instead of digest equality; extra pairs remain a
    hard failure for them too.  A per-config ``miss_allowance`` option
    (also consumed here; default 0) additionally tolerates that many
    absolute misses, making floor checks on tiny workloads — where one
    model-permitted miss swings recall from 1.0 to 0.0 — statistically
    sound.
    """
    expected = run_impl(reference, points, epsilon, ids=ids)
    report = DifferentialReport(reference=reference,
                                pair_count=len(expected))
    for config in configs:
        if isinstance(config, str):
            name, options = config, {}
        else:
            name, options = config[0], dict(config[1])
        outcome = ImplOutcome(name=name, options=options)
        entry = REGISTRY.get(name)
        run_options = dict(options)
        floor = None
        allowance = 0
        if entry is not None and entry.approximate:
            floor = float(run_options.pop("recall_floor",
                                          entry.recall_floor))
            allowance = int(run_options.pop("miss_allowance", 0))
        try:
            observed = run_impl(name, points, epsilon, ids=ids,
                                **run_options)
            outcome.diff = diff_pairs(expected, observed)
            if floor is not None:
                outcome.recall_floor = floor
                outcome.miss_allowance = allowance
                outcome.recall = 1.0 if len(expected) == 0 else \
                    1.0 - len(outcome.diff.missing) / len(expected)
        except Exception as exc:  # noqa: BLE001 - fuzzing must survive
            outcome.error = f"{type(exc).__name__}: {exc}"
        report.outcomes.append(outcome)
    return report
