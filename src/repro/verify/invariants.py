"""Runtime invariant hooks for the join pipeline.

The correctness of the EGO join rests on a handful of properties the
paper proves but the code can only honour by construction:

* **ε-interval coverage** (Lemmata 2 and 3) — every unit pair whose
  cell intervals overlap after widening by ε must actually be joined by
  the I/O schedule;
* **read-once in gallop mode** — while the schedule gallops, no unit is
  ever loaded twice (loading one twice means a still-needed unit was
  evicted, the precise bug the crabstep mode exists to prevent);
* **pin/unpin balance** — crabstep windows pin frames; every pin must
  be released, and a pinned frame must never be discarded or evicted;
* **pruning soundness** — when the sequence recursion prunes a pair of
  sequences (interval disjointness or the inactive-dimension rule of
  Section 3.3), those sequences must genuinely contain no join pair;
* **leaf exactness** — the pairs a leaf kernel emits are exactly the
  pairs within ε of the compared slices.

An :class:`InvariantMonitor` holds the hooks; it is created by
``JoinContext(invariants=True)`` and threaded through the scheduler,
the buffer pool and the sequence join.  Violations raise
:class:`InvariantViolation` at the offending operation, so a failure
pinpoints the broken component instead of surfacing as a wrong count
much later.  The expensive checks (pruning soundness, leaf exactness)
are capped by a work limit per call so the flag stays usable on
mid-sized workloads; the structural checks are O(1) per event.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np


class InvariantViolation(AssertionError):
    """A runtime invariant of the join pipeline was broken."""


class _BufferObserver:
    """Receives pin lifecycle events from a :class:`BufferPool`."""

    def __init__(self, monitor: "InvariantMonitor") -> None:
        self.monitor = monitor

    def on_pin(self, key) -> None:
        self.monitor.outstanding_pins.add(key)
        self.monitor.pin_events += 1

    def on_unpin(self, key) -> None:
        self.monitor.outstanding_pins.discard(key)
        self.monitor.unpin_events += 1

    def on_discard(self, key, pinned: bool) -> None:
        if pinned:
            raise InvariantViolation(
                f"buffer frame {key!r} discarded while pinned")
        self.monitor.outstanding_pins.discard(key)

    def on_evict(self, key, pinned: bool) -> None:
        if pinned:
            raise InvariantViolation(
                f"buffer frame {key!r} evicted while pinned")


class InvariantMonitor:
    """Collects events from the pipeline and asserts its invariants.

    Parameters
    ----------
    check_limit:
        Maximum ``len(s) × len(t)`` for which the exhaustive pruning-
        soundness and leaf-exactness checks run; larger calls are
        skipped (counted in ``skipped_checks``) so the flag stays
        affordable.
    """

    def __init__(self, check_limit: int = 4096) -> None:
        self.check_limit = check_limit
        # Buffer pin accounting.
        self.outstanding_pins: Set = set()
        self.pin_events = 0
        self.unpin_events = 0
        # Scheduler accounting.
        self.gallop_loaded: Set[int] = set()
        self.joined_unit_pairs: Set[Tuple[int, int]] = set()
        # Sequence-join accounting.
        self.prune_checks = 0
        self.leaf_checks = 0
        self.skipped_checks = 0

    # -- buffer pool ---------------------------------------------------------

    def buffer_observer(self) -> _BufferObserver:
        """The observer to install on the scheduler's buffer pool."""
        return _BufferObserver(self)

    def assert_pin_balance(self) -> None:
        """Every pin must have been released by the end of the run."""
        if self.outstanding_pins:
            raise InvariantViolation(
                f"unbalanced pins at end of schedule: "
                f"{sorted(self.outstanding_pins)} still pinned "
                f"({self.pin_events} pins / {self.unpin_events} unpins)")

    # -- I/O scheduler -------------------------------------------------------

    def note_gallop_load(self, unit: int) -> None:
        """Gallop mode must load every unit exactly once."""
        if unit in self.gallop_loaded:
            raise InvariantViolation(
                f"gallop mode loaded unit {unit} twice — a unit with an "
                f"open ε-interval was evicted")
        self.gallop_loaded.add(unit)

    def note_unit_pair(self, a: int, b: int) -> None:
        """Record a unit pair handed to the join (or resumed as done)."""
        self.joined_unit_pairs.add((min(a, b), max(a, b)))

    def check_interval_coverage(self, meta: Dict[int, object],
                                num_units: int) -> None:
        """Lemma 2/3: every unit pair inside the ε-interval was joined.

        ``meta`` maps unit ordinals to objects with ``first_cells`` and
        ``last_plus_eps_cells`` (the scheduler's :class:`UnitMeta`).
        The file is EGO-sorted, so per unit ``b`` the candidate range is
        contiguous and the descending scan can stop at the first ``a``
        whose interval has provably closed.
        """
        from ..core.ego_order import lex_less

        missing: List[Tuple[int, int]] = []
        for b in range(num_units):
            mb = meta.get(b)
            if mb is None:
                raise InvariantViolation(
                    f"unit {b} was never loaded by the schedule")
            for a in range(b, -1, -1):
                ma = meta.get(a)
                if ma is None:
                    raise InvariantViolation(
                        f"unit {a} was never loaded by the schedule")
                if a != b and lex_less(ma.last_plus_eps_cells,
                                       mb.first_cells):
                    break
                if (a, b) not in self.joined_unit_pairs:
                    missing.append((a, b))
        if missing:
            raise InvariantViolation(
                f"{len(missing)} unit pair(s) inside the ε-interval were "
                f"never joined, e.g. {missing[:5]}")

    # -- sequence join -------------------------------------------------------

    def _combined(self, s_points: np.ndarray, t_points: np.ndarray,
                  metric) -> np.ndarray:
        diffs = s_points[:, None, :] - t_points[None, :, :]
        contrib = metric.contributions(diffs)
        if metric.combine_max:
            return contrib.max(axis=-1)
        return contrib.sum(axis=-1)

    def check_prune(self, s, t, ctx) -> None:
        """A pruned sequence pair must contain no pair within ε."""
        if len(s) * len(t) > self.check_limit:
            self.skipped_checks += 1
            return
        self.prune_checks += 1
        combined = self._combined(s.points, t.points, ctx.metric)
        hits = int((combined <= ctx.threshold).sum())
        if hits:
            i, j = np.unravel_index(int(np.argmin(combined)),
                                    combined.shape)
            raise InvariantViolation(
                f"pruning dropped {hits} join pair(s): sequence pair of "
                f"lengths {len(s)}×{len(t)} was excluded but ids "
                f"({int(s.ids[i])}, {int(t.ids[j])}) are within ε")

    def check_leaf(self, s, t, ia: np.ndarray, ib: np.ndarray, ctx,
                   upper_triangle: bool) -> None:
        """A leaf kernel must emit exactly the within-ε index pairs."""
        if len(s) * len(t) > self.check_limit:
            self.skipped_checks += 1
            return
        self.leaf_checks += 1
        combined = self._combined(s.points, t.points, ctx.metric)
        mask = combined <= ctx.threshold
        if upper_triangle:
            mask &= np.triu(np.ones_like(mask, dtype=bool), k=1)
        want = set(zip(*np.nonzero(mask)))
        got = set(zip(ia.tolist(), ib.tolist()))
        if want != got:
            raise InvariantViolation(
                f"leaf kernel ({ctx.engine}) emitted a wrong pair set on "
                f"a {len(s)}×{len(t)} leaf: {len(want - got)} missing, "
                f"{len(got - want)} spurious")

    # -- reporting -----------------------------------------------------------

    def summary(self) -> str:
        """One-line account of what the monitor observed."""
        return (f"invariants: {len(self.gallop_loaded)} gallop loads, "
                f"{len(self.joined_unit_pairs)} unit pairs, "
                f"{self.pin_events}/{self.unpin_events} pin/unpin, "
                f"{self.prune_checks} prune checks, "
                f"{self.leaf_checks} leaf checks, "
                f"{self.skipped_checks} skipped")


def make_monitor(enabled: bool,
                 check_limit: int = 4096) -> Optional[InvariantMonitor]:
    """Monitor factory used by :class:`~repro.core.sequence_join.JoinContext`."""
    return InvariantMonitor(check_limit=check_limit) if enabled else None
