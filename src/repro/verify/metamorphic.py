"""Metamorphic relations over the similarity join.

Each relation transforms a workload in a way whose effect on the exact
result set is known a priori, runs the implementation on both sides,
and checks the predicted correspondence:

* **permutation invariance** — shuffling the input rows (keeping ids
  attached) must not change the unordered pair set;
* **translation invariance** — adding a constant vector to every point
  must not change it either (the ε-grid shifts, the distances do not);
* **ε-monotonicity** — the result at ε₁ ≤ ε₂ is a subset of the result
  at ε₂, and planted boundary pairs make the inclusion strict;
* **R ⋈ S symmetry** — swapping the two inputs mirrors every pair;
* **self ≡ R ⋈ R** — the self-join equals the two-set join of a set
  with itself minus the diagonal (after canonicalisation).

Relations need no reference implementation, which makes them the layer
that can catch a bug shared by *every* implementation (a misread of the
paper, say) — the differential oracle alone cannot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.ego_join import ego_join
from .canonical import canonical_pairs, diff_pairs
from .oracle import REGISTRY, run_impl

RELATION_NAMES = ("permutation", "translation", "epsilon_nesting",
                  "rs_symmetry", "self_vs_rr")


@dataclass
class RelationReport:
    """Outcome of one metamorphic relation check."""

    relation: str
    impl: str
    ok: bool
    detail: str = ""

    def describe(self) -> str:
        status = "ok" if self.ok else "VIOLATED"
        text = f"{self.relation}({self.impl}): {status}"
        return f"{text} — {self.detail}" if self.detail else text


def check_permutation(impl: str, points: np.ndarray, epsilon: float,
                      seed: int = 0, **options) -> RelationReport:
    """Shuffling rows while keeping ids attached is a no-op."""
    base = run_impl(impl, points, epsilon, **options)
    perm = np.random.default_rng(seed).permutation(len(points))
    shuffled = run_impl(impl, points[perm], epsilon,
                        ids=perm.astype(np.int64), **options)
    diff = diff_pairs(base, shuffled)
    return RelationReport("permutation", impl, diff.ok, diff.summary())


def check_translation(impl: str, points: np.ndarray, epsilon: float,
                      offset: Optional[np.ndarray] = None,
                      **options) -> RelationReport:
    """A rigid translation preserves all distances, hence the result."""
    entry = REGISTRY.get(impl)
    if entry is not None and entry.unit_cube_only:
        return RelationReport("translation", impl, True,
                              "skipped: unit-cube-only implementation")
    if offset is None:
        # An offset that is *not* an ε multiple, so every grid cell
        # boundary moves relative to the data.
        offset = np.full(points.shape[1], 0.37 * epsilon + 1.25)
    base = run_impl(impl, points, epsilon, **options)
    moved = run_impl(impl, points + offset, epsilon, **options)
    diff = diff_pairs(base, moved)
    return RelationReport("translation", impl, diff.ok, diff.summary())


def check_epsilon_nesting(impl: str, points: np.ndarray,
                          epsilons: Sequence[float],
                          **options) -> RelationReport:
    """Result sets are nested along a growing ε ladder."""
    eps_sorted = sorted(float(e) for e in epsilons)
    previous = None
    prev_eps = None
    for eps in eps_sorted:
        current = {tuple(r) for r in run_impl(impl, points, eps, **options)}
        if previous is not None and not previous <= current:
            dropped = sorted(previous - current)[:5]
            return RelationReport(
                "epsilon_nesting", impl, False,
                f"pairs at ε={prev_eps} missing at ε={eps}: {dropped}")
        previous, prev_eps = current, eps
    return RelationReport("epsilon_nesting", impl, True,
                          f"nested over {len(eps_sorted)} epsilons")


def check_rs_symmetry(points_r: np.ndarray, points_s: np.ndarray,
                      epsilon: float, **options) -> RelationReport:
    """R ⋈ S equals the mirror of S ⋈ R (two-set EGO join)."""
    rs = ego_join(points_r, points_s, epsilon, **options)
    sr = ego_join(points_s, points_r, epsilon, **options)
    forward = canonical_pairs(rs.pairs(), ordered=True, keep_diagonal=True)
    a, b = sr.pairs()
    mirrored = canonical_pairs((b, a), ordered=True, keep_diagonal=True)
    diff = diff_pairs(forward, mirrored, ordered=True)
    return RelationReport("rs_symmetry", "ego_join", diff.ok,
                          diff.summary())


def check_self_vs_rr(impl: str, points: np.ndarray, epsilon: float,
                     **options) -> RelationReport:
    """Self-join ≡ R ⋈ R minus the diagonal (canonical unordered form)."""
    self_pairs = run_impl(impl, points, epsilon, **options)
    rr = ego_join(points, points, epsilon)
    diff = diff_pairs(self_pairs, canonical_pairs(rr.pairs()))
    return RelationReport("self_vs_rr", impl, diff.ok, diff.summary())


def run_relations(impl: str, points: np.ndarray, epsilon: float,
                  seed: int = 0, relations: Sequence[str] = RELATION_NAMES,
                  **options) -> List[RelationReport]:
    """Run the named relations for one implementation on one workload."""
    reports: List[RelationReport] = []
    for relation in relations:
        if relation == "permutation":
            reports.append(check_permutation(impl, points, epsilon,
                                             seed=seed, **options))
        elif relation == "translation":
            reports.append(check_translation(impl, points, epsilon,
                                             **options))
        elif relation == "epsilon_nesting":
            ladder = (0.5 * epsilon, epsilon, 1.5 * epsilon)
            reports.append(check_epsilon_nesting(impl, points, ladder,
                                                 **options))
        elif relation == "rs_symmetry":
            half = max(1, len(points) // 2)
            reports.append(check_rs_symmetry(points[:half], points[half:],
                                             epsilon))
        elif relation == "self_vs_rr":
            reports.append(check_self_vs_rr(impl, points, epsilon,
                                            **options))
        else:
            raise ValueError(f"unknown relation {relation!r}")
    return reports
