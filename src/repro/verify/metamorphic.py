"""Metamorphic relations over the similarity join.

Each relation transforms a workload in a way whose effect on the exact
result set is known a priori, runs the implementation on both sides,
and checks the predicted correspondence:

* **permutation invariance** — shuffling the input rows (keeping ids
  attached) must not change the unordered pair set;
* **translation invariance** — adding a constant vector to every point
  must not change it either (the ε-grid shifts, the distances do not);
* **ε-monotonicity** — the result at ε₁ ≤ ε₂ is a subset of the result
  at ε₂, and planted boundary pairs make the inclusion strict;
* **R ⋈ S symmetry** — swapping the two inputs mirrors every pair;
* **self ≡ R ⋈ R** — the self-join equals the two-set join of a set
  with itself minus the diagonal (after canonicalisation).

A second family targets the incremental :class:`~repro.service.EGOStore`
— relations over *update sequences* rather than point sets:

* **insert-union** — inserting the points in any batch split and then
  joining equals the batch join of their union;
* **insert-delete identity** — inserting extra points and deleting
  them again returns the store to its previous pair set (and state
  digest);
* **store ε-nesting** — on one live store, ``set_epsilon`` to ε′ ≤ ε
  shrinks the join to a subset (exercising the result cache across the
  epsilon changes).

A third family targets *approximate* joins (the LSH engine), whose
pair set is not unique — so the relations pin down what is invariant
anyway:

* **precision-1** — the reported pairs are always a subset of the
  exact result (candidates are exactly re-verified, so approximation
  may only ever *miss*, never invent);
* **tables-monotone** — the reported pair set is monotone
  non-decreasing in the table count ``L`` (exactly, not just in
  expectation: table ``t`` of the hash family depends only on
  ``(seed, t)``, so an ``L+1``-table run probes a superset of buckets);
* **determinism** — same-seed runs are bit-identical (equal canonical
  digests), making every approximate failure replayable.

Relations need no reference implementation, which makes them the layer
that can catch a bug shared by *every* implementation (a misread of the
paper, say) — the differential oracle alone cannot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.ego_join import ego_join
from .canonical import canonical_pairs, diff_pairs, pair_digest
from .oracle import REGISTRY, run_impl

RELATION_NAMES = ("permutation", "translation", "epsilon_nesting",
                  "rs_symmetry", "self_vs_rr")

STORE_RELATION_NAMES = ("store_insert_union", "store_insert_delete",
                        "store_epsilon_nesting")

LSH_RELATION_NAMES = ("lsh_precision", "lsh_tables_monotone",
                      "lsh_determinism")


@dataclass
class RelationReport:
    """Outcome of one metamorphic relation check."""

    relation: str
    impl: str
    ok: bool
    detail: str = ""

    def describe(self) -> str:
        status = "ok" if self.ok else "VIOLATED"
        text = f"{self.relation}({self.impl}): {status}"
        return f"{text} — {self.detail}" if self.detail else text


def check_permutation(impl: str, points: np.ndarray, epsilon: float,
                      seed: int = 0, **options) -> RelationReport:
    """Shuffling rows while keeping ids attached is a no-op."""
    base = run_impl(impl, points, epsilon, **options)
    perm = np.random.default_rng(seed).permutation(len(points))
    shuffled = run_impl(impl, points[perm], epsilon,
                        ids=perm.astype(np.int64), **options)
    diff = diff_pairs(base, shuffled)
    return RelationReport("permutation", impl, diff.ok, diff.summary())


def check_translation(impl: str, points: np.ndarray, epsilon: float,
                      offset: Optional[np.ndarray] = None,
                      **options) -> RelationReport:
    """A rigid translation preserves all distances, hence the result."""
    entry = REGISTRY.get(impl)
    if entry is not None and entry.unit_cube_only:
        return RelationReport("translation", impl, True,
                              "skipped: unit-cube-only implementation")
    if offset is None:
        # An offset that is *not* an ε multiple, so every grid cell
        # boundary moves relative to the data.
        offset = np.full(points.shape[1], 0.37 * epsilon + 1.25)
    base = run_impl(impl, points, epsilon, **options)
    moved = run_impl(impl, points + offset, epsilon, **options)
    diff = diff_pairs(base, moved)
    return RelationReport("translation", impl, diff.ok, diff.summary())


def check_epsilon_nesting(impl: str, points: np.ndarray,
                          epsilons: Sequence[float],
                          **options) -> RelationReport:
    """Result sets are nested along a growing ε ladder."""
    eps_sorted = sorted(float(e) for e in epsilons)
    previous = None
    prev_eps = None
    for eps in eps_sorted:
        current = {tuple(r) for r in run_impl(impl, points, eps, **options)}
        if previous is not None and not previous <= current:
            dropped = sorted(previous - current)[:5]
            return RelationReport(
                "epsilon_nesting", impl, False,
                f"pairs at ε={prev_eps} missing at ε={eps}: {dropped}")
        previous, prev_eps = current, eps
    return RelationReport("epsilon_nesting", impl, True,
                          f"nested over {len(eps_sorted)} epsilons")


def check_rs_symmetry(points_r: np.ndarray, points_s: np.ndarray,
                      epsilon: float, **options) -> RelationReport:
    """R ⋈ S equals the mirror of S ⋈ R (two-set EGO join)."""
    rs = ego_join(points_r, points_s, epsilon, **options)
    sr = ego_join(points_s, points_r, epsilon, **options)
    forward = canonical_pairs(rs.pairs(), ordered=True, keep_diagonal=True)
    a, b = sr.pairs()
    mirrored = canonical_pairs((b, a), ordered=True, keep_diagonal=True)
    diff = diff_pairs(forward, mirrored, ordered=True)
    return RelationReport("rs_symmetry", "ego_join", diff.ok,
                          diff.summary())


def check_self_vs_rr(impl: str, points: np.ndarray, epsilon: float,
                     **options) -> RelationReport:
    """Self-join ≡ R ⋈ R minus the diagonal (canonical unordered form)."""
    self_pairs = run_impl(impl, points, epsilon, **options)
    rr = ego_join(points, points, epsilon)
    diff = diff_pairs(self_pairs, canonical_pairs(rr.pairs()))
    return RelationReport("self_vs_rr", impl, diff.ok, diff.summary())


def _fresh_store(epsilon: float, n: int):
    from ..service import EGOStore

    # A threshold below n so the relation sequences cross at least one
    # compaction — delta, dead rows and main run all participate.
    return EGOStore(epsilon, compact_threshold=max(4, n // 3))


def check_store_insert_union(points: np.ndarray, epsilon: float,
                             seed: int = 0,
                             splits: int = 4) -> RelationReport:
    """Insert-all-then-join ≡ the batch join of the union.

    The points are inserted in ``splits`` randomly-sized batches (a
    seeded split, so failures replay); the store's join must equal the
    one-shot batch pipeline on the same set.
    """
    pts = np.asarray(points, dtype=np.float64)
    store = _fresh_store(epsilon, len(pts))
    rng = np.random.default_rng(seed)
    cuts = np.sort(rng.integers(0, len(pts) + 1, size=max(0, splits - 1)))
    for lo, hi in zip(np.r_[0, cuts], np.r_[cuts, len(pts)]):
        if hi > lo:
            store.insert(pts[lo:hi],
                         ids=np.arange(lo, hi, dtype=np.int64))
    batch = run_impl("ego", pts, epsilon)
    diff = diff_pairs(batch, store.join())
    return RelationReport("store_insert_union", "ego_store", diff.ok,
                          diff.summary())


def check_store_insert_delete(points: np.ndarray, epsilon: float,
                              seed: int = 0,
                              extras: int = 12) -> RelationReport:
    """Inserting ``extras`` points and deleting them is the identity.

    Identity on the *pair set*: after a final compaction the deleted
    rows must leave no residue in any join.  The state digest and data
    version, by contrast, must have advanced — a store that answered
    from a stale snapshot would keep both unchanged.
    """
    pts = np.asarray(points, dtype=np.float64)
    store = _fresh_store(epsilon, len(pts))
    if len(pts):
        store.insert(pts, ids=np.arange(len(pts), dtype=np.int64))
    store.compact()
    before = store.join()
    digest_before = store.state_digest()
    version_before = store.data_version
    rng = np.random.default_rng(seed)
    noise = rng.random((extras, pts.shape[1]))
    ids = store.insert(noise)
    store.delete(ids)
    store.compact()
    after = store.join()
    diff = diff_pairs(before, after)
    detail = diff.summary()
    ok = diff.ok
    if ok and store.state_digest() == digest_before:
        ok = False
        detail = ("state digest unchanged across insert+delete — the "
                  "data version must advance")
    if ok and store.data_version <= version_before:
        ok = False
        detail = "data version did not advance across insert+delete"
    return RelationReport("store_insert_delete", "ego_store", ok, detail)


def check_store_epsilon_nesting(points: np.ndarray,
                                epsilons: Sequence[float],
                                seed: int = 0) -> RelationReport:
    """On one live store, joins along a growing ε ladder are nested.

    Uses ``set_epsilon`` between joins (instead of per-call epsilons),
    so the relation also exercises cache invalidation across epsilon
    changes; each ε is joined twice to route the second read through
    the cache.
    """
    pts = np.asarray(points, dtype=np.float64)
    store = _fresh_store(max(float(e) for e in epsilons), len(pts))
    if len(pts):
        store.insert(pts, ids=np.arange(len(pts), dtype=np.int64))
    previous = None
    prev_eps = None
    for eps in sorted(float(e) for e in epsilons):
        store.set_epsilon(eps)
        current = {tuple(r) for r in store.join()}
        again = {tuple(r) for r in store.join()}
        if again != current:
            return RelationReport(
                "store_epsilon_nesting", "ego_store", False,
                f"cached join at ε={eps} differs from the fresh join")
        if previous is not None and not previous <= current:
            dropped = sorted(previous - current)[:5]
            return RelationReport(
                "store_epsilon_nesting", "ego_store", False,
                f"pairs at ε={prev_eps} missing at ε={eps}: {dropped}")
        previous, prev_eps = current, eps
    return RelationReport("store_epsilon_nesting", "ego_store", True,
                          f"nested over {len(epsilons)} epsilons")


def check_lsh_precision(points: np.ndarray, epsilon: float,
                        impl: str = "lsh", reference: str = "brute",
                        **options) -> RelationReport:
    """Reported pairs are a subset of the exact result, always.

    This is the precision-1 invariant: an approximate join may miss
    pairs (recall < 1) but a single pair outside the exact result means
    the re-verification step is broken, not the hashing.
    """
    exact = run_impl(reference, points, epsilon)
    approx = run_impl(impl, points, epsilon, **options)
    diff = diff_pairs(exact, approx)
    ok = len(diff.extra) == 0
    detail = (f"{len(approx)}/{len(exact)} pairs reported, "
              f"{len(diff.extra)} outside the exact result")
    return RelationReport("lsh_precision", impl, ok, detail)


def check_lsh_tables_monotone(points: np.ndarray, epsilon: float,
                              impl: str = "lsh",
                              ladder: Sequence[int] = (1, 2, 4),
                              **options) -> RelationReport:
    """The reported pair set is monotone non-decreasing in ``L``.

    Exact set inclusion, not a count comparison: the hash family's
    determinism contract makes an ``L+1``-table probe a strict superset
    of the ``L``-table probe's buckets, so any dropped pair is a bug.
    """
    options = dict(options)
    options.pop("tables", None)
    options.pop("recall_target", None)
    previous = None
    prev_tables = None
    for tables in sorted(int(t) for t in ladder):
        current = {tuple(r) for r in
                   run_impl(impl, points, epsilon, tables=tables,
                            **options)}
        if previous is not None and not previous <= current:
            dropped = sorted(previous - current)[:5]
            return RelationReport(
                "lsh_tables_monotone", impl, False,
                f"pairs at L={prev_tables} missing at L={tables}: "
                f"{dropped}")
        previous, prev_tables = current, tables
    return RelationReport("lsh_tables_monotone", impl, True,
                          f"monotone over L={sorted(ladder)}")


def check_lsh_determinism(points: np.ndarray, epsilon: float,
                          impl: str = "lsh", **options) -> RelationReport:
    """Same-seed runs produce bit-identical canonical pair sets."""
    first = run_impl(impl, points, epsilon, **options)
    second = run_impl(impl, points, epsilon, **options)
    ok = pair_digest(first) == pair_digest(second)
    detail = "digests equal" if ok else \
        (f"same-seed runs differ: {len(first)} vs {len(second)} pairs, "
         f"digest mismatch")
    return RelationReport("lsh_determinism", impl, ok, detail)


def run_lsh_relations(points: np.ndarray, epsilon: float,
                      relations: Sequence[str] = LSH_RELATION_NAMES,
                      impl: str = "lsh",
                      **options) -> List[RelationReport]:
    """Run the named approximate-join relations on one workload."""
    reports: List[RelationReport] = []
    for relation in relations:
        if relation == "lsh_precision":
            reports.append(check_lsh_precision(points, epsilon, impl=impl,
                                               **options))
        elif relation == "lsh_tables_monotone":
            reports.append(check_lsh_tables_monotone(points, epsilon,
                                                     impl=impl, **options))
        elif relation == "lsh_determinism":
            reports.append(check_lsh_determinism(points, epsilon,
                                                 impl=impl, **options))
        else:
            raise ValueError(f"unknown LSH relation {relation!r}")
    return reports


def run_store_relations(points: np.ndarray, epsilon: float, seed: int = 0,
                        relations: Sequence[str] = STORE_RELATION_NAMES
                        ) -> List[RelationReport]:
    """Run the named update-sequence relations on one workload."""
    reports: List[RelationReport] = []
    for relation in relations:
        if relation == "store_insert_union":
            reports.append(check_store_insert_union(points, epsilon,
                                                    seed=seed))
        elif relation == "store_insert_delete":
            reports.append(check_store_insert_delete(points, epsilon,
                                                     seed=seed))
        elif relation == "store_epsilon_nesting":
            ladder = (0.5 * epsilon, epsilon, 1.5 * epsilon)
            reports.append(check_store_epsilon_nesting(points, ladder,
                                                       seed=seed))
        else:
            raise ValueError(f"unknown store relation {relation!r}")
    return reports


def run_relations(impl: str, points: np.ndarray, epsilon: float,
                  seed: int = 0, relations: Sequence[str] = RELATION_NAMES,
                  **options) -> List[RelationReport]:
    """Run the named relations for one implementation on one workload."""
    reports: List[RelationReport] = []
    for relation in relations:
        if relation == "permutation":
            reports.append(check_permutation(impl, points, epsilon,
                                             seed=seed, **options))
        elif relation == "translation":
            reports.append(check_translation(impl, points, epsilon,
                                             **options))
        elif relation == "epsilon_nesting":
            ladder = (0.5 * epsilon, epsilon, 1.5 * epsilon)
            reports.append(check_epsilon_nesting(impl, points, ladder,
                                                 **options))
        elif relation == "rs_symmetry":
            half = max(1, len(points) // 2)
            reports.append(check_rs_symmetry(points[:half], points[half:],
                                             epsilon))
        elif relation == "self_vs_rr":
            reports.append(check_self_vs_rr(impl, points, epsilon,
                                            **options))
        else:
            raise ValueError(f"unknown relation {relation!r}")
    return reports
