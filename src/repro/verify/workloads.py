"""Seeded adversarial workloads for differential verification.

The fuzz driver and the metamorphic tests both draw from these
generators.  Each workload targets a failure mode the interval
reasoning of the EGO join (Lemmata 2 and 3) is most fragile against:

* ``boundary`` — pairs planted at distance ε·(1 ± 2⁻⁴⁰), straddling the
  predicate boundary within one or two ulps, where an off-by-one in a
  cell bound or a sloppy ``<`` vs ``≤`` flips membership;
* ``duplicates`` — exact duplicates and dense micro-clusters, stressing
  diagonal exclusion and tie-handling of the sort;
* ``degenerate`` — constant dimensions and collinear points, the case
  in which inactive-dimension pruning does the most work (and a broken
  cell-distance test over-prunes most easily);
* ``clusters`` — correlated Gaussian clusters: skewed ε-cell occupancy
  and interval lengths far from the uniform case;
* ``skewed`` — one heavy cluster holding most of the points over a
  sparse uniform background: the worst case for uniform work
  partitioning (one shard inherits nearly all candidate pairs), which
  is what the adaptive shard planner of :mod:`repro.core.shard` must
  rebalance;
* ``store_ops`` — boundary mates planted *across* the insertion order
  (tail points against head anchors), so under the incremental store's
  churned insert sequence the delta×main candidate windows carry pairs
  straddling the ε predicate within a few ulps;
* ``near_threshold`` — *every* pair distance concentrated at
  ε·(1 ± 2⁻⁴⁰): anchors spaced far apart, each with a ring of mates
  straddling the predicate by ulps.  Built for the approximate (LSH)
  engine, whose collision probabilities are hardest exactly at
  distance ε — the recall model's worst case is the only case here —
  while the exact re-verification still has to decide membership at
  ulp distance;
* ``uniform`` — the baseline of the paper's experiments.

All generators are pure functions of their seed; the same
``(kind, n, dimensions, epsilon, seed)`` tuple always produces the same
array, which is what makes fuzz artifacts replayable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..data.synthetic import gaussian_clusters, uniform

#: Relative offset for boundary pairs: ε·(1 ± 2⁻⁴⁰) places the planted
#: mate a few double-precision ulps on either side of the predicate.
BOUNDARY_DELTA = 2.0 ** -40

WORKLOAD_KINDS: Tuple[str, ...] = (
    "uniform", "boundary", "duplicates", "degenerate", "clusters",
    "skewed", "store_ops", "near_threshold")


@dataclass
class Workload:
    """One generated verification workload."""

    kind: str
    seed: int
    epsilon: float
    points: np.ndarray

    @property
    def n(self) -> int:
        return len(self.points)

    @property
    def dimensions(self) -> int:
        return self.points.shape[1]


def _boundary(n: int, dimensions: int, epsilon: float,
              rng: np.random.Generator) -> np.ndarray:
    """Base points plus mates planted right at the ε boundary."""
    n_base = max(1, n // 3)
    base = rng.random((n_base, dimensions))
    rows = [base]
    produced = n_base
    side = 1.0
    while produced < n:
        anchor = base[rng.integers(0, n_base)]
        direction = rng.normal(size=dimensions)
        norm = np.linalg.norm(direction)
        if norm == 0.0:
            continue
        direction /= norm
        # Alternate just-inside and just-outside mates.
        radius = epsilon * (1.0 + side * BOUNDARY_DELTA)
        side = -side
        rows.append((anchor + radius * direction)[None, :])
        produced += 1
    return np.concatenate(rows)[:n]


def _duplicates(n: int, dimensions: int, epsilon: float,
                rng: np.random.Generator) -> np.ndarray:
    """Exact duplicates and micro-clusters much tighter than ε."""
    n_unique = max(1, n // 4)
    base = rng.random((n_unique, dimensions))
    assignment = rng.integers(0, n_unique, size=n)
    jitter = rng.normal(0.0, epsilon * 1e-3, size=(n, dimensions))
    # Half the copies are bit-exact duplicates, half are jittered.
    exact = rng.random(n) < 0.5
    jitter[exact] = 0.0
    return base[assignment] + jitter


def _degenerate(n: int, dimensions: int, epsilon: float,
                rng: np.random.Generator) -> np.ndarray:
    """Constant dimensions and a collinear subset."""
    pts = rng.random((n, dimensions))
    # Freeze a prefix of dimensions to constants: every sequence shares
    # those cells, so inactive-dimension pruning decides everything.
    frozen = max(1, dimensions // 2)
    pts[:, :frozen] = rng.random(frozen)
    # Lay a third of the points on one line through the cube.
    n_line = n // 3
    if n_line:
        start = rng.random(dimensions)
        direction = rng.normal(size=dimensions)
        direction /= max(np.linalg.norm(direction), 1e-12)
        t = np.sort(rng.random(n_line))
        pts[:n_line] = start + t[:, None] * direction * 0.5
    return pts


def _skewed(n: int, dimensions: int, epsilon: float,
            rng: np.random.Generator) -> np.ndarray:
    """One dominating tight cluster over a sparse uniform background.

    ~70% of the points fall inside a single cluster a few ε wide, so
    nearly all candidate pairs live in a handful of adjacent ε-cells at
    one spot of the grid order; the rest is uniform background that
    contributes volume but almost no pairs.
    """
    n_heavy = max(1, (7 * n) // 10)
    center = rng.random(dimensions) * 0.6 + 0.2
    heavy = center + rng.normal(0.0, epsilon, size=(n_heavy, dimensions))
    background = rng.random((n - n_heavy, dimensions))
    pts = np.concatenate([heavy, background])[:n]
    return np.clip(pts, 0.0, 1.0)


def _store_ops(n: int, dimensions: int, epsilon: float,
               rng: np.random.Generator) -> np.ndarray:
    """Boundary mates planted across the insertion order.

    The head of the array is a uniform base; every tail point is a
    mate at distance ε·(1 ± 2⁻⁴⁰) of a random head anchor.  A store
    that inserts this array in order holds exactly the tail in its
    delta buffer at query time (below the compaction threshold), so
    the delta×main cross-join — the path batch joins never take — has
    to decide predicate membership at ulp distance.
    """
    n_tail = max(1, n // 4)
    n_head = max(1, n - n_tail)
    head = rng.random((n_head, dimensions))
    tail = []
    side = 1.0
    while len(tail) < n_tail:
        anchor = head[rng.integers(0, n_head)]
        direction = rng.normal(size=dimensions)
        norm = np.linalg.norm(direction)
        if norm == 0.0:
            continue
        direction /= norm
        radius = epsilon * (1.0 + side * BOUNDARY_DELTA)
        side = -side
        tail.append(anchor + radius * direction)
    return np.concatenate([head, np.asarray(tail)])[:n]


def _near_threshold(n: int, dimensions: int, epsilon: float,
                    rng: np.random.Generator) -> np.ndarray:
    """Anchors far apart, every mate at distance ε·(1 ± 2⁻⁴⁰).

    Unlike ``boundary`` (uniform base + some planted mates), here the
    planted pairs are essentially the *only* pairs: anchors sit on a
    coarse jittered lattice ≫ 2ε apart, so the expected pair set is
    exactly the just-inside mates.  Recall estimation for the LSH
    engine is then measured purely at its worst-case distance.
    """
    n_anchor = max(1, n // 4)
    # Seeded thinning: accept uniform draws at least 3ε from every
    # accepted anchor, so anchor-anchor (and mate-mate across anchors)
    # distances stay far outside ε.  When the cube is too crowded for
    # the separation (large ε), later draws are accepted as-is — the
    # extra pairs are merely ordinary in-ε pairs, still exact.
    accepted = [rng.random(dimensions)]
    attempts = 0
    while len(accepted) < n_anchor:
        candidate = rng.random(dimensions)
        attempts += 1
        gap_sq = min(float(np.sum((candidate - a) ** 2))
                     for a in accepted)
        if gap_sq >= (3.0 * epsilon) ** 2 or attempts > 20 * n_anchor:
            accepted.append(candidate)
    anchors = np.asarray(accepted)
    rows = [anchors]
    produced = n_anchor
    side = 1.0
    while produced < n:
        anchor = anchors[rng.integers(0, n_anchor)]
        direction = rng.normal(size=dimensions)
        norm = np.linalg.norm(direction)
        if norm == 0.0:
            continue
        direction /= norm
        radius = epsilon * (1.0 + side * BOUNDARY_DELTA)
        side = -side
        rows.append((anchor + radius * direction)[None, :])
        produced += 1
    return np.concatenate(rows)[:n]


def generate_workload(kind: str, n: int, dimensions: int, epsilon: float,
                      seed: int) -> Workload:
    """Generate one seeded workload of the named ``kind``."""
    if kind not in WORKLOAD_KINDS:
        raise ValueError(
            f"unknown workload kind {kind!r}; known: {WORKLOAD_KINDS}")
    if n < 1 or dimensions < 1:
        raise ValueError("n and dimensions must be positive")
    rng = np.random.default_rng(seed)
    if kind == "uniform":
        pts = uniform(n, dimensions, seed=rng)
    elif kind == "boundary":
        pts = _boundary(n, dimensions, epsilon, rng)
    elif kind == "duplicates":
        pts = _duplicates(n, dimensions, epsilon, rng)
    elif kind == "degenerate":
        pts = _degenerate(n, dimensions, epsilon, rng)
    elif kind == "skewed":
        pts = _skewed(n, dimensions, epsilon, rng)
    elif kind == "store_ops":
        pts = _store_ops(n, dimensions, epsilon, rng)
    elif kind == "near_threshold":
        pts = _near_threshold(n, dimensions, epsilon, rng)
    else:
        pts = gaussian_clusters(n, dimensions, clusters=max(2, n // 40),
                                std=epsilon / 2, seed=rng)
    return Workload(kind=kind, seed=seed, epsilon=float(epsilon),
                    points=np.asarray(pts, dtype=np.float64))


#: Named worker-fault regimes for the supervised parallel join.  Each
#: maps to :class:`~repro.storage.faults.WorkerFaultPlan` kwargs; the
#: seed is supplied by the caller so nightly fuzz varies the fault
#: placement while every individual run stays replayable.
WORKER_FAULT_KINDS: Tuple[str, ...] = ("crashy", "stally", "corrupting",
                                       "flaky", "mixed")

_WORKER_FAULT_PRESETS = {
    # One fault kind at a time isolates each rung of the recovery
    # ladder; "mixed" exercises their interleavings.
    "crashy": {"crash_rate": 0.06},
    "stally": {"stall_rate": 0.04, "stall_seconds": 30.0},
    "corrupting": {"corrupt_rate": 0.15},
    "flaky": {"error_rate": 0.25},
    "mixed": {"crash_rate": 0.03, "corrupt_rate": 0.08,
              "error_rate": 0.12},
}


def worker_fault_plan(kind: str, seed: int):
    """A seeded :class:`~repro.storage.faults.WorkerFaultPlan` preset.

    Every preset keeps ``max_attempt=0`` (faults fire on first attempts
    only), so a correct supervisor always recovers and the joined pair
    set must equal the fault-free run's — which is exactly the
    differential check the fuzz driver applies.
    """
    from ..storage.faults import WorkerFaultPlan

    if kind not in WORKER_FAULT_KINDS:
        raise ValueError(f"unknown worker fault kind {kind!r}; "
                         f"known: {WORKER_FAULT_KINDS}")
    return WorkerFaultPlan(seed=seed, **_WORKER_FAULT_PRESETS[kind])
