"""Differential verification subsystem.

Machine-checks the property every PR claims informally: all exact join
configurations — any algorithm, engine, worker count or storage wrapper
— produce the identical pair set, and the approximate (LSH) engine
produces a *subset* of it whose recall meets a configurable floor.
Four layers:

* :mod:`~repro.verify.canonical` — canonical pair sets, digests, diffs;
* :mod:`~repro.verify.oracle` — the implementation registry and
  differential comparison;
* :mod:`~repro.verify.metamorphic` — input-transformation relations
  that need no reference implementation;
* :mod:`~repro.verify.invariants` — runtime hooks asserting the
  paper's lemmata inside the scheduler, buffer pool and sequence join
  (enabled by ``JoinContext(invariants=True)``);
* :mod:`~repro.verify.fuzz` — the seeded fuzz driver behind
  ``python -m repro verify``, with shrinking and replayable artifacts.

See ``docs/TESTING.md`` for the workflow.
"""

from .canonical import (PairSetDiff, canonical_pairs, diff_pairs,
                        pair_digest)
from .fuzz import (DEFAULT_CONFIGS, FuzzFailure, FuzzReport,
                   acceptance_matrix, dump_artifact, parse_budget,
                   replay_artifact, run_fuzz, shrink_workload)
from .invariants import InvariantMonitor, InvariantViolation, make_monitor
from .metamorphic import (LSH_RELATION_NAMES, RELATION_NAMES,
                          STORE_RELATION_NAMES,
                          RelationReport, check_epsilon_nesting,
                          check_lsh_determinism, check_lsh_precision,
                          check_lsh_tables_monotone,
                          check_permutation, check_rs_symmetry,
                          check_self_vs_rr, check_store_epsilon_nesting,
                          check_store_insert_delete,
                          check_store_insert_union, check_translation,
                          run_lsh_relations, run_relations,
                          run_store_relations)
from .oracle import (REGISTRY, STORAGE_MODES, DifferentialReport,
                     ImplOutcome, OracleEntry, differential_check,
                     implementations, register, run_impl)
from .workloads import WORKLOAD_KINDS, Workload, generate_workload

__all__ = [
    "DEFAULT_CONFIGS",
    "DifferentialReport",
    "FuzzFailure",
    "FuzzReport",
    "ImplOutcome",
    "InvariantMonitor",
    "InvariantViolation",
    "LSH_RELATION_NAMES",
    "OracleEntry",
    "PairSetDiff",
    "REGISTRY",
    "RELATION_NAMES",
    "RelationReport",
    "STORAGE_MODES",
    "STORE_RELATION_NAMES",
    "WORKLOAD_KINDS",
    "Workload",
    "acceptance_matrix",
    "canonical_pairs",
    "check_epsilon_nesting",
    "check_lsh_determinism",
    "check_lsh_precision",
    "check_lsh_tables_monotone",
    "check_permutation",
    "check_rs_symmetry",
    "check_self_vs_rr",
    "check_store_epsilon_nesting",
    "check_store_insert_delete",
    "check_store_insert_union",
    "check_translation",
    "diff_pairs",
    "differential_check",
    "dump_artifact",
    "generate_workload",
    "implementations",
    "make_monitor",
    "pair_digest",
    "parse_budget",
    "register",
    "replay_artifact",
    "run_fuzz",
    "run_impl",
    "run_lsh_relations",
    "run_relations",
    "run_store_relations",
    "shrink_workload",
]
