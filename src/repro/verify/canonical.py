"""Canonical pair-set representation for differential comparison.

Every join implementation in this repository reports its result pairs in
its own traversal order, with its own id orientation (a self-join may
emit ``(a, b)`` or ``(b, a)``) and occasionally with duplicates across
implementation-internal batches.  To compare two implementations the
results must first be put into one canonical form: an ``(n, 2)`` int64
array of ``(min, max)`` id pairs, diagonal entries dropped, sorted
lexicographically, duplicates removed.  Two runs agree iff their
canonical arrays are byte-identical — which also yields a stable digest
for cheap equality checks across process boundaries (CI logs, fuzz
artifacts).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Tuple, Union

import numpy as np

from ..core.result import JoinResult

PairsLike = Union[JoinResult, Tuple[np.ndarray, np.ndarray], np.ndarray,
                  Iterable[Tuple[int, int]]]


def _as_id_arrays(pairs: PairsLike) -> Tuple[np.ndarray, np.ndarray]:
    if isinstance(pairs, JoinResult):
        return pairs.pairs()
    if isinstance(pairs, np.ndarray):
        if pairs.size == 0:
            return (np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.int64))
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError(
                f"pair array must have shape (n, 2), got {pairs.shape}")
        return pairs[:, 0], pairs[:, 1]
    if isinstance(pairs, tuple) and len(pairs) == 2:
        return (np.asarray(pairs[0], dtype=np.int64),
                np.asarray(pairs[1], dtype=np.int64))
    listed = list(pairs)
    if not listed:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    arr = np.asarray(listed, dtype=np.int64)
    return arr[:, 0], arr[:, 1]


def canonical_pairs(pairs: PairsLike, ordered: bool = False,
                    keep_diagonal: bool = False) -> np.ndarray:
    """Canonicalise a pair collection to a sorted, deduplicated array.

    Parameters
    ----------
    pairs:
        A :class:`~repro.core.result.JoinResult`, two parallel id
        arrays, an ``(n, 2)`` array, or an iterable of 2-tuples.
    ordered:
        Keep pair orientation (two-set R ⋈ S semantics).  The default
        treats pairs as unordered (self-join semantics) and maps each to
        ``(min, max)``.
    keep_diagonal:
        Keep ``(i, i)`` pairs; by default they are dropped, which lets a
        two-set join of a set with itself be compared against a
        self-join.
    """
    a, b = _as_id_arrays(pairs)
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if len(a) != len(b):
        raise ValueError(
            f"id arrays differ in length: {len(a)} vs {len(b)}")
    if not ordered:
        a, b = np.minimum(a, b), np.maximum(a, b)
    if not keep_diagonal:
        off = a != b
        a, b = a[off], b[off]
    stacked = np.column_stack([a, b]) if len(a) else \
        np.empty((0, 2), dtype=np.int64)
    if len(stacked) > 1:
        order = np.lexsort((stacked[:, 1], stacked[:, 0]))
        stacked = stacked[order]
        keep = np.ones(len(stacked), dtype=bool)
        keep[1:] = (np.diff(stacked, axis=0) != 0).any(axis=1)
        stacked = stacked[keep]
    return np.ascontiguousarray(stacked)


def pair_digest(canonical: np.ndarray) -> str:
    """SHA-256 hex digest of a canonical pair array (shape-stable)."""
    arr = np.ascontiguousarray(canonical, dtype=np.int64)
    h = hashlib.sha256()
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


def _rows_as_set(arr: np.ndarray) -> set:
    return {(int(r[0]), int(r[1])) for r in arr}


@dataclass
class PairSetDiff:
    """Difference between an expected and an observed canonical pair set."""

    expected_count: int
    observed_count: int
    missing: np.ndarray = field(repr=False)
    extra: np.ndarray = field(repr=False)

    @property
    def ok(self) -> bool:
        """True when the two pair sets are identical."""
        return len(self.missing) == 0 and len(self.extra) == 0

    def summary(self, limit: int = 5) -> str:
        """A short human-readable account of the difference."""
        if self.ok:
            return f"identical ({self.expected_count} pairs)"
        parts = [f"{self.expected_count} expected vs "
                 f"{self.observed_count} observed"]
        if len(self.missing):
            shown = ", ".join(str((int(r[0]), int(r[1])))
                              for r in self.missing[:limit])
            parts.append(f"{len(self.missing)} missing (e.g. {shown})")
        if len(self.extra):
            shown = ", ".join(str((int(r[0]), int(r[1])))
                              for r in self.extra[:limit])
            parts.append(f"{len(self.extra)} extra (e.g. {shown})")
        return "; ".join(parts)


def diff_pairs(expected: PairsLike, observed: PairsLike,
               ordered: bool = False) -> PairSetDiff:
    """Compare two pair collections after canonicalisation."""
    exp = canonical_pairs(expected, ordered=ordered)
    obs = canonical_pairs(observed, ordered=ordered)
    exp_set = _rows_as_set(exp)
    obs_set = _rows_as_set(obs)
    missing = sorted(exp_set - obs_set)
    extra = sorted(obs_set - exp_set)

    def as_array(rows) -> np.ndarray:
        if not rows:
            return np.empty((0, 2), dtype=np.int64)
        return np.asarray(rows, dtype=np.int64)

    return PairSetDiff(expected_count=len(exp), observed_count=len(obs),
                       missing=as_array(missing), extra=as_array(extra))
