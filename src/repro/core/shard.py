"""Sharded, skew-adaptive execution of the external EGO join.

The external pipeline of :func:`~repro.core.ego_join.ego_self_join_file`
runs one scheduler against one simulated disk; every unit-pair join is
serialised behind that single process.  This module splits the join into
**shards**: contiguous ranges of I/O units, each joined in its own
worker process against a private disk (any
:mod:`~repro.storage.backend` backend) and buffer pool, with the parent
merging the per-shard pair streams back into one output that is
**byte-identical** to the serial run.

How the decomposition stays exact
---------------------------------

1. **The planning pass is the real schedule.**  The parent runs the
   ordinary :class:`~repro.core.scheduler.EGOScheduler` over the sorted
   file with a :class:`PlanningJoiner` that records each submitted unit
   pair as an ordered *event* ``(seq, a, b)`` instead of joining it.
   Every load, skip, eviction and pressure reaction happens exactly as
   in the serial run — so the parent's I/O counters, simulated clock
   and :class:`~repro.core.scheduler.ScheduleStats` are the serial
   run's, and resumed pairs (``pair_done``) are excluded from the event
   list just as the serial scheduler skips them.
2. **Unidirectional ownership.**  Every event ``(a, b)`` with
   ``a ≤ b`` is owned by the shard containing unit ``b`` (the
   higher ordinal).  Lemma 2/3 bound ``a`` to ``b``'s ε-interval, so a
   shard needs only its own units plus a contiguous *fringe* of earlier
   units — and because ownership is a function of ``b`` alone, no pair
   is ever computed by two shards.
3. **Deterministic merge.**  Workers return each event's pair batch
   (computed by the same :func:`~repro.core.parallel._run_unit_pair`
   the parallel joiner uses) tagged with its global sequence id.  The
   parent merges strictly in sequence order — crabstep windows that
   straddle a shard boundary interleave events of adjacent shards, so
   concatenating shards would reorder pairs — folding CPU counters,
   worker metrics, the pair batch and the ``pair_complete`` checkpoint
   hook in exactly the order the serial joiner fires them.

Skew-adaptive planning
----------------------

Candidate volume per event is estimated as ``n_a · n_b`` from the
per-unit record counts the planning pass collects; the per-unit cost is
the sum over owned events.  The ``uniform`` policy cuts the ordinal
range into equal-count shards; the ``adaptive`` policy balances shards
by prefix-sum cost and recursively re-splits any shard whose cost
exceeds ~1.5× the target, preferring cut points that fall on ε-cell
boundaries (where the grid cell changes between consecutive units), up
to twice the requested shard count.  On skewed data this moves the
heavy ε-cells into their own shards; on uniform data it degenerates to
the uniform plan.

Fault tolerance
---------------

Workers consult the run's
:class:`~repro.storage.faults.WorkerFaultPlan` per event with the same
crash/stall/corrupt/error semantics as the supervised pool
(:mod:`repro.core.supervisor`), and every result batch carries a CRC
digest recomputed by the parent.  A failed or corrupted shard is
retried whole (its attempt number advances, so seeded faults stop
firing), hung pools are killed and recycled, and when the retry budget
of :class:`~repro.core.supervisor.SupervisorPolicy` is exhausted the
shard is executed inline in the parent (``degrade=True``) or the run
aborts with :class:`~repro.core.supervisor.PoolFailureError`.  Because
merging happens only after a shard's digests verify, no fault can leak
a wrong or duplicated pair into the output.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (BrokenExecutor, CancelledError,
                                ProcessPoolExecutor)
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..obs.metrics import ensure_metrics
from ..obs.trace import ensure_tracer
from ..storage.backend import get_backend
from ..storage.buffer import BufferPool, BufferStats
from ..storage.faults import InjectedTaskError, WorkerFaultPlan, stable_fraction
from ..storage.pagefile import PointFile
from ..storage.records import RecordCodec
from ..storage.stats import IOCounters
from .parallel import _UNIT_STATE, _init_unit_worker, _run_unit_pair
from .scheduler import EGOScheduler, ScheduleStats
from .sequence_join import JoinContext
from .supervisor import (PoolFailureError, SupervisorPolicy,
                         _init_supervised_worker, backoff_for, result_digest)

#: Valid ``--shard-policy`` values.
SHARD_POLICIES: Tuple[str, ...] = ("uniform", "adaptive")

#: A shard whose predicted cost exceeds this multiple of the balanced
#: target is recursively re-split (adaptive policy).
OVERSIZE_FACTOR = 1.5


@dataclass(frozen=True)
class UnitPairEvent:
    """One unit-pair join the schedule would perform, in schedule order.

    ``seq`` is the global submission index (the merge key); ``a ≤ b``
    are unit ordinals (``a == b`` marks a unit's self-join).  The owner
    of the event is the shard containing ``b``.
    """

    seq: int
    a: int
    b: int

    @property
    def self_pair(self) -> bool:
        return self.a == self.b


class PlanningJoiner:
    """A unit joiner that records the schedule instead of executing it.

    Implements the ``submit`` / ``drain`` / ``close`` protocol of
    :class:`~repro.core.parallel.SerialUnitJoiner`, so the real
    scheduler runs unmodified — every I/O decision, counter and stat is
    the serial run's — while the unit pairs it would join are captured
    as ordered :class:`UnitPairEvent`\\ s for the shard planner.
    """

    def __init__(self) -> None:
        self.events: List[UnitPairEvent] = []

    def __enter__(self) -> "PlanningJoiner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def submit(self, ids_a, pts_a, ids_b, pts_b, on_complete=None,
               key=None) -> None:
        # The scheduler always passes the lower ordinal's arrays first
        # and key=(min, max), so the key alone reconstructs the call.
        a, b = int(key[0]), int(key[1])
        self.events.append(UnitPairEvent(len(self.events), a, b))

    def drain(self) -> None:
        """Nothing in flight: events are recorded synchronously."""

    def close(self) -> None:
        """Nothing to release."""


@dataclass
class ShardSpec:
    """One planned shard: an owned ordinal range plus its fringe.

    The shard owns units ``[own_lo, own_hi)`` and every event whose
    higher ordinal falls in that range; ``fringe_lo`` extends the
    range downward to the earliest partner unit those events reference
    (``fringe_lo == own_lo`` when no event crosses the lower boundary).
    """

    index: int
    own_lo: int
    own_hi: int
    fringe_lo: int
    events: List[UnitPairEvent] = field(default_factory=list)
    cost: int = 0

    @property
    def units(self) -> int:
        return self.own_hi - self.own_lo

    @property
    def fringe_units(self) -> int:
        return self.own_lo - self.fringe_lo


@dataclass
class ShardStats:
    """Execution accounting of one shard (surfaced on the report)."""

    shard: int
    units: int
    fringe_units: int
    fringe_pages: int = 0
    events: int = 0
    pairs: int = 0
    cost: int = 0
    retries: int = 0
    degraded: bool = False
    backend: str = "simulated"
    io: IOCounters = field(default_factory=IOCounters)
    buffer: BufferStats = field(default_factory=BufferStats)
    simulated_io_time_s: float = 0.0


def event_cost(event: UnitPairEvent, unit_records: Dict[int, int]) -> int:
    """Predicted candidate volume of one unit-pair join.

    The ε-interval metadata admitted the pair, so the candidate set is
    modelled as the full cross product ``n_a · n_b`` (half for a
    self-join: unordered pairs) — cheap, monotone in the true work, and
    exactly the quantity that diverges on skewed data.
    """
    n_a = unit_records.get(event.a, 0)
    if event.self_pair:
        return (n_a * max(0, n_a - 1)) // 2
    return n_a * unit_records.get(event.b, 0)


def _unit_costs(num_units: int, events: List[UnitPairEvent],
                unit_records: Dict[int, int]) -> np.ndarray:
    costs = np.zeros(num_units, dtype=np.int64)
    for ev in events:
        costs[ev.b] += event_cost(ev, unit_records)
    return costs


def _greedy_cuts(costs: np.ndarray, shards: int) -> List[int]:
    """Contiguous cost-balanced boundaries by prefix-sum walk."""
    n = len(costs)
    total = int(costs.sum())
    target = total / shards if shards else total
    bounds = [0]
    acc = 0
    for u in range(n):
        acc += int(costs[u])
        cuts_left = shards - len(bounds)
        units_left = n - (u + 1)
        if cuts_left > 0 and units_left >= cuts_left and acc >= target:
            bounds.append(u + 1)
            acc = 0
    bounds.append(n)
    return sorted(set(bounds))


def _is_cell_boundary(meta, u: int) -> bool:
    """True when the ε-grid cell changes between units ``u-1`` and ``u``."""
    a = meta.get(u - 1) if meta else None
    b = meta.get(u) if meta else None
    if a is None or b is None:
        return True
    return not np.array_equal(a.last_cells, b.first_cells)


def _split_oversized(bounds: List[int], costs: np.ndarray, target: float,
                     max_shards: int, meta) -> List[int]:
    """Recursively cut shards costing more than ``OVERSIZE_FACTOR×target``.

    Cut points are chosen to halve the shard's cost, preferring
    positions on ε-cell boundaries (splitting inside a cell would put
    the two halves of one heavy cell in different shards and every
    cross pair on the fringe); when the whole shard sits inside one
    cell, the best interior position is used instead.
    """
    prefix = np.concatenate([[0], np.cumsum(costs)])
    changed = True
    while changed and len(bounds) - 1 < max_shards:
        changed = False
        for i in range(len(bounds) - 1):
            lo, hi = bounds[i], bounds[i + 1]
            cost = int(prefix[hi] - prefix[lo])
            if hi - lo < 2 or cost <= OVERSIZE_FACTOR * target:
                continue
            half = prefix[lo] + cost / 2
            interior = range(lo + 1, hi)
            candidates = [c for c in interior if _is_cell_boundary(meta, c)]
            if not candidates:
                candidates = list(interior)
            cut = min(candidates, key=lambda c: abs(prefix[c] - half))
            bounds.insert(i + 1, cut)
            changed = True
            break
    return bounds


def plan_shards(num_units: int, events: List[UnitPairEvent],
                unit_records: Dict[int, int], shards: int,
                policy: str = "adaptive", meta=None) -> List[ShardSpec]:
    """Partition the unit ordinals into shards and assign their events.

    ``uniform`` cuts the ordinal range into equal-unit-count shards;
    ``adaptive`` balances by predicted candidate volume and re-splits
    oversized shards at ε-cell boundaries (up to ``2×shards``).  Every
    event lands in exactly one shard — the one owning its higher
    ordinal — so the union of the shards' pair streams is exactly the
    serial schedule's.
    """
    if shards < 1:
        raise ValueError(f"shards must be at least 1, got {shards}")
    if policy not in SHARD_POLICIES:
        raise ValueError(f"unknown shard policy {policy!r}; "
                         f"choose from {SHARD_POLICIES}")
    if num_units == 0:
        return []
    shards = min(shards, num_units)
    if policy == "uniform" or shards == 1:
        bounds = sorted(set(
            int(b) for b in np.linspace(0, num_units, shards + 1)))
    else:
        costs = _unit_costs(num_units, events, unit_records)
        bounds = _greedy_cuts(costs, shards)
        target = int(costs.sum()) / shards
        bounds = _split_oversized(bounds, costs, target,
                                  min(num_units, 2 * shards), meta)
    specs = [ShardSpec(index=i, own_lo=bounds[i], own_hi=bounds[i + 1],
                       fringe_lo=bounds[i])
             for i in range(len(bounds) - 1)]
    starts = [s.own_lo for s in specs]
    for ev in events:
        idx = int(np.searchsorted(starts, ev.b, side="right")) - 1
        spec = specs[idx]
        spec.events.append(ev)
        spec.cost += event_cost(ev, unit_records)
        if ev.a < spec.fringe_lo:
            spec.fringe_lo = ev.a
    return specs


# -- worker side ------------------------------------------------------------


def _run_shard(task: dict):
    """Join one shard's events in a worker process.

    The worker copies its record region from the sorted file's backing
    path onto a private backend disk, then replays its owned events
    through a local buffer pool — the same
    :func:`~repro.core.parallel._run_unit_pair` kernel the parallel
    joiner uses, so each event's batch is byte-identical to the serial
    join of that unit pair.  Faults are adjudicated per event from the
    worker plan installed by the pool initializer, with the same
    semantics as the supervised pool.
    """
    plan: Optional[WorkerFaultPlan] = _UNIT_STATE.get("worker_plan")
    attempt = task["attempt"]
    codec = RecordCodec(task["dimensions"])
    rec = codec.record_bytes
    backend = get_backend(task["backend"])
    disk = backend.create_disk()
    try:
        with open(task["path"], "rb") as fh:
            fh.seek(task["data_start"] + task["base_first"] * rec)
            raw = fh.read(task["base_count"] * rec)
        disk.write(0, raw)
        local = PointFile(disk, codec, count=task["base_count"],
                          data_start=0)
        ranges = {ordinal: (first, count)
                  for ordinal, first, count in task["units"]}
        own_lo = task["own_lo"]
        fringe_loads = [0]

        def loader(ordinal: int):
            if ordinal < own_lo:
                fringe_loads[0] += 1
            first, count = ranges[ordinal]
            return local.read_range(first, count)

        pool: BufferPool[int, tuple] = BufferPool(task["buffer_units"],
                                                  loader)
        out_events = []
        pairs = 0
        for seq, a, b in task["events"]:
            key = (a, b)
            fault = plan.decide(key, attempt) if plan is not None else None
            if fault == "crash":
                # Hard exit: the parent must see a broken pool, exactly
                # as a real worker death would present.
                os._exit(17)
            if fault == "stall":
                time.sleep(plan.stall_seconds)
            elif fault == "error":
                raise InjectedTaskError(
                    f"injected task error for unit pair {key} "
                    f"attempt {attempt} (shard {task['index']})")
            ids_a, pts_a = pool.get(a)
            if a == b:
                out = _run_unit_pair(ids_a, pts_a, None, None)
            else:
                ids_b, pts_b = pool.get(b)
                out = _run_unit_pair(ids_a, pts_a, ids_b, pts_b)
            out_a, out_b, dists, cpu, metrics_data = out
            digest = result_digest(out_a, out_b, dists)
            if fault == "corrupt":
                if out_a.size:
                    out_a = out_a.copy()
                    view = out_a.view(np.uint8)
                    pos = int(stable_fraction(plan.seed, "pos", *key)
                              * len(view)) % len(view)
                    view[pos] ^= 1 << int(
                        stable_fraction(plan.seed, "bit", *key) * 8) % 8
                else:
                    digest ^= 1
            pairs += len(out_a)
            out_events.append((seq, a, b, out_a, out_b, dists, cpu,
                               metrics_data, digest))
        return {
            "index": task["index"],
            "events": out_events,
            "pairs": pairs,
            "fringe_loads": fringe_loads[0],
            "io": disk.counters.snapshot(),
            "sim_time": disk.simulated_time_s,
            "buffer": pool.stats,
        }
    finally:
        disk.close()


# -- parent side ------------------------------------------------------------


def _kill_pool(pool: Optional[ProcessPoolExecutor]) -> None:
    """Tear a pool down without waiting on possibly-hung workers."""
    if pool is None:
        return
    for proc in list((getattr(pool, "_processes", None) or {}).values()):
        try:
            proc.terminate()
        except (OSError, AttributeError):
            pass
    pool.shutdown(wait=False, cancel_futures=True)


class ShardRunner:
    """Plans, executes and merges one sharded join (see module docs)."""

    def __init__(self, sorted_file: PointFile, ctx: JoinContext,
                 unit_bytes: int, buffer_units: int, *,
                 shards: int, shard_policy: str = "adaptive",
                 backend: str = "simulated",
                 allow_crabstep: bool = True,
                 pair_done=None, pair_complete=None,
                 supervisor_policy: Optional[SupervisorPolicy] = None,
                 worker_fault_plan: Optional[WorkerFaultPlan] = None) -> None:
        if shards < 1:
            raise ValueError(f"shards must be at least 1, got {shards}")
        get_backend(backend)  # validate the name before any work
        if shard_policy not in SHARD_POLICIES:
            raise ValueError(f"unknown shard policy {shard_policy!r}; "
                             f"choose from {SHARD_POLICIES}")
        self.sorted_file = sorted_file
        self.ctx = ctx
        self.unit_bytes = unit_bytes
        self.buffer_units = buffer_units
        self.shards = shards
        self.shard_policy = shard_policy
        self.backend = backend
        self.allow_crabstep = allow_crabstep
        self.pair_done = pair_done
        self.pair_complete = pair_complete
        self.policy = (supervisor_policy if supervisor_policy is not None
                       else SupervisorPolicy())
        self.worker_plan = worker_fault_plan
        self._tracer = ensure_tracer(getattr(ctx, "trace", None))
        self._metrics = ensure_metrics(getattr(ctx, "metrics", None))
        metric = ctx.metric if ctx.metric.name != "euclidean" else None
        self._init_args = (ctx.epsilon, ctx.minlen, ctx.engine,
                           ctx.order_dimensions, metric, ctx.grid_epsilon,
                           ctx.result.collect_distances, ctx.split_strategy,
                           bool(self._metrics.enabled),
                           ctx.batch_points, ctx.batch_leaves)
        self.stats: List[ShardStats] = []

    # -- phases -------------------------------------------------------------

    def run(self) -> ScheduleStats:
        """Plan, execute and merge; returns the (serial) schedule stats."""
        with self._tracer.span("shard_plan", cat="shard"):
            planner = PlanningJoiner()
            scheduler = EGOScheduler(
                self.sorted_file, self.ctx, self.unit_bytes,
                self.buffer_units, allow_crabstep=self.allow_crabstep,
                pair_done=self.pair_done, pair_complete=None,
                unit_joiner=planner)
            schedule_stats = scheduler.run()
            specs = plan_shards(scheduler.num_units, planner.events,
                                scheduler.unit_records, self.shards,
                                self.shard_policy, scheduler.meta)
        self.stats = [ShardStats(shard=s.index, units=s.units,
                                 fringe_units=s.fringe_units,
                                 events=len(s.events), cost=s.cost,
                                 backend=self.backend)
                      for s in specs]
        active = [s for s in specs if s.events]
        if active:
            results = self._execute(scheduler, specs, active)
            with self._tracer.span("shard_merge", cat="shard"):
                self._merge(results)
        self._publish_metrics()
        return schedule_stats

    def _make_task(self, scheduler: EGOScheduler, spec: ShardSpec,
                   attempt: int) -> dict:
        """Serializable work order for one shard attempt."""
        pf = self.sorted_file
        units = []
        for ordinal in range(spec.fringe_lo, spec.own_hi):
            first, last = pf.unit_record_range(
                int(scheduler.unit_ids[ordinal]), self.unit_bytes)
            units.append((ordinal, first, last - first))
        base_first = units[0][1]
        base_last = units[-1][1] + units[-1][2]
        return {
            "index": spec.index,
            "attempt": attempt,
            "path": pf.disk.path,
            "data_start": pf.data_start,
            "dimensions": pf.dimensions,
            "base_first": base_first,
            "base_count": base_last - base_first,
            "units": [(o, f - base_first, n) for o, f, n in units],
            "events": [(ev.seq, ev.a, ev.b) for ev in spec.events],
            "buffer_units": self.buffer_units,
            "backend": self.backend,
            "own_lo": spec.own_lo,
        }

    def _execute(self, scheduler: EGOScheduler, specs: List[ShardSpec],
                 active: List[ShardSpec]) -> List[dict]:
        """Run the active shards on a pool with the retry ladder."""
        policy = self.policy
        attempts: Dict[int, int] = {s.index: 0 for s in active}
        futures: Dict[int, object] = {}
        results: Dict[int, dict] = {}
        recycles = 0
        pool: Optional[ProcessPoolExecutor] = None

        def make_pool() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=min(len(active), os.cpu_count() or 1),
                initializer=_init_supervised_worker,
                initargs=(self._init_args, self.worker_plan))

        def submit(spec: ShardSpec) -> bool:
            try:
                futures[spec.index] = pool.submit(
                    _run_shard,
                    self._make_task(scheduler, spec, attempts[spec.index]))
                return True
            except BrokenExecutor:
                futures.pop(spec.index, None)
                return False

        def shard_key(spec: ShardSpec) -> Tuple[int, int]:
            return (spec.own_lo, spec.own_hi)

        def bump(spec: ShardSpec, kind: str) -> None:
            attempts[spec.index] += 1
            self.stats[spec.index].retries += 1
            if self.worker_plan is not None:
                self.worker_plan.record(
                    {"error": "error", "corrupt": "corrupt",
                     "timeout": "stall", "crash": "crash"}[kind])
            if policy.real_sleep and policy.backoff_base_s > 0.0:
                time.sleep(min(
                    backoff_for(policy, shard_key(spec),
                                attempts[spec.index]),
                    policy.max_sleep_s))

        def exhausted(spec: ShardSpec) -> bool:
            return attempts[spec.index] > policy.max_task_retries

        def run_inline(spec: ShardSpec) -> None:
            """Bottom of the ladder: execute the shard in the parent.

            Inline execution escapes environment faults (no pool, no
            worker plan), mirroring the supervised joiner's degraded
            mode; the digests are still produced and verified.
            """
            if not policy.degrade:
                raise PoolFailureError(
                    f"shard {spec.index} failed "
                    f"{attempts[spec.index]} times "
                    f"(limit {policy.max_task_retries}) and degradation "
                    f"is disabled")
            self.stats[spec.index].degraded = True
            saved = dict(_UNIT_STATE)
            try:
                _init_unit_worker(*self._init_args)
                _UNIT_STATE["worker_plan"] = None
                out = _run_shard(
                    self._make_task(scheduler, spec,
                                    attempts[spec.index]))
            finally:
                _UNIT_STATE.clear()
                _UNIT_STATE.update(saved)
            results[spec.index] = out

        def recycle(blamed: ShardSpec) -> None:
            nonlocal pool, recycles
            _kill_pool(pool)
            pool = None
            recycles += 1
            if recycles > policy.max_pool_recycles:
                if not policy.degrade:
                    raise PoolFailureError(
                        f"shard pool failed {recycles} times "
                        f"(limit {policy.max_pool_recycles}) and "
                        f"degradation is disabled")
                for spec in active:
                    if spec.index not in results:
                        run_inline(spec)
                return
            pool = make_pool()
            for spec in active:
                if spec.index not in results and not exhausted(spec):
                    if not submit(spec):
                        break

        def on_broken(head: ShardSpec) -> None:
            """Blame the crash-decided shard(s), or the head, and recycle."""
            blamed: List[ShardSpec] = []
            if self.worker_plan is not None:
                for spec in active:
                    if spec.index in results:
                        continue
                    if any(self.worker_plan.decide((ev.a, ev.b),
                                                   attempts[spec.index])
                           == "crash" for ev in spec.events):
                        blamed.append(spec)
            if not blamed:
                blamed = [head]
            for spec in blamed:
                bump(spec, "crash")
                if exhausted(spec):
                    run_inline(spec)
            recycle(blamed[0])

        pool = make_pool()
        try:
            for spec in active:
                submit(spec)
            for spec in active:
                span_args = ({"shard": spec.index,
                              "events": len(spec.events)}
                             if self._tracer.enabled else None)
                with self._tracer.span("shard_exec", cat="shard",
                                       args=span_args):
                    while spec.index not in results:
                        if exhausted(spec):
                            run_inline(spec)
                            break
                        fut = futures.get(spec.index)
                        if fut is None:
                            if pool is None or not submit(spec):
                                on_broken(spec)
                            continue
                        try:
                            out = fut.result(timeout=policy.task_timeout)
                        except FuturesTimeout:
                            bump(spec, "timeout")
                            futures.pop(spec.index, None)
                            recycle(spec)
                            continue
                        except (BrokenExecutor, CancelledError):
                            futures.pop(spec.index, None)
                            on_broken(spec)
                            continue
                        except Exception:
                            bump(spec, "error")
                            futures.pop(spec.index, None)
                            if not exhausted(spec):
                                submit(spec)
                            continue
                        if any(result_digest(oa, ob, d) != dig
                               for _s, _a, _b, oa, ob, d, _c, _m, dig
                               in out["events"]):
                            bump(spec, "corrupt")
                            futures.pop(spec.index, None)
                            if not exhausted(spec):
                                submit(spec)
                            continue
                        results[spec.index] = out
        finally:
            if pool is not None:
                if all(s.index in results for s in active):
                    pool.shutdown(wait=True, cancel_futures=True)
                else:
                    _kill_pool(pool)
        for spec in active:
            out = results[spec.index]
            st = self.stats[spec.index]
            st.pairs = out["pairs"]
            st.fringe_pages = out["fringe_loads"]
            st.io = out["io"]
            st.buffer = out["buffer"]
            st.simulated_io_time_s = out["sim_time"]
        return [results[s.index] for s in active]

    def _merge(self, results: List[dict]) -> None:
        """Fold every event into the context in global sequence order.

        Mirrors the supervised joiner's merge exactly — CPU counters,
        then worker metrics, then the pair batch, then the
        ``pair_complete`` checkpoint hook — so the pair file bytes and
        journal records of a checkpointed run are the serial run's.
        """
        merged = []
        for out in results:
            merged.extend(out["events"])
        merged.sort(key=lambda ev: ev[0])
        ctx = self.ctx
        for _seq, a, b, out_a, out_b, dists, cpu, metrics_data, _d in merged:
            if ctx.cpu is not None:
                for f in dataclass_fields(cpu):
                    setattr(ctx.cpu, f.name,
                            getattr(ctx.cpu, f.name) + getattr(cpu, f.name))
            if metrics_data:
                ctx.metrics.merge(metrics_data)
            ctx.result.add_batch(out_a, out_b, distances=dists)
            if self.pair_complete is not None:
                self.pair_complete(a, b)

    def _publish_metrics(self) -> None:
        """Per-shard gauges, registered lazily (serial dumps unchanged)."""
        if not self._metrics.enabled or not self.stats:
            return
        g = self._metrics.gauge(
            "ego_shard_units", "Owned I/O units per shard",
            labelnames=("shard",))
        fr = self._metrics.gauge(
            "ego_shard_fringe_units", "Fringe units read per shard",
            labelnames=("shard",))
        pairs = self._metrics.gauge(
            "ego_shard_pairs", "Result pairs produced per shard",
            labelnames=("shard",))
        cost = self._metrics.gauge(
            "ego_shard_cost", "Predicted candidate volume per shard",
            labelnames=("shard",))
        retries = self._metrics.counter(
            "ego_shard_retries_total", "Shard attempts beyond the first",
            labelnames=("shard",))
        for st in self.stats:
            label = str(st.shard)
            g.labels(label).set(st.units)
            fr.labels(label).set(st.fringe_units)
            pairs.labels(label).set(st.pairs)
            cost.labels(label).set(st.cost)
            if st.retries:
                retries.labels(label).inc(st.retries)


def run_sharded_join(sorted_file: PointFile, ctx: JoinContext,
                     unit_bytes: int, buffer_units: int, *,
                     shards: int, shard_policy: str = "adaptive",
                     backend: str = "simulated",
                     allow_crabstep: bool = True,
                     pair_done=None, pair_complete=None,
                     supervisor_policy: Optional[SupervisorPolicy] = None,
                     worker_fault_plan: Optional[WorkerFaultPlan] = None,
                     ) -> Tuple[ScheduleStats, List[ShardStats]]:
    """Run the external join sharded; returns schedule and shard stats.

    Drop-in for the ``unit_joiner`` execution block of
    :func:`~repro.core.ego_join.ego_self_join_file`: the parent-side
    I/O, the result stream, the journal and the counters are
    byte-identical to the serial join for every shard count, policy and
    backend.
    """
    runner = ShardRunner(sorted_file, ctx, unit_bytes, buffer_units,
                         shards=shards, shard_policy=shard_policy,
                         backend=backend, allow_crabstep=allow_crabstep,
                         pair_done=pair_done, pair_complete=pair_complete,
                         supervisor_policy=supervisor_policy,
                         worker_fault_plan=worker_fault_plan)
    schedule_stats = runner.run()
    return schedule_stats, runner.stats
