"""I/O scheduling for the external R ⋈ S similarity join.

The paper presents its scheduling for the self-join (Figure 4); this
module generalises it to two EGO-sorted files.  The ε-interval property
(Lemmata 2 and 3) holds across files: the mates of an R unit form a
contiguous, monotonically advancing window of S units, bounded by the
cell comparisons ``s.last + [ε,…,ε] <ego r.first`` (S unit entirely
below the window) and ``r.last + [ε,…,ε] <ego s.first`` (entirely
above).

Two modes, mirroring gallop and crabstep:

* **sliding mode** — R units are streamed one at a time through a single
  frame while the S window is cached in the remaining frames; while the
  window fits, every unit of both files is loaded exactly once;
* **block mode** (outer-loop buffering) — when the S window outgrows the
  buffer, a group of R units is pinned (all frames but one) and their
  combined S window is streamed through the last frame, charging
  ``|S window|`` loads per R group instead of per R unit.

A metadata pass over S (one sequential scan of the unit boundary
records) precedes the schedule so window bounds are known in advance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..obs.metrics import ensure_metrics
from ..obs.trace import ensure_tracer
from ..storage.buffer import BufferPool
from ..storage.pagefile import PointFile
from .ego_order import grid_cells, lex_less
from .scheduler import UnitMeta
from .sequence_join import JoinContext
from .sequence import Sequence
from .sequence_join import join_sequences

UnitData = Tuple[np.ndarray, np.ndarray]


def populated_units(point_file: PointFile, unit_bytes: int) -> np.ndarray:
    """Unit numbers that actually contain record starts.

    Fragmentation can leave units holding only fragments (the trailing
    unit; with units smaller than a record also interior ones) — those
    are skipped by the schedule.
    """
    if point_file.count == 0:
        return np.empty(0, dtype=np.int64)
    starts = (np.arange(point_file.count, dtype=np.int64)
              * point_file.record_bytes)
    return np.unique(starts // unit_bytes)


def scheduled_units(point_file: PointFile, unit_bytes: int) -> int:
    """Number of I/O units that actually contain record starts."""
    return len(populated_units(point_file, unit_bytes))


@dataclass
class RSScheduleStats:
    """Accounting of one two-file schedule."""

    r_loads: int = 0
    s_loads: int = 0
    meta_reads: int = 0
    block_phases: int = 0
    unit_pairs_joined: int = 0
    unit_pairs_skipped: int = 0

    @property
    def total_unit_loads(self) -> int:
        """Physical unit loads across both files (metadata pass excluded)."""
        return self.r_loads + self.s_loads


class TwoFileScheduler:
    """Schedules unit loads for an external R ⋈ S similarity join.

    Both inputs must already be sorted in epsilon grid order.  Result
    pairs are emitted as ``(r_id, s_id)``.
    """

    def __init__(self, file_r: PointFile, file_s: PointFile,
                 ctx: JoinContext, unit_bytes: int,
                 buffer_units: int) -> None:
        if buffer_units < 2:
            raise ValueError(
                f"the scheduler needs at least 2 buffer frames, "
                f"got {buffer_units}")
        if file_r.dimensions != file_s.dimensions:
            raise ValueError(
                f"dimension mismatch: {file_r.dimensions} vs "
                f"{file_s.dimensions}")
        self.file_r = file_r
        self.file_s = file_s
        self.ctx = ctx
        self.unit_bytes = unit_bytes
        self.buffer_units = buffer_units
        self.stats = RSScheduleStats()
        self.units_r = populated_units(file_r, unit_bytes)
        self.units_s = populated_units(file_s, unit_bytes)
        self.n_r = len(self.units_r)
        self.n_s = len(self.units_s)
        self.meta_r: List[UnitMeta] = []
        self.meta_s: List[UnitMeta] = []
        metrics = ensure_metrics(getattr(ctx, "metrics", None))
        self._tracer = ensure_tracer(getattr(ctx, "trace", None))
        reads = metrics.counter(
            "ego_rs_unit_reads_total",
            "Physical unit reads of the two-file schedule, by side",
            labelnames=("side",))
        self._m_read_r = reads.labels("r")
        self._m_read_s = reads.labels("s")
        self._m_meta_reads = metrics.counter(
            "ego_rs_meta_reads_total",
            "Boundary-record reads of the S/R metadata pass")
        self._m_block_phases = metrics.counter(
            "ego_rs_block_phases_total",
            "Outer-loop (block mode) phases of the two-file schedule")
        pairs = metrics.counter(
            "ego_rs_unit_pairs_total",
            "Unit pairs considered by the two-file schedule, by outcome",
            labelnames=("outcome",))
        self._m_pair_joined = pairs.labels("joined")
        self._m_pair_skipped = pairs.labels("skipped")
        self._pool_r: BufferPool[int, UnitData] = BufferPool(
            1, self._load_r)
        self._pool_s: BufferPool[int, UnitData] = BufferPool(
            max(1, buffer_units - 1), self._load_s)

    # -- loading -----------------------------------------------------------

    def _load_r(self, ordinal: int) -> UnitData:
        self.stats.r_loads += 1
        self._m_read_r.inc()
        span_args = ({"side": "r", "unit": ordinal}
                     if self._tracer.enabled else None)
        with self._tracer.span("load", cat="io", args=span_args):
            return self.file_r.read_unit(int(self.units_r[ordinal]),
                                         self.unit_bytes)

    def _load_s(self, ordinal: int) -> UnitData:
        self.stats.s_loads += 1
        self._m_read_s.inc()
        span_args = ({"side": "s", "unit": ordinal}
                     if self._tracer.enabled else None)
        with self._tracer.span("load", cat="io", args=span_args):
            return self.file_s.read_unit(int(self.units_s[ordinal]),
                                         self.unit_bytes)

    def _collect_meta(self, point_file: PointFile,
                      unit_ids: np.ndarray) -> List[UnitMeta]:
        metas = []
        eps = self.ctx.grid_epsilon
        for unit in unit_ids:
            first, last = point_file.unit_record_range(int(unit),
                                                       self.unit_bytes)
            _i, first_pt = point_file.read_range(first, 1)
            _i, last_pt = point_file.read_range(last - 1, 1)
            self.stats.meta_reads += 2
            self._m_meta_reads.inc(2)
            metas.append(UnitMeta(first_cells=grid_cells(first_pt[0], eps),
                                  last_cells=grid_cells(last_pt[0], eps)))
        return metas

    # -- window geometry ----------------------------------------------------

    def _window_of(self, r_lo: int, r_hi: int) -> Tuple[int, int]:
        """S unit range ``[lo, hi)`` joinable with R units ``[r_lo, r_hi]``.

        Monotone in the R range, so callers advance ``lo`` with a
        resumable pointer; here it is computed directly.
        """
        r_first = self.meta_r[r_lo].first_cells
        r_last_plus = self.meta_r[r_hi].last_plus_eps_cells
        lo = 0
        while lo < self.n_s and lex_less(
                self.meta_s[lo].last_plus_eps_cells, r_first):
            lo += 1
        hi = lo
        while hi < self.n_s and not lex_less(
                r_last_plus, self.meta_s[hi].first_cells):
            hi += 1
        return lo, hi

    def _join_units(self, r_unit: int, s_unit: int) -> None:
        mr, ms = self.meta_r[r_unit], self.meta_s[s_unit]
        if lex_less(mr.last_plus_eps_cells, ms.first_cells) or \
                lex_less(ms.last_plus_eps_cells, mr.first_cells):
            self.stats.unit_pairs_skipped += 1
            self._m_pair_skipped.inc()
            return
        ids_r, pts_r = self._pool_r.get(r_unit)
        ids_s, pts_s = self._pool_s.get(s_unit)
        if len(ids_r) == 0 or len(ids_s) == 0:
            return
        self.stats.unit_pairs_joined += 1
        self._m_pair_joined.inc()
        span_args = ({"r": r_unit, "s": s_unit}
                     if self._tracer.enabled else None)
        with self._tracer.span("unit_pair", args=span_args):
            join_sequences(Sequence(ids_r, pts_r, self.ctx.grid_epsilon),
                           Sequence(ids_s, pts_s, self.ctx.grid_epsilon),
                           self.ctx)

    # -- the schedule ---------------------------------------------------------

    def run(self) -> RSScheduleStats:
        """Execute the schedule; returns the accounting."""
        if self.n_r == 0 or self.n_s == 0:
            return self.stats
        self.meta_r = self._collect_meta(self.file_r, self.units_r)
        self.meta_s = self._collect_meta(self.file_s, self.units_s)
        s_pool_size = self._pool_s.capacity
        i = 0
        while i < self.n_r:
            lo, hi = self._window_of(i, i)
            if hi - lo <= s_pool_size:
                # Sliding mode: the window fits; stream this R unit
                # against the cached S window.
                for s in range(lo, hi):
                    self._join_units(i, s)
                i += 1
                continue
            # Block mode: pin a group of R units in all frames but one
            # and stream their combined S window through that frame.
            self.stats.block_phases += 1
            self._m_block_phases.inc()
            group_size = max(1, self.buffer_units - 1)
            group_hi = min(self.n_r - 1, i + group_size - 1)
            g_lo, g_hi = self._window_of(i, group_hi)
            self._pool_r = BufferPool(group_size, self._load_r)
            self._pool_s = BufferPool(1, self._load_s)
            for r in range(i, group_hi + 1):
                self._pool_r.get(r, pin=True)
            for s in range(g_lo, g_hi):
                for r in range(i, group_hi + 1):
                    self._join_units(r, s)
            self._pool_r = BufferPool(1, self._load_r)
            self._pool_s = BufferPool(s_pool_size, self._load_s)
            i = group_hi + 1
        return self.stats
