"""Top-level EGO similarity join.

Three entry points:

* :func:`ego_self_join` — in-memory self-join of a point array.  The
  whole EGO-sorted data set is one sequence; the recursion of Figure 6
  does all the work (no I/O scheduling needed when everything fits).
* :func:`ego_join` — in-memory R ⋈ S join of two point arrays.
* :func:`ego_self_join_file` — the full external pipeline of the paper:
  external merge sort by epsilon grid order, then the gallop/crabstep
  I/O schedule of Figure 4 over fixed-size I/O units with a bounded
  buffer.

The external variant returns an :class:`ExternalJoinReport` with the
complete operation accounting (sort runs, unit loads, distance
computations, simulated I/O time) that the benchmark harness feeds into
the cost model.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..obs.metrics import ensure_metrics
from ..obs.profile import ensure_profiler
from ..obs.trace import ensure_tracer
from ..sorting.external_sort import SortStats, external_sort
from ..storage.disk import SimulatedDisk
from ..storage.faults import (FaultLog, FaultPlan, WorkerFaultLog,
                              WorkerFaultPlan)
from ..storage.integrity import RetryPolicy, make_robust_disk
from ..storage.journal import Journal
from ..storage.pagefile import PointFile
from ..storage.pairfile import PairFile, SpillingCollector
from ..storage.backend import get_backend
from ..storage.stats import CPUCounters, IOCounters, IOScope
from .ego_order import (ego_sorted, ensure_finite, grid_cells,
                        validate_epsilon)
from .preprocess import resolve_dimension_order
from .result import JoinResult
from .scheduler import EGOScheduler, ScheduleStats
from .sequence import Sequence
from .sequence_join import DEFAULT_MINLEN, JoinContext, join_sequences
from .shard import SHARD_POLICIES, ShardStats, run_sharded_join
from .supervisor import (SupervisedUnitJoiner, SupervisorPolicy,
                         SupervisorStats, replay_stats)


def _make_context(epsilon: float, result: JoinResult, minlen: int,
                  engine: str, order_dimensions: bool,
                  cpu: Optional[CPUCounters],
                  metric=None, split_strategy: str = "half",
                  invariants: bool = False,
                  batch_points: Optional[int] = None,
                  batch_leaves: Optional[int] = None) -> JoinContext:
    return JoinContext(epsilon=epsilon, result=result, minlen=minlen,
                       engine=engine, order_dimensions=order_dimensions,
                       cpu=cpu, metric=metric,
                       split_strategy=split_strategy,
                       invariants=invariants,
                       batch_points=batch_points,
                       batch_leaves=batch_leaves)


def ego_self_join(points: np.ndarray, epsilon: float,
                  ids: Optional[np.ndarray] = None,
                  minlen: int = DEFAULT_MINLEN, engine: str = "vector",
                  order_dimensions: bool = True,
                  cpu: Optional[CPUCounters] = None,
                  result: Optional[JoinResult] = None,
                  metric=None, sort_dims=None,
                  split_strategy: str = "half",
                  invariants: bool = False,
                  batch_points: Optional[int] = None,
                  batch_leaves: Optional[int] = None) -> JoinResult:
    """In-memory EGO similarity self-join.

    Returns every unordered pair of distinct points at distance at most
    ``epsilon``, reported once.  Pair ids refer to ``ids`` when given,
    otherwise to input row positions.  ``metric`` selects the distance
    (default Euclidean; any Minkowski L_p name/power or L_∞ — the
    paper's pruning holds for the whole family).  ``sort_dims``
    re-weighs the grid order's dimensions before sorting ("natural",
    "spread", "variance" or an explicit permutation — §4's sort-order
    modification); results are permutation-invariant, only pruning
    changes.  ``invariants`` turns on the runtime invariant hooks of
    :mod:`repro.verify.invariants` (used by the verification tests).
    """
    validate_epsilon(epsilon)
    pts = ensure_finite(points)
    if result is None:
        result = JoinResult()
    if len(pts) == 0:
        return result
    perm = resolve_dimension_order(pts, epsilon, sort_dims)
    if not np.array_equal(perm, np.arange(pts.shape[1])):
        pts = np.ascontiguousarray(pts[:, perm])
    sorted_ids, sorted_pts = ego_sorted(pts, epsilon, ids)
    ctx = _make_context(epsilon, result, minlen, engine, order_dimensions,
                        cpu, metric=metric, split_strategy=split_strategy,
                        invariants=invariants, batch_points=batch_points,
                        batch_leaves=batch_leaves)
    seq = Sequence(sorted_ids, sorted_pts, epsilon)
    join_sequences(seq, seq, ctx)
    return result


def ego_join(points_r: np.ndarray, points_s: np.ndarray, epsilon: float,
             ids_r: Optional[np.ndarray] = None,
             ids_s: Optional[np.ndarray] = None,
             minlen: int = DEFAULT_MINLEN, engine: str = "vector",
             order_dimensions: bool = True,
             cpu: Optional[CPUCounters] = None,
             result: Optional[JoinResult] = None,
             metric=None, sort_dims=None,
             split_strategy: str = "half",
             invariants: bool = False,
             batch_points: Optional[int] = None,
             batch_leaves: Optional[int] = None) -> JoinResult:
    """In-memory EGO similarity join of two point sets.

    Returns all pairs ``(r, s)`` with ``‖r − s‖ ≤ ε``; the first id of
    each pair refers to ``points_r``, the second to ``points_s``.
    ``sort_dims`` (see :func:`ego_self_join`) is resolved on the union
    of both sets so one permutation applies to both sides.
    """
    validate_epsilon(epsilon)
    r = ensure_finite(points_r)
    s = ensure_finite(points_s)
    if result is None:
        result = JoinResult()
    if len(r) == 0 or len(s) == 0:
        return result
    if r.shape[1] != s.shape[1]:
        raise ValueError(
            f"dimension mismatch: {r.shape[1]} vs {s.shape[1]}")
    perm = resolve_dimension_order(np.vstack([r, s]), epsilon, sort_dims)
    if not np.array_equal(perm, np.arange(r.shape[1])):
        r = np.ascontiguousarray(r[:, perm])
        s = np.ascontiguousarray(s[:, perm])
    rid, rpts = ego_sorted(r, epsilon, ids_r)
    sid, spts = ego_sorted(s, epsilon, ids_s)
    ctx = _make_context(epsilon, result, minlen, engine, order_dimensions,
                        cpu, metric=metric, split_strategy=split_strategy,
                        invariants=invariants, batch_points=batch_points,
                        batch_leaves=batch_leaves)
    join_sequences(Sequence(rid, rpts, epsilon),
                   Sequence(sid, spts, epsilon), ctx)
    return result


@dataclass
class ExternalJoinReport:
    """Full accounting of one external EGO self-join run.

    The robustness fields are filled in when the pipeline runs with a
    fault plan and/or a checkpoint: ``faults`` is the injection log,
    ``resumed`` marks a run continued from a journal, ``result_path`` is
    the durable pair file of a checkpointed run, and ``total_pairs`` is
    the complete join cardinality — on a resumed run this covers pairs
    produced *before* the crash as well, which ``result`` does not.
    ``supervisor`` is the fault-handling ledger of a parallel run
    (:class:`~repro.core.supervisor.SupervisorStats`; cumulative across
    crash/resume), and ``worker_faults`` the injection log of a
    :class:`~repro.storage.faults.WorkerFaultPlan`.  ``shards`` carries
    the per-shard execution accounting of a sharded run
    (:class:`~repro.core.shard.ShardStats`; ``None`` otherwise).
    """

    result: JoinResult
    sort_stats: SortStats
    schedule_stats: ScheduleStats
    cpu: CPUCounters
    io: IOCounters
    simulated_io_time_s: float
    sort_io_time_s: float
    join_io_time_s: float
    faults: Optional[FaultLog] = None
    resumed: bool = False
    result_path: Optional[str] = None
    total_pairs: Optional[int] = None
    supervisor: Optional["SupervisorStats"] = None
    worker_faults: Optional["WorkerFaultLog"] = None
    shards: Optional[List["ShardStats"]] = None


def _record_io_metrics(registry, io: IOCounters,
                       simulated_io_time_s: float) -> None:
    """Publish end-of-run I/O gauges (a no-op on the null registry).

    Every value is derived from the deterministic simulated disks, so —
    like all metrics — the gauges are byte-identical across repeated
    runs and across worker counts (the workers never touch a disk).
    """
    if not registry.enabled:
        return
    ops = registry.gauge("ego_io_operations",
                         "End-of-run physical I/O operation counts",
                         labelnames=("op",))
    ops.labels("random_reads").set(io.random_reads)
    ops.labels("sequential_reads").set(io.sequential_reads)
    ops.labels("random_writes").set(io.random_writes)
    ops.labels("sequential_writes").set(io.sequential_writes)
    ops.labels("read_faults").set(io.read_faults)
    ops.labels("read_retries").set(io.read_retries)
    ops.labels("corrupt_pages").set(io.corrupt_pages)
    registry.gauge("ego_io_bytes_read",
                   "Bytes read across the run's disks",
                   unit="bytes").set(io.bytes_read)
    registry.gauge("ego_io_bytes_written",
                   "Bytes written across the run's disks",
                   unit="bytes").set(io.bytes_written)
    registry.gauge("ego_simulated_io_seconds",
                   "Simulated I/O seconds (cost-model clock, deterministic)",
                   unit="s").set(simulated_io_time_s)


def ego_key_function(epsilon: float):
    """Key function for the external sort: the ε-grid cell coordinates."""
    eps = validate_epsilon(epsilon)

    def key_of_batch(points: np.ndarray) -> np.ndarray:
        return grid_cells(points, eps)

    return key_of_batch


@dataclass
class ExternalRSJoinReport:
    """Full accounting of one external R ⋈ S EGO join run."""

    result: JoinResult
    sort_stats_r: SortStats
    sort_stats_s: SortStats
    schedule_stats: "RSScheduleStats"
    cpu: CPUCounters
    io: IOCounters
    simulated_io_time_s: float
    sort_io_time_s: float
    join_io_time_s: float


def ego_join_files(file_r: PointFile, file_s: PointFile, epsilon: float,
                   unit_bytes: int, buffer_units: int,
                   sort_memory_records: Optional[int] = None,
                   minlen: int = DEFAULT_MINLEN, engine: str = "vector",
                   order_dimensions: bool = True,
                   materialize: bool = True,
                   metric=None,
                   invariants: bool = False,
                   batch_points: Optional[int] = None,
                   batch_leaves: Optional[int] = None,
                   trace=None, metrics=None,
                   profiler=None) -> ExternalRSJoinReport:
    """External EGO join of two point files (R ⋈ S).

    Both files are externally sorted into epsilon grid order, then the
    two-file generalisation of the paper's schedule
    (:class:`~repro.core.rs_scheduler.TwoFileScheduler`) forms all unit
    pairs within the cross-file ε-interval.  Result pairs are
    ``(r_id, s_id)``; if the same physical file is passed for both
    sides, reflexive and mirrored pairs are included (two-set
    semantics, like :func:`ego_join`).

    ``trace`` / ``metrics`` / ``profiler`` attach the observability
    recorders of :mod:`repro.obs` (see :func:`ego_self_join_file`).
    """
    from .rs_scheduler import RSScheduleStats, TwoFileScheduler

    validate_epsilon(epsilon)
    tracer = ensure_tracer(trace)
    registry = ensure_metrics(metrics)
    prof = ensure_profiler(profiler)
    if file_r.dimensions != file_s.dimensions:
        raise ValueError(
            f"dimension mismatch: {file_r.dimensions} vs "
            f"{file_s.dimensions}")
    codec = file_r.codec
    if sort_memory_records is None:
        per_unit = max(1, unit_bytes // codec.record_bytes)
        sort_memory_records = max(2, buffer_units * per_unit)

    key = ego_key_function(epsilon)
    disks = [SimulatedDisk() for _ in range(3)]
    sorted_r_disk, sorted_s_disk, scratch = disks
    root_span = tracer.span("external_rs_join", cat="pipeline")
    root_span.__enter__()
    try:
        # Run-local scope: dedups a shared R/S disk, resets arm
        # positions so repeated runs on the same disks account
        # identically, and provides this run's I/O deltas.
        scope = IOScope(file_r.disk, file_s.disk, sorted_r_disk,
                        sorted_s_disk, scratch).begin()
        with prof.phase("sort"), tracer.span("sort", cat="pipeline"):
            sorted_r, sort_r = external_sort(file_r, sorted_r_disk, scratch,
                                             key, sort_memory_records,
                                             trace=tracer, metrics=registry)
            sorted_s, sort_s = external_sort(file_s, sorted_s_disk, scratch,
                                             key, sort_memory_records,
                                             trace=tracer, metrics=registry)
        sort_io_time = scope.time_delta()

        cpu = CPUCounters()
        result = JoinResult(materialize=materialize)
        ctx = JoinContext(epsilon=epsilon, result=result, minlen=minlen,
                          engine=engine, order_dimensions=order_dimensions,
                          cpu=cpu, metric=metric, invariants=invariants,
                          batch_points=batch_points,
                          batch_leaves=batch_leaves,
                          trace=tracer, metrics=registry)
        join_before = (sorted_r_disk.simulated_time_s
                       + sorted_s_disk.simulated_time_s)
        scheduler = TwoFileScheduler(sorted_r, sorted_s, ctx, unit_bytes,
                                     buffer_units)
        with prof.phase("schedule"), tracer.span("schedule", cat="pipeline"):
            schedule_stats = scheduler.run()
        join_io_time = (sorted_r_disk.simulated_time_s
                        + sorted_s_disk.simulated_time_s) - join_before

        io_total = scope.io_delta()
        _record_io_metrics(registry, io_total, sort_io_time + join_io_time)
        return ExternalRSJoinReport(
            result=result, sort_stats_r=sort_r, sort_stats_s=sort_s,
            schedule_stats=schedule_stats, cpu=cpu, io=io_total,
            simulated_io_time_s=sort_io_time + join_io_time,
            sort_io_time_s=sort_io_time, join_io_time_s=join_io_time)
    finally:
        root_span.__exit__(None, None, None)
        for disk in disks:
            disk.close()


def ego_self_join_file(input_file: PointFile, epsilon: float,
                       unit_bytes: int, buffer_units: int,
                       sort_memory_records: Optional[int] = None,
                       sorted_disk: Optional[SimulatedDisk] = None,
                       scratch_disk: Optional[SimulatedDisk] = None,
                       minlen: int = DEFAULT_MINLEN, engine: str = "vector",
                       order_dimensions: bool = True,
                       allow_crabstep: bool = True,
                       materialize: bool = True,
                       metric=None,
                       assume_sorted: bool = False,
                       sorted_epsilon: Optional[float] = None,
                       fault_plan: Optional[FaultPlan] = None,
                       retry: Optional[RetryPolicy] = None,
                       checksums: bool = False,
                       checkpoint_dir: Optional[str] = None,
                       resume: bool = False,
                       workers: int = 1,
                       shards: Optional[int] = None,
                       shard_policy: str = "adaptive",
                       backend: str = "simulated",
                       worker_fault_plan: Optional[WorkerFaultPlan] = None,
                       task_timeout: Optional[float] = None,
                       task_retries: int = 2,
                       degrade: bool = True,
                       supervisor_policy: Optional[SupervisorPolicy] = None,
                       invariants: bool = False,
                       batch_points: Optional[int] = None,
                       batch_leaves: Optional[int] = None,
                       trace=None, metrics=None,
                       profiler=None) -> ExternalJoinReport:
    """External EGO self-join of a point file (the paper's full pipeline).

    Parameters
    ----------
    input_file:
        The unsorted input on its simulated disk.
    unit_bytes, buffer_units:
        I/O unit size and the number of unit frames the join may buffer.
    sort_memory_records:
        Working memory of the external sort, in records.  Defaults to the
        same budget the join phase gets (``buffer_units`` units worth of
        records), so both phases respect one memory limit.
    sorted_disk, scratch_disk:
        Disks for the sorted output and the sort runs; anonymous
        temporary disks are created (and closed) when omitted, or
        file-backed disks under ``checkpoint_dir`` when checkpointing.
    allow_crabstep:
        Forwarded to the scheduler; ``False`` reproduces gallop-mode
        thrashing (Figure 3b).
    assume_sorted, sorted_epsilon:
        Skip the external sort: ``input_file`` is already in epsilon
        grid order for ``sorted_epsilon`` (default: ``epsilon``).  A
        file sorted at εs serves any join epsilon ≤ εs directly (the
        pruning grid stays at εs — see ``grid_epsilon`` in
        :class:`~repro.core.sequence_join.JoinContext`), which is how a
        parameter sweep reuses one sort.  A *larger* ε falls back to
        re-sorting: no coarser width preserves the stored
        lexicographic order, integer multiples of εs included.
    fault_plan:
        Seeded :class:`~repro.storage.faults.FaultPlan`; every disk the
        pipeline touches is wrapped in a fault-injecting layer sharing
        this plan (one global operation order), so failures — including
        a :class:`~repro.storage.faults.SimulatedCrash` escaping this
        call — are deterministic and reproducible.
    retry, checksums:
        Detection and recovery at the storage boundary: per-page CRC32
        verification (turning silent corruption into
        :class:`~repro.storage.integrity.CorruptPageError`) and a
        bounded-retry policy with backoff charged to the simulated clock.
    checkpoint_dir, resume:
        Crash-safe checkpointing.  With ``checkpoint_dir`` set, the
        sorted file, sort scratch, a durable result pair file and a
        progress journal live under that directory, every completed sort
        run / merge pass / joined unit pair is journaled, and result
        appends are idempotent (truncated back to the journal watermark
        on resume).  After a crash, calling again with ``resume=True``
        (same directory, same parameters) skips completed work and
        produces a result file byte-identical to an uninterrupted run.
    workers:
        Unit-pair join parallelism.  With ``workers > 1`` the scheduled
        unit pairs are joined on a process pool
        (:class:`~repro.core.supervisor.SupervisedUnitJoiner`) while
        the scheduler keeps streaming I/O; worker results are merged in
        schedule order, so the result stream — including a
        checkpointed run's durable pair file and journal — is
        byte-identical to the serial run.
    shards, shard_policy, backend:
        Sharded execution (:mod:`repro.core.shard`).  With ``shards``
        set, the sorted file is partitioned into contiguous ranges of
        I/O units plus their ε-overlap fringe; each shard joins its
        unit pairs in its own worker process against a private disk of
        the chosen storage ``backend`` (``simulated`` / ``file`` /
        ``memory``) and buffer pool, and the pair streams are merged
        in global schedule order — output, journal and counters stay
        byte-identical to the serial join.  ``shard_policy`` selects
        the partitioner: ``uniform`` (equal unit counts) or
        ``adaptive`` (cost-balanced with recursive re-splitting of
        heavy ε-cells; the default, and the one that wins on skewed
        data).  Sharding supersedes ``workers``: the shard processes
        are the join parallelism.  Fault tolerance (retry, pool
        recycling, degrade-to-inline) follows the same policy knobs as
        the parallel join, applied per shard.
    worker_fault_plan, task_timeout, task_retries, degrade,
    supervisor_policy:
        Fault tolerance of the parallel join (workers > 1; see
        :mod:`repro.core.supervisor`).  Failed tasks — injected by a
        seeded :class:`~repro.storage.faults.WorkerFaultPlan` or real —
        are retried up to ``task_retries`` times with deterministic
        backoff; ``task_timeout`` (real seconds, ``None`` = no deadline)
        bounds the wait on the oldest outstanding task, after which the
        hung pool is recycled; repeated pool failure degrades the run to
        serial in-process execution (``degrade=True``) so it completes,
        or aborts with
        :class:`~repro.core.supervisor.PoolFailureError`
        (``degrade=False``).  ``supervisor_policy`` supplies a full
        :class:`~repro.core.supervisor.SupervisorPolicy` and overrides
        the three convenience knobs.  Supervisor decisions are journaled
        under ``checkpoint_dir`` so a resumed run reports cumulative
        counters identical to an uninterrupted one.
    invariants:
        Enable the runtime invariant hooks
        (:mod:`repro.verify.invariants`): ε-interval coverage of the
        schedule, gallop read-once, buffer pin balance, and pruning /
        leaf checks in the recursion.  With ``workers > 1`` the
        recursion-level checks run only for pairs joined in-process;
        the schedule-level checks always run in the parent.
    trace, metrics, profiler:
        Observability recorders (:mod:`repro.obs`).  ``trace`` — a
        :class:`~repro.obs.trace.Tracer` collecting the span hierarchy
        (``external_self_join`` → ``sort``/``schedule`` → ``load`` /
        ``unit_pair`` → ``sequence_join`` → ``leaf``) for Chrome
        ``trace_event`` export.  ``metrics`` — a
        :class:`~repro.obs.metrics.MetricsRegistry` of structural
        counters (unit reads by mode, prunes by reason, buffer events,
        …) whose dumps are byte-identical across runs and worker
        counts; with ``workers > 1`` the worker deltas are merged in
        schedule order.  ``profiler`` — a
        :class:`~repro.obs.profile.PhaseProfiler` timing the ``sort``
        and ``schedule`` phases.  All default to shared null recorders
        that record nothing and allocate nothing.
    """
    validate_epsilon(epsilon)
    if workers < 1:
        raise ValueError("workers must be at least 1")
    if shards is not None:
        if shards < 1:
            raise ValueError(f"shards must be at least 1, got {shards}")
        if shard_policy not in SHARD_POLICIES:
            raise ValueError(f"unknown shard policy {shard_policy!r}; "
                             f"choose from {SHARD_POLICIES}")
        get_backend(backend)  # fail fast on unknown backend names
    if supervisor_policy is None:
        supervisor_policy = SupervisorPolicy(task_timeout=task_timeout,
                                             max_task_retries=task_retries,
                                             degrade=degrade)
    tracer = ensure_tracer(trace)
    registry = ensure_metrics(metrics)
    prof = ensure_profiler(profiler)
    codec = input_file.codec
    if sort_memory_records is None:
        per_unit = max(1, unit_bytes // codec.record_bytes)
        sort_memory_records = max(2, buffer_units * per_unit)
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires checkpoint_dir")

    grid_epsilon = float(epsilon)
    if assume_sorted:
        eps_s = float(epsilon) if sorted_epsilon is None \
            else validate_epsilon(sorted_epsilon)
        if epsilon <= eps_s + 1e-12:
            grid_epsilon = eps_s
        else:
            # A file sorted at εs is NOT in epsilon grid order for any
            # larger width — not even integer multiples k·εs.  Coarse
            # cells are a per-dimension monotone function of the fine
            # cells, but a lexicographic order does not survive such a
            # map: two points equal in the coarse leading dimension can
            # appear in either fine order, so the coarse order they'd
            # need is lost and the interval scheduling silently drops
            # pairs (an earlier revision shipped the k·εs shortcut and
            # did exactly that).  Fall back to re-sorting at ε.
            assume_sorted = False

    journal: Optional[Journal] = None
    if checkpoint_dir is not None:
        os.makedirs(checkpoint_dir, exist_ok=True)
        journal = Journal(os.path.join(checkpoint_dir, "journal.json"))
        if not resume:
            journal.reset()

    def wrap(disk, sidecar: bool = False):
        return make_robust_disk(disk, plan=fault_plan, checksums=checksums,
                                retry=retry, sidecar=sidecar)

    # Every disk this call creates is closed in the finally block even
    # when a later construction step throws; file-backed checkpoint
    # disks survive their close, anonymous ones are removed.
    own_disks = []
    root_span = tracer.span("external_self_join", cat="pipeline")
    root_span.__enter__()
    try:
        if sorted_disk is None and not assume_sorted:
            if checkpoint_dir is not None:
                sorted_disk = SimulatedDisk(
                    path=os.path.join(checkpoint_dir, "sorted.pts"))
            else:
                sorted_disk = SimulatedDisk()
            own_disks.append(sorted_disk)
        if scratch_disk is None and not assume_sorted:
            if checkpoint_dir is not None:
                scratch_disk = SimulatedDisk(
                    path=os.path.join(checkpoint_dir, "scratch.bin"))
            else:
                scratch_disk = SimulatedDisk()
            own_disks.append(scratch_disk)

        robust = (fault_plan is not None or checksums
                  or retry is not None)
        input_disk = wrap(input_file.disk) if robust else input_file.disk
        if robust:
            input_file = PointFile(input_disk, codec, input_file.count,
                                   data_start=input_file.data_start)
        sidecars = checkpoint_dir is not None
        sorted_io = (wrap(sorted_disk, sidecar=sidecars)
                     if robust and sorted_disk is not None else sorted_disk)
        scratch_io = (wrap(scratch_disk, sidecar=sidecars)
                      if robust and scratch_disk is not None
                      else scratch_disk)

        # Durable result file + spilling collector (checkpoint mode).
        pair_file = None
        collector = None
        result_path = None
        if checkpoint_dir is not None:
            result_path = os.path.join(checkpoint_dir, "result.prs")
            result_disk = SimulatedDisk(path=result_path)
            own_disks.append(result_disk)
            watermark = journal.pair_watermark
            if resume and os.path.getsize(result_path) > 0:
                PairFile.open(result_disk)  # validate magic/version
                pair_file = PairFile(result_disk, count=watermark,
                                     with_distances=False)
                pair_file.truncate_to(watermark)
            else:
                if watermark:
                    raise RuntimeError(
                        f"journal records {watermark} durable pairs but "
                        f"{result_path} is missing or empty")
                pair_file = PairFile.create(result_disk)
            collector = SpillingCollector(pair_file)

        if journal is not None and journal.join_complete is not None:
            # The previous incarnation finished everything; nothing to
            # do — but replay its journaled supervisor decisions so the
            # report still carries the run's cumulative fault ledger.
            total = journal.join_complete["pairs"]
            events = journal.supervisor_events()
            return ExternalJoinReport(
                result=JoinResult(materialize=False),
                sort_stats=SortStats(), schedule_stats=ScheduleStats(),
                cpu=CPUCounters(), io=IOCounters(),
                simulated_io_time_s=0.0, sort_io_time_s=0.0,
                join_io_time_s=0.0,
                faults=fault_plan.injected if fault_plan else None,
                resumed=True, result_path=result_path, total_pairs=total,
                supervisor=(replay_stats(events, supervisor_policy)
                            if events else None),
                worker_faults=(worker_fault_plan.injected
                               if worker_fault_plan else None))

        # Run-local I/O scope: snapshots counters and resets arm
        # positions so back-to-back runs reusing the same input disk
        # account identically (see IOScope).
        if assume_sorted:
            sorted_file = input_file
            sorted_disk_obj = input_disk
            io_scope = IOScope(input_disk).begin()
            sort_stats = SortStats()
            sort_io_time = 0.0
        else:
            sorted_disk_obj = sorted_io
            io_scope = IOScope(input_disk, sorted_io, scratch_io).begin()

            with prof.phase("sort"), tracer.span("sort", cat="pipeline"):
                sorted_file, sort_stats = external_sort(
                    input_file, sorted_io, scratch_io,
                    ego_key_function(epsilon), sort_memory_records,
                    journal=journal, trace=tracer, metrics=registry)
            sort_io_time = io_scope.time_delta()

        cpu = CPUCounters()
        result = JoinResult(materialize=materialize, callback=collector)
        ctx = JoinContext(epsilon=epsilon, result=result, minlen=minlen,
                          engine=engine, order_dimensions=order_dimensions,
                          cpu=cpu, metric=metric,
                          grid_epsilon=grid_epsilon,
                          invariants=invariants,
                          batch_points=batch_points,
                          batch_leaves=batch_leaves,
                          trace=tracer, metrics=registry)

        pair_done = None
        pair_complete = None
        if journal is not None:
            pair_done = journal.pair_done

            def pair_complete(a: int, b: int) -> None:
                # Make the pair's results durable, then journal the pair
                # with the result watermark; a crash between the two
                # merely redoes this one pair after truncation.
                collector.flush()
                journal.record_unit_pair(a, b, pair_file.count)

        join_time_before = sorted_disk_obj.simulated_time_s
        supervisor_stats = None
        shard_stats = None
        if shards is not None:
            with prof.phase("schedule"), \
                    tracer.span("schedule", cat="pipeline"):
                schedule_stats, shard_stats = run_sharded_join(
                    sorted_file, ctx, unit_bytes, buffer_units,
                    shards=shards, shard_policy=shard_policy,
                    backend=backend, allow_crabstep=allow_crabstep,
                    pair_done=pair_done, pair_complete=pair_complete,
                    supervisor_policy=supervisor_policy,
                    worker_fault_plan=worker_fault_plan)
        elif workers > 1:
            decision_hook = None
            replay_events = ()
            if journal is not None:
                decision_hook = (lambda kind, key, attempt:
                                 journal.record_supervisor_event(
                                     kind, key[0], key[1], attempt))
                if resume:
                    replay_events = journal.replay_supervisor_events()
            unit_joiner = SupervisedUnitJoiner(
                ctx, workers, policy=supervisor_policy,
                worker_plan=worker_fault_plan,
                decision_hook=decision_hook,
                replay_events=replay_events)
            supervisor_stats = unit_joiner.stats
        else:
            from .parallel import SerialUnitJoiner
            unit_joiner = SerialUnitJoiner(ctx)
        if shards is None:
            # The context manager shuts the pool down on *every* exit
            # path — a fault escaping the schedule must not leak worker
            # processes.
            with unit_joiner:
                scheduler = EGOScheduler(sorted_file, ctx, unit_bytes,
                                         buffer_units,
                                         allow_crabstep=allow_crabstep,
                                         pair_done=pair_done,
                                         pair_complete=pair_complete,
                                         unit_joiner=unit_joiner)
                with prof.phase("schedule"), \
                        tracer.span("schedule", cat="pipeline"):
                    schedule_stats = scheduler.run()
        join_io_time = sorted_disk_obj.simulated_time_s - join_time_before

        total_pairs = result.count
        if collector is not None:
            collector.close()
            total_pairs = pair_file.count
            journal.mark_join_complete(total_pairs)

        io_total = io_scope.io_delta()
        if pair_file is not None:
            io_total = io_total + pair_file.disk.counters
        _record_io_metrics(registry, io_total, sort_io_time + join_io_time)
        return ExternalJoinReport(
            result=result,
            sort_stats=sort_stats,
            schedule_stats=schedule_stats,
            cpu=cpu,
            io=io_total,
            simulated_io_time_s=sort_io_time + join_io_time,
            sort_io_time_s=sort_io_time,
            join_io_time_s=join_io_time,
            faults=fault_plan.injected if fault_plan else None,
            resumed=resume,
            result_path=result_path,
            total_pairs=total_pairs,
            supervisor=supervisor_stats,
            worker_faults=(worker_fault_plan.injected
                           if worker_fault_plan else None),
            shards=shard_stats,
        )
    finally:
        root_span.__exit__(None, None, None)
        for disk in reversed(own_disks):
            disk.close()
