"""Distance metrics for the similarity join.

The paper evaluates with the Euclidean distance, but every pruning rule
it proves holds for any Minkowski metric L_p (p ≥ 1) and for L_∞:
Lemma 2's argument — one dimension's difference exceeding ε already
bounds the whole distance below by ε — is exactly the statement
``|p_i − q_i| > ε ⇒ L_p(p, q) > ε``, which is true for all of them.
The grid, the ε-interval, the inactive-dimension rule and the
scheduling therefore carry over unchanged; only the final distance test
differs.

A :class:`Metric` describes the per-dimension contribution, how
contributions combine (sum for L_p, max for L_∞), the comparison
threshold for a given ε, and how to recover the true distance from the
combined value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np


@dataclass(frozen=True)
class Metric:
    """One Minkowski-family distance metric."""

    name: str
    power: Optional[float]   # p of L_p; None means L_inf

    def __post_init__(self) -> None:
        if self.power is not None and self.power < 1.0:
            raise ValueError(
                f"Minkowski power must be >= 1, got {self.power}")

    @property
    def combine_max(self) -> bool:
        """True when contributions combine by max (L_∞)."""
        return self.power is None

    def contributions(self, diffs: np.ndarray) -> np.ndarray:
        """Per-dimension contribution of coordinate differences."""
        a = np.abs(diffs)
        if self.power is None or self.power == 1.0:
            return a
        if self.power == 2.0:
            return diffs * diffs
        return a ** self.power

    def threshold(self, epsilon: float) -> float:
        """Combined-value threshold equivalent to distance ≤ ε."""
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if self.power is None or self.power == 1.0:
            return epsilon
        if self.power == 2.0:
            return epsilon * epsilon
        return epsilon ** self.power

    def finalize(self, combined: np.ndarray) -> np.ndarray:
        """Distance value(s) from combined contribution(s)."""
        if self.power is None or self.power == 1.0:
            return combined
        if self.power == 2.0:
            return np.sqrt(combined)
        return combined ** (1.0 / self.power)

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        """True distance between two points (reference implementation)."""
        diffs = np.asarray(a, dtype=float) - np.asarray(b, dtype=float)
        contrib = self.contributions(diffs)
        combined = contrib.max() if self.combine_max else contrib.sum()
        return float(self.finalize(np.asarray(combined)))


EUCLIDEAN = Metric("euclidean", 2.0)
MANHATTAN = Metric("manhattan", 1.0)
CHEBYSHEV = Metric("chebyshev", None)

_NAMED = {
    "euclidean": EUCLIDEAN,
    "l2": EUCLIDEAN,
    "manhattan": MANHATTAN,
    "l1": MANHATTAN,
    "chebyshev": CHEBYSHEV,
    "linf": CHEBYSHEV,
    "maximum": CHEBYSHEV,
}


def get_metric(spec: Union[str, float, Metric, None]) -> Metric:
    """Resolve a metric from a name, a Minkowski power or an instance.

    ``None`` and the default names resolve to Euclidean.
    """
    if spec is None:
        return EUCLIDEAN
    if isinstance(spec, Metric):
        return spec
    if isinstance(spec, str):
        key = spec.lower()
        if key not in _NAMED:
            raise ValueError(
                f"unknown metric {spec!r}; known: {sorted(_NAMED)}")
        return _NAMED[key]
    power = float(spec)
    if power == 2.0:
        return EUCLIDEAN
    if power == 1.0:
        return MANHATTAN
    return Metric(f"minkowski-{power:g}", power)
