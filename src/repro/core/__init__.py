"""The paper's contribution: the Epsilon Grid Order similarity join."""

from .distance import (dimension_ordering, distance_below_eps,
                       natural_ordering, pairs_within_scalar,
                       pairs_within_vector, pairwise_sq_distances)
from .ego_join import (ExternalJoinReport, ExternalRSJoinReport, ego_join,
                       ego_join_files, ego_key_function, ego_self_join,
                       ego_self_join_file)
from .ego_order import (ego_compare, ego_key, ego_less, ego_sort_order,
                        ego_sorted, epsilon_interval, grid_cells,
                        is_ego_sorted, outside_interval_high,
                        outside_interval_low, validate_epsilon)
from .kernels import (ENGINES, ScratchBuffers, candidate_windows,
                      pairs_within_matmul, select_engine)
from .metrics import (CHEBYSHEV, EUCLIDEAN, MANHATTAN, Metric,
                      get_metric)
from .parallel import (ParallelUnitJoiner, SerialUnitJoiner,
                       ego_self_join_parallel)
from .query import EGOIndex
from .result import JoinResult
from .rs_scheduler import RSScheduleStats, TwoFileScheduler
from .scheduler import (EGOScheduler, ScheduleStats, UnitMeta, lex_less,
                        schedule_self_join)
from .sequence import Sequence
from .sequence_join import (DEFAULT_MINLEN, EXCLUSION_CELL_DISTANCE,
                            JoinContext, join_point_blocks, join_sequences,
                            simple_join)

__all__ = [
    "DEFAULT_MINLEN",
    "ENGINES",
    "EXCLUSION_CELL_DISTANCE",
    "EGOIndex",
    "ParallelUnitJoiner",
    "ScratchBuffers",
    "SerialUnitJoiner",
    "EGOScheduler",
    "ExternalJoinReport",
    "ExternalRSJoinReport",
    "RSScheduleStats",
    "TwoFileScheduler",
    "CHEBYSHEV",
    "EUCLIDEAN",
    "MANHATTAN",
    "Metric",
    "get_metric",
    "JoinContext",
    "JoinResult",
    "ScheduleStats",
    "Sequence",
    "UnitMeta",
    "dimension_ordering",
    "distance_below_eps",
    "ego_compare",
    "ego_join",
    "ego_join_files",
    "ego_key",
    "ego_key_function",
    "ego_less",
    "ego_self_join",
    "ego_self_join_parallel",
    "ego_self_join_file",
    "ego_sort_order",
    "ego_sorted",
    "epsilon_interval",
    "grid_cells",
    "is_ego_sorted",
    "join_point_blocks",
    "join_sequences",
    "lex_less",
    "natural_ordering",
    "candidate_windows",
    "outside_interval_high",
    "outside_interval_low",
    "pairs_within_matmul",
    "pairs_within_scalar",
    "select_engine",
    "pairs_within_vector",
    "pairwise_sq_distances",
    "schedule_self_join",
    "simple_join",
    "validate_epsilon",
]
