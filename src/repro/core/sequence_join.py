"""Recursive join of EGO-sorted sequences (Figure 6 of the paper).

``join_sequences`` divides each sequence in two halves and recurses,
pruning pairs whose common inactive dimensions are at cell distance ≥ 2
(such sequences cannot contain a join pair, Section 3.3).  Below a
threshold length ``minlen`` the remaining points are compared with the
early-abort distance test of Figure 7, using the dimension ordering of
Section 4.2.

Because the sequences are materialised as sorted arrays and halving
produces views, the join needs no search structure at all; the only
memory overhead is the recursion stack, as the paper emphasises in
Section 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..obs.metrics import ensure_metrics
from ..obs.trace import ensure_tracer
from ..storage.stats import CPUCounters
from .distance import (dimension_ordering, natural_ordering,
                       pairs_within_scalar, pairs_within_vector)
from .ego_order import lex_less, validate_epsilon
from .kernels import (DEFAULT_BATCH_LEAVES, DEFAULT_BATCH_POINTS, ENGINES,
                      LeafBatch, ScratchBuffers, candidate_windows,
                      pairs_within_batched, pairs_within_matmul,
                      select_engine)
from .metrics import Metric, get_metric
from .result import JoinResult
from .sequence import Sequence

#: Default leaf size.  The paper reports CPU-optimal sequence sizes below
#: ten points for its C implementation; in this numpy-based reproduction
#: larger leaves amortise per-call overhead, so the default is higher.
#: ``benchmarks/bench_ablation_minlen.py`` sweeps this parameter.
DEFAULT_MINLEN = 32

#: Cell distance in a common inactive dimension from which a sequence
#: pair cannot contain any join pair.  Section 3.3's formal rule is ≥ 2
#: (the Figure 6 pseudocode's "> 2" is looser but also safe).
EXCLUSION_CELL_DISTANCE = 2


@dataclass
class JoinContext:
    """Parameters and accounting shared by one sequence-join run.

    ``metric`` selects the distance (Euclidean by default; any
    Minkowski L_p or L_∞ name/power/:class:`Metric` accepted — the
    paper's pruning rules hold for the whole family, see
    :mod:`repro.core.metrics`).  ``threshold`` is the combined-value
    comparison bound the engines use (ε² for Euclidean).

    ``engine`` picks the leaf distance kernel: ``"scalar"`` (the
    literal Figure-7 loop), ``"vector"`` (difference-cube numpy),
    ``"matmul"`` (tiled GEMM with candidate windowing, see
    :mod:`repro.core.kernels`), ``"batched"`` (leaf pairs accumulated
    into a :class:`~repro.core.kernels.LeafBatch` and evaluated with one
    fused GEMM per flush — amortises per-leaf dispatch) or ``"auto"``
    (per-leaf heuristic choosing between ``batched`` and ``matmul`` by
    leaf volume and metric).  ``batch_points`` / ``batch_leaves`` bound
    a batch's stacked rows and leaf-pair count before it is flushed.

    ``invariants`` enables the runtime invariant hooks of
    :mod:`repro.verify.invariants`: pruning-soundness and leaf-exactness
    checks in the recursion, and — when the context drives the I/O
    scheduler — ε-interval coverage, gallop read-once and pin balance.
    On by default in the verification tests, off in production runs (a
    ready-made :class:`~repro.verify.invariants.InvariantMonitor` can
    also be passed directly as ``monitor``).
    """

    epsilon: float
    result: JoinResult
    minlen: int = DEFAULT_MINLEN
    engine: str = "vector"
    order_dimensions: bool = True
    exclusion_distance: int = EXCLUSION_CELL_DISTANCE
    cpu: Optional[CPUCounters] = None
    metric: object = None
    grid_epsilon: Optional[float] = None
    split_strategy: str = "half"
    invariants: bool = False
    monitor: Optional[object] = None
    trace: Optional[object] = None
    metrics: Optional[object] = None
    batch_points: Optional[int] = None
    batch_leaves: Optional[int] = None
    eps_sq: float = field(init=False)
    threshold: float = field(init=False)

    def __post_init__(self) -> None:
        self.epsilon = validate_epsilon(self.epsilon)
        self.eps_sq = self.epsilon * self.epsilon
        self.metric = get_metric(self.metric)
        self.threshold = self.metric.threshold(self.epsilon)
        # The pruning grid may be coarser than the join distance: any
        # grid_epsilon >= epsilon keeps every rule sound (a cell gap of
        # >= 2 coarse cells bounds the coordinate gap below by
        # grid_epsilon >= epsilon).  This is what lets one EGO-sorted
        # file serve a whole parameter sweep of smaller epsilons.
        if self.grid_epsilon is None:
            self.grid_epsilon = self.epsilon
        else:
            self.grid_epsilon = validate_epsilon(self.grid_epsilon)
            if self.grid_epsilon < self.epsilon - 1e-12:
                raise ValueError(
                    f"grid_epsilon {self.grid_epsilon} must be at least "
                    f"the join epsilon {self.epsilon}")
        if self.minlen < 1:
            raise ValueError(f"minlen must be at least 1, got {self.minlen}")
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; known: {ENGINES}")
        if self.split_strategy not in ("half", "boundary"):
            raise ValueError(
                f"unknown split_strategy {self.split_strategy!r}")
        if self.invariants and self.monitor is None:
            # Imported lazily: repro.verify imports the core packages,
            # so a module-level import here would be circular.
            from ..verify.invariants import make_monitor
            self.monitor = make_monitor(True)
        self.batch_points = (DEFAULT_BATCH_POINTS if self.batch_points is None
                             else int(self.batch_points))
        self.batch_leaves = (DEFAULT_BATCH_LEAVES if self.batch_leaves is None
                             else int(self.batch_leaves))
        if self.batch_points < 1:
            raise ValueError(
                f"batch_points must be positive, got {self.batch_points}")
        if self.batch_leaves < 1:
            raise ValueError(
                f"batch_leaves must be positive, got {self.batch_leaves}")
        self.trace = ensure_tracer(self.trace)
        self.metrics = ensure_metrics(self.metrics)
        self.obs = _SequenceObs(self.metrics)
        self._scratch = None
        self._batch = None

    @property
    def engine_metric(self) -> Optional[Metric]:
        """Metric passed to the distance engines (None = fast Euclidean)."""
        return None if self.metric.name == "euclidean" else self.metric

    @property
    def scratch(self) -> ScratchBuffers:
        """Per-run scratch for the GEMM kernel (created on first use)."""
        if self._scratch is None:
            self._scratch = ScratchBuffers()
        return self._scratch

    @property
    def batch(self) -> LeafBatch:
        """Per-run leaf-pair accumulator (created on first use)."""
        if self._batch is None:
            self._batch = LeafBatch(self.batch_points, self.batch_leaves)
        return self._batch


class _SequenceObs:
    """Pre-resolved metric handles for the sequence-join hot path.

    Resolving the counter children once per run keeps the per-event cost
    at one attribute lookup plus one method call — a no-op on the shared
    null instruments when observability is off.
    """

    __slots__ = ("enabled", "seq_pairs", "prune_interval", "prune_inactive",
                 "prune_dim", "leaf_joins", "leaf_pairs", "window_rows",
                 "leaf_volume")

    def __init__(self, metrics) -> None:
        self.enabled = metrics.enabled
        prunes = metrics.counter(
            "ego_seq_prunes_total",
            "Sequence pairs pruned, by Section 3.3 rule",
            labelnames=("reason",))
        self.prune_interval = prunes.labels("interval_disjoint")
        self.prune_inactive = prunes.labels("inactive_dim")
        self.prune_dim = metrics.counter(
            "ego_seq_prune_dim_total",
            "Inactive-dimension prunes, by first excluding dimension",
            labelnames=("dim",))
        self.seq_pairs = metrics.counter(
            "ego_seq_pairs_total",
            "Sequence pairs visited by the Figure 6 recursion")
        self.leaf_joins = metrics.counter(
            "ego_leaf_joins_total",
            "Leaf kernel invocations, by resolved engine",
            labelnames=("engine",))
        self.leaf_pairs = metrics.counter(
            "ego_leaf_pairs_total",
            "Result pairs emitted by leaf kernels")
        self.window_rows = metrics.histogram(
            "ego_candidate_window_rows",
            "Candidate-window heights from EGO-sorted windowing",
            unit="rows")
        self.leaf_volume = metrics.histogram(
            "ego_leaf_volume",
            "Leaf volumes |s|*|t| handed to the distance kernels",
            unit="pairs")


def _excluded(s: Sequence, t: Sequence, ctx: JoinContext) -> bool:
    """Pruning rules: ε-interval disjointness and inactive dimensions.

    Two tests, both exact consequences of the paper's lemmata:

    1. Lemma 2/3 at sequence level: when the whole of ``s`` lies below
       the ε-interval of ``t`` (``s.last + [ε,…,ε] <ego t.first``) or
       vice versa, no pair can join.  The paper applies this test to
       I/O units (Figure 2's canceled region); sequences of the sorted
       array satisfy the same premises.  Without it, sequences that
       straddle a cell boundary in dimension 0 (and therefore have no
       inactive dimension) could never be pruned at all.
    2. The inactive-dimension rule of Section 3.3: a common inactive
       dimension with cell distance ≥ 2 excludes the pair.
    """
    if (lex_less(s.last_cells + 1, t.first_cells)
            or lex_less(t.last_cells + 1, s.first_cells)):
        ctx.obs.prune_interval.inc()
        return True
    common = min(s.inactive_count(), t.inactive_count())
    if common == 0:
        return False
    gap = np.abs(s.first_cells[:common] - t.first_cells[:common])
    hit = gap >= ctx.exclusion_distance
    if hit.any():
        ctx.obs.prune_inactive.inc()
        ctx.obs.prune_dim.labels(int(np.argmax(hit))).inc()
        return True
    return False


def _leaf_windows(s: Sequence, t: Sequence, ctx: JoinContext):
    """EGO-sorted candidate windows for one leaf pair (or ``None``).

    Within the leaf slice ``t`` every dimension before its active one is
    cell-constant, so the active dimension's cells are non-decreasing
    and bound each point's candidate range via searchsorted.
    """
    wdim = t.active_dimension()
    if wdim is None:
        return None
    windows = candidate_windows(s.points, t.points, wdim, t.epsilon)
    if ctx.obs.enabled:
        lo, hi = windows
        ctx.obs.window_rows.observe_many((hi - lo).astype(int).tolist())
    return windows


def _emit_leaf(s: Sequence, t: Sequence, ia, ib, combined,
               ctx: JoinContext, upper_triangle: bool) -> None:
    """Monitor, count and report one leaf pair's result arrays."""
    if ctx.monitor is not None:
        ctx.monitor.check_leaf(s, t, ia, ib, ctx, upper_triangle)
    ctx.obs.leaf_pairs.inc(len(ia))
    if len(ia):
        if combined is not None:
            ctx.result.add_batch(s.ids[ia], t.ids[ib],
                                 distances=ctx.metric.finalize(combined))
        else:
            ctx.result.add_batch(s.ids[ia], t.ids[ib])


def flush_leaf_batch(ctx: JoinContext) -> None:
    """Evaluate accumulated batched-engine leaf pairs and scatter results.

    Entries are emitted strictly in accumulation (leaf-visit) order with
    row-major pairs inside each leaf, so the pair stream is the one the
    per-leaf engines produce.
    """
    batch = ctx._batch
    if batch is None or len(batch) == 0:
        return
    span_args = ({"leaves": len(batch), "points": batch.points}
                 if ctx.trace.enabled else None)
    with ctx.trace.span("leaf_batch", cat="kernel", args=span_args):
        results = pairs_within_batched(
            batch, ctx.threshold, counters=ctx.cpu,
            return_sq_distances=ctx.result.collect_distances,
            scratch=ctx.scratch,
            metrics=ctx.metrics if ctx.metrics.enabled else None)
    for entry, payload in zip(results, batch.payloads):
        s, t, upper = payload
        if ctx.result.collect_distances:
            ia, ib, combined = entry
        else:
            (ia, ib), combined = entry, None
        _emit_leaf(s, t, ia, ib, combined, ctx, upper)
    batch.clear()


def simple_join(s: Sequence, t: Sequence, ctx: JoinContext,
                upper_triangle: bool = False) -> None:
    """Leaf case: compare the remaining points directly (Figure 7).

    With ``upper_triangle`` the sequences are the identical slice and
    only pairs ``(i, j)`` with ``i < j`` are produced.
    """
    engine = select_engine(ctx.engine, len(s), len(t), s.dimensions,
                           ctx.engine_metric, batching=True)
    ctx.obs.leaf_joins.labels(engine).inc()
    ctx.obs.leaf_volume.observe(len(s) * len(t))
    if engine == "batched":
        ctx.batch.add(s.points, t.points, _leaf_windows(s, t, ctx),
                      upper_triangle, payload=(s, t, upper_triangle))
        if ctx.batch.full:
            flush_leaf_batch(ctx)
        return
    # A pending batch must drain before a per-leaf engine emits, so the
    # result stream keeps the leaf-visit order (``auto`` mixes batched
    # and matmul leaves).
    if ctx._batch is not None and len(ctx._batch):
        flush_leaf_batch(ctx)
    if ctx.order_dimensions:
        order = dimension_ordering(s, t)
    else:
        order = natural_ordering(s.dimensions)
    extra = {}
    if engine == "matmul":
        finder = pairs_within_matmul
        extra["scratch"] = ctx.scratch
        if ctx.metrics.enabled:
            extra["metrics"] = ctx.metrics
        windows = _leaf_windows(s, t, ctx)
        if windows is not None:
            extra["windows"] = windows
    elif engine == "vector":
        finder = pairs_within_vector
    else:
        finder = pairs_within_scalar
    span_args = ({"engine": engine, "ns": len(s), "nt": len(t)}
                 if ctx.trace.enabled else None)
    with ctx.trace.span("leaf", cat="kernel", args=span_args):
        if ctx.result.collect_distances:
            ia, ib, combined = finder(s.points, t.points, ctx.threshold,
                                      order, counters=ctx.cpu,
                                      upper_triangle=upper_triangle,
                                      return_sq_distances=True,
                                      metric=ctx.engine_metric, **extra)
        else:
            ia, ib = finder(s.points, t.points, ctx.threshold, order,
                            counters=ctx.cpu, upper_triangle=upper_triangle,
                            metric=ctx.engine_metric, **extra)
            combined = None
    _emit_leaf(s, t, ia, ib, combined, ctx, upper_triangle)


def _split(seq: Sequence, ctx: JoinContext):
    """Split a sequence per the context's strategy (§4 recursion knob).

    Boundary splits fall back to halving when the nearest cell boundary
    is too lopsided (outside the middle 3/4), which bounds the recursion
    depth at O(log n) like plain halving.
    """
    if ctx.split_strategy == "boundary":
        point = seq.boundary_split_point()
        n = len(seq)
        if n // 8 <= point <= n - n // 8:
            return seq.split_at(point)
    return seq.first_half(), seq.second_half()


def _join_sequences(s: Sequence, t: Sequence, ctx: JoinContext) -> None:
    """Figure 6 recursion body — may leave batched leaves unflushed."""
    if ctx.cpu is not None:
        ctx.cpu.sequence_pairs += 1
    ctx.obs.seq_pairs.inc()
    if _excluded(s, t, ctx):
        if ctx.cpu is not None:
            ctx.cpu.sequence_exclusions += 1
        if ctx.monitor is not None:
            # Pruning soundness (Section 3.3 / Lemma 2): the excluded
            # sequence pair must genuinely contain no pair within ε.
            ctx.monitor.check_prune(s, t, ctx)
        return

    self_pair = s.same_storage(t)
    s_splittable = len(s) > ctx.minlen
    t_splittable = len(t) > ctx.minlen

    if not s_splittable and not t_splittable:
        simple_join(s, t, ctx, upper_triangle=self_pair)
        return

    if self_pair:
        first, second = _split(s, ctx)
        _join_sequences(first, first, ctx)
        _join_sequences(first, second, ctx)
        _join_sequences(second, second, ctx)
        return

    if s_splittable and t_splittable:
        sf, ss = _split(s, ctx)
        tf, ts = _split(t, ctx)
        _join_sequences(sf, tf, ctx)
        _join_sequences(sf, ts, ctx)
        _join_sequences(ss, tf, ctx)
        _join_sequences(ss, ts, ctx)
    elif s_splittable:
        sf, ss = _split(s, ctx)
        _join_sequences(sf, t, ctx)
        _join_sequences(ss, t, ctx)
    else:
        tf, ts = _split(t, ctx)
        _join_sequences(s, tf, ctx)
        _join_sequences(s, ts, ctx)


def join_sequences(s: Sequence, t: Sequence, ctx: JoinContext) -> None:
    """Figure 6: recursive divide-and-conquer join of two sequences.

    When ``s`` and ``t`` are the identical slice (a sequence joined with
    itself), the mirrored recursion quadrant is skipped and the leaf
    comparison is restricted to the upper triangle so each unordered pair
    is reported exactly once.

    Any leaf pairs the batched engine accumulated are flushed before
    returning, so callers always observe a complete result.
    """
    _join_sequences(s, t, ctx)
    flush_leaf_batch(ctx)


def join_point_blocks(ids_a: np.ndarray, points_a: np.ndarray,
                      ids_b: np.ndarray, points_b: np.ndarray,
                      ctx: JoinContext, same_block: bool = False) -> None:
    """Join two EGO-sorted point blocks (e.g. two loaded I/O units).

    ``same_block=True`` marks the self-join of one block with itself; the
    arrays for ``a`` and ``b`` must then be the same objects.
    """
    if len(ids_a) == 0 or len(ids_b) == 0:
        return
    span_args = ({"na": len(ids_a), "nb": len(ids_b), "self": same_block}
                 if ctx.trace.enabled else None)
    with ctx.trace.span("sequence_join", args=span_args):
        seq_a = Sequence(ids_a, points_a, ctx.grid_epsilon)
        if same_block:
            join_sequences(seq_a, seq_a, ctx)
        else:
            seq_b = Sequence(ids_b, points_b, ctx.grid_epsilon)
            join_sequences(seq_a, seq_b, ctx)
