"""Join result collection.

Similarity joins can produce result sets far larger than their input, so
the collector supports three modes: materialising pairs (chunked numpy
arrays), counting only, and streaming to a callback — the mode data-mining
algorithms built on top of the join use (Section 1 of the paper).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set, Tuple

import numpy as np

PairCallback = Callable[[np.ndarray, np.ndarray], None]


class JoinResult:
    """Collector for (id, id) join pairs.

    Parameters
    ----------
    materialize:
        Keep the pairs in memory (default).  Disable for count-only runs.
    callback:
        Optional function called with each batch ``(ids_a, ids_b)`` as it
        is produced.
    collect_distances:
        Also keep the Euclidean distance of every pair.  Joins that
        support it (the EGO core) fill them in; applications like OPTICS
        need them.
    """

    def __init__(self, materialize: bool = True,
                 callback: Optional[PairCallback] = None,
                 collect_distances: bool = False) -> None:
        self.materialize = materialize
        self.callback = callback
        self.collect_distances = collect_distances
        self.count = 0
        self._chunks_a: List[np.ndarray] = []
        self._chunks_b: List[np.ndarray] = []
        self._chunks_d: List[np.ndarray] = []

    def add_batch(self, ids_a: np.ndarray, ids_b: np.ndarray,
                  distances: Optional[np.ndarray] = None) -> None:
        """Record a batch of result pairs (parallel id arrays)."""
        n = len(ids_a)
        if n != len(ids_b):
            raise ValueError(
                f"batch id arrays differ in length: {n} vs {len(ids_b)}")
        if self.collect_distances and distances is None:
            raise ValueError(
                "this result collects distances but the batch has none "
                "(is the producing join distance-aware?)")
        if distances is not None and len(distances) != n:
            raise ValueError(
                f"batch distances length {len(distances)} != {n} pairs")
        if n == 0:
            return
        self.count += n
        if self.callback is not None:
            self.callback(ids_a, ids_b)
        if self.materialize:
            self._chunks_a.append(np.asarray(ids_a, dtype=np.int64))
            self._chunks_b.append(np.asarray(ids_b, dtype=np.int64))
            if self.collect_distances:
                self._chunks_d.append(
                    np.asarray(distances, dtype=np.float64))

    def add_pair(self, id_a: int, id_b: int,
                 distance: Optional[float] = None) -> None:
        """Record a single result pair."""
        dist = None if distance is None else np.array([distance])
        self.add_batch(np.array([id_a], dtype=np.int64),
                       np.array([id_b], dtype=np.int64), distances=dist)

    def distances(self) -> np.ndarray:
        """Euclidean distances parallel to :meth:`pairs`."""
        if not self.collect_distances:
            raise RuntimeError("distances were not collected")
        if not self.materialize:
            raise RuntimeError("pairs were not materialized")
        if not self._chunks_d:
            return np.empty(0, dtype=np.float64)
        return np.concatenate(self._chunks_d)

    def pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        """All collected pairs as two parallel id arrays."""
        if not self.materialize:
            raise RuntimeError("pairs were not materialized")
        if not self._chunks_a:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        return np.concatenate(self._chunks_a), np.concatenate(self._chunks_b)

    def pair_set(self) -> Set[Tuple[int, int]]:
        """Collected pairs as a set of ``(id_a, id_b)`` tuples."""
        a, b = self.pairs()
        return set(zip(a.tolist(), b.tolist()))

    def canonical_pair_set(self) -> Set[Tuple[int, int]]:
        """Pairs as unordered ``(min, max)`` tuples, for self-join comparison."""
        a, b = self.pairs()
        lo = np.minimum(a, b)
        hi = np.maximum(a, b)
        return set(zip(lo.tolist(), hi.tolist()))

    def __len__(self) -> int:
        return self.count
