"""Parallel EGO similarity self-join.

The paper's conclusion names "a parallel version of the EGO join
algorithm" as future work.  The epsilon grid order makes the
parallelisation natural: after sorting, the data is split into
contiguous chunks, and the work decomposes into independent tasks —
one self-join per chunk plus one cross-join per chunk pair whose
ε-intervals overlap (the same Lemma-2/3 test the I/O scheduler uses, so
distant chunk pairs are never scheduled at all).

Tasks run on a process pool: the sorted arrays are shipped to each
worker once (at pool initialisation), tasks are only index ranges, and
workers return id-pair arrays.  With ``workers=1`` everything runs
inline, which the tests use to check the decomposition independently of
the pool.

The same decomposition carries into the external pipeline:
:class:`ParallelUnitJoiner` joins the I/O scheduler's loaded unit pairs
on a process pool while the scheduler keeps streaming loads, merging
worker results in task-submission order so the emitted pair stream — and
therefore the durable pair file and the checkpoint journal of a
checkpointed run — is byte-identical to the serial schedule.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import fields as dataclass_fields
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..storage.stats import CPUCounters
from .ego_order import (ego_sorted, ensure_finite, grid_cells,
                        lex_less, validate_epsilon)
from .result import JoinResult
from .sequence import Sequence
from .sequence_join import (DEFAULT_MINLEN, JoinContext, join_point_blocks,
                            join_sequences)

#: Per-process state installed by the pool initializer.
_WORKER_STATE: dict = {}

Task = Tuple[int, int, int, int, bool]


def _init_worker(ids: np.ndarray, points: np.ndarray, epsilon: float,
                 minlen: int, engine: str, order_dimensions: bool,
                 metric=None) -> None:
    _WORKER_STATE["ids"] = ids
    _WORKER_STATE["points"] = points
    _WORKER_STATE["epsilon"] = epsilon
    _WORKER_STATE["minlen"] = minlen
    _WORKER_STATE["engine"] = engine
    _WORKER_STATE["order_dimensions"] = order_dimensions
    _WORKER_STATE["metric"] = metric


def _run_task(task: Task) -> Tuple[np.ndarray, np.ndarray]:
    lo_a, hi_a, lo_b, hi_b, same = task
    ids = _WORKER_STATE["ids"]
    pts = _WORKER_STATE["points"]
    eps = _WORKER_STATE["epsilon"]
    result = JoinResult()
    ctx = JoinContext(epsilon=eps, result=result,
                      minlen=_WORKER_STATE["minlen"],
                      engine=_WORKER_STATE["engine"],
                      order_dimensions=_WORKER_STATE["order_dimensions"],
                      metric=_WORKER_STATE.get("metric"))
    seq_a = Sequence(ids[lo_a:hi_a], pts[lo_a:hi_a], eps)
    if same:
        join_sequences(seq_a, seq_a, ctx)
    else:
        seq_b = Sequence(ids[lo_b:hi_b], pts[lo_b:hi_b], eps)
        join_sequences(seq_a, seq_b, ctx)
    return result.pairs()


def chunk_boundaries(n: int, chunks: int) -> List[Tuple[int, int]]:
    """Split ``n`` records into up to ``chunks`` contiguous ranges."""
    if chunks < 1:
        raise ValueError("chunks must be at least 1")
    chunks = min(chunks, n) if n else 0
    bounds = np.linspace(0, n, chunks + 1).astype(int)
    return [(int(bounds[i]), int(bounds[i + 1]))
            for i in range(chunks) if bounds[i] < bounds[i + 1]]


def build_tasks(points: np.ndarray, epsilon: float,
                ranges: List[Tuple[int, int]]) -> List[Task]:
    """Self tasks plus the cross tasks with overlapping ε-intervals.

    For EGO-sorted chunks, chunk ``j > i`` is reachable from chunk ``i``
    only while ``last(i) + [ε,…,ε]`` is not below ``first(j)``; the
    chunks are ordered, so the scan per ``i`` stops at the first
    non-overlapping ``j``.
    """
    firsts = [grid_cells(points[lo], epsilon) for lo, _hi in ranges]
    lasts = [grid_cells(points[hi - 1], epsilon) + 1
             for _lo, hi in ranges]
    tasks: List[Task] = []
    for i, (lo_a, hi_a) in enumerate(ranges):
        tasks.append((lo_a, hi_a, lo_a, hi_a, True))
        for j in range(i + 1, len(ranges)):
            if lex_less(lasts[i], firsts[j]):
                break
            lo_b, hi_b = ranges[j]
            tasks.append((lo_a, hi_a, lo_b, hi_b, False))
    return tasks


def ego_self_join_parallel(points: np.ndarray, epsilon: float,
                           ids: Optional[np.ndarray] = None,
                           workers: int = 2,
                           chunks: Optional[int] = None,
                           minlen: int = DEFAULT_MINLEN,
                           engine: str = "vector",
                           order_dimensions: bool = True,
                           result: Optional[JoinResult] = None,
                           metric=None) -> JoinResult:
    """EGO similarity self-join parallelised over a process pool.

    Produces exactly the pairs of :func:`~repro.core.ego_join.ego_self_join`
    (each unordered pair once; order within the result may differ).

    Parameters
    ----------
    workers:
        Pool size; ``1`` executes the same task decomposition inline.
    chunks:
        Number of contiguous chunks of the sorted data (default
        ``4 × workers`` for load balancing).
    """
    validate_epsilon(epsilon)
    if workers < 1:
        raise ValueError("workers must be at least 1")
    pts = ensure_finite(points)
    if result is None:
        result = JoinResult()
    if len(pts) == 0:
        return result
    sorted_ids, sorted_pts = ego_sorted(pts, epsilon, ids)
    if chunks is None:
        chunks = max(1, workers * 4)
    ranges = chunk_boundaries(len(pts), chunks)
    tasks = build_tasks(sorted_pts, epsilon, ranges)

    if workers == 1:
        _init_worker(sorted_ids, sorted_pts, epsilon, minlen, engine,
                     order_dimensions, metric)
        try:
            for task in tasks:
                result.add_batch(*_run_task(task))
        finally:
            _WORKER_STATE.clear()
        return result

    with ProcessPoolExecutor(
            max_workers=workers, initializer=_init_worker,
            initargs=(sorted_ids, sorted_pts, epsilon, minlen, engine,
                      order_dimensions, metric)) as pool:
        for ids_a, ids_b in pool.map(_run_task, tasks, chunksize=1):
            result.add_batch(ids_a, ids_b)
    return result


# -- parallel unit-pair join for the external pipeline ----------------------
#
# ``_init_unit_worker`` / ``_run_unit_pair`` are the per-process seam of
# the external join: the supervised pool (:mod:`repro.core.supervisor`)
# and the shard workers (:mod:`repro.core.shard`) both initialise and
# call them, so every execution mode joins a loaded unit pair with the
# exact same kernel and returns batches in the same deterministic order.

#: Per-process join parameters for unit-pair workers.
_UNIT_STATE: dict = {}


def _init_unit_worker(epsilon: float, minlen: int, engine: str,
                      order_dimensions: bool, metric,
                      grid_epsilon: float, collect_distances: bool,
                      split_strategy: str,
                      collect_metrics: bool = False,
                      batch_points=None, batch_leaves=None) -> None:
    _UNIT_STATE.update(epsilon=epsilon, minlen=minlen, engine=engine,
                       order_dimensions=order_dimensions, metric=metric,
                       grid_epsilon=grid_epsilon,
                       collect_distances=collect_distances,
                       split_strategy=split_strategy,
                       collect_metrics=collect_metrics,
                       batch_points=batch_points,
                       batch_leaves=batch_leaves)


def _run_unit_pair(ids_a: np.ndarray, pts_a: np.ndarray,
                   ids_b: Optional[np.ndarray],
                   pts_b: Optional[np.ndarray]):
    """Join one loaded unit pair in a worker process.

    ``ids_b is None`` marks the self-join of one unit with itself.
    Returns the pair batch (in the deterministic recursion order of the
    serial join), optional distances, this task's CPU-counter deltas,
    and — when the parent collects metrics — a metrics snapshot, all
    for the parent to merge in submission order.
    """
    cpu = CPUCounters()
    metrics = None
    if _UNIT_STATE.get("collect_metrics"):
        from ..obs.metrics import MetricsRegistry
        metrics = MetricsRegistry()
    result = JoinResult(materialize=True,
                        collect_distances=_UNIT_STATE["collect_distances"])
    ctx = JoinContext(epsilon=_UNIT_STATE["epsilon"], result=result,
                      minlen=_UNIT_STATE["minlen"],
                      engine=_UNIT_STATE["engine"],
                      order_dimensions=_UNIT_STATE["order_dimensions"],
                      cpu=cpu, metric=_UNIT_STATE["metric"],
                      grid_epsilon=_UNIT_STATE["grid_epsilon"],
                      split_strategy=_UNIT_STATE["split_strategy"],
                      batch_points=_UNIT_STATE.get("batch_points"),
                      batch_leaves=_UNIT_STATE.get("batch_leaves"),
                      metrics=metrics)
    if ids_b is None:
        join_point_blocks(ids_a, pts_a, ids_a, pts_a, ctx,
                          same_block=True)
    else:
        join_point_blocks(ids_a, pts_a, ids_b, pts_b, ctx)
    out_a, out_b = result.pairs()
    dists = result.distances() if result.collect_distances else None
    metrics_data = metrics.collect() if metrics is not None else None
    return out_a, out_b, dists, cpu, metrics_data


class SerialUnitJoiner:
    """Inline unit-pair execution (the reference the pool must match)."""

    def __init__(self, ctx: JoinContext) -> None:
        self.ctx = ctx

    def __enter__(self) -> "SerialUnitJoiner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def submit(self, ids_a: np.ndarray, pts_a: np.ndarray,
               ids_b: Optional[np.ndarray], pts_b: Optional[np.ndarray],
               on_complete: Optional[Callable[[], None]] = None,
               key: Optional[Tuple[int, int]] = None) -> None:
        """Join one unit pair immediately (``ids_b is None`` = self-pair)."""
        if ids_b is None:
            join_point_blocks(ids_a, pts_a, ids_a, pts_a, self.ctx,
                              same_block=True)
        else:
            join_point_blocks(ids_a, pts_a, ids_b, pts_b, self.ctx)
        if on_complete is not None:
            on_complete()

    def drain(self) -> None:
        """No queued work in the serial joiner."""

    def close(self) -> None:
        """Nothing to release."""


class ParallelUnitJoiner:
    """Joins scheduled unit pairs on a process pool, merging in order.

    The I/O scheduler submits each unit pair as its data becomes
    resident and keeps streaming loads; workers compute the pair batches
    and the parent merges them back **in submission order**, so the
    result stream (pair file bytes, journal watermarks, completion
    callbacks) is byte-identical to the serial run.  ``max_pending``
    bounds the number of in-flight tasks — each holds a copy of its unit
    arrays — by blocking submission on the oldest outstanding result,
    which keeps memory proportional to the pool size, not the schedule
    length.
    """

    def __init__(self, ctx: JoinContext, workers: int,
                 max_pending: Optional[int] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.ctx = ctx
        self.workers = workers
        self.max_pending = max_pending if max_pending else workers * 4
        if self.max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        metric = ctx.metric if ctx.metric.name != "euclidean" else None
        self._pool = ProcessPoolExecutor(
            max_workers=workers, initializer=_init_unit_worker,
            initargs=(ctx.epsilon, ctx.minlen, ctx.engine,
                      ctx.order_dimensions, metric, ctx.grid_epsilon,
                      ctx.result.collect_distances, ctx.split_strategy,
                      bool(ctx.metrics.enabled),
                      ctx.batch_points, ctx.batch_leaves))
        self._next_submit = 0
        self._next_emit = 0
        self._pending: Dict[int, Tuple[Future,
                                       Optional[Callable[[], None]]]] = {}

    def __enter__(self) -> "ParallelUnitJoiner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def submit(self, ids_a: np.ndarray, pts_a: np.ndarray,
               ids_b: Optional[np.ndarray], pts_b: Optional[np.ndarray],
               on_complete: Optional[Callable[[], None]] = None,
               key: Optional[Tuple[int, int]] = None) -> None:
        """Queue one unit pair; emits any results that are ready in order."""
        fut = self._pool.submit(_run_unit_pair, ids_a, pts_a, ids_b, pts_b)
        self._pending[self._next_submit] = (fut, on_complete)
        self._next_submit += 1
        self._emit_ready(block=len(self._pending) >= self.max_pending)

    def _emit_ready(self, block: bool = False) -> None:
        """Fold completed results into the context, oldest first.

        Results are only ever consumed at the head of the submission
        order; a completed task behind a still-running one waits, which
        is what makes the merged stream deterministic.
        """
        while self._next_emit in self._pending:
            fut, on_complete = self._pending[self._next_emit]
            if not (block or fut.done()):
                break
            ids_a, ids_b, dists, cpu, metrics_data = fut.result()
            del self._pending[self._next_emit]
            self._next_emit += 1
            if self.ctx.cpu is not None:
                for f in dataclass_fields(cpu):
                    setattr(self.ctx.cpu, f.name,
                            getattr(self.ctx.cpu, f.name)
                            + getattr(cpu, f.name))
            # Worker metric deltas fold in submission order, the same
            # order the serial joiner records them inline — counters and
            # histograms are additive, so the merged registry is
            # identical whichever workers computed the deltas.
            if metrics_data:
                self.ctx.metrics.merge(metrics_data)
            self.ctx.result.add_batch(ids_a, ids_b, distances=dists)
            if on_complete is not None:
                on_complete()
            block = len(self._pending) >= self.max_pending

    def drain(self) -> None:
        """Block until every queued unit pair has been merged."""
        while self._pending:
            self._emit_ready(block=True)

    def close(self) -> None:
        """Shut the pool down, abandoning any not-yet-started tasks."""
        self._pool.shutdown(wait=True, cancel_futures=True)
