"""Parallel EGO similarity self-join.

The paper's conclusion names "a parallel version of the EGO join
algorithm" as future work.  The epsilon grid order makes the
parallelisation natural: after sorting, the data is split into
contiguous chunks, and the work decomposes into independent tasks —
one self-join per chunk plus one cross-join per chunk pair whose
ε-intervals overlap (the same Lemma-2/3 test the I/O scheduler uses, so
distant chunk pairs are never scheduled at all).

Tasks run on a process pool: the sorted arrays are shipped to each
worker once (at pool initialisation), tasks are only index ranges, and
workers return id-pair arrays.  With ``workers=1`` everything runs
inline, which the tests use to check the decomposition independently of
the pool.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Tuple

import numpy as np

from .ego_order import (ego_sorted, ensure_finite, grid_cells,
                        lex_less, validate_epsilon)
from .result import JoinResult
from .sequence import Sequence
from .sequence_join import DEFAULT_MINLEN, JoinContext, join_sequences

#: Per-process state installed by the pool initializer.
_WORKER_STATE: dict = {}

Task = Tuple[int, int, int, int, bool]


def _init_worker(ids: np.ndarray, points: np.ndarray, epsilon: float,
                 minlen: int, engine: str, order_dimensions: bool,
                 metric=None) -> None:
    _WORKER_STATE["ids"] = ids
    _WORKER_STATE["points"] = points
    _WORKER_STATE["epsilon"] = epsilon
    _WORKER_STATE["minlen"] = minlen
    _WORKER_STATE["engine"] = engine
    _WORKER_STATE["order_dimensions"] = order_dimensions
    _WORKER_STATE["metric"] = metric


def _run_task(task: Task) -> Tuple[np.ndarray, np.ndarray]:
    lo_a, hi_a, lo_b, hi_b, same = task
    ids = _WORKER_STATE["ids"]
    pts = _WORKER_STATE["points"]
    eps = _WORKER_STATE["epsilon"]
    result = JoinResult()
    ctx = JoinContext(epsilon=eps, result=result,
                      minlen=_WORKER_STATE["minlen"],
                      engine=_WORKER_STATE["engine"],
                      order_dimensions=_WORKER_STATE["order_dimensions"],
                      metric=_WORKER_STATE.get("metric"))
    seq_a = Sequence(ids[lo_a:hi_a], pts[lo_a:hi_a], eps)
    if same:
        join_sequences(seq_a, seq_a, ctx)
    else:
        seq_b = Sequence(ids[lo_b:hi_b], pts[lo_b:hi_b], eps)
        join_sequences(seq_a, seq_b, ctx)
    return result.pairs()


def chunk_boundaries(n: int, chunks: int) -> List[Tuple[int, int]]:
    """Split ``n`` records into up to ``chunks`` contiguous ranges."""
    if chunks < 1:
        raise ValueError("chunks must be at least 1")
    chunks = min(chunks, n) if n else 0
    bounds = np.linspace(0, n, chunks + 1).astype(int)
    return [(int(bounds[i]), int(bounds[i + 1]))
            for i in range(chunks) if bounds[i] < bounds[i + 1]]


def build_tasks(points: np.ndarray, epsilon: float,
                ranges: List[Tuple[int, int]]) -> List[Task]:
    """Self tasks plus the cross tasks with overlapping ε-intervals.

    For EGO-sorted chunks, chunk ``j > i`` is reachable from chunk ``i``
    only while ``last(i) + [ε,…,ε]`` is not below ``first(j)``; the
    chunks are ordered, so the scan per ``i`` stops at the first
    non-overlapping ``j``.
    """
    firsts = [grid_cells(points[lo], epsilon) for lo, _hi in ranges]
    lasts = [grid_cells(points[hi - 1], epsilon) + 1
             for _lo, hi in ranges]
    tasks: List[Task] = []
    for i, (lo_a, hi_a) in enumerate(ranges):
        tasks.append((lo_a, hi_a, lo_a, hi_a, True))
        for j in range(i + 1, len(ranges)):
            if lex_less(lasts[i], firsts[j]):
                break
            lo_b, hi_b = ranges[j]
            tasks.append((lo_a, hi_a, lo_b, hi_b, False))
    return tasks


def ego_self_join_parallel(points: np.ndarray, epsilon: float,
                           ids: Optional[np.ndarray] = None,
                           workers: int = 2,
                           chunks: Optional[int] = None,
                           minlen: int = DEFAULT_MINLEN,
                           engine: str = "vector",
                           order_dimensions: bool = True,
                           result: Optional[JoinResult] = None,
                           metric=None) -> JoinResult:
    """EGO similarity self-join parallelised over a process pool.

    Produces exactly the pairs of :func:`~repro.core.ego_join.ego_self_join`
    (each unordered pair once; order within the result may differ).

    Parameters
    ----------
    workers:
        Pool size; ``1`` executes the same task decomposition inline.
    chunks:
        Number of contiguous chunks of the sorted data (default
        ``4 × workers`` for load balancing).
    """
    validate_epsilon(epsilon)
    if workers < 1:
        raise ValueError("workers must be at least 1")
    pts = ensure_finite(points)
    if result is None:
        result = JoinResult()
    if len(pts) == 0:
        return result
    sorted_ids, sorted_pts = ego_sorted(pts, epsilon, ids)
    if chunks is None:
        chunks = max(1, workers * 4)
    ranges = chunk_boundaries(len(pts), chunks)
    tasks = build_tasks(sorted_pts, epsilon, ranges)

    if workers == 1:
        _init_worker(sorted_ids, sorted_pts, epsilon, minlen, engine,
                     order_dimensions, metric)
        try:
            for task in tasks:
                result.add_batch(*_run_task(task))
        finally:
            _WORKER_STATE.clear()
        return result

    with ProcessPoolExecutor(
            max_workers=workers, initializer=_init_worker,
            initargs=(sorted_ids, sorted_pts, epsilon, minlen, engine,
                      order_dimensions, metric)) as pool:
        for ids_a, ids_b in pool.map(_run_task, tasks, chunksize=1):
            result.add_batch(ids_a, ids_b)
    return result
