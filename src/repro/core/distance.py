"""Distance computations with early abort and dimension ordering.

Section 4.2 of the paper observes that the final point-to-point distance
tests dominate CPU cost, and that evaluating the per-dimension squared
differences in a suitable order lets the partial sum exceed ε² — and the
test abort — as early as possible.  The order is derived from the
*distinguishing potential* of each dimension for the sequence pair at
hand:

1. common inactive dimensions where the two sequences occupy
   **neighboring** cells (exclusion probability 50 %),
2. **unspecified** dimensions,
3. the **active** dimension(s) of the two sequences,
4. common inactive dimensions where the cells are **aligned**
   (essentially no distinguishing power).

Two engines implement the Figure 7 test: a scalar loop (the literal
algorithm) and a vectorised one.  Both return identical pair sets and
identical operation counts (the vectorised engine reconstructs the abort
position from prefix sums), which is property-tested.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..storage.stats import CPUCounters
from .metrics import Metric
from .sequence import Sequence


def dimension_ordering(s: Sequence, t: Sequence) -> np.ndarray:
    """Evaluation order of dimensions for joining sequences ``s`` and ``t``.

    Returns a permutation of ``0..d-1`` sorted by decreasing distinguishing
    potential as described in Section 4.2.  Within each category the
    natural dimension order is kept, which makes the result deterministic.
    """
    d = s.dimensions
    common_inactive = min(s.inactive_count(), t.inactive_count())
    neighboring = []
    aligned = []
    for i in range(common_inactive):
        if s.first_cells[i] == t.first_cells[i]:
            aligned.append(i)
        else:
            neighboring.append(i)
    active = []
    for seq in (s, t):
        a = seq.active_dimension()
        if a is not None and a not in active:
            active.append(a)
    classified = set(neighboring) | set(aligned) | set(active)
    unspecified = [i for i in range(d) if i not in classified]
    return np.array(neighboring + unspecified + sorted(active) + aligned,
                    dtype=np.intp)


def natural_ordering(dimensions: int) -> np.ndarray:
    """The identity dimension order ``0..d-1`` (ablation baseline)."""
    return np.arange(dimensions, dtype=np.intp)


def distance_below_eps(p: np.ndarray, q: np.ndarray, eps_sq: float,
                       order: np.ndarray,
                       counters: Optional[CPUCounters] = None,
                       metric: Optional[Metric] = None) -> bool:
    """Figure 7: early-abort distance test for one point pair.

    Accumulates per-dimension contributions in the given dimension
    ``order`` and returns ``False`` as soon as the partial value exceeds
    the threshold ``eps_sq`` (the squared ε for the default Euclidean
    metric; ``metric.threshold(ε)`` in general).  For L_∞ metrics the
    running value is the maximum contribution instead of the sum.
    """
    evaluated = 0
    below = True
    if metric is None or metric.name == "euclidean":
        acc = 0.0
        for j in order:
            evaluated += 1
            diff = p[j] - q[j]
            acc += diff * diff
            if acc > eps_sq:
                below = False
                break
    else:
        # Pure-float per-dimension contributions: boxing each scalar
        # difference into a numpy array made the L_p early-abort test
        # pay an allocation per dimension.
        acc = 0.0
        use_max = metric.combine_max
        power = metric.power
        for j in order:
            evaluated += 1
            diff = float(p[j] - q[j])
            if diff < 0.0:
                diff = -diff
            if power is None or power == 1.0:
                contrib = diff
            elif power == 2.0:
                contrib = diff * diff
            else:
                contrib = diff ** power
            acc = max(acc, contrib) if use_max else acc + contrib
            if acc > eps_sq:
                below = False
                break
    if counters is not None:
        counters.distance_calculations += 1
        counters.dimension_evaluations += evaluated
    return below


def pairs_within_scalar(a: np.ndarray, b: np.ndarray, eps_sq: float,
                        order: np.ndarray,
                        counters: Optional[CPUCounters] = None,
                        upper_triangle: bool = False,
                        return_sq_distances: bool = False,
                        metric: Optional[Metric] = None):
    """All index pairs within distance using the scalar Figure 7 loop.

    With ``upper_triangle`` only pairs ``(i, j)`` with ``i < j`` are
    tested, which is the self-join of a sequence with itself.  With
    ``return_sq_distances`` a third array with the combined distance
    values (squared for Euclidean) of the qualifying pairs is returned.
    """
    out_a, out_b, out_d = [], [], []
    for i in range(len(a)):
        start = i + 1 if upper_triangle else 0
        for j in range(start, len(b)):
            if distance_below_eps(a[i], b[j], eps_sq, order, counters,
                                  metric=metric):
                out_a.append(i)
                out_b.append(j)
                if return_sq_distances:
                    diff = a[i] - b[j]
                    if metric is None or metric.name == "euclidean":
                        out_d.append(float(np.dot(diff, diff)))
                    else:
                        contrib = metric.contributions(diff)
                        out_d.append(float(
                            contrib.max() if metric.combine_max
                            else contrib.sum()))
    ia = np.array(out_a, dtype=np.intp)
    ib = np.array(out_b, dtype=np.intp)
    if return_sq_distances:
        return ia, ib, np.array(out_d, dtype=np.float64)
    return ia, ib


def pairs_within_vector(a: np.ndarray, b: np.ndarray, eps_sq: float,
                        order: np.ndarray,
                        counters: Optional[CPUCounters] = None,
                        upper_triangle: bool = False,
                        return_sq_distances: bool = False,
                        metric: Optional[Metric] = None):
    """All index pairs within distance, computed with numpy.

    Produces exactly the pairs and operation counts of
    :func:`pairs_within_scalar`: the abort position of the scalar loop is
    reconstructed from the prefix sums of squared differences in the same
    dimension order.  Counter reconstruction is skipped when ``counters``
    is ``None``, saving the prefix-sum pass.  With
    ``return_sq_distances`` a third array carries the squared distances
    of the qualifying pairs.
    """
    na, nb = len(a), len(b)
    if na == 0 or nb == 0:
        empty = (np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp))
        if return_sq_distances:
            return empty + (np.empty(0, dtype=np.float64),)
        return empty
    # i < j by index comparison — cheaper than np.triu of a ones
    # matrix, and built once for both the counter and the filter pass.
    triangle = (np.arange(na)[:, None] < np.arange(nb)[None, :]
                if upper_triangle else None)
    diffs = a[:, None, order] - b[None, :, order]
    if metric is None or metric.name == "euclidean":
        sq = diffs * diffs
        combine_max = False
    else:
        sq = metric.contributions(diffs)
        combine_max = metric.combine_max
    if counters is not None:
        if combine_max:
            prefix = np.maximum.accumulate(sq, axis=2)
        else:
            prefix = np.cumsum(sq, axis=2)
        total = prefix[:, :, -1]
        exceeded = prefix > eps_sq
        aborted = exceeded.any(axis=2)
        first_exceed = np.argmax(exceeded, axis=2)
        evals = np.where(aborted, first_exceed + 1, a.shape[1])
        if triangle is not None:
            counters.distance_calculations += int(triangle.sum())
            counters.dimension_evaluations += int(evals[triangle].sum())
        else:
            counters.distance_calculations += na * nb
            counters.dimension_evaluations += int(evals.sum())
    else:
        total = sq.max(axis=2) if combine_max else sq.sum(axis=2)
    within = total <= eps_sq
    if triangle is not None:
        within &= triangle
    ia, ib = np.nonzero(within)
    if return_sq_distances:
        return ia, ib, total[ia, ib]
    return ia, ib


def pairwise_sq_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense matrix of squared Euclidean distances between two point sets."""
    diffs = a[:, None, :] - b[None, :, :]
    return np.einsum("ijk,ijk->ij", diffs, diffs)
