"""Sort-order preprocessing: dimension permutation.

Section 4 of the paper lists "modifications of the sort order of the
relation ≤ego" as future research.  The epsilon grid order weighs
dimension 0 heaviest, so which coordinate *is* dimension 0 matters: a
dimension along which the data spreads over many cells partitions the
order into many separable stripes (strong interval pruning), while a
near-constant leading dimension makes the whole file one stripe.

The simplest effective modification is to permute dimensions by
decreasing spread before sorting.  Joins are permutation-invariant for
every Minkowski metric, so results are unchanged — only the pruning
improves.  ``ego_self_join(..., sort_dims="spread")`` applies this
internally.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .ego_order import ensure_finite, validate_epsilon


def spread_dimension_order(points: np.ndarray, epsilon: float
                           ) -> np.ndarray:
    """Dimensions ordered by decreasing cell spread.

    The spread of a dimension is how many ε-cells the data crosses in
    it (its value range over ε); ties keep the natural order.  The
    returned permutation puts the most-spread dimension first.
    """
    eps = validate_epsilon(epsilon)
    pts = ensure_finite(points)
    if pts.ndim != 2:
        raise ValueError(f"points must be 2-dimensional, got {pts.shape}")
    if len(pts) == 0:
        return np.arange(pts.shape[1], dtype=np.intp)
    spread = (pts.max(axis=0) - pts.min(axis=0)) / eps
    # Stable sort on negated spread keeps natural order on ties.
    return np.argsort(-spread, kind="stable").astype(np.intp)


def variance_dimension_order(points: np.ndarray) -> np.ndarray:
    """Dimensions ordered by decreasing variance (scale-free variant)."""
    pts = ensure_finite(points)
    if pts.ndim != 2:
        raise ValueError(f"points must be 2-dimensional, got {pts.shape}")
    if len(pts) == 0:
        return np.arange(pts.shape[1], dtype=np.intp)
    return np.argsort(-pts.var(axis=0), kind="stable").astype(np.intp)


def resolve_dimension_order(points: np.ndarray, epsilon: float,
                            sort_dims: Union[str, np.ndarray, None]
                            ) -> np.ndarray:
    """Resolve a ``sort_dims`` option to a dimension permutation.

    ``None``/``"natural"`` keeps the input order; ``"spread"`` and
    ``"variance"`` compute data-driven orders; an explicit permutation
    array passes through (validated).
    """
    d = np.asarray(points).shape[1]
    if sort_dims is None or (isinstance(sort_dims, str)
                             and sort_dims == "natural"):
        return np.arange(d, dtype=np.intp)
    if isinstance(sort_dims, str):
        if sort_dims == "spread":
            return spread_dimension_order(points, epsilon)
        if sort_dims == "variance":
            return variance_dimension_order(points)
        raise ValueError(
            f"unknown sort_dims {sort_dims!r}; expected 'natural', "
            f"'spread', 'variance' or a permutation")
    perm = np.asarray(sort_dims, dtype=np.intp)
    if sorted(perm.tolist()) != list(range(d)):
        raise ValueError(
            f"sort_dims must be a permutation of 0..{d - 1}")
    return perm
