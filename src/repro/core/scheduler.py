"""I/O scheduling over an EGO-sorted file (Section 3.2, Figure 4).

The file is processed as a series of fixed-size I/O units.  Lemmata 2
and 3 bound the join mates of every point to its ε-interval, so a unit
only ever needs to be joined with the units inside that interval.

Two modes are used, switching on demand:

* **gallop mode** — while the ε-interval fits in the buffer, each unit is
  loaded exactly once, joined against all resident units, and units whose
  interval has passed are evicted (the cleanup step between marks 1 and 2
  of Figure 4);
* **crabstep mode** — when the buffer fills while the interval is still
  open, the scheduler pins a window of new units (all buffer frames but
  one), joins them among each other, then iterates the single remaining
  frame over the earlier units that are still inside the window's
  ε-interval, joining each against the pinned window (outer-loop
  buffering, marks 3–4 of Figure 4).

The published pseudocode is, as the paper notes, simplified: it derives
the crabstep reload range from the oldest *resident* buffer, which can
drop pairs when consecutive crabsteps overlap.  This implementation keeps
per-unit boundary metadata (first/last cell of every unit seen so far)
and recomputes the reload range from the Lemma-2 test itself, which is
the behaviour the figure-3 accounting describes.

A ``allow_crabstep=False`` switch degrades the scheduler to pure gallop
with LRU replacement, reproducing the thrashing behaviour of Figure 3b.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..obs.metrics import ensure_metrics
from ..obs.trace import ensure_tracer
from ..storage.buffer import BufferPool
from ..storage.pagefile import PointFile
from .ego_order import grid_cells, lex_less
from .sequence_join import JoinContext

UnitData = Tuple[np.ndarray, np.ndarray]


@dataclass
class UnitMeta:
    """Grid-cell bounds of one I/O unit (recorded on first load)."""

    first_cells: np.ndarray
    last_cells: np.ndarray

    @property
    def last_plus_eps_cells(self) -> np.ndarray:
        """Cells of ``last_point + [ε,…,ε]``: every coordinate shifts by one."""
        return self.last_cells + 1


@dataclass
class ScheduleStats:
    """Accounting of one scheduler run."""

    gallop_loads: int = 0
    crabstep_pins: int = 0
    crabstep_reloads: int = 0
    crabstep_phases: int = 0
    unit_pairs_joined: int = 0
    unit_pairs_skipped: int = 0
    evictions: int = 0
    pressure_shrinks: int = 0
    pairs_resumed: int = 0

    @property
    def total_unit_loads(self) -> int:
        """Physical unit loads issued by the schedule (buffer hits excluded)."""
        return self.gallop_loads + self.crabstep_pins + self.crabstep_reloads


class _BufferObs:
    """Counter-handle bundle mirroring buffer-pool events into metrics.

    Matches the ``metrics`` protocol of
    :class:`~repro.storage.buffer.BufferPool` (attribute per event, each
    with ``inc()``), so the storage layer stays free of observability
    imports.
    """

    __slots__ = ("hits", "misses", "evictions", "pins", "unpins")

    def __init__(self, metrics) -> None:
        events = metrics.counter(
            "ego_buffer_events_total",
            "Buffer pool events in the scheduler's unit pool",
            labelnames=("event",))
        self.hits = events.labels("hit")
        self.misses = events.labels("miss")
        self.evictions = events.labels("evict")
        self.pins = events.labels("pin")
        self.unpins = events.labels("unpin")


class EGOScheduler:
    """Schedules unit loads and unit-pair joins for an EGO self-join.

    Parameters
    ----------
    point_file:
        The EGO-sorted input file.
    ctx:
        Join parameters; unit pairs are joined with
        :func:`~repro.core.sequence_join.join_point_blocks`.
    unit_bytes:
        I/O unit size in bytes.
    buffer_units:
        Number of unit frames available (must be at least 2).
    allow_crabstep:
        When ``False``, stay in gallop mode and let LRU replacement cause
        the thrashing of Figure 3b (used by the scheduling benchmark).
    pair_done, pair_complete:
        Checkpoint hooks.  Before joining a unit pair ``(a, b)`` the
        scheduler asks ``pair_done(a, b)``; a ``True`` answer means the
        pair's results are already durable (a resumed run) and it is
        skipped.  ``pair_complete(a, b)`` fires after the pair's join
        finishes, letting the caller flush spilled results and record the
        pair in a :class:`~repro.storage.journal.Journal`.
    unit_joiner:
        Execution backend for the unit-pair joins.  ``None`` joins each
        pair inline; a
        :class:`~repro.core.parallel.ParallelUnitJoiner` computes pairs
        on a process pool while the scheduler keeps streaming loads,
        merging results (and firing ``pair_complete``) in submission
        order so the output stream is identical to the inline run.

    The scheduler also degrades gracefully under storage pressure: when
    the file's disk exposes a true ``under_pressure`` attribute (see
    :class:`~repro.storage.faults.FaultyDisk`), the buffer pool is shrunk
    one frame at a time (never below 2) — pushing the schedule from
    gallop into crabstep mode — and grown back once the pressure clears.
    """

    def __init__(self, point_file: PointFile, ctx: JoinContext,
                 unit_bytes: int, buffer_units: int,
                 allow_crabstep: bool = True,
                 trace: Optional[List[Tuple[str, int, int]]] = None,
                 pair_done: Optional[Callable[[int, int], bool]] = None,
                 pair_complete: Optional[Callable[[int, int], None]] = None,
                 unit_joiner=None) -> None:
        if buffer_units < 2:
            raise ValueError(
                f"the scheduler needs at least 2 buffer frames, "
                f"got {buffer_units}")
        self.point_file = point_file
        self.ctx = ctx
        self.unit_bytes = unit_bytes
        self.allow_crabstep = allow_crabstep
        self.trace = trace
        self.pair_done = pair_done
        self.pair_complete = pair_complete
        if unit_joiner is None:
            from .parallel import SerialUnitJoiner
            unit_joiner = SerialUnitJoiner(ctx)
        self.unit_joiner = unit_joiner
        self.stats = ScheduleStats()
        self.meta: Dict[int, UnitMeta] = {}
        # Records per unit ordinal, filled on first load.  The shard
        # planner (repro.core.shard) reads this after a planning run to
        # estimate per-unit candidate volume without re-reading the file.
        self.unit_records: Dict[int, int] = {}
        # The invariant monitor (ctx.invariants) watches gallop loads,
        # joined unit pairs and buffer pins.  The thrashing variant
        # (allow_crabstep=False) deliberately violates read-once, so the
        # hooks only engage on the sound schedule.
        self.monitor = getattr(ctx, "monitor", None) \
            if allow_crabstep else None
        # Pre-resolved metric handles: one attribute lookup + method call
        # per event in the schedule loop (no-ops on the null registry).
        metrics = ensure_metrics(getattr(ctx, "metrics", None))
        self._tracer = ensure_tracer(getattr(ctx, "trace", None))
        reads = metrics.counter(
            "ego_unit_reads_total",
            "Physical unit reads issued by the schedule, by mode",
            labelnames=("mode",))
        self._m_read_gallop = reads.labels("gallop")
        self._m_read_pin = reads.labels("crabstep_pin")
        self._m_read_reload = reads.labels("crabstep_reload")
        pairs = metrics.counter(
            "ego_unit_pairs_total",
            "Unit pairs considered by the schedule, by outcome",
            labelnames=("outcome",))
        self._m_pair_joined = pairs.labels("joined")
        self._m_pair_skipped = pairs.labels("skipped")
        self._m_pair_resumed = pairs.labels("resumed")
        transitions = metrics.counter(
            "ego_mode_transitions_total",
            "Schedule mode switches (the run starts in gallop mode)",
            labelnames=("to",))
        self._m_to_crabstep = transitions.labels("crabstep")
        self._m_to_gallop = transitions.labels("gallop")
        self._m_crabstep_phases = metrics.counter(
            "ego_crabstep_phases_total",
            "Crabstep windows executed (Figure 4, marks 3-4)")
        self._m_interval_discards = metrics.counter(
            "ego_interval_discards_total",
            "Resident units dropped after their eps-interval passed")
        self._m_shrinks = metrics.counter(
            "ego_pressure_shrinks_total",
            "Buffer shrinks forced by storage pressure")
        self._mode = "gallop"
        self.pool: BufferPool[int, UnitData] = BufferPool(
            buffer_units, self._load_unit,
            observer=(self.monitor.buffer_observer()
                      if self.monitor is not None else None),
            metrics=_BufferObs(metrics) if metrics.enabled else None)
        # Only units in which at least one record starts take part in
        # the schedule: fragmentation can leave units holding nothing
        # but fragments (always the trailing unit; with units smaller
        # than a record also interior ones).  The schedule runs over
        # ordinals into this list.
        if point_file.count == 0:
            self.unit_ids = np.empty(0, dtype=np.int64)
        else:
            starts = (np.arange(point_file.count, dtype=np.int64)
                      * point_file.record_bytes)
            self.unit_ids = np.unique(starts // unit_bytes)
        self.num_units = len(self.unit_ids)

    # -- unit loading and metadata ------------------------------------------

    def _load_unit(self, ordinal: int) -> UnitData:
        if self.trace is not None:
            self.trace.append(("load", ordinal, ordinal))
        span_args = ({"unit": ordinal, "mode": self._mode}
                     if self._tracer.enabled else None)
        with self._tracer.span("load", cat="io", args=span_args):
            ids, points = self.point_file.read_unit(
                int(self.unit_ids[ordinal]), self.unit_bytes)
        if ordinal not in self.meta and len(points):
            cells = grid_cells(points[[0, -1]], self.ctx.grid_epsilon)
            self.meta[ordinal] = UnitMeta(first_cells=cells[0],
                                          last_cells=cells[1])
        self.unit_records.setdefault(ordinal, len(ids))
        return ids, points

    def _needed(self, unit: int, frontier: int) -> bool:
        """Lemma-2 test: can ``unit`` contain mates of ``frontier`` or later?

        ``unit`` is obsolete once ``unit.last + [ε,…,ε] <ego
        frontier.last`` — then no point of ``unit`` can join any point of
        ``frontier`` or of any unit after it.
        """
        m = self.meta.get(unit)
        f = self.meta.get(frontier)
        if m is None or f is None:
            return True
        return not lex_less(m.last_plus_eps_cells, f.last_cells)

    def _units_may_join(self, a: int, b: int) -> bool:
        """Interval test for a unit pair (the canceled region of Figure 2)."""
        ma, mb = self.meta.get(a), self.meta.get(b)
        if ma is None or mb is None:
            return True
        if lex_less(ma.last_plus_eps_cells, mb.first_cells):
            return False
        if lex_less(mb.last_plus_eps_cells, ma.first_cells):
            return False
        return True

    def _join_units(self, a: int, b: int) -> None:
        """Join the resident units ``a`` and ``b`` (``a == b`` is a self-join)."""
        if self.pair_done is not None and self.pair_done(a, b):
            # Completed (and made durable) before a crash; skip the work
            # but keep the schedule otherwise identical.
            self.stats.pairs_resumed += 1
            self._m_pair_resumed.inc()
            if self.monitor is not None:
                self.monitor.note_unit_pair(a, b)
            if self.trace is not None:
                self.trace.append(("resume-skip", min(a, b), max(a, b)))
            return
        if a != b and not self._units_may_join(a, b):
            self.stats.unit_pairs_skipped += 1
            self._m_pair_skipped.inc()
            if self.trace is not None:
                self.trace.append(("skip", min(a, b), max(a, b)))
            return
        if self.trace is not None:
            self.trace.append(("join", min(a, b), max(a, b)))
        self.stats.unit_pairs_joined += 1
        self._m_pair_joined.inc()
        if self.monitor is not None:
            self.monitor.note_unit_pair(a, b)
        on_complete = None
        if self.pair_complete is not None:
            on_complete = partial(self.pair_complete, a, b)
        ids_a, pts_a = self.pool.peek(a).value
        span_args = ({"a": min(a, b), "b": max(a, b)}
                     if self._tracer.enabled else None)
        # With a parallel joiner the span covers submission and any
        # in-order result merging submit() performs; the compute itself
        # happens in worker processes, which do not trace.
        with self._tracer.span("unit_pair", args=span_args):
            if a == b:
                self.unit_joiner.submit(ids_a, pts_a, None, None,
                                        on_complete,
                                        key=(a, a))
            else:
                ids_b, pts_b = self.pool.peek(b).value
                self.unit_joiner.submit(ids_a, pts_a, ids_b, pts_b,
                                        on_complete,
                                        key=(min(a, b), max(a, b)))

    # -- the schedule ---------------------------------------------------------

    def run(self) -> ScheduleStats:
        """Execute the full schedule; returns the accounting."""
        if self.num_units == 0:
            return self.stats
        base_capacity = self.pool.capacity
        self.pool.get(0)
        self.stats.gallop_loads += 1
        self._m_read_gallop.inc()
        if self.monitor is not None:
            self.monitor.note_gallop_load(0)
        self._join_units(0, 0)
        i = 1
        while i < self.num_units:
            frontier = i - 1
            self._cleanup(frontier)
            self._adapt_to_pressure(base_capacity)
            if not self.allow_crabstep:
                i = self._gallop_step(i)
            elif self.pool.has_empty_frame() and self._gallop_sound(frontier):
                i = self._gallop_step(i)
            else:
                i = self._crabstep(i)
        # All loads issued; wait for any unit pairs still in flight on a
        # parallel joiner (inline joiners have nothing queued).
        self.unit_joiner.drain()
        if self.monitor is not None:
            self.monitor.check_interval_coverage(self.meta, self.num_units)
            self.monitor.assert_pin_balance()
        return self.stats

    def _gallop_sound(self, frontier: int) -> bool:
        """Is the gallop invariant intact — every unit that may still join
        a future unit resident?

        With a fixed-size pool this follows from the empty-frame test
        alone, but dynamic resizing under pressure can open a frame right
        after a crabstep discarded still-needed units; galloping then
        would silently drop their pairs.  Residency is checked against
        the Lemma-2 test directly: the unit just below the oldest
        resident must be obsolete (unit last-cells are non-decreasing, so
        everything below it is then obsolete too).
        """
        low = min(self.pool.resident_keys)
        return low == 0 or not self._needed(low - 1, frontier)

    def _adapt_to_pressure(self, base_capacity: int) -> None:
        """Shrink the buffer one frame per step under pressure, regrow after.

        Pressure is read from the file's disk (``under_pressure``, set by
        the fault layer); the pool never shrinks below 2 frames, the
        minimum the schedule needs, so the join completes — more slowly,
        in crabstep mode — rather than aborting.
        """
        under_pressure = bool(getattr(self.point_file.disk,
                                      "under_pressure", False))
        if under_pressure and self.pool.capacity > 2:
            # Never evict here: after cleanup every resident frame is one
            # the gallop invariant still needs (its ε-interval is open),
            # so the shrink only consumes free frames.  Once the smaller
            # pool fills, the ordinary full-buffer test pushes the
            # schedule into crabstep, which re-reads from disk and is
            # safe under any residency.
            target = max(2, len(self.pool), self.pool.capacity - 1)
            if target < self.pool.capacity:
                self.pool.set_capacity(target)
                self.stats.pressure_shrinks += 1
                self._m_shrinks.inc()
        elif not under_pressure and self.pool.capacity < base_capacity:
            self.pool.set_capacity(self.pool.capacity + 1)

    def _cleanup(self, frontier: int) -> None:
        """Figure 4, mark 1: drop buffers whose ε-interval has passed."""
        for key in list(self.pool.resident_keys):
            if key != frontier and not self._needed(key, frontier):
                self.pool.discard(key)
                self.stats.evictions += 1
                self._m_interval_discards.inc()

    def _gallop_step(self, i: int) -> int:
        """Figure 4, mark 2: load the next unit and join it with the buffer.

        Without crabstep permission this may evict under LRU, which is
        exactly the I/O thrashing the paper's Figure 3b illustrates; the
        evicted partners are then reloaded one by one.
        """
        if self.allow_crabstep:
            if self._mode != "gallop":
                self._mode = "gallop"
                self._m_to_gallop.inc()
            partners = list(self.pool.resident_keys)
            self.pool.get(i)
            self.stats.gallop_loads += 1
            self._m_read_gallop.inc()
            if self.monitor is not None:
                self.monitor.note_gallop_load(i)
            for b in partners:
                self._join_units(b, i)
            self._join_units(i, i)
            return i + 1
        # Thrashing variant: the new unit is pinned while every partner in
        # its ε-interval is faulted through the LRU pool.
        misses_before = self.pool.stats.misses
        self.pool.get(i, pin=True)
        low = self._interval_low(i)
        for b in range(low, i):
            self.pool.get(b)
            self._join_units(b, i)
        self._join_units(i, i)
        self.pool.unpin(i)
        loads = self.pool.stats.misses - misses_before
        self.stats.gallop_loads += loads
        self._m_read_gallop.inc(loads)
        return i + 1

    def _interval_low(self, unit: int) -> int:
        """Smallest unit index that may contain mates of ``unit`` or later.

        Unit ``j`` is out of the interval once ``j.last + [ε,…,ε] <ego
        unit.first`` (Lemma 2 in cell arithmetic); the last cells of the
        EGO-sorted units are non-decreasing, so the needed units form a
        contiguous range ending at ``unit``.
        """
        target_first = self.meta[unit].first_cells
        low = unit
        while low > 0:
            prev = self.meta[low - 1]
            if lex_less(prev.last_plus_eps_cells, target_first):
                break
            low -= 1
        return low

    def _crabstep(self, i: int) -> int:
        """Figure 4, marks 3–4: outer-loop buffering over a pinned window."""
        self.stats.crabstep_phases += 1
        self._m_crabstep_phases.inc()
        if self._mode != "crabstep":
            self._mode = "crabstep"
            self._m_to_crabstep.inc()
        window_start = i
        # Phase 1: discard the stale frames and fill all but one frame
        # with new, pinned units, joining them among each other.
        for key in list(self.pool.resident_keys):
            self.pool.discard(key)
        window: List[int] = []
        while len(window) < self.pool.capacity - 1 and i < self.num_units:
            self.pool.get(i, pin=True)
            self.stats.crabstep_pins += 1
            self._m_read_pin.inc()
            for b in window:
                self._join_units(b, i)
            self._join_units(i, i)
            window.append(i)
            i += 1
        # Phase 2: iterate the remaining frame over the earlier units that
        # are still inside the window's ε-interval (judged against the
        # first point of the window, its EGO-least element).
        reload_low = self._interval_low(window[0])
        for j in range(reload_low, window_start):
            self.pool.get(j)
            self.stats.crabstep_reloads += 1
            self._m_read_reload.inc()
            for b in window:
                self._join_units(j, b)
        self.pool.unpin_all()
        return i


def schedule_self_join(point_file: PointFile, ctx: JoinContext,
                       unit_bytes: int, buffer_units: int,
                       allow_crabstep: bool = True) -> ScheduleStats:
    """Run the EGO I/O schedule for a similarity self-join.

    Convenience wrapper constructing and running an :class:`EGOScheduler`.
    """
    scheduler = EGOScheduler(point_file, ctx, unit_bytes, buffer_units,
                             allow_crabstep=allow_crabstep)
    return scheduler.run()
