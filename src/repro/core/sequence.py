"""Sequences of epsilon-grid-ordered points (Definition 2 of the paper).

A :class:`Sequence` is a contiguous slice of an EGO-sorted point array.
Its *active dimension* is the first dimension in which the first and last
point fall into different grid cells; all earlier dimensions are
*inactive* (every point of the sequence shares the same cell coordinate
there), later ones are *unspecified*.  The recursive join of Figure 6
prunes sequence pairs using only the inactive dimensions.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .ego_order import floor_cells, grid_cells, validate_epsilon


class Sequence:
    """A contiguous run of EGO-sorted points with cached cell metadata.

    Slicing via :meth:`first_half` / :meth:`second_half` creates views, not
    copies, so the recursion of ``join_sequences`` allocates only small
    metadata objects (the paper's point that EGO needs no directory — the
    only overhead is the O(log n) recursion stack).
    """

    __slots__ = ("ids", "points", "epsilon", "_first_cells", "_last_cells",
                 "_active_dim")

    def __init__(self, ids: np.ndarray, points: np.ndarray,
                 epsilon: float) -> None:
        self.ids = ids
        self.points = points
        self.epsilon = validate_epsilon(epsilon)
        if len(ids) != len(points):
            raise ValueError(
                f"ids ({len(ids)}) and points ({len(points)}) differ in length")
        if len(points) == 0:
            raise ValueError("a Sequence must contain at least one point")
        self._first_cells: Optional[np.ndarray] = None
        self._last_cells: Optional[np.ndarray] = None
        self._active_dim: int = -2        # -2 = not computed, -1 = none

    def __len__(self) -> int:
        return len(self.ids)

    @property
    def dimensions(self) -> int:
        """Dimensionality of the points."""
        return self.points.shape[1]

    @property
    def first_point(self) -> np.ndarray:
        """First (EGO-least) point of the sequence."""
        return self.points[0]

    @property
    def last_point(self) -> np.ndarray:
        """Last (EGO-greatest) point of the sequence."""
        return self.points[-1]

    @property
    def first_cells(self) -> np.ndarray:
        """Grid cell coordinates of the first point."""
        if self._first_cells is None:
            self._first_cells = grid_cells(self.points[0], self.epsilon)
        return self._first_cells

    @property
    def last_cells(self) -> np.ndarray:
        """Grid cell coordinates of the last point."""
        if self._last_cells is None:
            self._last_cells = grid_cells(self.points[-1], self.epsilon)
        return self._last_cells

    def active_dimension(self) -> Optional[int]:
        """The active dimension per Definition 2, or ``None`` if all inactive.

        The active dimension is the first index where the first and last
        point have different cell coordinates.  Because the sequence is
        EGO-sorted, the first differing coordinate of the last point is
        necessarily larger, satisfying condition (1) of the definition.
        """
        if self._active_dim == -2:
            diff = self.first_cells != self.last_cells
            idx = int(np.argmax(diff)) if diff.any() else -1
            self._active_dim = idx
        return None if self._active_dim == -1 else self._active_dim

    def inactive_count(self) -> int:
        """Number of leading inactive dimensions (``d`` when none is active)."""
        active = self.active_dimension()
        return self.dimensions if active is None else active

    def slice(self, start: int, stop: int) -> "Sequence":
        """Sub-sequence view over ``[start, stop)``."""
        return Sequence(self.ids[start:stop], self.points[start:stop],
                        self.epsilon)

    def first_half(self) -> "Sequence":
        """First half of the sequence (the larger half for odd lengths)."""
        mid = (len(self) + 1) // 2
        return self.slice(0, mid)

    def second_half(self) -> "Sequence":
        """Second half of the sequence."""
        mid = (len(self) + 1) // 2
        return self.slice(mid, len(self))

    def boundary_split_point(self) -> int:
        """Split index on the active-dimension cell boundary nearest the
        middle (§4's recursion-scheme optimization).

        Within a sequence the dimensions before the active one are
        cell-constant, so the active-dimension cells are non-decreasing
        along the sequence; splitting *at a cell change* makes the halves
        cell-confined one dimension sooner, strengthening the
        inactive-dimension pruning.  Falls back to the middle when no
        interior boundary exists.
        """
        mid = (len(self) + 1) // 2
        active = self.active_dimension()
        if active is None or len(self) < 2:
            return mid
        cells = floor_cells(self.points[:, active], self.epsilon)
        c_mid = cells[min(mid, len(self) - 1)]
        left = int(np.searchsorted(cells, c_mid, side="left"))
        right = int(np.searchsorted(cells, c_mid, side="right"))
        candidates = [x for x in (left, right) if 0 < x < len(self)]
        if not candidates:
            return mid
        return min(candidates, key=lambda x: abs(x - mid))

    def split_at(self, index: int) -> "Tuple[Sequence, Sequence]":
        """The two sub-sequences around an interior split index."""
        if not 0 < index < len(self):
            raise ValueError(
                f"split index {index} not interior to a sequence of "
                f"length {len(self)}")
        return self.slice(0, index), self.slice(index, len(self))

    def same_storage(self, other: "Sequence") -> bool:
        """True when both sequences are the identical array slice.

        Used to detect the self-join of a sequence with itself, where the
        recursion must avoid generating both (a, b) and (b, a).
        """
        my_ptr = self.points.__array_interface__["data"][0]
        other_ptr = other.points.__array_interface__["data"][0]
        return my_ptr == other_ptr and self.points.shape == other.points.shape
