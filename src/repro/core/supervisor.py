"""Resilient supervisor for the parallel unit-pair join.

:class:`~repro.core.parallel.ParallelUnitJoiner` assumes every worker
succeeds: one crashed process breaks the whole pool, one hung worker
deadlocks the merge loop, and a corrupted result would be folded into
the output silently.  For a join that is supposed to run for hours over
massive data — and for the sharded/distributed direction of the roadmap,
where an executor living on another machine *will* die eventually —
per-task fault tolerance is the missing substrate.  This module provides
it:

* **bounded retries with deterministic backoff** — a failed task is
  resubmitted up to ``max_task_retries`` times; the backoff before each
  retry is a pure function of ``(seed, task key, attempt)``, so the
  recorded backoff totals (and every other supervisor metric) are
  byte-identical across runs and contain no wall-clock;
* **per-task deadlines with hung-worker detection** — the merge loop
  waits on the head-of-line result with a deadline; on expiry the pool
  (which still holds the hung worker) is killed and recycled, pending
  tasks are resubmitted, and the stalled task is retried;
* **result digests** — every worker returns a CRC digest of its pair
  batch, recomputed by the parent; a mismatch (bit-flip in transit, a
  mis-merged buffer) is treated as a task fault and retried, never
  merged;
* **poisoned-task quarantine** — a task that keeps failing is retried
  once *inline* in the parent under the runtime invariant monitor
  (:mod:`repro.verify.invariants`).  Success means the failures were
  environment faults and the join continues; failure means the task
  itself is bad (a data bug) and :class:`TaskPoisonedError` aborts the
  run — retrying a data bug forever would only hide it;
* **graceful degradation** — when pool recycles exceed
  ``max_pool_recycles`` the supervisor stops trusting process pools
  altogether and drains every remaining task inline, serially.  The
  join *completes*, exactly, with ``stats.degraded`` set — the caller
  (and the CLI via exit code 3) reports the degradation instead of the
  user losing hours of work to an executor bug.

Results are still merged strictly in submission order, so the emitted
pair stream — durable pair file bytes, journal watermarks, metrics merge
order — remains byte-identical to the serial join no matter which
faults fired.

Every supervisor decision is deterministic given a
:class:`~repro.storage.faults.WorkerFaultPlan` (wall-clock is used only
to *detect* hangs, never recorded), and each decision is reported
through a ``decision_hook`` so the crash/resume journal can replay the
decisions of completed unit pairs: a resumed run seeds its counters
from the journal, re-executes only unfinished pairs (whose faults
re-fire identically), and ends with the same totals as an uninterrupted
run.
"""

from __future__ import annotations

import os
import time
import zlib
from concurrent.futures import (BrokenExecutor, CancelledError,
                                ProcessPoolExecutor)
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, fields as dataclass_fields
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..obs.metrics import ensure_metrics
from ..storage.faults import (InjectedTaskError, WorkerFaultPlan,
                              stable_fraction)
from ..storage.stats import CPUCounters
from .parallel import _UNIT_STATE, _init_unit_worker, _run_unit_pair
from .result import JoinResult
from .sequence_join import JoinContext, join_point_blocks


class SupervisorError(RuntimeError):
    """Base class of unrecoverable supervisor failures."""


class TaskPoisonedError(SupervisorError):
    """A task failed its quarantine retry: the task itself is bad.

    The inline retry runs in the parent process under the invariant
    monitor, so an environment fault (dead worker, bad pool) cannot
    cause it — a failure here reproduces with no pool involved at all,
    which is the signature of a data/algorithm bug.  Retrying further
    would loop forever on the same bug, so the join aborts.
    """

    def __init__(self, key: Tuple[int, int], cause: BaseException) -> None:
        super().__init__(
            f"unit pair {key} failed its inline quarantine retry "
            f"({type(cause).__name__}: {cause}); this reproduces without "
            f"a worker pool, so it is a task bug, not an environment "
            f"fault")
        self.key = key
        self.cause = cause


class PoolFailureError(SupervisorError):
    """The worker pool kept failing and degradation was disabled."""


@dataclass
class SupervisorPolicy:
    """Tunable fault-tolerance policy of a :class:`SupervisedUnitJoiner`.

    ``task_timeout`` is the merge-wait deadline in *real* seconds: how
    long the parent will wait on the oldest outstanding task before
    declaring its worker hung.  It is the only wall-clock quantity in
    the supervisor, used for detection only — nothing derived from it is
    recorded.  ``None`` disables hang detection (a genuinely hung worker
    then blocks forever, as the unsupervised joiner would).

    ``backoff`` before retry ``k`` of a task is
    ``backoff_base_s · backoff_factor^(k-1) · (0.5 + u)`` with ``u``
    a stable hash of ``(backoff_seed, key, k)`` — deterministic jitter,
    no RNG state.  The *simulated* total is always recorded;
    ``real_sleep`` controls whether the parent also sleeps it (capped at
    ``max_sleep_s``), which production wants and tests turn off.
    """

    task_timeout: Optional[float] = None
    max_task_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_seed: int = 0
    max_pool_recycles: int = 3
    degrade: bool = True
    real_sleep: bool = True
    max_sleep_s: float = 1.0

    def __post_init__(self) -> None:
        if self.task_timeout is not None and self.task_timeout <= 0.0:
            raise ValueError(
                f"task_timeout must be positive or None, "
                f"got {self.task_timeout}")
        if self.max_task_retries < 0:
            raise ValueError(
                f"max_task_retries must be >= 0, "
                f"got {self.max_task_retries}")
        if self.max_pool_recycles < 0:
            raise ValueError(
                f"max_pool_recycles must be >= 0, "
                f"got {self.max_pool_recycles}")
        if self.backoff_base_s < 0.0 or self.backoff_factor < 1.0:
            raise ValueError("backoff_base_s must be >= 0 and "
                             "backoff_factor >= 1")


def backoff_for(policy: SupervisorPolicy, key: Tuple[int, int],
                attempt: int) -> float:
    """Deterministic backoff (simulated seconds) before retry ``attempt``."""
    attempt = max(1, int(attempt))
    base = policy.backoff_base_s * policy.backoff_factor ** (attempt - 1)
    jitter = stable_fraction(policy.backoff_seed, "backoff",
                             key[0], key[1], attempt)
    return base * (0.5 + jitter)


#: Decision kinds journaled per event.  ``error``/``corrupt``/
#: ``timeout``/``crash`` are blamed-task retries (each adds one retry
#: plus its cause counter plus backoff); the rest are one-shot markers.
RETRY_KINDS: Tuple[str, ...] = ("error", "corrupt", "timeout", "crash")
EVENT_KINDS: Tuple[str, ...] = RETRY_KINDS + (
    "pool_recycle", "quarantine", "degrade", "inline")

_RETRY_STAT = {"error": "task_errors", "corrupt": "corrupt_results",
               "timeout": "timeouts", "crash": "crashes_detected"}


@dataclass
class SupervisorStats:
    """Deterministic accounting of one supervised join run.

    Every field is a pure function of the workload and the fault plan —
    wall-clock never enters (``backoff_simulated_s`` is the *scheduled*
    backoff, not time slept) — so two runs of the same seeded plan, or
    a crashed run plus its resume, report identical stats.
    """

    retries: int = 0
    task_errors: int = 0
    corrupt_results: int = 0
    timeouts: int = 0
    crashes_detected: int = 0
    pool_recycles: int = 0
    quarantined: int = 0
    inline_tasks: int = 0
    degraded: bool = False
    backoff_simulated_s: float = 0.0

    @property
    def faults_survived(self) -> int:
        """Total blamed-task failures the run recovered from."""
        return self.retries

    def apply_event(self, kind: str, key: Tuple[int, int], attempt: int,
                    policy: SupervisorPolicy) -> None:
        """Fold one journaled decision event into the counters."""
        if kind in RETRY_KINDS:
            self.retries += 1
            setattr(self, _RETRY_STAT[kind],
                    getattr(self, _RETRY_STAT[kind]) + 1)
            self.backoff_simulated_s += backoff_for(policy, key, attempt)
        elif kind == "pool_recycle":
            self.pool_recycles += 1
        elif kind == "quarantine":
            self.quarantined += 1
        elif kind == "degrade":
            self.degraded = True
        elif kind == "inline":
            self.inline_tasks += 1
        else:
            raise ValueError(f"unknown supervisor event kind {kind!r}")


def replay_stats(events: Iterable[Tuple[str, int, int, int]],
                 policy: SupervisorPolicy) -> SupervisorStats:
    """Reconstruct :class:`SupervisorStats` from journaled events."""
    stats = SupervisorStats()
    for kind, a, b, attempt in events:
        stats.apply_event(kind, (a, b), attempt, policy)
    return stats


# -- worker side ------------------------------------------------------------


def _result_digest(out_a: np.ndarray, out_b: np.ndarray,
                   dists: Optional[np.ndarray]) -> int:
    """CRC32 digest of one task's result batch (order-sensitive)."""
    h = zlib.crc32(np.ascontiguousarray(out_a).tobytes())
    h = zlib.crc32(np.ascontiguousarray(out_b).tobytes(), h)
    if dists is not None:
        h = zlib.crc32(np.ascontiguousarray(dists).tobytes(), h)
    return h


#: Public alias: the sharded join (repro.core.shard) digests per-event
#: results with the same CRC so its corruption detection matches the
#: supervised pool's.
result_digest = _result_digest


def _init_supervised_worker(init_args: tuple,
                            worker_plan: Optional[WorkerFaultPlan]) -> None:
    _init_unit_worker(*init_args)
    _UNIT_STATE["worker_plan"] = worker_plan


def _run_supervised_task(key: Tuple[int, int], attempt: int,
                         ids_a, pts_a, ids_b, pts_b):
    """Worker entry point: fault adjudication, the join, and a digest.

    Returns ``(out_a, out_b, dists, cpu, metrics_data, digest)``.  The
    digest is computed *before* any injected corruption, so a corrupted
    batch always mismatches in the parent.
    """
    plan: Optional[WorkerFaultPlan] = _UNIT_STATE.get("worker_plan")
    fault = plan.decide(key, attempt) if plan is not None else None
    if fault == "crash":
        # A hard exit, not an exception: the parent must see a broken
        # pool, exactly as a real segfault/OOM kill would present.
        os._exit(17)
    if fault == "stall":
        time.sleep(plan.stall_seconds)
    elif fault == "error":
        raise InjectedTaskError(
            f"injected task error for unit pair {key} attempt {attempt}")
    out_a, out_b, dists, cpu, metrics_data = _run_unit_pair(
        ids_a, pts_a, ids_b, pts_b)
    digest = _result_digest(out_a, out_b, dists)
    if fault == "corrupt":
        if out_a.size:
            out_a = out_a.copy()
            view = out_a.view(np.uint8)
            pos = int(stable_fraction(plan.seed, "pos", *key)
                      * len(view)) % len(view)
            view[pos] ^= 1 << int(
                stable_fraction(plan.seed, "bit", *key) * 8) % 8
        else:
            digest ^= 1  # empty batch: corrupt the digest itself
    return out_a, out_b, dists, cpu, metrics_data, digest


# -- parent side ------------------------------------------------------------


class _Task:
    """One submitted unit pair, retained until merged (for resubmission)."""

    __slots__ = ("index", "key", "payload", "on_complete", "future",
                 "attempt", "quarantined")

    def __init__(self, index: int, key: Tuple[int, int], payload: tuple,
                 on_complete: Optional[Callable[[], None]]) -> None:
        self.index = index
        self.key = key
        self.payload = payload
        self.on_complete = on_complete
        self.future = None
        self.attempt = 0
        self.quarantined = False


class SupervisedUnitJoiner:
    """A :class:`~repro.core.parallel.ParallelUnitJoiner` that survives
    its pool.

    Drop-in execution backend for
    :class:`~repro.core.scheduler.EGOScheduler`: same ``submit`` /
    ``drain`` / ``close`` protocol, same submission-order merging, same
    byte-identical output — plus the retry/deadline/degradation ladder
    described in the module docstring.  With no faults and the default
    policy it behaves exactly like the unsupervised joiner (one extra
    CRC per task).

    Parameters
    ----------
    ctx:
        The parent join context results are merged into.
    workers:
        Pool size.
    policy:
        :class:`SupervisorPolicy` (defaults are production-safe).
    worker_plan:
        Optional :class:`~repro.storage.faults.WorkerFaultPlan` shipped
        to every worker; also consulted in the parent to attribute pool
        breakage to the task that crashed it.
    decision_hook:
        ``hook(kind, key, attempt)`` called on every live supervisor
        decision — the journal wiring that makes resume replay exact.
    replay_events:
        Journaled ``(kind, a, b, attempt)`` events of *completed* unit
        pairs from a previous incarnation; folded into the stats (and
        metrics) before any new work, so a resumed run's totals match
        the uninterrupted run.  A replayed ``degrade`` event starts the
        joiner in degraded (serial) mode.
    """

    def __init__(self, ctx: JoinContext, workers: int,
                 policy: Optional[SupervisorPolicy] = None,
                 worker_plan: Optional[WorkerFaultPlan] = None,
                 max_pending: Optional[int] = None,
                 decision_hook: Optional[
                     Callable[[str, Tuple[int, int], int], None]] = None,
                 replay_events: Iterable[
                     Tuple[str, int, int, int]] = ()) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.ctx = ctx
        self.workers = workers
        self.policy = policy if policy is not None else SupervisorPolicy()
        self.worker_plan = worker_plan
        self.max_pending = max_pending if max_pending else workers * 4
        if self.max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self.stats = SupervisorStats()
        self._decision_hook = decision_hook
        self._metrics = ensure_metrics(getattr(ctx, "metrics", None))
        self._m_events = None  # registered lazily: a fault-free run's
        self._m_degraded = None  # metrics dump must match the serial one
        metric = ctx.metric if ctx.metric.name != "euclidean" else None
        self._init_args = (ctx.epsilon, ctx.minlen, ctx.engine,
                           ctx.order_dimensions, metric, ctx.grid_epsilon,
                           ctx.result.collect_distances, ctx.split_strategy,
                           bool(self._metrics.enabled),
                           ctx.batch_points, ctx.batch_leaves)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._degraded = False
        self._next_submit = 0
        self._next_emit = 0
        self._pending: Dict[int, _Task] = {}
        for kind, a, b, attempt in replay_events:
            self._record(kind, (a, b), attempt, replay=True)

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "SupervisedUnitJoiner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_supervised_worker,
            initargs=(self._init_args, self.worker_plan))

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def _kill_pool(self) -> None:
        """Tear the pool down without waiting on (possibly hung) workers."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        # Terminate worker processes first: shutdown() never kills, and
        # the interpreter's atexit hook would otherwise join a stalled
        # worker for the full length of its hang.
        for proc in list((getattr(pool, "_processes", None) or {})
                         .values()):
            try:
                proc.terminate()
            except (OSError, AttributeError):
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Release the pool; never blocks on hung or abandoned workers."""
        if self._m_events is not None:
            # Events fired: publish the run's backoff total.  Registered
            # lazily like the event counter, so a fault-free run's
            # metrics dump stays byte-identical to the serial one.
            self._metrics.gauge(
                "ego_supervisor_backoff_simulated_seconds",
                "Deterministic (scheduled) retry backoff total",
                unit="s").set(round(self.stats.backoff_simulated_s, 9))
        if self._pool is None:
            return
        if not self._pending:
            pool, self._pool = self._pool, None
            pool.shutdown(wait=True, cancel_futures=True)
        else:
            # Exception path: tasks still in flight.  Kill, don't wait —
            # a hung worker must not turn an error into a deadlock.
            self._kill_pool()

    # -- bookkeeping --------------------------------------------------------

    def _metric_events(self):
        if self._m_events is None:
            self._m_events = self._metrics.counter(
                "ego_supervisor_events_total",
                "Supervisor fault-handling decisions, by kind",
                labelnames=("event",))
        return self._m_events

    def _record(self, kind: str, key: Tuple[int, int], attempt: int,
                replay: bool = False) -> None:
        """One supervisor decision: stats, metrics, journal, mode flips."""
        self.stats.apply_event(kind, key, attempt, self.policy)
        self._metric_events().labels(kind).inc()
        if kind == "degrade":
            self._degraded = True
            if self._m_degraded is None:
                self._m_degraded = self._metrics.gauge(
                    "ego_supervisor_degraded",
                    "1 when the run finished in degraded (serial) mode")
            self._m_degraded.set(1)
        if not replay and self._decision_hook is not None:
            self._decision_hook(kind, key, attempt)

    def _bump(self, task: _Task, kind: str) -> None:
        """Blame ``task`` for one failure of ``kind`` and plan its retry."""
        task.attempt += 1
        if self.worker_plan is not None:
            self.worker_plan.record(
                {"error": "error", "corrupt": "corrupt",
                 "timeout": "stall", "crash": "crash"}[kind])
        self._record(kind, task.key, task.attempt)
        if task.attempt > self.policy.max_task_retries:
            task.quarantined = True
            self._record("quarantine", task.key, task.attempt)
            return
        if self.policy.real_sleep and self.policy.backoff_base_s > 0.0:
            time.sleep(min(backoff_for(self.policy, task.key, task.attempt),
                           self.policy.max_sleep_s))

    # -- submission and merging ---------------------------------------------

    def submit(self, ids_a: np.ndarray, pts_a: np.ndarray,
               ids_b: Optional[np.ndarray], pts_b: Optional[np.ndarray],
               on_complete: Optional[Callable[[], None]] = None,
               key: Optional[Tuple[int, int]] = None) -> None:
        """Queue one unit pair; merges any in-order results that are ready.

        ``key`` identifies the unit pair across runs (the scheduler
        passes its unit ordinals); it keys fault decisions, backoff
        jitter, and the journal's decision log.
        """
        if key is None:
            key = (-1 - self._next_submit, -1 - self._next_submit)
        task = _Task(self._next_submit, (int(key[0]), int(key[1])),
                     (ids_a, pts_a, ids_b, pts_b), on_complete)
        self._pending[task.index] = task
        self._next_submit += 1
        if self._degraded:
            self._advance(block=True)
            return
        self._submit_task(task)
        self._advance(block=len(self._pending) >= self.max_pending)

    def _submit_task(self, task: _Task) -> bool:
        """Ship ``task`` to the pool; ``False`` leaves it unsubmitted.

        The pool can be broken *at submission time* — a previously
        submitted task's injected (or real) crash lands asynchronously.
        The task is then left with no future and the breakage is handled
        when it reaches the head of the merge order, where the blame /
        recycle ladder runs.
        """
        task.future = None
        try:
            task.future = self._ensure_pool().submit(
                _run_supervised_task, task.key, task.attempt, *task.payload)
            return True
        except BrokenExecutor:
            return False

    def _resubmit_pending(self) -> None:
        """Re-queue every pending task on a fresh pool, oldest first."""
        for index in sorted(self._pending):
            task = self._pending[index]
            if not task.quarantined and not self._submit_task(task):
                # Broken again already; later tasks stay unsubmitted and
                # the head-of-line handler recycles once more.
                break

    def _advance(self, block: bool) -> None:
        """Fold completed results into the context, oldest first.

        As in the unsupervised joiner, results are only consumed at the
        head of the submission order — that is what keeps the merged
        stream deterministic.  All failure handling therefore happens at
        the head too, which serialises supervisor decisions into one
        deterministic order.
        """
        while self._next_emit in self._pending:
            task = self._pending[self._next_emit]
            out = self._obtain(task, block)
            if out is None:
                break
            del self._pending[self._next_emit]
            self._next_emit += 1
            self._merge(task, out)
            block = len(self._pending) >= self.max_pending

    def _obtain(self, task: _Task, block: bool):
        """One merged-result attempt for the head task; None = not ready.

        Loops over the failure ladder: a handled fault leaves ``task``
        resubmitted (or quarantined / the joiner degraded) and the loop
        tries again.  Raises :class:`TaskPoisonedError` or
        :class:`PoolFailureError` when the ladder is exhausted.
        """
        while True:
            if self._degraded or task.quarantined:
                return self._finish_inline(task)
            if task.future is None and not self._submit_task(task):
                self._on_broken_pool(task)
                continue
            fut = task.future
            if not block and not fut.done():
                return None
            try:
                out = fut.result(timeout=self.policy.task_timeout)
            except FuturesTimeout:
                self._on_timeout(task)
                continue
            except (BrokenExecutor, CancelledError):
                self._on_broken_pool(task)
                continue
            except Exception:  # task-level failure in the worker
                self._bump(task, "error")
                task.future = None
                continue
            out, digest = out[:-1], out[-1]
            if _result_digest(out[0], out[1], out[2]) != digest:
                self._bump(task, "corrupt")
                task.future = None
                continue
            return out

    def _on_timeout(self, task: _Task) -> None:
        """Head task missed its merge deadline: the worker is hung."""
        self._bump(task, "timeout")
        self._recycle(task)

    def _on_broken_pool(self, task: _Task) -> None:
        """The pool died under us; blame the crashing task(s) and recycle.

        With a fault plan the blame is exact (the plan is a pure
        function both sides agree on); without one the head task is
        blamed — it is the one whose retry budget should pay.
        """
        blamed: List[_Task] = []
        if self.worker_plan is not None:
            blamed = [t for t in self._pending.values()
                      if not t.quarantined
                      and self.worker_plan.decide(t.key, t.attempt)
                      == "crash"]
        if not blamed:
            blamed = [task]
        for t in sorted(blamed, key=lambda t: t.index):
            self._bump(t, "crash")
        self._recycle(blamed[0])

    def _recycle(self, blamed: _Task) -> None:
        """Replace the pool, or give up on pools entirely (degrade)."""
        self._kill_pool()
        self._record("pool_recycle", blamed.key, blamed.attempt)
        if self.stats.pool_recycles > self.policy.max_pool_recycles:
            if self.policy.degrade:
                self._record("degrade", blamed.key, blamed.attempt)
                return
            raise PoolFailureError(
                f"worker pool failed {self.stats.pool_recycles} times "
                f"(limit {self.policy.max_pool_recycles}) and degradation "
                f"is disabled")
        self._resubmit_pending()

    # -- inline execution (quarantine and degraded mode) --------------------

    def _run_task_inline(self, task: _Task, invariants: bool):
        """Execute one task in the parent, shaped like a worker result."""
        if self.worker_plan is not None \
                and self.worker_plan.decide(task.key, task.attempt) \
                == "error":
            # Only the "error" kind models a fault in the task itself;
            # crash/stall/corrupt are environment faults a pool-free
            # retry deliberately escapes.
            raise InjectedTaskError(
                f"injected task error for unit pair {task.key} "
                f"attempt {task.attempt} (inline)")
        ctx = self.ctx
        result = JoinResult(materialize=True,
                            collect_distances=ctx.result.collect_distances)
        cpu = CPUCounters()
        inline_ctx = JoinContext(
            epsilon=ctx.epsilon, result=result, minlen=ctx.minlen,
            engine=ctx.engine, order_dimensions=ctx.order_dimensions,
            cpu=cpu, metric=ctx.metric, grid_epsilon=ctx.grid_epsilon,
            split_strategy=ctx.split_strategy, invariants=invariants,
            batch_points=ctx.batch_points, batch_leaves=ctx.batch_leaves,
            metrics=ctx.metrics)
        ids_a, pts_a, ids_b, pts_b = task.payload
        if ids_b is None:
            join_point_blocks(ids_a, pts_a, ids_a, pts_a, inline_ctx,
                              same_block=True)
        else:
            join_point_blocks(ids_a, pts_a, ids_b, pts_b, inline_ctx)
        out_a, out_b = result.pairs()
        dists = result.distances() if result.collect_distances else None
        # Metrics were recorded straight into the parent registry (we
        # are at the head of the merge order, so the ordering matches
        # the serial joiner); no snapshot to merge.
        return out_a, out_b, dists, cpu, None

    def _finish_inline(self, task: _Task):
        """Drain one task in the parent: the bottom of the ladder.

        Quarantined tasks run under the invariant monitor and are the
        last word: success clears them (environment fault), any failure
        is a :class:`TaskPoisonedError`.  Degraded-mode tasks retry
        through the same blame ladder until they succeed or quarantine.
        """
        while True:
            if task.quarantined:
                try:
                    return self._run_task_inline(task, invariants=True)
                except Exception as exc:
                    raise TaskPoisonedError(task.key, exc) from exc
            try:
                out = self._run_task_inline(task, invariants=False)
            except Exception:
                self._bump(task, "error")
                continue
            self._record("inline", task.key, task.attempt)
            return out

    def _merge(self, task: _Task, out) -> None:
        out_a, out_b, dists, cpu, metrics_data = out
        if self.ctx.cpu is not None:
            for f in dataclass_fields(cpu):
                setattr(self.ctx.cpu, f.name,
                        getattr(self.ctx.cpu, f.name) + getattr(cpu, f.name))
        if metrics_data:
            self.ctx.metrics.merge(metrics_data)
        self.ctx.result.add_batch(out_a, out_b, distances=dists)
        if task.on_complete is not None:
            task.on_complete()

    def drain(self) -> None:
        """Block until every queued unit pair has been merged."""
        while self._pending:
            self._advance(block=True)
