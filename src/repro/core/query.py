"""A reusable EGO-sorted index for repeated queries and joins.

The epsilon grid order is a *sort order*, so once a data set is sorted
it can serve many operations without any further structure — the
property Section 3 of the paper emphasises ("no directory structure
needs to be constructed").  :class:`EGOIndex` materialises that idea as
an object: sort once, then

* run ε-range queries (Lemma 2/3 restrict candidates to one contiguous
  slice of the order, found by binary search),
* count neighbours,
* self-join, or join against another index built with the same ε,

all without re-sorting.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple

import numpy as np

from ..storage.stats import CPUCounters
from .ego_order import (ego_sorted, ensure_finite, grid_cells,
                        validate_epsilon)
from .metrics import get_metric
from .result import JoinResult
from .sequence import Sequence
from .sequence_join import DEFAULT_MINLEN, JoinContext, join_sequences


class EGOIndex:
    """An EGO-sorted point set supporting queries and joins at ε.

    Parameters
    ----------
    points:
        The data set (finite coordinates).
    epsilon:
        The grid cell length.  Range queries accept any radius up to
        ``epsilon`` (the candidate slice is only valid within it).
    ids:
        Optional external ids; defaults to input row positions.
    metric:
        Distance for refinement (default Euclidean).
    """

    def __init__(self, points: np.ndarray, epsilon: float,
                 ids: Optional[np.ndarray] = None,
                 metric=None) -> None:
        self.epsilon = validate_epsilon(epsilon)
        self.metric = get_metric(metric)
        pts = ensure_finite(points)
        if pts.ndim != 2:
            raise ValueError(
                f"points must be 2-dimensional, got {pts.shape}")
        self.ids, self.points = ego_sorted(pts, self.epsilon, ids)
        self._cells = grid_cells(self.points, self.epsilon)
        self._keys: Optional[List[Tuple[int, ...]]] = None

    def __len__(self) -> int:
        return len(self.points)

    @property
    def dimensions(self) -> int:
        """Dimensionality of the indexed points."""
        return self.points.shape[1] if len(self.points) else 0

    def _key_list(self) -> List[Tuple[int, ...]]:
        if self._keys is None:
            self._keys = [tuple(row) for row in self._cells.tolist()]
        return self._keys

    def _candidate_slice(self, center: np.ndarray) -> Tuple[int, int]:
        """The ε-interval of ``center`` as a slice of the sorted order."""
        cells = grid_cells(center, self.epsilon)
        keys = self._key_list()
        lo = bisect.bisect_left(keys, tuple((cells - 1).tolist()))
        hi = bisect.bisect_right(keys, tuple((cells + 1).tolist()))
        return lo, hi

    def range_query(self, center: np.ndarray, radius: Optional[float] = None
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """Ids and distances of all points within ``radius`` of ``center``.

        ``radius`` defaults to the index ε and must not exceed it.
        """
        c = ensure_finite(np.atleast_1d(np.asarray(center, dtype=float)))
        if c.shape != (self.dimensions,) and len(self.points):
            raise ValueError(
                f"center must have shape ({self.dimensions},), "
                f"got {c.shape}")
        r = self.epsilon if radius is None else float(radius)
        if r < 0:
            raise ValueError("radius must be non-negative")
        if r > self.epsilon:
            raise ValueError(
                f"radius {r} exceeds the index epsilon {self.epsilon}")
        if len(self.points) == 0:
            return (np.empty(0, dtype=np.int64), np.empty(0))
        lo, hi = self._candidate_slice(c)
        block = self.points[lo:hi]
        if len(block) == 0:
            return (np.empty(0, dtype=np.int64), np.empty(0))
        diffs = block - c
        contrib = self.metric.contributions(diffs)
        combined = contrib.max(axis=1) if self.metric.combine_max \
            else contrib.sum(axis=1)
        within = combined <= self.metric.threshold(r)
        dists = self.metric.finalize(combined[within])
        return self.ids[lo:hi][within], np.asarray(dists)

    def count_neighbors(self, center: np.ndarray,
                        radius: Optional[float] = None) -> int:
        """Number of indexed points within ``radius`` of ``center``."""
        ids, _ = self.range_query(center, radius)
        return len(ids)

    # -- joins -----------------------------------------------------------

    def _context(self, result: JoinResult, minlen: int,
                 cpu: Optional[CPUCounters],
                 epsilon: Optional[float] = None) -> JoinContext:
        eps_join = self.epsilon if epsilon is None else float(epsilon)
        if eps_join > self.epsilon + 1e-12:
            raise ValueError(
                f"join epsilon {eps_join} exceeds the index epsilon "
                f"{self.epsilon}")
        return JoinContext(epsilon=eps_join, result=result,
                           minlen=minlen, cpu=cpu, metric=self.metric,
                           grid_epsilon=self.epsilon)

    def self_join(self, minlen: int = DEFAULT_MINLEN,
                  result: Optional[JoinResult] = None,
                  cpu: Optional[CPUCounters] = None,
                  epsilon: Optional[float] = None) -> JoinResult:
        """Similarity self-join (no re-sorting).

        ``epsilon`` may be any value up to the index ε — a parameter
        sweep runs entirely on the one sorted array.
        """
        if result is None:
            result = JoinResult()
        if len(self.points) == 0:
            return result
        ctx = self._context(result, minlen, cpu, epsilon)
        seq = Sequence(self.ids, self.points, self.epsilon)
        join_sequences(seq, seq, ctx)
        return result

    def join(self, other: "EGOIndex", minlen: int = DEFAULT_MINLEN,
             result: Optional[JoinResult] = None,
             cpu: Optional[CPUCounters] = None,
             epsilon: Optional[float] = None) -> JoinResult:
        """Similarity join against another index built with the same ε."""
        if abs(other.epsilon - self.epsilon) > 1e-12:
            raise ValueError(
                f"epsilon mismatch: {self.epsilon} vs {other.epsilon}")
        if other.dimensions != self.dimensions and len(self.points) \
                and len(other.points):
            raise ValueError(
                f"dimension mismatch: {self.dimensions} vs "
                f"{other.dimensions}")
        if result is None:
            result = JoinResult()
        if len(self.points) == 0 or len(other.points) == 0:
            return result
        ctx = self._context(result, minlen, cpu, epsilon)
        join_sequences(Sequence(self.ids, self.points, self.epsilon),
                       Sequence(other.ids, other.points, self.epsilon),
                       ctx)
        return result
