"""The Epsilon Grid Order (Definition 1 of the paper).

A conceptual grid with cell length ε, anchored at the origin, is laid over
the data space; points are ordered by the lexicographic order of their
grid cells with dimension 0 carrying the highest weight.  The grid is
never materialised — a point's cell is just ``floor(p / ε)`` per
dimension, and the order is computed directly from coordinates.

This module provides the scalar comparator (used by the property tests to
validate everything else), vectorised cell/key computation, and the sort
permutation used by both the in-memory join and external sorting.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def validate_epsilon(epsilon: float) -> float:
    """Return ``epsilon`` as a float, rejecting non-positive or non-finite values."""
    eps = float(epsilon)
    if not np.isfinite(eps) or eps <= 0.0:
        raise ValueError(f"epsilon must be a positive finite number, got {epsilon!r}")
    return eps


def ensure_finite(points: np.ndarray) -> np.ndarray:
    """Reject points with NaN or infinite coordinates.

    The grid mapping (``floor(p / ε)``) is undefined for non-finite
    values; callers at the public API boundary validate once so the
    failure is a clear error instead of an integer-cast artifact.
    """
    pts = np.asarray(points, dtype=np.float64)
    if not np.isfinite(pts).all():
        bad = int(np.argwhere(~np.isfinite(pts).all(axis=-1)).flat[0]) \
            if pts.ndim == 2 else -1
        raise ValueError(
            f"points contain non-finite coordinates (first bad row: "
            f"{bad})")
    return pts


#: Relative half-width of the boundary band (in units of the quotient)
#: inside which ``floor(x / w)`` may have been rounded across a cell
#: boundary and is re-derived in extended precision.  The quotient's
#: rounding error is at most half an ulp, so a 4-ulp band is generous.
_BOUNDARY_BAND = 4.0 * np.finfo(np.float64).eps


def floor_cells(values: np.ndarray, width: float) -> np.ndarray:
    """Rounding-safe ``floor(values / width)`` — the grid cell mapping.

    ``np.floor(x / w)`` computes the floor of the *correctly rounded*
    quotient, not of the real quotient: a coordinate sitting within half
    an ulp below a cell boundary (common for translated, negative or
    large-magnitude data, where boundary multiples ``k·w`` are not
    representable) has its quotient rounded up across the integer and
    lands one cell too high.  This is the single cell computation shared
    by the sort key, the sequence splitter and the kernel's candidate
    windows, so every layer sees identical cells.

    Only quotients within a few ulps of an integer can be affected;
    those are re-derived with extended-precision products so the result
    matches the real-arithmetic floor for ``|x / w| < 2**52`` (on
    platforms where ``np.longdouble`` is no wider than ``float64`` the
    correction still enforces ``c·w ≤ x < (c+1)·w`` under float
    products).  The mapping is monotone in ``x``.
    """
    vals = np.asarray(values, dtype=np.float64)
    flat = np.ascontiguousarray(vals).reshape(-1)
    ratio = flat / width
    cells = np.floor(ratio)
    near = np.abs(ratio - np.rint(ratio)) <= _BOUNDARY_BAND * np.abs(ratio)
    if np.any(near):
        idx = np.nonzero(near)[0]
        wide = np.longdouble(width)
        xs = flat[idx].astype(np.longdouble)
        c = cells[idx].astype(np.longdouble)
        c = np.where(c * wide > xs, c - 1.0, c)
        c = np.where((c + 1.0) * wide <= xs, c + 1.0, c)
        cells[idx] = c.astype(np.float64)
    return cells.astype(np.int64).reshape(vals.shape)


def grid_cells(points: np.ndarray, epsilon: float) -> np.ndarray:
    """Map points to their ε-grid cell coordinates.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)`` (or ``(d,)`` for a single point).
    epsilon:
        Grid cell length.

    Returns
    -------
    Integer array of the same leading shape with ``floor(p / ε)`` per
    dimension.  Negative coordinates are handled by true floor division;
    coordinates within rounding distance of a cell boundary are placed
    by :func:`floor_cells`, so the cell is the real-arithmetic floor.
    """
    eps = validate_epsilon(epsilon)
    return floor_cells(points, eps)


def lex_less(a: np.ndarray, b: np.ndarray) -> bool:
    """Strict lexicographic comparison of two integer cell vectors.

    This is the epsilon grid order expressed on precomputed cells:
    ``p <ego q  ⇔  lex_less(grid_cells(p, ε), grid_cells(q, ε))``.
    """
    for x, y in zip(a, b):
        if x < y:
            return True
        if x > y:
            return False
    return False


def ego_compare(p: np.ndarray, q: np.ndarray, epsilon: float) -> int:
    """Three-way EGO comparison of two points.

    Returns ``-1`` if ``p <ego q``, ``1`` if ``q <ego p`` and ``0`` when
    both points fall into the same grid cell (the order is irreflexive, so
    same-cell points are mutually unordered).
    """
    cp = grid_cells(np.asarray(p, dtype=np.float64), epsilon)
    cq = grid_cells(np.asarray(q, dtype=np.float64), epsilon)
    for a, b in zip(cp, cq):
        if a < b:
            return -1
        if a > b:
            return 1
    return 0


def ego_less(p: np.ndarray, q: np.ndarray, epsilon: float) -> bool:
    """The predicate ``p <ego q`` of Definition 1."""
    return ego_compare(p, q, epsilon) < 0


def ego_key(point: np.ndarray, epsilon: float) -> Tuple[int, ...]:
    """Cell coordinates of one point as a comparable tuple.

    Tuples compare lexicographically with dimension 0 first, so sorting by
    this key realises the epsilon grid order.
    """
    return tuple(int(c) for c in grid_cells(point, epsilon))


def ego_sort_order(points: np.ndarray, epsilon: float,
                   ids: Optional[np.ndarray] = None) -> np.ndarray:
    """Permutation that sorts ``points`` into epsilon grid order.

    ``np.lexsort`` treats its *last* key as primary, so the cell columns
    are passed in reverse dimension order.  When ``ids`` is given it is
    used as the final tie-break inside a cell, which makes the permutation
    deterministic; otherwise ``lexsort``'s stability keeps the input order
    for same-cell points.
    """
    cells = grid_cells(points, epsilon)
    if cells.ndim != 2:
        raise ValueError(f"points must be 2-dimensional, got shape {points.shape}")
    keys = [cells[:, j] for j in range(cells.shape[1] - 1, -1, -1)]
    if ids is not None:
        keys.insert(0, np.asarray(ids))
    return np.lexsort(keys)


def ego_sorted(points: np.ndarray, epsilon: float,
               ids: Optional[np.ndarray] = None
               ) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(ids, points)`` sorted into epsilon grid order.

    If ``ids`` is omitted, sequential indices ``0..n-1`` are assigned
    before sorting, so the returned ids refer to the input row positions.
    """
    pts = np.asarray(points, dtype=np.float64)
    if ids is None:
        ids = np.arange(len(pts), dtype=np.int64)
    else:
        ids = np.asarray(ids, dtype=np.int64)
    order = ego_sort_order(pts, epsilon, ids)
    return ids[order], pts[order]


def is_ego_sorted(points: np.ndarray, epsilon: float) -> bool:
    """Check that consecutive points are in (non-strict) epsilon grid order."""
    cells = grid_cells(points, epsilon)
    if len(cells) < 2:
        return True
    prev, nxt = cells[:-1], cells[1:]
    diff = nxt - prev
    nz = diff != 0
    first_nz = np.argmax(nz, axis=1)
    any_nz = nz.any(axis=1)
    rows = np.arange(len(diff))
    leading = diff[rows, first_nz]
    return bool(np.all(~any_nz | (leading > 0)))


def epsilon_interval(point: np.ndarray, epsilon: float
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """The ε-interval bounds of Lemmata 2 and 3.

    All join mates of ``point`` lie, in epsilon grid order, between
    ``point − [ε,…,ε]`` and ``point + [ε,…,ε]``; anything strictly below
    the lower bound or strictly above the upper bound can be skipped.
    """
    eps = validate_epsilon(epsilon)
    p = np.asarray(point, dtype=np.float64)
    shift = np.full(p.shape, eps)
    return p - shift, p + shift


def outside_interval_low(q: np.ndarray, p: np.ndarray, epsilon: float) -> bool:
    """True when ``q <ego p − [ε,…,ε]`` (Lemma 2: q precedes p's ε-interval)."""
    low, _high = epsilon_interval(p, epsilon)
    return ego_less(q, low, epsilon)


def outside_interval_high(q: np.ndarray, p: np.ndarray, epsilon: float) -> bool:
    """True when ``p + [ε,…,ε] <ego q`` (Lemma 3: q follows p's ε-interval)."""
    _low, high = epsilon_interval(p, epsilon)
    return ego_less(high, q, epsilon)
