"""High-throughput leaf kernels for the similarity join.

Section 4.2 observes that the final point-distance tests dominate the
CPU cost of the EGO join.  The ``vector`` engine in
:mod:`repro.core.distance` materialises a full ``na × nb × d``
difference cube per leaf; for the leaf sizes where numpy batching pays
off, that cube is both the memory and the time bottleneck.  This module
provides a BLAS-bound alternative:

* :func:`pairs_within_matmul` — squared Euclidean distances via the
  Gram identity ``‖p − q‖² = ‖p‖² + ‖q‖² − 2·(p·q)``, evaluated
  blockwise with GEMM so peak memory is one ``block × block`` tile
  instead of the full cube.  Borderline accepts (within a rounding
  slack of the threshold) are re-verified with exact differences, so
  the reported pair set and distances match the reference engines.
* :func:`candidate_windows` — an EGO-sorted candidate-window prefilter:
  ``searchsorted`` on the grid cells of one monotone dimension bounds
  each point's candidate range to the ±1-cell band that can contain
  join mates, shrinking the GEMM tiles before any arithmetic happens.
* :class:`ScratchBuffers` — reusable per-join scratch for the Gram
  tiles, norms and masks, so steady-state leaf joins allocate nothing
  proportional to ``block²``.
* :func:`select_engine` — the ``"auto"`` heuristic mapping leaf shape
  and metric to the fastest engine.

Counter semantics: the dense kernel has no early abort, so with
``counters`` it charges one distance calculation and ``d`` dimension
evaluations per candidate it evaluates (candidates excluded by the
window prefilter are never charged).  The scalar/vector engines
reconstruct the Figure-7 abort position instead; benchmarks that rely
on abort accounting should keep using those.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..storage.stats import CPUCounters
from .metrics import Metric

#: Rows/columns of one GEMM tile.  256×256 tiles keep the Gram matrix,
#: the candidate mask and the distance tile inside the L2 cache while
#: still amortising the BLAS call overhead.
DEFAULT_BLOCK = 256

#: ``na*nb*d`` volume above which "auto" switches from the difference-cube
#: ``vector`` engine to the GEMM engine.  Calibrated with
#: ``benchmarks/bench_kernels.py``: the crossover sits near 64×64 points
#: at d = 8; below it the einsum/broadcast path wins on call overhead.
AUTO_MATMUL_VOLUME = 32768

#: Engines a :class:`~repro.core.sequence_join.JoinContext` accepts.
ENGINES = ("scalar", "vector", "matmul", "auto")


def select_engine(engine: str, na: int, nb: int, dimensions: int,
                  metric: Optional[Metric] = None) -> str:
    """Resolve the ``"auto"`` engine choice for one leaf.

    Explicit engine names pass through unchanged (``"matmul"`` with a
    non-Euclidean metric falls back to ``"vector"`` inside
    :func:`pairs_within_matmul` — the Gram identity only holds for L2).
    ``"auto"`` picks GEMM for large Euclidean leaves and the
    difference-cube engine otherwise.
    """
    if engine != "auto":
        return engine
    if metric is not None and metric.name != "euclidean":
        return "vector"
    if na * nb * dimensions >= AUTO_MATMUL_VOLUME:
        return "matmul"
    return "vector"


class ScratchBuffers:
    """Reusable scratch memory for the tiled GEMM kernel.

    One instance lives on the :class:`JoinContext` of a join run, so the
    Gram tile and norm buffers are allocated once and reused by every
    leaf — the kernel's steady-state allocation is only the (small)
    candidate index arrays it returns.
    """

    __slots__ = ("block", "_gram", "_norms_a", "_norms_b")

    def __init__(self, block: int = DEFAULT_BLOCK) -> None:
        if block < 1:
            raise ValueError(f"block must be positive, got {block}")
        self.block = block
        self._gram = np.empty((block, block), dtype=np.float64)
        self._norms_a = np.empty(block, dtype=np.float64)
        self._norms_b = np.empty(block, dtype=np.float64)

    def gram_tile(self, na: int, nb: int) -> np.ndarray:
        """A writable ``na × nb`` view for one Gram tile."""
        if na > self._gram.shape[0] or nb > self._gram.shape[1]:
            self._gram = np.empty((max(na, self._gram.shape[0]),
                                   max(nb, self._gram.shape[1])),
                                  dtype=np.float64)
        return self._gram[:na, :nb]

    def norms(self, points: np.ndarray, which: str) -> np.ndarray:
        """Squared row norms of ``points`` into a reused buffer."""
        n = len(points)
        buf = self._norms_a if which == "a" else self._norms_b
        if n > len(buf):
            buf = np.empty(n, dtype=np.float64)
            if which == "a":
                self._norms_a = buf
            else:
                self._norms_b = buf
        out = buf[:n]
        np.einsum("ij,ij->i", points, points, out=out)
        return out


def candidate_windows(a: np.ndarray, b: np.ndarray, dim: int,
                      cell_width: float
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row candidate ranges ``[lo, hi)`` of ``a`` into ``b``.

    Requires the grid cells of ``b[:, dim]`` (width ``cell_width``) to
    be non-decreasing, which holds for any contiguous slice of an
    EGO-sorted array in its active dimension (every earlier dimension is
    cell-constant across the slice, so the lexicographic order sorts the
    slice by this dimension's cells).  A joining pair satisfies
    ``|p_dim − q_dim| ≤ ε ≤ cell_width``, so its cells differ by at most
    one: the candidates of a point in cell ``c`` are exactly the ``b``
    rows in cells ``c−1 … c+1``, located with two ``searchsorted`` calls.
    """
    cells_b = np.floor(b[:, dim] / cell_width).astype(np.int64)
    cells_a = np.floor(a[:, dim] / cell_width).astype(np.int64)
    lo = np.searchsorted(cells_b, cells_a - 1, side="left")
    hi = np.searchsorted(cells_b, cells_a + 1, side="right")
    return lo.astype(np.intp), hi.astype(np.intp)


def _euclidean_slack(norms_a: np.ndarray, norms_b: np.ndarray,
                     dimensions: int) -> float:
    """Upper bound on the rounding error of the Gram-identity distances.

    The expansion ``‖p‖² + ‖q‖² − 2 p·q`` accumulates roundoff
    proportional to ``(‖p‖ + ‖q‖)²``; candidates within this slack of
    the threshold are re-verified exactly, so the bound only needs to be
    generous, not tight.
    """
    max_a = float(norms_a.max()) if len(norms_a) else 0.0
    max_b = float(norms_b.max()) if len(norms_b) else 0.0
    scale = (np.sqrt(max_a) + np.sqrt(max_b)) ** 2
    eps = np.finfo(np.float64).eps
    return 64.0 * eps * max(dimensions, 1) * max(scale, 1e-300)


def pairs_within_matmul(a: np.ndarray, b: np.ndarray, eps_sq: float,
                        order: np.ndarray,
                        counters: Optional[CPUCounters] = None,
                        upper_triangle: bool = False,
                        return_sq_distances: bool = False,
                        metric: Optional[Metric] = None,
                        windows: Optional[Tuple[np.ndarray,
                                                np.ndarray]] = None,
                        scratch: Optional[ScratchBuffers] = None,
                        block: int = DEFAULT_BLOCK,
                        metrics=None):
    """All index pairs within Euclidean distance, computed with GEMM.

    Drop-in replacement for
    :func:`~repro.core.distance.pairs_within_vector` returning the same
    pair set (and, with ``return_sq_distances``, the same exact squared
    distances — every accept within the rounding slack of the threshold
    is re-verified from exact differences).  ``windows`` is an optional
    ``(lo, hi)`` pair from :func:`candidate_windows` restricting each
    ``a`` row's candidates; ``order`` is accepted for interface parity
    (a dense kernel has no abort position, so the evaluation order is
    irrelevant).

    ``metrics`` is an optional :class:`~repro.obs.metrics.MetricsRegistry`
    counting GEMM tiles and exactly re-verified candidates; ``None``
    (the default) keeps this module free of any observability work.

    Non-Euclidean metrics delegate to the difference-cube engine: the
    Gram identity is specific to L2.
    """
    if metric is not None and metric.name != "euclidean":
        from .distance import pairs_within_vector
        return pairs_within_vector(
            a, b, eps_sq, order, counters=counters,
            upper_triangle=upper_triangle,
            return_sq_distances=return_sq_distances, metric=metric)
    na, nb = len(a), len(b)
    if na == 0 or nb == 0:
        empty = (np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp))
        if return_sq_distances:
            return empty + (np.empty(0, dtype=np.float64),)
        return empty
    if scratch is None:
        scratch = ScratchBuffers(block)
    else:
        block = scratch.block

    norms_a = scratch.norms(a, "a")
    norms_b = scratch.norms(b, "b")
    slack = _euclidean_slack(norms_a, norms_b, a.shape[1])
    lo = hi = None
    if windows is not None:
        lo, hi = windows

    out_a, out_b, out_d = [], [], []
    candidates_evaluated = 0
    gemm_tiles = 0
    reverified = 0
    for i0 in range(0, na, block):
        i1 = min(i0 + block, na)
        # The union of this row block's windows: windows are contiguous
        # in b, so the block only needs the covering range.  (The rows'
        # cells in the window dimension need not be monotone when a and
        # b are different slices, hence min/max over the block.)
        if lo is not None:
            j_start = int(lo[i0:i1].min())
            j_end = int(hi[i0:i1].max())
        else:
            j_start, j_end = 0, nb
        if upper_triangle:
            j_start = max(j_start, i0 + 1)
        if j_start >= j_end:
            continue
        a_blk = a[i0:i1]
        for j0 in range(j_start, j_end, block):
            j1 = min(j0 + block, j_end)
            b_blk = b[j0:j1]
            gram = scratch.gram_tile(i1 - i0, j1 - j0)
            gemm_tiles += 1
            np.matmul(a_blk, b_blk.T, out=gram)
            d2 = (norms_a[i0:i1, None] + norms_b[None, j0:j1]
                  - 2.0 * gram)
            mask = d2 <= eps_sq + slack
            if lo is not None:
                cols = np.arange(j0, j1, dtype=np.intp)
                in_window = ((cols[None, :] >= lo[i0:i1, None])
                             & (cols[None, :] < hi[i0:i1, None]))
                if counters is not None:
                    if upper_triangle:
                        rows = np.arange(i0, i1, dtype=np.intp)
                        candidates_evaluated += int(
                            (in_window
                             & (cols[None, :] > rows[:, None])).sum())
                    else:
                        candidates_evaluated += int(in_window.sum())
                mask &= in_window
            elif counters is not None:
                if upper_triangle:
                    rows = np.arange(i0, i1, dtype=np.intp)
                    cols = np.arange(j0, j1, dtype=np.intp)
                    candidates_evaluated += int(
                        (cols[None, :] > rows[:, None]).sum())
                else:
                    candidates_evaluated += (i1 - i0) * (j1 - j0)
            if upper_triangle:
                rows = np.arange(i0, i1, dtype=np.intp)
                cols = np.arange(j0, j1, dtype=np.intp)
                mask &= cols[None, :] > rows[:, None]
            ci, cj = np.nonzero(mask)
            if len(ci) == 0:
                continue
            # Exact re-verification of the accepts: the Gram identity's
            # rounding must neither admit nor drop boundary pairs, so
            # the final decision (and the reported distance) comes from
            # exact differences of the candidate rows only.
            diffs = a_blk[ci] - b_blk[cj]
            reverified += len(ci)
            exact = np.einsum("ij,ij->i", diffs, diffs)
            keep = exact <= eps_sq
            if not keep.any():
                continue
            out_a.append((ci[keep] + i0).astype(np.intp))
            out_b.append((cj[keep] + j0).astype(np.intp))
            if return_sq_distances:
                out_d.append(exact[keep])
    if counters is not None:
        counters.distance_calculations += candidates_evaluated
        counters.dimension_evaluations += candidates_evaluated * a.shape[1]
    if metrics is not None:
        metrics.counter(
            "ego_gemm_tiles_total",
            "GEMM tiles evaluated by the matmul leaf kernel").inc(gemm_tiles)
        metrics.counter(
            "ego_gemm_reverified_total",
            "Borderline GEMM accepts re-verified with exact differences",
        ).inc(reverified)
    if out_a:
        ia = np.concatenate(out_a)
        ib = np.concatenate(out_b)
    else:
        ia = np.empty(0, dtype=np.intp)
        ib = np.empty(0, dtype=np.intp)
    if return_sq_distances:
        dist = (np.concatenate(out_d) if out_d
                else np.empty(0, dtype=np.float64))
        return ia, ib, dist
    return ia, ib
