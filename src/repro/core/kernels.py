"""High-throughput leaf kernels for the similarity join.

Section 4.2 observes that the final point-distance tests dominate the
CPU cost of the EGO join.  The ``vector`` engine in
:mod:`repro.core.distance` materialises a full ``na × nb × d``
difference cube per leaf; for the leaf sizes where numpy batching pays
off, that cube is both the memory and the time bottleneck.  This module
provides a BLAS-bound alternative:

* :func:`pairs_within_matmul` — squared Euclidean distances via the
  Gram identity ``‖p − q‖² = ‖p‖² + ‖q‖² − 2·(p·q)``, evaluated
  blockwise with GEMM so peak memory is one ``block × block`` tile
  instead of the full cube.  Borderline accepts (within a rounding
  slack of the threshold) are re-verified with exact differences, so
  the reported pair set and distances match the reference engines.
* :func:`candidate_windows` — an EGO-sorted candidate-window prefilter:
  ``searchsorted`` on the grid cells of one monotone dimension bounds
  each point's candidate range to the ±1-cell band that can contain
  join mates, shrinking the GEMM tiles before any arithmetic happens.
* :class:`ScratchBuffers` — reusable per-join scratch for the Gram
  tiles, norms and masks, so steady-state leaf joins allocate nothing
  proportional to ``block²``.
* :func:`select_engine` — the ``"auto"`` heuristic mapping leaf shape
  and metric to the fastest engine.

Counter semantics: the dense kernel has no early abort, so with
``counters`` it charges one distance calculation and ``d`` dimension
evaluations per candidate it evaluates (candidates excluded by the
window prefilter are never charged).  The scalar/vector engines
reconstruct the Figure-7 abort position instead; benchmarks that rely
on abort accounting should keep using those.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..storage.stats import CPUCounters
from .ego_order import floor_cells
from .metrics import Metric

#: Rows/columns of one GEMM tile.  256×256 tiles keep the Gram matrix,
#: the candidate mask and the distance tile inside the L2 cache while
#: still amortising the BLAS call overhead.
DEFAULT_BLOCK = 256

#: ``na*nb*d`` volume above which "auto" switches from the difference-cube
#: ``vector`` engine to the GEMM engine.  Calibrated with
#: ``benchmarks/bench_kernels.py``: the crossover sits near 64×64 points
#: at d = 8; below it the einsum/broadcast path wins on call overhead.
AUTO_MATMUL_VOLUME = 32768

#: Flush a :class:`LeafBatch` once its stacked blocks hold this many rows.
#: Large enough that one flush amortises the per-leaf Python dispatch over
#: dozens of ``minlen``-sized leaves, small enough that the stacked tiles
#: and candidate masks stay cache-resident.
DEFAULT_BATCH_POINTS = 4096

#: ...or this many leaf pairs, whichever comes first.
DEFAULT_BATCH_LEAVES = 256

#: Engines a :class:`~repro.core.sequence_join.JoinContext` accepts.
ENGINES = ("scalar", "vector", "matmul", "batched", "auto")


def select_engine(engine: str, na: int, nb: int, dimensions: int,
                  metric: Optional[Metric] = None,
                  batching: bool = False) -> str:
    """Resolve the ``"auto"`` engine choice for one leaf.

    Explicit engine names pass through unchanged (``"matmul"`` with a
    non-Euclidean metric falls back to ``"vector"`` inside
    :func:`pairs_within_matmul` — the Gram identity only holds for L2,
    and ``"batched"`` resolves to ``"vector"`` for the same reason).
    ``"auto"`` picks GEMM for large Euclidean leaves and the
    difference-cube engine otherwise; when the caller can accumulate a
    :class:`LeafBatch` (``batching=True``) the small Euclidean leaves
    that used to fall back to ``"vector"`` go to ``"batched"`` instead —
    below the GEMM crossover the bottleneck is per-leaf dispatch, which
    is exactly what batching amortises.
    """
    if engine == "batched":
        if metric is not None and metric.name != "euclidean":
            return "vector"
        return "batched"
    if engine != "auto":
        return engine
    if metric is not None and metric.name != "euclidean":
        return "vector"
    if na * nb * dimensions >= AUTO_MATMUL_VOLUME:
        return "matmul"
    return "batched" if batching else "vector"


class ScratchBuffers:
    """Reusable scratch memory for the tiled GEMM kernel.

    One instance lives on the :class:`JoinContext` of a join run, so the
    Gram tile and norm buffers are allocated once and reused by every
    leaf — the kernel's steady-state allocation is only the (small)
    candidate index arrays it returns.
    """

    __slots__ = ("block", "_gram", "_norms_a", "_norms_b")

    def __init__(self, block: int = DEFAULT_BLOCK) -> None:
        if block < 1:
            raise ValueError(f"block must be positive, got {block}")
        self.block = block
        self._gram = np.empty((block, block), dtype=np.float64)
        self._norms_a = np.empty(block, dtype=np.float64)
        self._norms_b = np.empty(block, dtype=np.float64)

    def gram_tile(self, na: int, nb: int) -> np.ndarray:
        """A writable ``na × nb`` view for one Gram tile."""
        if na > self._gram.shape[0] or nb > self._gram.shape[1]:
            self._gram = np.empty((max(na, self._gram.shape[0]),
                                   max(nb, self._gram.shape[1])),
                                  dtype=np.float64)
        return self._gram[:na, :nb]

    def norms(self, points: np.ndarray, which: str) -> np.ndarray:
        """Squared row norms of ``points`` into a reused buffer.

        The returned view is valid until the *next* ``norms`` call with
        the same ``which``; the ``"a"`` and ``"b"`` slots are backed by
        separate buffers, so growing one never moves (or aliases) a view
        handed out for the other.  A stale view from a previous call
        with the same slot keeps its old backing memory alive — it stays
        readable but no longer tracks the buffer, which is why every
        kernel in this module takes both norms before touching either.
        """
        if which not in ("a", "b"):
            raise ValueError(f"which must be 'a' or 'b', got {which!r}")
        n = len(points)
        buf = self._norms_a if which == "a" else self._norms_b
        if n > len(buf):
            buf = np.empty(n, dtype=np.float64)
            if which == "a":
                self._norms_a = buf
            else:
                self._norms_b = buf
        out = buf[:n]
        np.einsum("ij,ij->i", points, points, out=out)
        return out


def candidate_windows(a: np.ndarray, b: np.ndarray, dim: int,
                      cell_width: float
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row candidate ranges ``[lo, hi)`` of ``a`` into ``b``.

    Requires the grid cells of ``b[:, dim]`` (width ``cell_width``) to
    be non-decreasing, which holds for any contiguous slice of an
    EGO-sorted array in its active dimension (every earlier dimension is
    cell-constant across the slice, so the lexicographic order sorts the
    slice by this dimension's cells).  A joining pair satisfies
    ``|p_dim − q_dim| ≤ ε ≤ cell_width``, so its cells differ by at most
    one: the candidates of a point in cell ``c`` are exactly the ``b``
    rows in cells ``c−1 … c+1``, located with two ``searchsorted`` calls.

    Cells come from the same rounding-safe
    :func:`~repro.core.ego_order.floor_cells` as the grid order itself
    (a raw ``np.floor(x / w)`` can place a boundary coordinate one cell
    high for negative or large-magnitude data, silently disagreeing with
    the cells the sort used).
    """
    cells_b = floor_cells(b[:, dim], cell_width)
    cells_a = floor_cells(a[:, dim], cell_width)
    lo = np.searchsorted(cells_b, cells_a - 1, side="left")
    hi = np.searchsorted(cells_b, cells_a + 1, side="right")
    return lo.astype(np.intp), hi.astype(np.intp)


def _euclidean_slack(norms_a: np.ndarray, norms_b: np.ndarray,
                     dimensions: int) -> float:
    """Upper bound on the rounding error of the Gram-identity distances.

    The expansion ``‖p‖² + ‖q‖² − 2 p·q`` accumulates roundoff
    proportional to ``(‖p‖ + ‖q‖)²``; candidates within this slack of
    the threshold are re-verified exactly, so the bound only needs to be
    generous, not tight.  Callers feed *centered* norms (blocks shifted
    by their joint mean — distances are translation-invariant), so the
    scale here is the blocks' spread, not their distance from the
    origin; the margin also covers the rounding of the centering
    subtraction itself, which is of the same (centered) order.
    """
    max_a = float(norms_a.max()) if len(norms_a) else 0.0
    max_b = float(norms_b.max()) if len(norms_b) else 0.0
    scale = (np.sqrt(max_a) + np.sqrt(max_b)) ** 2
    eps = np.finfo(np.float64).eps
    return 64.0 * eps * max(dimensions, 1) * max(scale, 1e-300)


def pairs_within_matmul(a: np.ndarray, b: np.ndarray, eps_sq: float,
                        order: np.ndarray,
                        counters: Optional[CPUCounters] = None,
                        upper_triangle: bool = False,
                        return_sq_distances: bool = False,
                        metric: Optional[Metric] = None,
                        windows: Optional[Tuple[np.ndarray,
                                                np.ndarray]] = None,
                        scratch: Optional[ScratchBuffers] = None,
                        block: int = DEFAULT_BLOCK,
                        metrics=None):
    """All index pairs within Euclidean distance, computed with GEMM.

    Drop-in replacement for
    :func:`~repro.core.distance.pairs_within_vector` returning the same
    pair set (and, with ``return_sq_distances``, the same exact squared
    distances — every accept within the rounding slack of the threshold
    is re-verified from exact differences).  ``windows`` is an optional
    ``(lo, hi)`` pair from :func:`candidate_windows` restricting each
    ``a`` row's candidates; ``order`` is accepted for interface parity
    (a dense kernel has no abort position, so the evaluation order is
    irrelevant).

    ``metrics`` is an optional :class:`~repro.obs.metrics.MetricsRegistry`
    counting GEMM tiles and exactly re-verified candidates; ``None``
    (the default) keeps this module free of any observability work.

    Non-Euclidean metrics delegate to the difference-cube engine: the
    Gram identity is specific to L2.
    """
    if metric is not None and metric.name != "euclidean":
        from .distance import pairs_within_vector
        return pairs_within_vector(
            a, b, eps_sq, order, counters=counters,
            upper_triangle=upper_triangle,
            return_sq_distances=return_sq_distances, metric=metric)
    na, nb = len(a), len(b)
    if na == 0 or nb == 0:
        empty = (np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp))
        if return_sq_distances:
            return empty + (np.empty(0, dtype=np.float64),)
        return empty
    if scratch is None:
        scratch = ScratchBuffers(block)
    else:
        block = scratch.block

    # Center the block pair before the Gram expansion: distances are
    # translation-invariant, but the expansion's roundoff is not — for
    # data far from the origin the raw norms would force nearly every
    # candidate through exact re-verification.  The exact re-check below
    # still reads the *original* rows, so boundary decisions (and the
    # reported distances) stay bit-identical to the reference engines.
    a0, b0 = a, b
    center = 0.5 * (a.mean(axis=0) + b.mean(axis=0))
    a = a - center
    b = b - center

    norms_a = scratch.norms(a, "a")
    norms_b = scratch.norms(b, "b")
    slack = _euclidean_slack(norms_a, norms_b, a.shape[1])
    lo = hi = None
    if windows is not None:
        lo, hi = windows

    out_a, out_b, out_d = [], [], []
    candidates_evaluated = 0
    gemm_tiles = 0
    reverified = 0
    for i0 in range(0, na, block):
        i1 = min(i0 + block, na)
        # The union of this row block's windows: windows are contiguous
        # in b, so the block only needs the covering range.  (The rows'
        # cells in the window dimension need not be monotone when a and
        # b are different slices, hence min/max over the block.)
        if lo is not None:
            j_start = int(lo[i0:i1].min())
            j_end = int(hi[i0:i1].max())
        else:
            j_start, j_end = 0, nb
        if upper_triangle:
            j_start = max(j_start, i0 + 1)
        if j_start >= j_end:
            continue
        a_blk = a[i0:i1]
        for j0 in range(j_start, j_end, block):
            j1 = min(j0 + block, j_end)
            b_blk = b[j0:j1]
            gram = scratch.gram_tile(i1 - i0, j1 - j0)
            gemm_tiles += 1
            np.matmul(a_blk, b_blk.T, out=gram)
            d2 = (norms_a[i0:i1, None] + norms_b[None, j0:j1]
                  - 2.0 * gram)
            mask = d2 <= eps_sq + slack
            if lo is not None:
                cols = np.arange(j0, j1, dtype=np.intp)
                in_window = ((cols[None, :] >= lo[i0:i1, None])
                             & (cols[None, :] < hi[i0:i1, None]))
                if counters is not None:
                    if upper_triangle:
                        rows = np.arange(i0, i1, dtype=np.intp)
                        candidates_evaluated += int(
                            (in_window
                             & (cols[None, :] > rows[:, None])).sum())
                    else:
                        candidates_evaluated += int(in_window.sum())
                mask &= in_window
            elif counters is not None:
                if upper_triangle:
                    rows = np.arange(i0, i1, dtype=np.intp)
                    cols = np.arange(j0, j1, dtype=np.intp)
                    candidates_evaluated += int(
                        (cols[None, :] > rows[:, None]).sum())
                else:
                    candidates_evaluated += (i1 - i0) * (j1 - j0)
            if upper_triangle:
                rows = np.arange(i0, i1, dtype=np.intp)
                cols = np.arange(j0, j1, dtype=np.intp)
                mask &= cols[None, :] > rows[:, None]
            ci, cj = np.nonzero(mask)
            if len(ci) == 0:
                continue
            # Exact re-verification of the accepts: the Gram identity's
            # rounding must neither admit nor drop boundary pairs, so
            # the final decision (and the reported distance) comes from
            # exact differences of the original (uncentered) rows only.
            diffs = a0[i0:i1][ci] - b0[j0:j1][cj]
            reverified += len(ci)
            exact = np.einsum("ij,ij->i", diffs, diffs)
            keep = exact <= eps_sq
            if not keep.any():
                continue
            out_a.append((ci[keep] + i0).astype(np.intp))
            out_b.append((cj[keep] + j0).astype(np.intp))
            if return_sq_distances:
                out_d.append(exact[keep])
    if counters is not None:
        counters.distance_calculations += candidates_evaluated
        counters.dimension_evaluations += candidates_evaluated * a.shape[1]
    if metrics is not None:
        metrics.counter(
            "ego_gemm_tiles_total",
            "GEMM tiles evaluated by the matmul leaf kernel").inc(gemm_tiles)
        metrics.counter(
            "ego_gemm_reverified_total",
            "Borderline GEMM accepts re-verified with exact differences",
        ).inc(reverified)
    if out_a:
        ia = np.concatenate(out_a)
        ib = np.concatenate(out_b)
    else:
        ia = np.empty(0, dtype=np.intp)
        ib = np.empty(0, dtype=np.intp)
    if return_sq_distances:
        dist = (np.concatenate(out_d) if out_d
                else np.empty(0, dtype=np.float64))
        return ia, ib, dist
    return ia, ib


class LeafBatch:
    """Accumulator of leaf-pair candidate blocks for the batched engine.

    The sequence join appends each leaf pair's point blocks (plus their
    candidate windows and triangle flag) instead of dispatching a kernel
    per pair; once :attr:`full`, :func:`pairs_within_batched` evaluates
    every accumulated pair with one fused, tiled GEMM over the stacked
    blocks.  The batch stores raw arrays and opaque ``payloads`` only —
    this stacked-block interface is the seam a CuPy/torch array-module
    backend plugs into.
    """

    __slots__ = ("max_points", "max_leaves", "blocks_a", "blocks_b",
                 "windows", "upper", "payloads", "points")

    def __init__(self, max_points: int = DEFAULT_BATCH_POINTS,
                 max_leaves: int = DEFAULT_BATCH_LEAVES) -> None:
        if max_points < 1:
            raise ValueError(f"max_points must be positive, got {max_points}")
        if max_leaves < 1:
            raise ValueError(f"max_leaves must be positive, got {max_leaves}")
        self.max_points = int(max_points)
        self.max_leaves = int(max_leaves)
        self.blocks_a = []
        self.blocks_b = []
        self.windows = []
        self.upper = []
        self.payloads = []
        self.points = 0

    def __len__(self) -> int:
        return len(self.blocks_a)

    @property
    def full(self) -> bool:
        """True once the batch should be flushed."""
        return (self.points >= self.max_points
                or len(self.blocks_a) >= self.max_leaves)

    def add(self, a: np.ndarray, b: np.ndarray,
            windows: Optional[Tuple[np.ndarray, np.ndarray]],
            upper_triangle: bool, payload=None) -> None:
        """Append one leaf pair's blocks (kept by reference, not copied)."""
        self.blocks_a.append(a)
        self.blocks_b.append(b)
        self.windows.append(windows)
        self.upper.append(bool(upper_triangle))
        self.payloads.append(payload)
        self.points += len(a) + len(b)

    def clear(self) -> None:
        """Drop all accumulated blocks."""
        self.blocks_a.clear()
        self.blocks_b.clear()
        self.windows.clear()
        self.upper.clear()
        self.payloads.clear()
        self.points = 0


def pairs_within_batched(batch: LeafBatch, eps_sq: float,
                         counters: Optional[CPUCounters] = None,
                         return_sq_distances: bool = False,
                         scratch: Optional[ScratchBuffers] = None,
                         block: int = DEFAULT_BLOCK,
                         metrics=None):
    """Evaluate every leaf pair in ``batch`` with one fused, tiled GEMM.

    The stacked ``a`` blocks form the row space and the stacked ``b``
    blocks the column space of a single Gram evaluation; each global
    ``a`` row carries a contiguous candidate range ``[low, high)`` into
    the stacked columns that simultaneously encodes which entry the row
    belongs to, its candidate window and (for self-pairs) the
    upper-triangle constraint, so the tile loop is structurally the one
    from :func:`pairs_within_matmul`.  All near-threshold accepts across
    the whole batch are re-verified in one vectorized pass from the
    original rows, then scattered back per leaf pair in deterministic
    row-major order — the per-pair results (and distances) are exactly
    those of the per-leaf engines.

    Returns a list with one ``(ia, ib)`` (or ``(ia, ib, sq_distances)``)
    tuple per batch entry, in insertion order.
    """
    entries = len(batch)
    if entries == 0:
        return []
    if scratch is None:
        scratch = ScratchBuffers(block)
    else:
        block = scratch.block

    na_sizes = np.array([len(blk) for blk in batch.blocks_a], dtype=np.intp)
    nb_sizes = np.array([len(blk) for blk in batch.blocks_b], dtype=np.intp)
    a_off = np.zeros(entries + 1, dtype=np.intp)
    b_off = np.zeros(entries + 1, dtype=np.intp)
    np.cumsum(na_sizes, out=a_off[1:])
    np.cumsum(nb_sizes, out=b_off[1:])
    total_a, total_b = int(a_off[-1]), int(b_off[-1])
    dims = batch.blocks_a[0].shape[1]

    def _empty():
        return (np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp))

    if total_a == 0 or total_b == 0:
        out = []
        for _ in range(entries):
            ia, ib = _empty()
            out.append((ia, ib, np.empty(0, dtype=np.float64))
                       if return_sq_distances else (ia, ib))
        return out

    # Stack the blocks, centering each pair by its joint mean (see
    # pairs_within_matmul) so the slack reflects spread, not magnitude.
    # The original stacks feed the exact re-verification.
    stack_a0 = np.concatenate(batch.blocks_a) if entries > 1 \
        else np.asarray(batch.blocks_a[0])
    stack_b0 = np.concatenate(batch.blocks_b) if entries > 1 \
        else np.asarray(batch.blocks_b[0])
    stack_a = np.empty_like(stack_a0)
    stack_b = np.empty_like(stack_b0)
    low = np.empty(total_a, dtype=np.intp)
    high = np.empty(total_a, dtype=np.intp)
    for e in range(entries):
        blk_a, blk_b = batch.blocks_a[e], batch.blocks_b[e]
        sa, sb = a_off[e], b_off[e]
        if len(blk_a) and len(blk_b):
            center = 0.5 * (blk_a.mean(axis=0) + blk_b.mean(axis=0))
        else:
            center = 0.0
        stack_a[sa:sa + len(blk_a)] = blk_a - center
        stack_b[sb:sb + len(blk_b)] = blk_b - center
        win = batch.windows[e]
        if win is not None:
            low[sa:sa + len(blk_a)] = sb + win[0]
            high[sa:sa + len(blk_a)] = sb + win[1]
        else:
            low[sa:sa + len(blk_a)] = sb
            high[sa:sa + len(blk_a)] = sb + len(blk_b)
        if batch.upper[e]:
            np.maximum(low[sa:sa + len(blk_a)],
                       sb + np.arange(1, len(blk_a) + 1, dtype=np.intp),
                       out=low[sa:sa + len(blk_a)])

    norms_a = scratch.norms(stack_a, "a")
    norms_b = scratch.norms(stack_b, "b")
    slack = _euclidean_slack(norms_a, norms_b, dims)

    rows_out, cols_out = [], []
    candidates_evaluated = 0
    gemm_tiles = 0
    for i0 in range(0, total_a, block):
        i1 = min(i0 + block, total_a)
        j_start = int(low[i0:i1].min())
        j_end = int(high[i0:i1].max())
        if j_start >= j_end:
            continue
        a_blk = stack_a[i0:i1]
        lo_blk = low[i0:i1, None]
        hi_blk = high[i0:i1, None]
        for j0 in range(j_start, j_end, block):
            j1 = min(j0 + block, j_end)
            gram = scratch.gram_tile(i1 - i0, j1 - j0)
            gemm_tiles += 1
            np.matmul(a_blk, stack_b[j0:j1].T, out=gram)
            d2 = (norms_a[i0:i1, None] + norms_b[None, j0:j1]
                  - 2.0 * gram)
            cols = np.arange(j0, j1, dtype=np.intp)
            in_range = (cols[None, :] >= lo_blk) & (cols[None, :] < hi_blk)
            if counters is not None:
                candidates_evaluated += int(in_range.sum())
            mask = (d2 <= eps_sq + slack) & in_range
            ci, cj = np.nonzero(mask)
            if len(ci):
                rows_out.append((ci + i0).astype(np.intp))
                cols_out.append((cj + j0).astype(np.intp))

    if rows_out:
        rows = np.concatenate(rows_out)
        cols = np.concatenate(cols_out)
        # One deterministic row-major order across the batch: rows of an
        # entry are contiguous, so per-entry segments come out sorted
        # exactly like the per-leaf engines emit them.
        order = np.lexsort((cols, rows))
        rows = rows[order]
        cols = cols[order]
        # Single vectorized exact re-verification pass over all
        # near-threshold candidates, from the original (uncentered) rows.
        diffs = stack_a0[rows] - stack_b0[cols]
        exact = np.einsum("ij,ij->i", diffs, diffs)
        keep = exact <= eps_sq
        reverified = len(rows)
        rows, cols, exact = rows[keep], cols[keep], exact[keep]
    else:
        rows = cols = np.empty(0, dtype=np.intp)
        exact = np.empty(0, dtype=np.float64)
        reverified = 0

    if counters is not None:
        counters.distance_calculations += candidates_evaluated
        counters.dimension_evaluations += candidates_evaluated * dims
    if metrics is not None:
        metrics.counter(
            "ego_gemm_tiles_total",
            "GEMM tiles evaluated by the matmul leaf kernel").inc(gemm_tiles)
        metrics.counter(
            "ego_gemm_reverified_total",
            "Borderline GEMM accepts re-verified with exact differences",
        ).inc(reverified)
        metrics.counter(
            "ego_kernel_batches_total",
            "LeafBatch flushes evaluated by the batched engine").inc()
        metrics.histogram(
            "ego_kernel_batch_leaves",
            "Leaf pairs per batched-kernel flush").observe(entries)
        metrics.histogram(
            "ego_kernel_batch_points",
            "Stacked rows per batched-kernel flush").observe(batch.points)

    starts = np.searchsorted(rows, a_off[:-1], side="left")
    ends = np.searchsorted(rows, a_off[1:], side="left")
    results = []
    for e in range(entries):
        s, t = int(starts[e]), int(ends[e])
        ia = rows[s:t] - a_off[e]
        ib = cols[s:t] - b_off[e]
        if return_sq_distances:
            results.append((ia, ib, exact[s:t]))
        else:
            results.append((ia, ib))
    return results
