"""Z-order (Morton) encoding of integer grid coordinates.

Used by the Z-Order-RSJ competitor (page scheduling by the Z-order of
page centres, following [HJR 97]) and as a bulk-loading sort order.

Keys are produced both as arbitrary-precision Python integers (scalar
reference implementation) and as fixed chunks of int64 *key columns*
whose lexicographic order equals the numeric Morton order — the form the
external sort and ``np.lexsort`` consume.
"""

from __future__ import annotations

import numpy as np


def morton_encode(coords, bits_per_dim: int) -> int:
    """Interleave the bits of non-negative integer ``coords``.

    Dimension 0 contributes the most significant bit of every group, so
    lower Z-values come first along dimension 0, matching the EGO
    convention of dimension 0 carrying the highest weight.
    """
    if bits_per_dim <= 0:
        raise ValueError("bits_per_dim must be positive")
    code = 0
    d = len(coords)
    for bit in range(bits_per_dim - 1, -1, -1):
        for dim in range(d):
            c = int(coords[dim])
            if c < 0:
                raise ValueError("morton_encode requires non-negative coords")
            if c >> bits_per_dim:
                raise ValueError(
                    f"coordinate {c} does not fit in {bits_per_dim} bits")
            code = (code << 1) | ((c >> bit) & 1)
    return code


def morton_decode(code: int, dimensions: int, bits_per_dim: int) -> np.ndarray:
    """Inverse of :func:`morton_encode`."""
    coords = np.zeros(dimensions, dtype=np.int64)
    pos = dimensions * bits_per_dim
    for bit in range(bits_per_dim - 1, -1, -1):
        for dim in range(dimensions):
            pos -= 1
            coords[dim] |= ((code >> pos) & 1) << bit
    return coords


def _interleaved_bits(cells: np.ndarray, bits_per_dim: int) -> np.ndarray:
    """Boolean matrix ``(n, d*b)`` of interleaved bits, most significant first."""
    cells = np.asarray(cells, dtype=np.int64)
    if cells.ndim != 2:
        raise ValueError(f"cells must be 2-dimensional, got shape {cells.shape}")
    if (cells < 0).any():
        raise ValueError("Z-order keys require non-negative cell coordinates")
    if bits_per_dim > 0 and (cells >> bits_per_dim).any():
        raise ValueError(
            f"some coordinates do not fit in {bits_per_dim} bits")
    n, d = cells.shape
    out = np.empty((n, d * bits_per_dim), dtype=bool)
    col = 0
    for bit in range(bits_per_dim - 1, -1, -1):
        for dim in range(d):
            out[:, col] = (cells[:, dim] >> bit) & 1
            col += 1
    return out


def morton_key_columns(cells: np.ndarray, bits_per_dim: int = 16) -> np.ndarray:
    """Morton keys of a cell batch as lexicographically ordered int64 columns.

    The interleaved bit string of each row is packed, 63 bits at a time,
    into ``ceil(d*b / 63)`` non-negative int64 columns; comparing rows of
    the result lexicographically is equivalent to comparing the full
    Morton codes numerically.
    """
    bits = _interleaved_bits(cells, bits_per_dim)
    n, total = bits.shape
    n_cols = -(-total // 63)
    keys = np.zeros((n, n_cols), dtype=np.int64)
    for col in range(n_cols):
        chunk = bits[:, col * 63:(col + 1) * 63]
        value = np.zeros(n, dtype=np.int64)
        for j in range(chunk.shape[1]):
            value = (value << 1) | chunk[:, j]
        # Left-align the final partial chunk so column comparison stays
        # consistent with full-width chunks.
        pad = 63 - chunk.shape[1]
        keys[:, col] = value << pad
    return keys


def normalize_cells(cells: np.ndarray) -> np.ndarray:
    """Shift cell coordinates so the minimum per dimension is zero.

    Space-filling-curve keys require non-negative coordinates; a constant
    per-dimension shift does not change any relative order.
    """
    cells = np.asarray(cells, dtype=np.int64)
    if len(cells) == 0:
        return cells
    return cells - cells.min(axis=0, keepdims=True)


def required_bits(cells: np.ndarray) -> int:
    """Smallest bit width that represents every (non-negative) coordinate."""
    cells = np.asarray(cells, dtype=np.int64)
    if len(cells) == 0 or cells.max() <= 0:
        return 1
    return int(cells.max()).bit_length()
