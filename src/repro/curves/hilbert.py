"""d-dimensional Hilbert curve encoding (Skilling's transform).

The Size Separation Spatial Join and the Multidimensional Spatial Join
[KS 97, KS 98a] order points by Hilbert value; the curve is provided here
both to support that ordering as a sort key and as an alternative
bulk-loading order for the R-tree competitors.

Implementation follows J. Skilling, "Programming the Hilbert curve",
AIP Conf. Proc. 707 (2004): coordinates are mapped to the *transpose*
form, whose bit interleaving is the Hilbert index.  A scalar reference
and a batch-vectorised variant are provided; they are property-tested
against each other and against the curve axioms (bijectivity, unit steps
between consecutive indices).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _axes_to_transpose(x: np.ndarray, bits: int) -> np.ndarray:
    """Skilling transform of one coordinate vector (in place, returns it)."""
    d = len(x)
    m = 1 << (bits - 1)
    q = m
    while q > 1:
        p = q - 1
        for i in range(d):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1
    for i in range(1, d):
        x[i] ^= x[i - 1]
    t = 0
    q = m
    while q > 1:
        if x[d - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(d):
        x[i] ^= t
    return x


def _transpose_to_axes(x: np.ndarray, bits: int) -> np.ndarray:
    """Inverse Skilling transform of one transpose vector (in place)."""
    d = len(x)
    n = 2 << (bits - 1)
    t = x[d - 1] >> 1
    for i in range(d - 1, 0, -1):
        x[i] ^= x[i - 1]
    x[0] ^= t
    q = 2
    while q != n:
        p = q - 1
        for i in range(d - 1, -1, -1):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q <<= 1
    return x


def _check_coords(coords: np.ndarray, bits: int) -> np.ndarray:
    coords = np.array(coords, dtype=np.int64)
    if bits <= 0:
        raise ValueError("bits must be positive")
    if (coords < 0).any():
        raise ValueError("Hilbert encoding requires non-negative coordinates")
    if (coords >> bits).any():
        raise ValueError(f"some coordinates do not fit in {bits} bits")
    return coords


def hilbert_encode(coords: Sequence[int], bits: int) -> int:
    """Hilbert index of one coordinate vector (``bits`` per dimension)."""
    x = _check_coords(coords, bits)
    d = len(x)
    transpose = _axes_to_transpose(x.copy(), bits)
    code = 0
    for bit in range(bits - 1, -1, -1):
        for dim in range(d):
            code = (code << 1) | ((int(transpose[dim]) >> bit) & 1)
    return code


def hilbert_decode(code: int, dimensions: int, bits: int) -> np.ndarray:
    """Coordinate vector of one Hilbert index."""
    transpose = np.zeros(dimensions, dtype=np.int64)
    pos = dimensions * bits
    for bit in range(bits - 1, -1, -1):
        for dim in range(dimensions):
            pos -= 1
            transpose[dim] |= ((code >> pos) & 1) << bit
    return _transpose_to_axes(transpose, bits)


def hilbert_transpose_batch(cells: np.ndarray, bits: int) -> np.ndarray:
    """Vectorised Skilling transform of a batch of coordinate vectors.

    Returns the transpose form ``(n, d)``; interleaving its bits (done by
    :func:`hilbert_key_columns`) yields the Hilbert index of each row.
    """
    x = _check_coords(cells, bits)
    if x.ndim != 2:
        raise ValueError(f"cells must be 2-dimensional, got shape {cells.shape}")
    x = x.copy()
    n, d = x.shape
    m = np.int64(1) << (bits - 1)
    q = int(m)
    while q > 1:
        p = np.int64(q - 1)
        for i in range(d):
            hi = (x[:, i] & q) != 0
            x[hi, 0] ^= p
            lo = ~hi
            t = (x[lo, 0] ^ x[lo, i]) & p
            x[lo, 0] ^= t
            x[lo, i] ^= t
        q >>= 1
    for i in range(1, d):
        x[:, i] ^= x[:, i - 1]
    t = np.zeros(n, dtype=np.int64)
    q = int(m)
    while q > 1:
        mask = (x[:, d - 1] & q) != 0
        t[mask] ^= np.int64(q - 1)
        q >>= 1
    x ^= t[:, None]
    return x


def hilbert_key_columns(cells: np.ndarray, bits: int = 16) -> np.ndarray:
    """Hilbert keys of a cell batch as lexicographic int64 columns.

    Same packing convention as
    :func:`repro.curves.zorder.morton_key_columns`.
    """
    from .zorder import _interleaved_bits
    transpose = hilbert_transpose_batch(cells, bits)
    bits_matrix = _interleaved_bits(transpose, bits)
    n, total = bits_matrix.shape
    n_cols = -(-total // 63)
    keys = np.zeros((n, n_cols), dtype=np.int64)
    for col in range(n_cols):
        chunk = bits_matrix[:, col * 63:(col + 1) * 63]
        value = np.zeros(n, dtype=np.int64)
        for j in range(chunk.shape[1]):
            value = (value << 1) | chunk[:, j]
        keys[:, col] = value << (63 - chunk.shape[1])
    return keys
