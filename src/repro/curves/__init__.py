"""Space-filling curves: Z-order (Morton) and Hilbert encodings."""

from .hilbert import (hilbert_decode, hilbert_encode, hilbert_key_columns,
                      hilbert_transpose_batch)
from .zorder import (morton_decode, morton_encode, morton_key_columns,
                     normalize_cells, required_bits)

__all__ = [
    "hilbert_decode",
    "hilbert_encode",
    "hilbert_key_columns",
    "hilbert_transpose_batch",
    "morton_decode",
    "morton_encode",
    "morton_key_columns",
    "normalize_cells",
    "required_bits",
]
