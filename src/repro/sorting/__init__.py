"""External sorting of point files."""

from .external_sort import KeyFunction, SortStats, external_sort

__all__ = ["KeyFunction", "SortStats", "external_sort"]
