"""Run generation strategies for the external merge sort.

The straightforward strategy sorts one memory-load at a time, producing
runs of exactly the working-memory size.  *Replacement selection* — the
classic tournament alternative — keeps a heap of the working set and
emits the smallest key that still extends the current run, replacing it
with the next input record; on random input the expected run length is
**twice** the memory (E. H. Friend / Knuth TAOCP vol. 3), halving the
number of runs the merge phase must handle.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

import numpy as np

from ..storage.pagefile import PointFile, SequentialReader


def replacement_selection_runs(input_file: PointFile,
                               key_of_batch, memory_records: int,
                               run_writer_factory,
                               read_buffer_records: int = 1024
                               ) -> List[int]:
    """Generate sorted runs by replacement selection.

    Parameters
    ----------
    input_file:
        The unsorted input.
    key_of_batch:
        Vectorised key function (same contract as the external sort's).
    memory_records:
        Size of the in-memory tournament.
    run_writer_factory:
        Zero-argument callable returning a fresh
        :class:`~repro.storage.pagefile.SequentialWriter` for each run.

    Returns the lengths of the generated runs.
    """
    if memory_records < 2:
        raise ValueError("memory_records must be at least 2")
    reader = SequentialReader(input_file,
                              buffer_records=read_buffer_records)

    def keyed(record):
        rec_id, point = record
        keys = key_of_batch(point[None, :])
        if keys.ndim == 1:
            keys = keys[:, None]
        return tuple(keys[0].tolist()), rec_id, point

    # current-run heap entries: (key, id, point); "next-run" records are
    # buffered aside until the current run closes.
    heap: List[Tuple] = []
    while len(heap) < memory_records and not reader.exhausted():
        heap.append(keyed(reader.pop()))
    heapq.heapify(heap)

    run_lengths: List[int] = []
    next_run: List[Tuple] = []
    writer = None
    run_len = 0
    last_key = None

    def open_run():
        nonlocal writer, run_len, last_key
        writer = run_writer_factory()
        run_len = 0
        last_key = None

    open_run()
    while heap or next_run:
        if not heap:
            # Current run exhausted; the set-aside records start the next.
            writer.flush()
            run_lengths.append(run_len)
            heap = next_run
            heapq.heapify(heap)
            next_run = []
            open_run()
            continue
        key, rec_id, point = heapq.heappop(heap)
        writer.write(np.array([rec_id], dtype=np.int64), point[None, :])
        run_len += 1
        last_key = (key, rec_id)
        if not reader.exhausted():
            candidate = keyed(reader.pop())
            if (candidate[0], candidate[1]) >= last_key:
                heapq.heappush(heap, candidate)
            else:
                next_run.append(candidate)
    writer.flush()
    if run_len:
        run_lengths.append(run_len)
    return run_lengths
