"""External merge sort of point files (Section 5: "the sorting phase …
implemented as a mergesort algorithm on secondary storage").

The sort is parameterised by a vectorised key function mapping a batch of
points to integer key columns, so the same machinery sorts by the epsilon
grid order (EGO join), by Z-order (bulk-loading the R-tree competitors)
or by Hilbert value.

Phases:

1. **Run generation** — read the input in memory-sized chunks, sort each
   chunk with ``np.lexsort`` on its key columns (ties broken by point id)
   and write it as a sorted run to the scratch disk.
2. **Merging** — k-way merge with a heap, repeated in passes while more
   runs remain than the merge fan-in allows.

All reads and writes go through the simulated disks, so the sort's I/O
cost appears in the experiment accounting exactly like the paper's.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..obs.metrics import ensure_metrics
from ..obs.trace import ensure_tracer
from ..storage.disk import SimulatedDisk
from ..storage.journal import Journal
from ..storage.pagefile import (PointFile, SequentialReader, SequentialWriter)
from ..storage.records import RecordCodec

#: Maps a ``(n, d)`` point batch to ``(n, k)`` integer key columns whose
#: lexicographic row order defines the sort order.
KeyFunction = Callable[[np.ndarray], np.ndarray]


@dataclass
class SortStats:
    """Accounting of one external sort."""

    runs_generated: int = 0
    merge_passes: int = 0
    records_sorted: int = 0


class _Run:
    """One sorted run stored headerless inside the scratch disk."""

    def __init__(self, disk: SimulatedDisk, codec: RecordCodec,
                 start_byte: int) -> None:
        self.file = PointFile(disk, codec, count=0, data_start=start_byte)

    @property
    def count(self) -> int:
        """Records currently in the run."""
        return self.file.count

    @property
    def end_byte(self) -> int:
        """First byte after the run's data."""
        return self.file.data_start + self.file.data_bytes


def _sort_batch(ids: np.ndarray, points: np.ndarray,
                key_of_batch: KeyFunction
                ) -> Tuple[np.ndarray, np.ndarray]:
    """Sort one in-memory batch by its keys (id as final tie-break)."""
    keys = key_of_batch(points)
    if keys.ndim == 1:
        keys = keys[:, None]
    columns = [keys[:, j] for j in range(keys.shape[1] - 1, -1, -1)]
    columns.insert(0, ids)
    order = np.lexsort(columns)
    return ids[order], points[order]


def _generate_runs(input_file: PointFile, scratch: SimulatedDisk,
                   key_of_batch: KeyFunction, memory_records: int,
                   stats: SortStats,
                   journal: Optional[Journal] = None) -> List[_Run]:
    """Sort one memory-load per run; with a journal, each completed run is
    recorded and a resumed sort reuses it from the scratch disk instead of
    re-reading and re-sorting its input chunk."""
    codec = input_file.codec
    runs: List[_Run] = []
    next_byte = 0
    total = input_file.count
    chunks = -(-total // memory_records) if total else 0
    for index in range(chunks):
        first = index * memory_records
        n = min(memory_records, total - first)
        recorded = journal.sort_run(index) if journal is not None else None
        if recorded is not None:
            start_byte, count = recorded
            run = _Run(scratch, codec, start_byte)
            run.file.count = count
        else:
            ids, points = input_file.read_range(first, n)
            ids, points = _sort_batch(ids, points, key_of_batch)
            run = _Run(scratch, codec, next_byte)
            writer = SequentialWriter(run.file, buffer_records=memory_records)
            writer.write(ids, points)
            writer.flush()
            if journal is not None:
                journal.record_sort_run(index, run.file.data_start,
                                        run.count)
        next_byte = run.end_byte
        runs.append(run)
        stats.runs_generated += 1
        stats.records_sorted += n
    return runs


class _MergeSource:
    """Buffered reader over one run with vectorised key computation."""

    def __init__(self, run_file: PointFile, key_of_batch: KeyFunction,
                 buffer_records: int) -> None:
        self.reader = SequentialReader(run_file,
                                       buffer_records=buffer_records)
        self.key_of_batch = key_of_batch
        self._ids = np.empty(0, dtype=np.int64)
        self._points = np.empty((0, run_file.dimensions))
        self._keys: List[Tuple[int, ...]] = []
        self._cursor = 0

    def _refill(self) -> bool:
        ids, points = self.reader.next_batch()
        if len(ids) == 0:
            return False
        self._ids, self._points = ids, points
        keys = self.key_of_batch(points)
        if keys.ndim == 1:
            keys = keys[:, None]
        self._keys = [tuple(row) for row in keys.tolist()]
        self._cursor = 0
        return True

    def pop(self):
        """Return ``(key, id, point)`` for the next record, or ``None``."""
        if self._cursor >= len(self._ids):
            if not self._refill():
                return None
        c = self._cursor
        self._cursor += 1
        return self._keys[c], int(self._ids[c]), self._points[c]


def _merge_runs(sources: List[_MergeSource], out: SequentialWriter,
                dimensions: int, batch_records: int) -> None:
    heap = []
    for idx, src in enumerate(sources):
        item = src.pop()
        if item is not None:
            key, rec_id, point = item
            heapq.heappush(heap, (key, rec_id, idx, point))
    ids_buf: List[int] = []
    pts_buf: List[np.ndarray] = []

    def flush() -> None:
        if ids_buf:
            out.write(np.array(ids_buf, dtype=np.int64), np.array(pts_buf))
            ids_buf.clear()
            pts_buf.clear()

    while heap:
        _key, rec_id, idx, point = heapq.heappop(heap)
        ids_buf.append(rec_id)
        pts_buf.append(point)
        if len(ids_buf) >= batch_records:
            flush()
        item = sources[idx].pop()
        if item is not None:
            nkey, nid, npoint = item
            heapq.heappush(heap, (nkey, nid, idx, npoint))
    flush()


class _ArraySource:
    """In-memory run speaking the :class:`_MergeSource` ``pop`` protocol."""

    def __init__(self, ids: np.ndarray, points: np.ndarray,
                 key_of_batch: KeyFunction) -> None:
        self._ids = np.asarray(ids, dtype=np.int64)
        self._points = np.asarray(points, dtype=np.float64)
        keys = key_of_batch(self._points)
        if keys.ndim == 1:
            keys = keys[:, None]
        self._keys = [tuple(row) for row in keys.tolist()]
        self._cursor = 0

    def pop(self):
        """Return ``(key, id, point)`` for the next record, or ``None``."""
        if self._cursor >= len(self._ids):
            return None
        c = self._cursor
        self._cursor += 1
        return self._keys[c], int(self._ids[c]), self._points[c]


class _ArraySink:
    """Writer-shaped collector for :func:`_merge_runs` output batches."""

    def __init__(self) -> None:
        self.id_chunks: List[np.ndarray] = []
        self.point_chunks: List[np.ndarray] = []

    def write(self, ids: np.ndarray, points: np.ndarray) -> None:
        self.id_chunks.append(ids)
        self.point_chunks.append(points)


def merge_sorted_arrays(runs: List[Tuple[np.ndarray, np.ndarray]],
                        key_of_batch: KeyFunction,
                        batch_records: int = 1024,
                        via_heap: bool = False
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """K-way merge of in-memory sorted ``(ids, points)`` runs.

    Each run must already be sorted by ``(key_of_batch(points), id)`` —
    the same invariant the disk-based merge relies on — and the output
    is one ``(ids, points)`` pair in that global order, identical to the
    external sort's heap merge (:func:`_merge_runs`) applied to the same
    runs.  :class:`repro.service.store.EGOStore` uses it to fold its
    delta buffer back into the resident EGO order during compaction
    without re-sorting the main run file.

    Records here are already resident arrays, so the merge permutation
    is computed with one vectorized lexsort over the concatenated runs
    instead of the per-record Python heap — on a 5 000-row main run that
    is ~20× cheaper per compaction, which dominates the store's
    amortized update cost.  ``via_heap=True`` forces the record-at-a-
    time path; the equivalence of the two is under test.
    """
    runs = [(ids, pts) for ids, pts in runs if len(ids)]
    if not runs:
        return (np.empty(0, dtype=np.int64), np.empty((0, 0)))
    if via_heap:
        dimensions = runs[0][1].shape[1]
        sources = [_ArraySource(ids, pts, key_of_batch)
                   for ids, pts in runs]
        sink = _ArraySink()
        _merge_runs(sources, sink, dimensions, batch_records)
        ids = np.concatenate(sink.id_chunks).astype(np.int64)
        points = np.ascontiguousarray(np.concatenate(sink.point_chunks))
        return ids, points
    ids = np.concatenate([r[0] for r in runs]).astype(np.int64)
    points = np.ascontiguousarray(
        np.concatenate([np.asarray(r[1], dtype=np.float64)
                        for r in runs]))
    keys = key_of_batch(points)
    if keys.ndim == 1:
        keys = keys[:, None]
    # np.lexsort sorts by the LAST key first; ids break key ties just
    # like the (key, rec_id, ...) heap entries do.
    columns = (ids,) + tuple(keys[:, c]
                             for c in range(keys.shape[1] - 1, -1, -1))
    order = np.lexsort(columns)
    return ids[order], np.ascontiguousarray(points[order])


def _generate_runs_replacement(input_file: PointFile,
                               scratch: SimulatedDisk,
                               key_of_batch: KeyFunction,
                               memory_records: int,
                               stats: SortStats) -> List["_Run"]:
    """Run generation via replacement selection (see :mod:`.runs`)."""
    from .runs import replacement_selection_runs

    codec = input_file.codec
    runs: List[_Run] = []
    state = {"next_byte": 0}

    def factory():
        run = _Run(scratch, codec, state["next_byte"])
        runs.append(run)
        return SequentialWriter(run.file, buffer_records=memory_records)

    lengths = replacement_selection_runs(input_file, key_of_batch,
                                         memory_records, _chain(factory,
                                                                runs,
                                                                state))
    runs[:] = [r for r in runs if r.count]
    stats.runs_generated += len(runs)
    stats.records_sorted += sum(lengths)
    return runs


def _chain(factory, runs, state):
    """Wrap the run factory to advance the scratch-disk high-water mark."""

    def wrapped():
        if runs:
            state["next_byte"] = max(state["next_byte"],
                                     runs[-1].end_byte)
        return factory()

    return wrapped


def external_sort(input_file: PointFile, output_disk: SimulatedDisk,
                  scratch_disk: SimulatedDisk, key_of_batch: KeyFunction,
                  memory_records: int,
                  fanin: int = 16,
                  run_strategy: str = "load",
                  journal: Optional[Journal] = None,
                  trace=None, metrics=None
                  ) -> Tuple[PointFile, SortStats]:
    """Sort ``input_file`` into a new point file on ``output_disk``.

    Parameters
    ----------
    memory_records:
        In-memory working-set size in records; bounds both the run length
        and the total merge buffering.
    fanin:
        Maximum runs merged per pass.
    run_strategy:
        ``"load"`` (sort one memory-load per run, the default) or
        ``"replacement"`` (replacement selection: ~2× longer runs on
        random input, halving the merge work).
    journal:
        Optional :class:`~repro.storage.journal.Journal` for crash-safe
        checkpointing: completed runs, merge passes and the finished
        output are recorded, and a sort re-invoked with the same journal
        (and the same file-backed disks) resumes after the last completed
        step instead of starting over.  Requires ``run_strategy="load"``
        (replacement selection consumes its input stream statefully).
    trace, metrics:
        Optional :class:`~repro.obs.trace.Tracer` /
        :class:`~repro.obs.metrics.MetricsRegistry`.  The sort emits
        ``run_generation`` and per-pass ``merge_pass`` spans and the
        ``ego_sort_*`` counters; ``None`` costs nothing.

    Returns the sorted :class:`PointFile` and the sort accounting.
    """
    if memory_records < 2:
        raise ValueError("memory_records must be at least 2")
    if fanin < 2:
        raise ValueError("fanin must be at least 2")
    if run_strategy not in ("load", "replacement"):
        raise ValueError(f"unknown run_strategy {run_strategy!r}")
    if journal is not None and run_strategy != "load":
        raise ValueError(
            "journaled sorting requires run_strategy='load'")
    codec = input_file.codec
    tracer = ensure_tracer(trace)
    registry = ensure_metrics(metrics)

    if journal is not None and journal.sort_complete is not None:
        done = journal.sort_complete
        output = PointFile.open(output_disk)
        if output.count == done["count"]:
            return output, SortStats(
                runs_generated=done["runs_generated"],
                merge_passes=done["merge_passes"],
                records_sorted=done["count"])
        # Inconsistent artifact (crash while finishing): fall through and
        # redo the final pass from the journaled runs.

    stats = SortStats()
    resuming = journal is not None and (
        journal.state.get("sort_runs") or journal.state.get("merge_passes"))
    if not resuming:
        scratch_disk.truncate(0)
    with tracer.span("run_generation", cat="sort"):
        if run_strategy == "replacement":
            runs = _generate_runs_replacement(input_file, scratch_disk,
                                              key_of_batch, memory_records,
                                              stats)
        else:
            runs = _generate_runs(input_file, scratch_disk, key_of_batch,
                                  memory_records, stats, journal=journal)

    # Intermediate merge passes keep results on the scratch disk, the
    # final pass writes the output file.  With a journal, each completed
    # pass records the resulting run layout; a resumed sort reconstructs
    # the runs of the latest completed pass and continues from there.
    pass_no = 0
    if journal is not None:
        latest = journal.latest_merge_pass()
        if latest is not None:
            pass_no, layout = latest
            runs = []
            for start_byte, count in layout:
                run = _Run(scratch_disk, codec, start_byte)
                run.file.count = count
                runs.append(run)
            stats.merge_passes = pass_no
    while len(runs) > fanin:
        pass_no += 1
        stats.merge_passes += 1
        span_args = ({"pass": pass_no, "runs": len(runs)}
                     if tracer.enabled else None)
        with tracer.span("merge_pass", cat="sort", args=span_args):
            # New runs are appended after everything already on the
            # scratch disk; singleton groups may keep runs positioned
            # earlier, so the high-water mark is the max over all runs,
            # not the last one.
            next_byte = max(r.end_byte for r in runs)
            merged: List[_Run] = []
            for group_start in range(0, len(runs), fanin):
                group = runs[group_start:group_start + fanin]
                if len(group) == 1:
                    merged.append(group[0])
                    continue
                target = _Run(scratch_disk, codec, next_byte)
                writer = SequentialWriter(target.file,
                                          buffer_records=memory_records)
                buf = max(2, memory_records // (len(group) + 1))
                sources = [_MergeSource(r.file, key_of_batch, buf)
                           for r in group]
                _merge_runs(sources, writer, codec.dimensions, buf)
                writer.flush()
                next_byte = target.end_byte
                merged.append(target)
            runs = merged
        if journal is not None:
            journal.record_merge_pass(
                pass_no, [(r.file.data_start, r.count) for r in runs])

    output = PointFile.create(output_disk, codec.dimensions)
    writer = SequentialWriter(output, buffer_records=memory_records)
    if runs:
        stats.merge_passes += 1
        span_args = ({"pass": stats.merge_passes, "runs": len(runs),
                      "final": True} if tracer.enabled else None)
        with tracer.span("merge_pass", cat="sort", args=span_args):
            buf = max(2, memory_records // (len(runs) + 1))
            sources = [_MergeSource(r.file, key_of_batch, buf) for r in runs]
            _merge_runs(sources, writer, codec.dimensions, buf)
    writer.flush()
    output.close()
    if journal is not None:
        journal.mark_sort_complete(output.count, stats.runs_generated,
                                   stats.merge_passes)
    registry.counter(
        "ego_sort_runs_total", "Sorted runs generated by the external sort",
    ).inc(stats.runs_generated)
    registry.counter(
        "ego_sort_merge_passes_total", "Merge passes of the external sort",
    ).inc(stats.merge_passes)
    registry.counter(
        "ego_sort_records_total", "Records sorted by the external sort",
    ).inc(stats.records_sorted)
    return output, stats
